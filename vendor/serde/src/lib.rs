//! Offline stand-in for the `serde` facade crate.
//!
//! The workspace builds without network access, so the real `serde` cannot be
//! resolved from a registry.  The data-model types in `linkage-types` carry
//! `#[derive(Serialize, Deserialize)]` so that a later PR can turn on real
//! serialisation by pointing `[workspace.dependencies] serde` at the real
//! crate; until then this facade re-exports no-op derives and marker traits
//! with the same names.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize` (no methods in the shim).
pub trait SerializeMarker {}

/// Marker trait mirroring `serde::Deserialize` (no methods in the shim).
pub trait DeserializeMarker {}
