//! No-op stand-ins for serde's `Serialize` / `Deserialize` derive macros.
//!
//! This workspace builds in a fully offline environment, so the real `serde`
//! crates cannot be fetched from a registry.  Nothing in the workspace
//! actually serialises data yet — the derives on the data-model types exist
//! so that a future PR can swap in the real `serde` by editing only
//! `[workspace.dependencies]`.  Until then these macros accept the same
//! syntax and expand to nothing.

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]` and expands to nothing.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]` and expands to nothing.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
