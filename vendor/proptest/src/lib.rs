//! Offline miniature property-testing engine.
//!
//! The workspace builds without network access, so the real `proptest` crate
//! cannot be resolved from a registry.  This crate implements the small
//! subset of the proptest API the workspace's property tests use:
//!
//! * the [`Strategy`] trait with implementations for numeric [`Range`]s and
//!   for `&str` regex-like character-class patterns (`"[A-Z ]{0,10}"`);
//! * [`collection::vec()`] and [`Strategy::prop_map`] combinators;
//! * the [`proptest!`], [`prop_assert!`] and [`prop_assert_eq!`] macros.
//!
//! Differences from real proptest: a fixed number of cases per property
//! ([`NUM_CASES`]), a deterministic per-test seed (derived from the test
//! name, so failures reproduce across runs), and no shrinking — a failing
//! case panics with the generated inputs printed.
//!
//! [`Range`]: std::ops::Range

#![forbid(unsafe_code)]

use std::fmt;

pub mod collection;
pub mod pattern;
pub mod prelude;
pub mod rng;
pub mod strategy;

pub use strategy::Strategy;

/// Number of generated cases per property.
pub const NUM_CASES: usize = 48;

/// Error carried out of a failing property body by the `prop_assert*` macros.
#[derive(Debug, Clone)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Wrap a failure message.
    pub fn new(message: impl Into<String>) -> Self {
        Self(message.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Define property tests.
///
/// ```ignore
/// proptest! {
///     #[test]
///     fn addition_commutes(a in 0u64..100, b in 0u64..100) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut __rng = $crate::rng::Rng::from_name(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                for __case in 0..$crate::NUM_CASES {
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                    let __outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(e) = __outcome {
                        panic!(
                            "property `{}` failed at case {}/{}: {}\ninputs: {:?}",
                            stringify!($name),
                            __case + 1,
                            $crate::NUM_CASES,
                            e,
                            ($(&$arg,)+)
                        );
                    }
                }
            }
        )*
    };
}

/// Assert a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::new(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::new(format!(
                "assertion failed: {} ({})",
                stringify!($cond),
                format!($($fmt)+)
            )));
        }
    };
}

/// Assert equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err($crate::TestCaseError::new(format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?})",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
}
