//! The [`Strategy`] trait and its primitive implementations.

use std::fmt::Debug;
use std::ops::Range;

use crate::pattern::Pattern;
use crate::rng::Rng;

/// A generator of test-case values.
pub trait Strategy {
    /// The type of generated values.
    type Value: Debug;

    /// Generate one value.
    fn generate(&self, rng: &mut Rng) -> Self::Value;

    /// Map generated values through a function.
    fn prop_map<U: Debug, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// The combinator returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U: Debug, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut Rng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut Rng) -> f64 {
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<usize> {
    type Value = usize;

    fn generate(&self, rng: &mut Rng) -> usize {
        rng.usize_in(self.start, self.end)
    }
}

impl Strategy for Range<u64> {
    type Value = u64;

    fn generate(&self, rng: &mut Rng) -> u64 {
        self.start + rng.next_u64() % (self.end - self.start)
    }
}

impl Strategy for Range<i64> {
    type Value = i64;

    fn generate(&self, rng: &mut Rng) -> i64 {
        let span = (self.end - self.start) as u64;
        self.start + (rng.next_u64() % span) as i64
    }
}

/// `&str` strategies are regex-like character-class patterns such as
/// `"[A-Z ]{0,10}"`; see [`crate::pattern`] for the supported subset.
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut Rng) -> String {
        Pattern::parse(self).generate(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_generate_in_bounds() {
        let mut rng = Rng::from_seed(1);
        for _ in 0..200 {
            let f = (0.5f64..2.0).generate(&mut rng);
            assert!((0.5..2.0).contains(&f));
            let u = (3usize..7).generate(&mut rng);
            assert!((3..7).contains(&u));
        }
    }

    #[test]
    fn prop_map_applies_function() {
        let mut rng = Rng::from_seed(2);
        let s = (1usize..5).prop_map(|n| n * 10);
        for _ in 0..50 {
            let v = s.generate(&mut rng);
            assert!(v % 10 == 0 && (10..50).contains(&v));
        }
    }
}
