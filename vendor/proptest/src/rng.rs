//! Deterministic pseudo-random number generation (xorshift64*).

/// A small, fast, deterministic PRNG.
///
/// Properties are seeded from their test name, so every run generates the
/// same cases and a reported failure reproduces immediately.
#[derive(Debug, Clone)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Seed from an explicit value.
    pub fn from_seed(seed: u64) -> Self {
        // One splitmix64 round spreads the seed bits and avoids the all-zero
        // fixed point of xorshift.
        let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        Self { state: z.max(1) }
    }

    /// Seed from a test name (FNV-1a hash).
    pub fn from_name(name: &str) -> Self {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in name.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Self::from_seed(hash)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform value in `[lo, hi)`; `hi` must be greater than `lo`.
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        debug_assert!(hi > lo, "empty range [{lo}, {hi})");
        lo + (self.next_u64() as usize) % (hi - lo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_name() {
        let a: Vec<u64> = {
            let mut r = Rng::from_name("x::y");
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = Rng::from_name("x::y");
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        let mut other = Rng::from_name("x::z");
        assert_ne!(a[0], other.next_u64());
    }

    #[test]
    fn floats_and_ranges_stay_in_bounds() {
        let mut r = Rng::from_seed(7);
        for _ in 0..1000 {
            let f = r.next_f64();
            assert!((0.0..1.0).contains(&f));
            let u = r.usize_in(3, 9);
            assert!((3..9).contains(&u));
        }
    }
}
