//! Collection strategies.

use std::fmt::Debug;
use std::ops::Range;

use crate::rng::Rng;
use crate::strategy::Strategy;

/// Strategy producing `Vec`s of values from an element strategy, with a
/// length drawn uniformly from `size` (half-open, like proptest's ranges).
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, size }
}

/// The strategy returned by [`vec()`].
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S>
where
    S::Value: Debug,
{
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut Rng) -> Vec<S::Value> {
        let len = rng.usize_in(self.size.start, self.size.end);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_respects_size_and_element_strategy() {
        let s = vec(2usize..5, 1..4);
        let mut rng = Rng::from_seed(9);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((1..4).contains(&v.len()));
            assert!(v.iter().all(|&x| (2..5).contains(&x)));
        }
    }
}
