//! A tiny regex-like string generator.
//!
//! Supports the subset of regex syntax the workspace's property tests use:
//! literal characters, character classes (`[A-Z]`, `[A-Za-z ]`), and the
//! quantifiers `{m}`, `{m,n}`, `*`, `+` and `?` applied to the preceding
//! atom.  Anything fancier (alternation, groups, escapes) is out of scope
//! and rejected with a panic so a typo fails loudly rather than silently
//! generating the wrong distribution.

use crate::rng::Rng;

/// One pattern atom plus its repetition bounds (inclusive).
#[derive(Debug, Clone)]
struct Atom {
    /// The characters this atom can produce.
    choices: Vec<char>,
    min: usize,
    max: usize,
}

/// A parsed pattern: a sequence of repeated atoms.
#[derive(Debug, Clone)]
pub struct Pattern {
    atoms: Vec<Atom>,
}

impl Pattern {
    /// Parse `source`, panicking on unsupported syntax.
    pub fn parse(source: &str) -> Self {
        let chars: Vec<char> = source.chars().collect();
        let mut atoms = Vec::new();
        let mut i = 0;
        while i < chars.len() {
            let choices = match chars[i] {
                '[' => {
                    let close = chars[i..]
                        .iter()
                        .position(|&c| c == ']')
                        .unwrap_or_else(|| panic!("unterminated class in pattern {source:?}"));
                    let class = &chars[i + 1..i + close];
                    i += close + 1;
                    expand_class(class, source)
                }
                '(' | ')' | '|' | '\\' | '.' => {
                    panic!(
                        "unsupported regex syntax {:?} in pattern {source:?}",
                        chars[i]
                    )
                }
                literal => {
                    i += 1;
                    vec![literal]
                }
            };
            let (min, max) = parse_quantifier(&chars, &mut i, source);
            atoms.push(Atom { choices, min, max });
        }
        Self { atoms }
    }

    /// Generate one string matching the pattern.
    pub fn generate(&self, rng: &mut Rng) -> String {
        let mut out = String::new();
        for atom in &self.atoms {
            let count = rng.usize_in(atom.min, atom.max + 1);
            for _ in 0..count {
                out.push(atom.choices[rng.usize_in(0, atom.choices.len())]);
            }
        }
        out
    }
}

/// Expand the inside of `[...]` into its member characters.
fn expand_class(class: &[char], source: &str) -> Vec<char> {
    assert!(!class.is_empty(), "empty class in pattern {source:?}");
    let mut choices = Vec::new();
    let mut i = 0;
    while i < class.len() {
        if i + 2 < class.len() && class[i + 1] == '-' {
            let (lo, hi) = (class[i], class[i + 2]);
            assert!(lo <= hi, "inverted range {lo}-{hi} in pattern {source:?}");
            for c in lo..=hi {
                choices.push(c);
            }
            i += 3;
        } else {
            choices.push(class[i]);
            i += 1;
        }
    }
    choices
}

/// Parse an optional quantifier at `chars[*i]`, returning inclusive bounds.
fn parse_quantifier(chars: &[char], i: &mut usize, source: &str) -> (usize, usize) {
    match chars.get(*i) {
        Some('{') => {
            let close = chars[*i..]
                .iter()
                .position(|&c| c == '}')
                .unwrap_or_else(|| panic!("unterminated quantifier in pattern {source:?}"));
            let body: String = chars[*i + 1..*i + close].iter().collect();
            *i += close + 1;
            match body.split_once(',') {
                Some((lo, hi)) => {
                    let lo = lo.trim().parse().expect("bad quantifier lower bound");
                    let hi = hi.trim().parse().expect("bad quantifier upper bound");
                    assert!(lo <= hi, "inverted quantifier in pattern {source:?}");
                    (lo, hi)
                }
                None => {
                    let n = body.trim().parse().expect("bad quantifier count");
                    (n, n)
                }
            }
        }
        Some('*') => {
            *i += 1;
            (0, 8)
        }
        Some('+') => {
            *i += 1;
            (1, 8)
        }
        Some('?') => {
            *i += 1;
            (0, 1)
        }
        _ => (1, 1),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples(pattern: &str, n: usize) -> Vec<String> {
        let parsed = Pattern::parse(pattern);
        let mut rng = Rng::from_seed(42);
        (0..n).map(|_| parsed.generate(&mut rng)).collect()
    }

    #[test]
    fn class_with_quantifier_respects_bounds_and_alphabet() {
        for s in samples("[A-Z]{1,8}", 200) {
            assert!((1..=8).contains(&s.chars().count()), "{s:?}");
            assert!(s.chars().all(|c| c.is_ascii_uppercase()), "{s:?}");
        }
    }

    #[test]
    fn class_may_include_literals_like_space() {
        let all: String = samples("[A-Z ]{0,10}", 300).concat();
        assert!(all.chars().all(|c| c == ' ' || c.is_ascii_uppercase()));
        assert!(all.contains(' '), "space should eventually be generated");
    }

    #[test]
    fn multiple_ranges_in_one_class() {
        for s in samples("[A-Za-z ]{0,12}", 200) {
            assert!(s.chars().count() <= 12);
            assert!(s.chars().all(|c| c == ' ' || c.is_ascii_alphabetic()));
        }
    }

    #[test]
    fn literals_and_exact_counts() {
        for s in samples("x[0-9]{3}", 50) {
            assert_eq!(s.chars().count(), 4);
            assert!(s.starts_with('x'));
            assert!(s[1..].chars().all(|c| c.is_ascii_digit()));
        }
    }

    #[test]
    fn star_plus_question_quantifiers() {
        for s in samples("a*b+c?", 200) {
            assert!(s.chars().all(|c| "abc".contains(c)));
            assert!(s.contains('b'));
        }
    }

    #[test]
    #[should_panic(expected = "unsupported regex syntax")]
    fn alternation_is_rejected() {
        Pattern::parse("a|b");
    }
}
