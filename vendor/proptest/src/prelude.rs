//! The glob-importable prelude, mirroring `proptest::prelude`.

pub use crate::collection;
pub use crate::strategy::{Map, Strategy};
pub use crate::TestCaseError;
pub use crate::{prop_assert, prop_assert_eq, proptest};
