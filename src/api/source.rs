//! Pipeline input declarations.

use linkage_types::{Record, Relation, Schema, VecStream};

/// One pipeline input: a schema plus the records to stream, however the
/// caller obtained them — an in-memory [`Relation`], a generated
/// workload, or any iterator of [`Record`]s.
#[derive(Debug, Clone)]
pub struct Source {
    schema: Schema,
    records: Vec<Record>,
}

impl Source {
    /// Declare a source from an in-memory relation (records are cloned;
    /// the relation stays usable, e.g. for scoring against ground truth).
    pub fn relation(relation: &Relation) -> Self {
        Self {
            schema: relation.schema().clone(),
            records: relation.records().to_vec(),
        }
    }

    /// Declare a source from a record iterator under an explicit schema.
    pub fn records(schema: Schema, records: impl IntoIterator<Item = Record>) -> Self {
        Self {
            schema,
            records: records.into_iter().collect(),
        }
    }

    /// The declared schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of records this source will stream.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the source is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Turn the declaration into the leaf stream the engines consume.
    pub(crate) fn into_stream(self) -> VecStream {
        VecStream::new(self.schema, self.records)
    }
}

impl From<&Relation> for Source {
    fn from(relation: &Relation) -> Self {
        Source::relation(relation)
    }
}

impl From<Relation> for Source {
    fn from(relation: Relation) -> Self {
        let schema = relation.schema().clone();
        Source::records(schema, relation.into_records())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use linkage_types::{Field, Value};

    fn relation() -> Relation {
        let mut rel = Relation::empty("r", Schema::of(vec![Field::string("k")]));
        rel.push_values(vec![Value::string("a")]).unwrap();
        rel.push_values(vec![Value::string("b")]).unwrap();
        rel
    }

    #[test]
    fn relation_and_record_sources_agree() {
        let rel = relation();
        let by_ref = Source::relation(&rel);
        let by_iter = Source::records(rel.schema().clone(), rel.records().to_vec());
        assert_eq!(by_ref.len(), 2);
        assert!(!by_ref.is_empty());
        assert_eq!(by_ref.schema(), by_iter.schema());
        let owned: Source = rel.into();
        assert_eq!(owned.len(), 2);
    }
}
