//! The fluent pipeline builder.

use linkage_core::{AdaptiveJoin, SwitchPolicy};
use linkage_datagen::{generate, DatagenConfig};
use linkage_exec::ParallelJoin;
use linkage_operators::{InterleavedScan, SwitchJoin};
use linkage_text::{QGramCoefficient, QGramConfig};
use linkage_types::snapshot::{kind, Decoder, SnapshotFile};
use linkage_types::{DataType, InterleavePolicy, LinkageError, PerSide, Result, Side};

use crate::api::config::{ExecutionMode, PipelineConfig};
use crate::api::engine::JoinEngine;
use crate::api::session::SessionInput;
use crate::api::source::Source;
use crate::api::stream::{MatchStream, RunOutcome};

/// A built, ready-to-run linkage pipeline over an engine-agnostic
/// [`JoinEngine`].
pub struct Pipeline {
    engine: Box<dyn JoinEngine + Send>,
}

impl std::fmt::Debug for Pipeline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pipeline")
            .field("engine", &self.engine.engine_name())
            .finish_non_exhaustive()
    }
}

impl Pipeline {
    /// Start declaring a pipeline.
    pub fn builder() -> PipelineBuilder {
        PipelineBuilder::default()
    }

    /// Which engine backs this pipeline (`"serial"`, `"sharded"`).
    pub fn engine_name(&self) -> &'static str {
        self.engine.engine_name()
    }

    /// Execute: open the engine and stream [`MatchEvent`]s.
    ///
    /// [`MatchEvent`]: crate::api::MatchEvent
    pub fn run(self) -> Result<MatchStream> {
        let mut engine = self.engine;
        engine.open()?;
        Ok(MatchStream::new(engine))
    }

    /// Execute and materialise: every match pair plus the final report.
    pub fn collect(self) -> Result<RunOutcome> {
        self.run()?.into_outcome()
    }

    /// Resume from a snapshot written by
    /// [`MatchStream::snapshot`](crate::api::MatchStream::snapshot)
    /// instead of starting from the first tuple.
    ///
    /// Declare the pipeline exactly as the snapshotted run did — same
    /// sources, keys, similarity, thresholds and execution mode (the
    /// `META` section's engine name, shard count and configuration
    /// fingerprint are all validated) — then call this in place of
    /// [`run`](Self::run).  The engine rebuilds its join state from the
    /// snapshot's tuple columns, fast-forwards the input past the
    /// consumed prefix, and the returned stream yields the remaining
    /// events bit-identically to the uninterrupted run.
    pub fn resume(self, path: impl AsRef<std::path::Path>) -> Result<MatchStream> {
        let file = SnapshotFile::read_from(path.as_ref())?;
        // Decode the stream's own section first: a malformed file is
        // rejected before the engine spawns anything.
        let mut d = Decoder::new(file.section(kind::STREAM as u32)?, "STREAM");
        let switch_emitted = d.get_bool()?;
        let stashed = if d.get_bool()? {
            Some(d.get_pair()?)
        } else {
            None
        };
        d.finish()?;

        let mut engine = self.engine;
        engine.open()?;
        if let Err(e) = engine.restore_state(&file) {
            let _ = engine.close();
            return Err(e);
        }
        Ok(MatchStream::resumed(engine, stashed, switch_emitted))
    }
}

/// What the builder was given as inputs.
#[derive(Debug, Clone, Default)]
enum Inputs {
    /// Nothing yet.
    #[default]
    None,
    /// Explicit sources (either side may still be missing).
    Pair(Option<Source>, Option<Source>),
    /// A datagen workload generated at build time.
    Datagen(DatagenConfig),
}

/// Fluent construction of a [`Pipeline`]: declare sources, keys, the
/// similarity choice, thresholds and an execution mode, then
/// [`build`](Self::build) (or go straight to [`run`](Self::run) /
/// [`collect`](Self::collect)).
///
/// Every knob defaults to the paper's value
/// ([`linkage_types::defaults`]); the minimal pipeline is two sources
/// plus a key column.
#[derive(Debug, Clone, Default)]
pub struct PipelineBuilder {
    inputs: Inputs,
    /// Set when `.datagen(...)` and `.left()`/`.right()` were mixed, so
    /// [`build`](Self::build) can point at the real mistake instead of
    /// silently dropping one declaration.
    mixed_sources: bool,
    config: PipelineConfig,
}

impl PipelineBuilder {
    /// Declare the left (reference / parent) source.
    pub fn left(mut self, source: impl Into<Source>) -> Self {
        self.inputs = match self.inputs {
            Inputs::Pair(_, right) => Inputs::Pair(Some(source.into()), right),
            Inputs::Datagen(_) => {
                self.mixed_sources = true;
                Inputs::Pair(Some(source.into()), None)
            }
            Inputs::None => Inputs::Pair(Some(source.into()), None),
        };
        self
    }

    /// Declare the right (probe / child) source.
    pub fn right(mut self, source: impl Into<Source>) -> Self {
        self.inputs = match self.inputs {
            Inputs::Pair(left, _) => Inputs::Pair(left, Some(source.into())),
            Inputs::Datagen(_) => {
                self.mixed_sources = true;
                Inputs::Pair(None, Some(source.into()))
            }
            Inputs::None => Inputs::Pair(None, Some(source.into())),
        };
        self
    }

    /// Declare both sources as a generated workload: parents become the
    /// left source, children the right, and the reference size is the
    /// parent count.  The dataset is generated during
    /// [`build`](Self::build).
    pub fn datagen(mut self, config: DatagenConfig) -> Self {
        if matches!(self.inputs, Inputs::Pair(_, _)) {
            self.mixed_sources = true;
        }
        self.inputs = Inputs::Datagen(config);
        self
    }

    /// Join key columns, one per side.
    pub fn keys(mut self, left: usize, right: usize) -> Self {
        self.config.keys = PerSide::new(left, right);
        self
    }

    /// Join key column shared by both sides.
    pub fn key_column(self, column: usize) -> Self {
        self.keys(column, column)
    }

    /// Override the q-gram extraction configuration.
    pub fn qgram(mut self, qgram: QGramConfig) -> Self {
        self.config.qgram = qgram;
        self
    }

    /// The pluggable similarity choice scoring approximate candidates
    /// (the paper's Jaccard by default).
    pub fn similarity(mut self, similarity: QGramCoefficient) -> Self {
        self.config.similarity = similarity;
        self
    }

    /// Similarity threshold `θ_sim`.
    pub fn theta_sim(mut self, theta_sim: f64) -> Self {
        self.config.theta_sim = theta_sim;
        self
    }

    /// Outlier significance threshold `θ_out`.
    pub fn theta_out(mut self, theta_out: f64) -> Self {
        self.config.theta_out = theta_out;
        self
    }

    /// Monitor cadence in consumed child tuples.
    pub fn check_every(mut self, check_every: u64) -> Self {
        self.config.check_every = check_every;
        self
    }

    /// Minimum trials before the outlier test is applied.
    pub fn min_trials(mut self, min_trials: u64) -> Self {
        self.config.min_trials = min_trials;
        self
    }

    /// Consecutive outlier verdicts required to trigger.
    pub fn consecutive_alarms(mut self, consecutive_alarms: u32) -> Self {
        self.config.consecutive_alarms = consecutive_alarms;
        self
    }

    /// Declare the reference-relation size (the paper's `|R|` catalog
    /// statistic) instead of inferring it from the left source.
    pub fn reference_size(mut self, reference_size: u64) -> Self {
        self.config.reference_size = Some(reference_size);
        self
    }

    /// Set the switch policy explicitly.
    pub fn switch_policy(mut self, policy: SwitchPolicy) -> Self {
        self.config.switch_policy = policy;
        self
    }

    /// Never switch: the exact-only, non-adaptive baseline.
    pub fn never_switch(self) -> Self {
        self.switch_policy(SwitchPolicy::Never)
    }

    /// Switch unconditionally once `consumed_tuples` inputs were
    /// consumed, bypassing the assessor (tests, experiments).
    pub fn force_switch_at(self, consumed_tuples: u64) -> Self {
        self.switch_policy(SwitchPolicy::ForceAt(consumed_tuples))
    }

    /// Run the approximate similarity join from the first tuple.
    pub fn approximate_from_start(self) -> Self {
        self.force_switch_at(0)
    }

    /// Execute on the serial adaptive engine (the default).
    pub fn serial(mut self) -> Self {
        self.config.execution = ExecutionMode::Serial;
        self
    }

    /// Execute on the partition-parallel engine with `shards` workers.
    pub fn sharded(mut self, shards: usize) -> Self {
        self.config.execution = ExecutionMode::Sharded { shards };
        self
    }

    /// Epoch size of the sharded executor.
    pub fn batch_size(mut self, batch_size: usize) -> Self {
        self.config.batch_size = batch_size;
        self
    }

    /// Worker channel depth of the sharded executor.
    pub fn channel_capacity(mut self, channel_capacity: usize) -> Self {
        self.config.channel_capacity = channel_capacity;
        self
    }

    /// How the two sources interleave into one stream.
    pub fn interleave(mut self, policy: InterleavePolicy) -> Self {
        self.config.interleave = policy;
        self
    }

    /// Replace the whole configuration (sources are kept).
    pub fn config(mut self, config: PipelineConfig) -> Self {
        self.config = config;
        self
    }

    /// Validate the declaration and construct the engine.
    pub fn build(self) -> Result<Pipeline> {
        self.config.validate()?;
        if self.mixed_sources {
            return Err(LinkageError::config(
                "cannot combine .datagen(...) with explicit .left()/.right() \
                 sources — declare one or the other",
            ));
        }
        let (left, right) = match self.inputs {
            Inputs::Pair(Some(left), Some(right)) => (left, right),
            Inputs::Pair(_, _) | Inputs::None => {
                return Err(LinkageError::config(
                    "a pipeline needs both a left and a right source \
                     (or a datagen workload)",
                ))
            }
            Inputs::Datagen(config) => {
                let data = generate(&config)?;
                (
                    Source::relation(&data.parents),
                    Source::relation(&data.children),
                )
            }
        };
        for (side, source) in [(Side::Left, &left), (Side::Right, &right)] {
            let column = self.config.keys[side];
            let field = source.schema().field_at(column).map_err(|_| {
                LinkageError::config(format!(
                    "{side} key column {column} is out of range for a schema \
                     with {} field(s)",
                    source.schema().len()
                ))
            })?;
            if field.data_type != DataType::String {
                return Err(LinkageError::config(format!(
                    "{side} key column {column} ({}) must be a string field, \
                     found {:?}",
                    field.name, field.data_type
                )));
            }
        }
        let reference = self
            .config
            .reference_size
            .unwrap_or(left.len() as u64)
            .max(1);
        let scan = InterleavedScan::new(
            left.into_stream(),
            right.into_stream(),
            self.config.interleave,
        );
        // Exhaustive on purpose: `ExecutionMode` is `#[non_exhaustive]`
        // only for downstream crates — adding a variant here must fail to
        // compile until it gets an engine.
        let engine: Box<dyn JoinEngine + Send> = match self.config.execution {
            ExecutionMode::Sharded { shards } => Box::new(ParallelJoin::new(
                scan,
                self.config.parallel(shards, reference),
            )),
            ExecutionMode::Serial => Box::new(AdaptiveJoin::new(
                SwitchJoin::new(scan, self.config.switch_join()),
                self.config.controller(reference),
            )),
        };
        Ok(Pipeline { engine })
    }

    /// Build an incrementally fed pipeline for a long-lived session:
    /// instead of declaring sources, the returned [`SessionInput`] handle
    /// feeds records in batches (and eventually declares the input
    /// finished), while the [`Pipeline`] is driven through
    /// [`MatchStream::advance`] / [`MatchStream::next_ready`].
    ///
    /// Two extra rules versus [`build`](Self::build): no sources may be
    /// declared (records arrive through the handle), and
    /// [`reference_size`](Self::reference_size) must be set explicitly —
    /// with an unbounded input there is nothing to infer it from, and
    /// pinning it keeps the configuration identity stable across
    /// snapshot, eviction and [`Pipeline::resume`].
    ///
    /// [`MatchStream::advance`]: crate::api::MatchStream::advance
    /// [`MatchStream::next_ready`]: crate::api::MatchStream::next_ready
    pub fn session(self) -> Result<(Pipeline, SessionInput)> {
        self.config.validate()?;
        if self.mixed_sources || !matches!(self.inputs, Inputs::None) {
            return Err(LinkageError::config(
                "a session pipeline takes no sources — records arrive \
                 through the SessionInput handle",
            ));
        }
        if self.config.reference_size.is_none() {
            return Err(LinkageError::config(
                "a session pipeline requires an explicit .reference_size(...) \
                 — an incrementally fed input has no inferable size",
            ));
        }
        let reference = self.config.reference_size.unwrap_or(1).max(1);
        let input = SessionInput::new();
        let stream = input.stream();
        let engine: Box<dyn JoinEngine + Send> = match self.config.execution {
            ExecutionMode::Sharded { shards } => Box::new(ParallelJoin::new(
                stream,
                self.config.parallel(shards, reference),
            )),
            ExecutionMode::Serial => Box::new(AdaptiveJoin::new(
                SwitchJoin::new(stream, self.config.switch_join()),
                self.config.controller(reference),
            )),
        };
        Ok((Pipeline { engine }, input))
    }

    /// [`build`](Self::build) then [`Pipeline::run`].
    pub fn run(self) -> Result<MatchStream> {
        self.build()?.run()
    }

    /// [`build`](Self::build) then [`Pipeline::collect`].
    pub fn collect(self) -> Result<RunOutcome> {
        self.build()?.collect()
    }

    /// [`build`](Self::build) then [`Pipeline::resume`].
    pub fn resume(self, path: impl AsRef<std::path::Path>) -> Result<MatchStream> {
        self.build()?.resume(path)
    }
}
