//! Incremental input for long-lived (server-driven) pipelines.
//!
//! A normal pipeline's input is fixed at build time and the engines
//! treat `Ok(None)` from it as *permanent* exhaustion.  A served session
//! receives its records in `FEED` batches instead, so its input must be
//! growable: [`SessionInput`] is the feeding handle, and the private
//! [`SessionStream`] operator behind it yields whatever has been pushed,
//! reports end-of-input only after [`SessionInput::finish`], and treats
//! being pulled while empty-but-unfinished as a hard error.
//!
//! That error is unreachable by construction: the engines' bounded
//! `advance_to` entry points (driven through
//! [`MatchStream::advance`](crate::api::MatchStream::advance)) never
//! read past the fed prefix.  Encoding the discipline as a typed error
//! instead of a silent `None` is what protects the bit-identity
//! contract — an engine that *did* observe a premature end would fuse.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex, MutexGuard};

use linkage_operators::{Operator, OperatorState};
use linkage_types::{LinkageError, Record, Result, Side, SidedRecord};

/// Shared feed state between the handle and the stream operator.
#[derive(Debug, Default)]
struct FeedState {
    queue: VecDeque<SidedRecord>,
    /// Total records ever pushed (not just currently queued).
    pushed: u64,
    finished: bool,
}

/// The feeding half of a session pipeline, returned by
/// [`PipelineBuilder::session`](crate::api::PipelineBuilder::session).
///
/// Clone-able and `Send`: the handle can live on a different thread
/// than the pipeline it feeds.  Push records with [`push`](Self::push),
/// declare the input complete with [`finish`](Self::finish), and use
/// [`pushed`](Self::pushed) as the `available` argument to
/// [`MatchStream::advance`](crate::api::MatchStream::advance).
#[derive(Debug, Clone)]
pub struct SessionInput {
    state: Arc<Mutex<FeedState>>,
}

impl SessionInput {
    pub(crate) fn new() -> Self {
        Self {
            state: Arc::new(Mutex::new(FeedState::default())),
        }
    }

    pub(crate) fn stream(&self) -> SessionStream {
        SessionStream {
            state: Arc::clone(&self.state),
            op_state: OperatorState::default(),
        }
    }

    fn lock(&self) -> MutexGuard<'_, FeedState> {
        self.state
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Append one record to the session's input.
    ///
    /// Fails with [`LinkageError::OperatorState`] after
    /// [`finish`](Self::finish): a finished input is immutable.
    pub fn push(&self, side: Side, record: Record) -> Result<()> {
        self.push_sided(SidedRecord::new(side, record))
    }

    /// Append one already-sided record to the session's input.
    pub fn push_sided(&self, record: SidedRecord) -> Result<()> {
        let mut state = self.lock();
        if state.finished {
            return Err(LinkageError::operator_state(
                "cannot push into a finished session input",
            ));
        }
        state.queue.push_back(record);
        state.pushed += 1;
        Ok(())
    }

    /// Declare the input complete.  Idempotent; after this the stream
    /// reports a normal end of input once the queue drains, letting the
    /// pipeline finish exactly like a fixed-input run.
    pub fn finish(&self) {
        self.lock().finished = true;
    }

    /// Whether [`finish`](Self::finish) was called.
    pub fn is_finished(&self) -> bool {
        self.lock().finished
    }

    /// Total records ever pushed — the engine-visible input length, and
    /// the `available` argument for
    /// [`MatchStream::advance`](crate::api::MatchStream::advance).
    pub fn pushed(&self) -> u64 {
        self.lock().pushed
    }

    /// Records pushed but not yet consumed by the engine.
    pub fn buffered(&self) -> usize {
        self.lock().queue.len()
    }
}

/// The operator end of a [`SessionInput`]: a sided-record stream that
/// grows as the handle pushes.
#[derive(Debug)]
pub(crate) struct SessionStream {
    state: Arc<Mutex<FeedState>>,
    op_state: OperatorState,
}

impl Operator for SessionStream {
    type Item = SidedRecord;

    fn name(&self) -> &'static str {
        "session-stream"
    }

    fn state(&self) -> OperatorState {
        self.op_state
    }

    fn open(&mut self) -> Result<()> {
        self.op_state.check_open(self.name())?;
        self.op_state = OperatorState::Open;
        Ok(())
    }

    fn next(&mut self) -> Result<Option<SidedRecord>> {
        self.op_state.check_next(self.name())?;
        let mut state = self
            .state
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        if let Some(record) = state.queue.pop_front() {
            return Ok(Some(record));
        }
        if state.finished {
            return Ok(None);
        }
        // Unreachable under the engines' bounded-advance discipline; a
        // silent `None` here would fuse the engine mid-session, so the
        // discipline is enforced as a typed error instead.
        Err(LinkageError::execution(
            "session input starved: the engine was advanced past the fed prefix",
        ))
    }

    fn close(&mut self) -> Result<()> {
        self.op_state = OperatorState::Closed;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use linkage_types::Value;

    fn rec(id: u64) -> Record {
        Record::new(id, vec![Value::string("k")])
    }

    #[test]
    fn pushes_flow_through_in_order_and_finish_ends_the_stream() {
        let input = SessionInput::new();
        let mut stream = input.stream();
        stream.open().unwrap();
        input.push(Side::Left, rec(1)).unwrap();
        input.push(Side::Right, rec(2)).unwrap();
        assert_eq!(input.pushed(), 2);
        assert_eq!(input.buffered(), 2);
        assert_eq!(stream.next().unwrap().unwrap().record.id, 1.into());
        assert_eq!(stream.next().unwrap().unwrap().record.id, 2.into());
        assert_eq!(input.buffered(), 0);
        input.finish();
        assert!(input.is_finished());
        assert!(stream.next().unwrap().is_none());
        assert!(matches!(
            input.push(Side::Left, rec(3)),
            Err(LinkageError::OperatorState(_))
        ));
    }

    #[test]
    fn starvation_is_a_typed_error_not_an_end() {
        let input = SessionInput::new();
        let mut stream = input.stream();
        stream.open().unwrap();
        assert!(matches!(stream.next(), Err(LinkageError::Execution(_))));
        // The stream is still usable: a later push flows through.
        input.push(Side::Left, rec(1)).unwrap();
        assert!(stream.next().unwrap().is_some());
    }
}
