//! The engine-agnostic execution contract.

use std::time::Duration;

use linkage_core::{AdaptiveJoin, SwitchEvent};
use linkage_exec::{ParallelJoin, ShardStats};
use linkage_operators::{JoinPhase, Operator, PerKind, ProbeFunnel};
use linkage_types::{MatchPair, PerSide, Result, SidedRecord};

/// A join backend the pipeline can drive.
///
/// Both shipped engines — the serial [`AdaptiveJoin`] and the sharded
/// [`ParallelJoin`] — implement this trait, and the facade only ever
/// holds a `Box<dyn JoinEngine>`, so a future backend (async, multi-node)
/// is a drop-in: implement the trait, add an
/// [`ExecutionMode`](crate::api::ExecutionMode) variant, done.
pub trait JoinEngine {
    /// Stable engine name for reports (`"serial"`, `"sharded"`).
    fn engine_name(&self) -> &'static str;

    /// Prepare the engine (open inputs, spawn workers).
    fn open(&mut self) -> Result<()>;

    /// Produce the next match pair, or `Ok(None)` when exhausted.
    fn next_match(&mut self) -> Result<Option<MatchPair>>;

    /// Release resources (close inputs, join workers); idempotent.
    fn close(&mut self) -> Result<()>;

    /// The phase currently driving output.
    fn phase(&self) -> JoinPhase;

    /// The switch decision, if one was made.
    fn switch_event(&self) -> Option<SwitchEvent>;

    /// Summarise the run so far as the unified report.
    fn report(&self) -> RunReport;
}

/// The unified run summary — one type for every engine, merging the
/// serial `AdaptiveReport` and the sharded `ParallelReport`.
///
/// `#[non_exhaustive]`: future engines may add fields.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct RunReport {
    /// Which engine produced this report.
    pub engine: &'static str,
    /// Worker shards the engine ran (1 for the serial engine).
    pub shards: usize,
    /// Phase the join ended in.
    pub phase: JoinPhase,
    /// Input tuples consumed per side.
    pub consumed: PerSide<u64>,
    /// Distinct pairs emitted, by kind.
    pub emitted: PerKind,
    /// The switch, if it happened.
    pub switch: Option<SwitchEvent>,
    /// Wall-clock duration of the §3.3 handover, if it ran.
    pub switch_latency: Option<Duration>,
    /// Per-shard statistics (sharded engine only, populated once the run
    /// finishes; empty for the serial engine).
    pub shard_stats: Vec<ShardStats>,
}

impl RunReport {
    /// Total input tuples consumed.
    pub fn total_consumed(&self) -> u64 {
        self.consumed.left + self.consumed.right
    }

    /// Total estimated resident **index** bytes across shards: tuples,
    /// keys and the flat gram-id postings (0 until the sharded engine
    /// finishes; the serial engine does not report it).  Gram text is
    /// *not* included — it lives once in the join's shared interner, see
    /// [`Self::interner_bytes`]; summing it per shard would double-count
    /// what is a single shared table.
    pub fn state_bytes(&self) -> usize {
        self.shard_stats
            .iter()
            .map(|s| s.state_bytes.left + s.state_bytes.right)
            .sum()
    }

    /// Estimated bytes of the join's shared gram-interner table, counted
    /// **once** (every shard reports the same shared table; the maximum
    /// is taken in case stats were sampled at different moments).
    pub fn interner_bytes(&self) -> usize {
        self.shard_stats
            .iter()
            .map(|s| s.interner_bytes)
            .max()
            .unwrap_or(0)
    }

    /// Total resident-state estimate: per-shard indexes plus the shared
    /// gram table once.
    pub fn total_state_bytes(&self) -> usize {
        self.state_bytes() + self.interner_bytes()
    }

    /// Total flat-posting slack bytes across shards: headers of
    /// never-populated gram-id slots plus unused posting capacity —
    /// reported separately from [`Self::state_bytes`] so the payload
    /// estimate and the layout overhead are both visible (0 until the
    /// sharded engine finishes; the serial engine does not report it).
    pub fn postings_slack_bytes(&self) -> usize {
        self.shard_stats
            .iter()
            .map(|s| s.postings_slack_bytes)
            .sum()
    }

    /// The join-wide candidate funnel: every shard's probe-kernel
    /// counters folded together (zeros until the sharded engine
    /// finishes; the serial engine does not report it).
    pub fn probe_funnel(&self) -> ProbeFunnel {
        let mut funnel = ProbeFunnel::default();
        for stats in &self.shard_stats {
            funnel.absorb(stats.funnel);
        }
        funnel
    }
}

impl<I: Operator<Item = SidedRecord>> JoinEngine for AdaptiveJoin<I> {
    fn engine_name(&self) -> &'static str {
        "serial"
    }

    fn open(&mut self) -> Result<()> {
        Operator::open(self)
    }

    fn next_match(&mut self) -> Result<Option<MatchPair>> {
        Operator::next(self)
    }

    fn close(&mut self) -> Result<()> {
        Operator::close(self)
    }

    fn phase(&self) -> JoinPhase {
        AdaptiveJoin::phase(self)
    }

    fn switch_event(&self) -> Option<SwitchEvent> {
        AdaptiveJoin::switch_event(self)
    }

    fn report(&self) -> RunReport {
        let report = AdaptiveJoin::report(self);
        RunReport {
            engine: self.engine_name(),
            shards: 1,
            phase: report.phase,
            consumed: report.consumed,
            emitted: report.emitted,
            switch: report.switch,
            switch_latency: report.switch_latency,
            shard_stats: Vec::new(),
        }
    }
}

impl<I: Operator<Item = SidedRecord>> JoinEngine for ParallelJoin<I> {
    fn engine_name(&self) -> &'static str {
        "sharded"
    }

    fn open(&mut self) -> Result<()> {
        Operator::open(self)
    }

    fn next_match(&mut self) -> Result<Option<MatchPair>> {
        Operator::next(self)
    }

    fn close(&mut self) -> Result<()> {
        Operator::close(self)
    }

    fn phase(&self) -> JoinPhase {
        ParallelJoin::phase(self)
    }

    fn switch_event(&self) -> Option<SwitchEvent> {
        ParallelJoin::switch_event(self)
    }

    fn report(&self) -> RunReport {
        let report = ParallelJoin::report(self);
        RunReport {
            engine: self.engine_name(),
            shards: self.shard_count(),
            phase: report.phase,
            consumed: report.consumed,
            emitted: report.emitted,
            switch: report.switch,
            switch_latency: report.switch_latency,
            shard_stats: report.shards,
        }
    }
}
