//! The engine-agnostic execution contract.

use std::time::Duration;

use linkage_core::{AdaptiveControlState, AdaptiveJoin, SwitchEvent};
use linkage_exec::{ParallelJoin, ShardStats};
use linkage_operators::{
    snapshot as opsnap, JoinPhase, Operator, OperatorState, PerKind, ProbeFunnel, RestoredCore,
    SwitchRestore,
};
use linkage_text::SharedInterner;
use linkage_types::snapshot::{crc32, kind, Decoder, Encoder, SnapshotBuilder, SnapshotFile};
use linkage_types::{LinkageError, MatchPair, PerSide, Result, SidedRecord};

/// A join backend the pipeline can drive.
///
/// Both shipped engines — the serial [`AdaptiveJoin`] and the sharded
/// [`ParallelJoin`] — implement this trait, and the facade only ever
/// holds a `Box<dyn JoinEngine>`, so a future backend (async, multi-node)
/// is a drop-in: implement the trait, add an
/// [`ExecutionMode`](crate::api::ExecutionMode) variant, done.
pub trait JoinEngine {
    /// Stable engine name for reports (`"serial"`, `"sharded"`).
    fn engine_name(&self) -> &'static str;

    /// Prepare the engine (open inputs, spawn workers).
    fn open(&mut self) -> Result<()>;

    /// Produce the next match pair, or `Ok(None)` when exhausted.
    fn next_match(&mut self) -> Result<Option<MatchPair>>;

    /// Release resources (close inputs, join workers); idempotent.
    fn close(&mut self) -> Result<()>;

    /// The phase currently driving output.
    fn phase(&self) -> JoinPhase;

    /// The switch decision, if one was made.
    fn switch_event(&self) -> Option<SwitchEvent>;

    /// Summarise the run so far as the unified report.
    fn report(&self) -> RunReport;

    /// Append the engine's complete durable state — a `META` identity
    /// section plus the engine-specific sections of `docs/format.md` —
    /// to a snapshot under construction.  Requires an open engine; the
    /// sharded engine quiesces its epoch pipeline first, so the call is
    /// valid between any two pulls, in either phase.
    ///
    /// The default implementation is a typed error, so future backends
    /// without durability remain drop-ins.
    fn snapshot_state(&mut self, builder: &mut SnapshotBuilder) -> Result<()> {
        let _ = builder;
        Err(LinkageError::snapshot(format!(
            "the {} engine does not support snapshots",
            self.engine_name()
        )))
    }

    /// Install previously snapshotted state into a freshly opened,
    /// pristine engine: validate the `META` identity (engine, shard
    /// count, configuration fingerprint), rebuild the join state by
    /// replaying the snapshot's tuple columns, and fast-forward the
    /// re-declared input past the consumed prefix.  After this the
    /// engine's remaining output is bit-identical to what the
    /// interrupted run would have produced.
    fn restore_state(&mut self, file: &SnapshotFile) -> Result<()> {
        let _ = file;
        Err(LinkageError::snapshot(format!(
            "the {} engine does not support snapshots",
            self.engine_name()
        )))
    }

    /// Consume input — running the engine's control loop — as far as is
    /// safe given that only `available` total input tuples exist so far,
    /// without emitting anything: produced pairs stay buffered for
    /// [`Self::next_match`] / [`Self::buffered_matches`].  The driver of
    /// an incrementally fed ([session](crate::api::PipelineBuilder::session))
    /// pipeline calls this after each feed; each engine advances by its
    /// own granularity (per tuple serially, per whole epoch sharded) and
    /// is careful never to observe a premature end of input, which is
    /// what keeps the eventual output bit-identical to a solo run.
    ///
    /// The default is a typed error, so engines without incremental
    /// support remain drop-ins.
    fn advance_input(&mut self, available: u64) -> Result<()> {
        let _ = available;
        Err(LinkageError::execution(format!(
            "the {} engine does not support incremental sessions",
            self.engine_name()
        )))
    }

    /// Match pairs already produced and buffered inside the engine —
    /// pairs [`Self::next_match`] can return without touching the input.
    fn buffered_matches(&self) -> usize {
        0
    }
}

/// Fingerprint a configuration for the `META` section: CRC-32 of its
/// canonical `Debug` rendering.  Catches the practical mistake — resuming
/// under a different declaration (other keys, thresholds, coefficient,
/// batching) — without freezing a byte layout for every config type.
fn config_fingerprint(config: &impl std::fmt::Debug) -> u32 {
    crc32(format!("{config:?}").as_bytes())
}

/// Write the `META` identity section.
fn put_meta(builder: &mut SnapshotBuilder, engine: &str, shards: usize, fingerprint: u32) {
    let mut e = Encoder::new();
    e.put_str(engine);
    e.put_u32(shards as u32);
    e.put_u32(fingerprint);
    builder.push_section(kind::META as u32, e.finish());
}

/// Validate the `META` identity section against the resuming engine.
fn check_meta(file: &SnapshotFile, engine: &str, shards: usize, fingerprint: u32) -> Result<()> {
    let mut d = Decoder::new(file.section(kind::META as u32)?, "META");
    let snap_engine = d.get_str()?.to_owned();
    let snap_shards = d.get_u32()? as usize;
    let snap_fingerprint = d.get_u32()?;
    d.finish()?;
    if snap_engine != engine {
        return Err(LinkageError::snapshot(format!(
            "snapshot was taken by the {snap_engine:?} engine, cannot resume on {engine:?}"
        )));
    }
    if snap_shards != shards {
        return Err(LinkageError::snapshot(format!(
            "snapshot was taken with {snap_shards} shard(s), this pipeline runs {shards}"
        )));
    }
    if snap_fingerprint != fingerprint {
        return Err(LinkageError::snapshot(
            "snapshot configuration fingerprint does not match this pipeline — resume \
             with the exact declaration (keys, q-grams, coefficient, thresholds, \
             batching) the snapshot was taken with",
        ));
    }
    Ok(())
}

/// The unified run summary — one type for every engine, merging the
/// serial `AdaptiveReport` and the sharded `ParallelReport`.
///
/// `#[non_exhaustive]`: future engines may add fields.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct RunReport {
    /// Which engine produced this report.
    pub engine: &'static str,
    /// Worker shards the engine ran (1 for the serial engine).
    pub shards: usize,
    /// Phase the join ended in.
    pub phase: JoinPhase,
    /// Input tuples consumed per side.
    pub consumed: PerSide<u64>,
    /// Distinct pairs emitted, by kind.
    pub emitted: PerKind,
    /// The switch, if it happened.
    pub switch: Option<SwitchEvent>,
    /// Wall-clock duration of the §3.3 handover, if it ran.
    pub switch_latency: Option<Duration>,
    /// Per-shard statistics (sharded engine only, populated once the run
    /// finishes; empty for the serial engine).
    pub shard_stats: Vec<ShardStats>,
}

impl RunReport {
    /// Total input tuples consumed.
    pub fn total_consumed(&self) -> u64 {
        self.consumed.left + self.consumed.right
    }

    /// Total estimated resident **index** bytes across shards: tuples,
    /// keys and the flat gram-id postings (0 until the sharded engine
    /// finishes; the serial engine does not report it).  Gram text is
    /// *not* included — it lives once in the join's shared interner, see
    /// [`Self::interner_bytes`]; summing it per shard would double-count
    /// what is a single shared table.
    pub fn state_bytes(&self) -> usize {
        self.shard_stats
            .iter()
            .map(|s| s.state_bytes.left + s.state_bytes.right)
            .sum()
    }

    /// Estimated bytes of the join's shared gram-interner table, counted
    /// **once** (every shard reports the same shared table; the maximum
    /// is taken in case stats were sampled at different moments).
    pub fn interner_bytes(&self) -> usize {
        self.shard_stats
            .iter()
            .map(|s| s.interner_bytes)
            .max()
            .unwrap_or(0)
    }

    /// Total resident-state estimate: per-shard indexes plus the shared
    /// gram table once.
    pub fn total_state_bytes(&self) -> usize {
        self.state_bytes() + self.interner_bytes()
    }

    /// Total flat-posting slack bytes across shards: headers of
    /// never-populated gram-id slots plus unused posting capacity —
    /// reported separately from [`Self::state_bytes`] so the payload
    /// estimate and the layout overhead are both visible (0 until the
    /// sharded engine finishes; the serial engine does not report it).
    pub fn postings_slack_bytes(&self) -> usize {
        self.shard_stats
            .iter()
            .map(|s| s.postings_slack_bytes)
            .sum()
    }

    /// The join-wide candidate funnel: every shard's probe-kernel
    /// counters folded together (zeros until the sharded engine
    /// finishes; the serial engine does not report it).
    pub fn probe_funnel(&self) -> ProbeFunnel {
        let mut funnel = ProbeFunnel::default();
        for stats in &self.shard_stats {
            funnel.absorb(stats.funnel);
        }
        funnel
    }
}

impl<I: Operator<Item = SidedRecord>> JoinEngine for AdaptiveJoin<I> {
    fn engine_name(&self) -> &'static str {
        "serial"
    }

    fn open(&mut self) -> Result<()> {
        Operator::open(self)
    }

    fn next_match(&mut self) -> Result<Option<MatchPair>> {
        Operator::next(self)
    }

    fn close(&mut self) -> Result<()> {
        Operator::close(self)
    }

    fn phase(&self) -> JoinPhase {
        AdaptiveJoin::phase(self)
    }

    fn switch_event(&self) -> Option<SwitchEvent> {
        AdaptiveJoin::switch_event(self)
    }

    fn report(&self) -> RunReport {
        let report = AdaptiveJoin::report(self);
        RunReport {
            engine: self.engine_name(),
            shards: 1,
            phase: report.phase,
            consumed: report.consumed,
            emitted: report.emitted,
            switch: report.switch,
            switch_latency: report.switch_latency,
            shard_stats: Vec::new(),
        }
    }

    fn advance_input(&mut self, available: u64) -> Result<()> {
        AdaptiveJoin::advance_to(self, available)
    }

    fn buffered_matches(&self) -> usize {
        AdaptiveJoin::buffered(self)
    }

    fn snapshot_state(&mut self, builder: &mut SnapshotBuilder) -> Result<()> {
        if Operator::state(self) != OperatorState::Open {
            return Err(LinkageError::snapshot("snapshot requires an open engine"));
        }
        put_meta(builder, "serial", 1, serial_fingerprint(self));

        let inner = self.inner();
        match (inner.exact_core_ref(), inner.ssh_core_ref()) {
            (Some(exact), _) => {
                builder.push_section(kind::EXACT_CORE as u32, opsnap::encode_exact_core(exact));
            }
            (_, Some(ssh)) => {
                builder.push_section(
                    kind::INTERNER as u32,
                    opsnap::encode_interner(ssh.interner()),
                );
                builder.push_section(kind::SSH_CORE as u32, opsnap::encode_ssh_core(ssh));
            }
            // `Switching` is transient inside one `next_match` call; the
            // engine is never observed in it between pulls.
            (None, None) => {
                return Err(LinkageError::snapshot(
                    "snapshot during an in-flight switch",
                ))
            }
        }

        let mut e = Encoder::new();
        let consumed = inner.consumed();
        e.put_u64(consumed.left);
        e.put_u64(consumed.right);
        opsnap::put_per_kind(&mut e, inner.emitted());
        e.put_u64(inner.recovered_at_switch());
        e.put_opt_u64(inner.switched_after());
        let control = self.control_state();
        e.put_u64(control.monitor_assessments);
        e.put_u64(control.monitor_last_checked);
        e.put_u32(control.assessor_streak);
        e.put_bool(control.switch.is_some());
        if let Some(switch) = control.switch {
            e.put_u64(switch.after_tuples);
            e.put_f64(switch.sigma);
            e.put_u64(switch.recovered);
        }
        e.put_opt_u64(control.switch_latency.map(|d| d.as_nanos() as u64));
        e.put_u64(control.undrained_pre_switch);
        e.put_bool(control.pre_switch_in_flight);
        builder.push_section(kind::CONTROLLER as u32, e.finish());

        builder.push_section(
            kind::PENDING as u32,
            opsnap::encode_pairs(self.inner().pending_pairs()),
        );
        Ok(())
    }

    fn restore_state(&mut self, file: &SnapshotFile) -> Result<()> {
        check_meta(file, "serial", 1, serial_fingerprint(self))?;

        let mut d = Decoder::new(file.section(kind::CONTROLLER as u32)?, "CONTROLLER");
        let consumed = PerSide::new(d.get_u64()?, d.get_u64()?);
        let emitted = opsnap::get_per_kind(&mut d)?;
        let recovered_at_switch = d.get_u64()?;
        let switched_after = d.get_opt_u64()?;
        let monitor_assessments = d.get_u64()?;
        let monitor_last_checked = d.get_u64()?;
        let assessor_streak = d.get_u32()?;
        let switch = if d.get_bool()? {
            Some(SwitchEvent {
                after_tuples: d.get_u64()?,
                sigma: d.get_f64()?,
                recovered: d.get_u64()?,
            })
        } else {
            None
        };
        let switch_latency = d.get_opt_u64()?.map(Duration::from_nanos);
        let undrained_pre_switch = d.get_u64()?;
        let pre_switch_in_flight = d.get_bool()?;
        d.finish()?;

        let pending = opsnap::decode_pairs(file.section(kind::PENDING as u32)?)?;

        let config = self.inner().config().clone();
        let core = if let Some(bytes) = file.try_section(kind::SSH_CORE as u32) {
            let table = opsnap::decode_interner(file.section(kind::INTERNER as u32)?)?;
            RestoredCore::Approximate(opsnap::decode_ssh_core(
                bytes,
                &config,
                SharedInterner::from_table(table),
            )?)
        } else {
            RestoredCore::Exact(opsnap::decode_exact_core(
                file.section(kind::EXACT_CORE as u32)?,
                &config,
            )?)
        };

        self.inner_mut().restore(SwitchRestore {
            core,
            pending,
            consumed,
            emitted,
            recovered_at_switch,
            switched_after,
        })?;
        self.restore_control_state(AdaptiveControlState {
            monitor_assessments,
            monitor_last_checked,
            assessor_streak,
            switch,
            switch_latency,
            undrained_pre_switch,
            pre_switch_in_flight,
        });
        Ok(())
    }
}

/// The serial engine's configuration identity: join declaration plus
/// control-loop settings.
fn serial_fingerprint<I: Operator<Item = SidedRecord>>(engine: &AdaptiveJoin<I>) -> u32 {
    config_fingerprint(&(
        engine.inner().config(),
        engine.monitor().config(),
        engine.assessor().config(),
        engine.policy(),
    ))
}

impl<I: Operator<Item = SidedRecord>> JoinEngine for ParallelJoin<I> {
    fn engine_name(&self) -> &'static str {
        "sharded"
    }

    fn open(&mut self) -> Result<()> {
        Operator::open(self)
    }

    fn next_match(&mut self) -> Result<Option<MatchPair>> {
        Operator::next(self)
    }

    fn close(&mut self) -> Result<()> {
        Operator::close(self)
    }

    fn phase(&self) -> JoinPhase {
        ParallelJoin::phase(self)
    }

    fn switch_event(&self) -> Option<SwitchEvent> {
        ParallelJoin::switch_event(self)
    }

    fn report(&self) -> RunReport {
        let report = ParallelJoin::report(self);
        RunReport {
            engine: self.engine_name(),
            shards: self.shard_count(),
            phase: report.phase,
            consumed: report.consumed,
            emitted: report.emitted,
            switch: report.switch,
            switch_latency: report.switch_latency,
            shard_stats: report.shards,
        }
    }

    fn advance_input(&mut self, available: u64) -> Result<()> {
        ParallelJoin::advance_to(self, available)
    }

    fn buffered_matches(&self) -> usize {
        ParallelJoin::buffered(self)
    }

    fn snapshot_state(&mut self, builder: &mut SnapshotBuilder) -> Result<()> {
        put_meta(
            builder,
            "sharded",
            self.shard_count(),
            config_fingerprint(self.config()),
        );
        self.snapshot_sections(builder)
    }

    fn restore_state(&mut self, file: &SnapshotFile) -> Result<()> {
        check_meta(
            file,
            "sharded",
            self.shard_count(),
            config_fingerprint(self.config()),
        )?;
        self.restore_sections(file)
    }
}
