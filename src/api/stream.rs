//! The streaming result API.

use std::path::Path;

use linkage_core::SwitchEvent;
use linkage_types::snapshot::{kind, Encoder, SnapshotBuilder};
use linkage_types::{LinkageError, MatchPair, Result};

use crate::api::engine::{JoinEngine, RunReport};

/// One event in a pipeline's output stream.
///
/// `#[non_exhaustive]`: future engines may add events (checkpoints,
/// progress heartbeats); consumers must carry a wildcard arm.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub enum MatchEvent {
    /// One emitted match pair.
    Match(MatchPair),
    /// The exact → approximate switch happened; recovered matches follow
    /// in the stream as ordinary [`MatchEvent::Match`] events.
    Switched(SwitchEvent),
    /// The run completed; always the last event of a successful stream.
    Finished(RunReport),
}

/// The event iterator returned by
/// [`Pipeline::run`](crate::api::Pipeline::run).
///
/// Yields `Result<MatchEvent>`: every match pair as it is produced, a
/// [`MatchEvent::Switched`] notification when the engine performs the
/// mid-stream handover, and one final [`MatchEvent::Finished`] carrying
/// the [`RunReport`].  After an `Err` or the `Finished` event the
/// iterator is fused (returns `None`).  The engine is closed before the
/// final event is yielded, so shard statistics are complete.
pub struct MatchStream {
    engine: Box<dyn JoinEngine + Send>,
    // (Debug is implemented manually: the engine box is opaque.)
    /// A pair pulled by the very call that performed the switch, held
    /// back so the `Switched` notification precedes it in the stream.
    stashed: Option<MatchPair>,
    switch_emitted: bool,
    done: bool,
}

impl std::fmt::Debug for MatchStream {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MatchStream")
            .field("engine", &self.engine.engine_name())
            .field("switch_emitted", &self.switch_emitted)
            .field("done", &self.done)
            .finish_non_exhaustive()
    }
}

impl MatchStream {
    pub(crate) fn new(engine: Box<dyn JoinEngine + Send>) -> Self {
        Self {
            engine,
            stashed: None,
            switch_emitted: false,
            done: false,
        }
    }

    /// Rebuild a stream from restored engine + stream state, so a resumed
    /// run continues the event sequence exactly where the snapshot cut it.
    pub(crate) fn resumed(
        engine: Box<dyn JoinEngine + Send>,
        stashed: Option<MatchPair>,
        switch_emitted: bool,
    ) -> Self {
        Self {
            engine,
            stashed,
            switch_emitted,
            done: false,
        }
    }

    /// Write a consistent snapshot of the whole pipeline — engine state
    /// plus this stream's own position — to `path`, in the versioned
    /// container specified by `docs/format.md`.
    ///
    /// The write is atomic (temp file + rename): a crash mid-snapshot
    /// leaves either the previous file or none, never a torn one.  The
    /// stream is untouched and continues normally afterwards; resuming
    /// from the file with [`Pipeline::resume`](crate::api::Pipeline::resume)
    /// yields the exact remaining event sequence, bit for bit.
    ///
    /// Fails with [`LinkageError::Snapshot`] on a finished stream.
    pub fn snapshot(&mut self, path: impl AsRef<Path>) -> Result<()> {
        self.snapshot_builder()?.write_to(path.as_ref())
    }

    /// Capture the same consistent pipeline state as [`snapshot`](Self::snapshot)
    /// but hand back the unserialised [`SnapshotBuilder`], so callers that
    /// need custom durability (extra sections, manifest-committed writes —
    /// the server's eviction path) can append to and persist it themselves.
    pub fn snapshot_builder(&mut self) -> Result<SnapshotBuilder> {
        if self.done {
            return Err(LinkageError::snapshot("cannot snapshot a finished stream"));
        }
        let mut builder = SnapshotBuilder::new();
        self.engine.snapshot_state(&mut builder)?;
        let mut e = Encoder::new();
        e.put_bool(self.switch_emitted);
        e.put_bool(self.stashed.is_some());
        if let Some(pair) = &self.stashed {
            e.put_pair(pair);
        }
        builder.push_section(kind::STREAM as u32, e.finish());
        Ok(builder)
    }

    /// Drain the stream into a materialised [`RunOutcome`], failing on
    /// the first error.
    pub fn into_outcome(self) -> Result<RunOutcome> {
        let mut matches = Vec::new();
        let mut report = None;
        for event in self {
            match event? {
                MatchEvent::Match(pair) => matches.push(pair),
                MatchEvent::Finished(r) => report = Some(r),
                _ => {}
            }
        }
        // The iterator yields `Finished` on every successful drain; this
        // is unreachable unless a future engine breaks that contract.
        let report = report.expect("stream ended without a Finished event");
        Ok(RunOutcome { matches, report })
    }

    /// Pending switch notification, if the engine switched and the event
    /// was not yielded yet.
    fn pending_switch(&mut self) -> Option<SwitchEvent> {
        if self.switch_emitted {
            return None;
        }
        let event = self.engine.switch_event()?;
        self.switch_emitted = true;
        Some(event)
    }

    /// Advance an incrementally fed
    /// ([session](crate::api::PipelineBuilder::session)) pipeline as far
    /// as is safe given that `available` total input tuples exist so far
    /// — typically
    /// [`SessionInput::pushed`](crate::api::SessionInput::pushed) after
    /// a feed.  Produced events stay buffered for
    /// [`next_ready`](Self::next_ready).  A no-op on a finished stream.
    pub fn advance(&mut self, available: u64) -> Result<()> {
        if self.done {
            return Ok(());
        }
        self.engine.advance_input(available)
    }

    /// The next event that is ready *without touching the input*, or
    /// `None` when producing one would require more input — feed and
    /// [`advance`](Self::advance), or finish the session's input and
    /// drain through the ordinary [`Iterator::next`], which is the only
    /// path that can yield [`MatchEvent::Finished`].
    ///
    /// Unlike `Iterator::next`, a `None` here does **not** mean the
    /// stream ended, and the event sequence the two entry points jointly
    /// produce is identical to what `Iterator::next` alone would have
    /// produced: both pop from the same engine buffer, in order.
    pub fn next_ready(&mut self) -> Option<Result<MatchEvent>> {
        if self.done {
            return None;
        }
        if let Some(event) = self.pending_switch() {
            return Some(Ok(MatchEvent::Switched(event)));
        }
        if let Some(pair) = self.stashed.take() {
            return Some(Ok(MatchEvent::Match(pair)));
        }
        if self.engine.buffered_matches() == 0 {
            return None;
        }
        // At least one pair is buffered: this pull pops it without
        // reading the input, so the match arms mirror `Iterator::next`.
        match self.engine.next_match() {
            Ok(Some(pair)) => {
                // Popping the first post-switch pair is what settles the
                // pre-switch accounting and makes the switch visible:
                // hold the pair back so `Switched` goes out first,
                // exactly as in `Iterator::next`.
                if let Some(event) = self.pending_switch() {
                    self.stashed = Some(pair);
                    return Some(Ok(MatchEvent::Switched(event)));
                }
                Some(Ok(MatchEvent::Match(pair)))
            }
            // Unreachable while pairs are buffered; treat it as "not
            // ready" rather than inventing an early finish.
            Ok(None) => None,
            Err(e) => {
                self.done = true;
                let _ = self.engine.close();
                Some(Err(e))
            }
        }
    }
}

impl Iterator for MatchStream {
    type Item = Result<MatchEvent>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        // Surface the switch as soon as the engine records it, before the
        // recovered matches that follow from it.
        if let Some(event) = self.pending_switch() {
            return Some(Ok(MatchEvent::Switched(event)));
        }
        if let Some(pair) = self.stashed.take() {
            return Some(Ok(MatchEvent::Match(pair)));
        }
        match self.engine.next_match() {
            Ok(Some(pair)) => {
                // The pull itself may have performed the switch, in which
                // case this pair is already a recovered (post-switch)
                // match: hold it back so `Switched` goes out first.
                if let Some(event) = self.pending_switch() {
                    self.stashed = Some(pair);
                    return Some(Ok(MatchEvent::Switched(event)));
                }
                Some(Ok(MatchEvent::Match(pair)))
            }
            Ok(None) => {
                // The switch can land on the very last tuple: notify
                // before finishing.
                if let Some(event) = self.pending_switch() {
                    return Some(Ok(MatchEvent::Switched(event)));
                }
                self.done = true;
                match self.engine.close() {
                    Ok(()) => Some(Ok(MatchEvent::Finished(self.engine.report()))),
                    Err(e) => Some(Err(e)),
                }
            }
            Err(e) => {
                self.done = true;
                let _ = self.engine.close();
                Some(Err(e))
            }
        }
    }
}

/// A fully drained run: every match pair plus the final report.
///
/// `#[non_exhaustive]`: future fields (e.g. per-event timings) may be
/// added.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct RunOutcome {
    /// Every emitted match pair, in stream order.
    pub matches: Vec<MatchPair>,
    /// The final unified report.
    pub report: RunReport,
}
