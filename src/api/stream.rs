//! The streaming result API.

use linkage_core::SwitchEvent;
use linkage_types::{MatchPair, Result};

use crate::api::engine::{JoinEngine, RunReport};

/// One event in a pipeline's output stream.
///
/// `#[non_exhaustive]`: future engines may add events (checkpoints,
/// progress heartbeats); consumers must carry a wildcard arm.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub enum MatchEvent {
    /// One emitted match pair.
    Match(MatchPair),
    /// The exact → approximate switch happened; recovered matches follow
    /// in the stream as ordinary [`MatchEvent::Match`] events.
    Switched(SwitchEvent),
    /// The run completed; always the last event of a successful stream.
    Finished(RunReport),
}

/// The event iterator returned by
/// [`Pipeline::run`](crate::api::Pipeline::run).
///
/// Yields `Result<MatchEvent>`: every match pair as it is produced, a
/// [`MatchEvent::Switched`] notification when the engine performs the
/// mid-stream handover, and one final [`MatchEvent::Finished`] carrying
/// the [`RunReport`].  After an `Err` or the `Finished` event the
/// iterator is fused (returns `None`).  The engine is closed before the
/// final event is yielded, so shard statistics are complete.
pub struct MatchStream {
    engine: Box<dyn JoinEngine>,
    /// A pair pulled by the very call that performed the switch, held
    /// back so the `Switched` notification precedes it in the stream.
    stashed: Option<MatchPair>,
    switch_emitted: bool,
    done: bool,
}

impl MatchStream {
    pub(crate) fn new(engine: Box<dyn JoinEngine>) -> Self {
        Self {
            engine,
            stashed: None,
            switch_emitted: false,
            done: false,
        }
    }

    /// Drain the stream into a materialised [`RunOutcome`], failing on
    /// the first error.
    pub fn into_outcome(self) -> Result<RunOutcome> {
        let mut matches = Vec::new();
        let mut report = None;
        for event in self {
            match event? {
                MatchEvent::Match(pair) => matches.push(pair),
                MatchEvent::Finished(r) => report = Some(r),
                _ => {}
            }
        }
        // The iterator yields `Finished` on every successful drain; this
        // is unreachable unless a future engine breaks that contract.
        let report = report.expect("stream ended without a Finished event");
        Ok(RunOutcome { matches, report })
    }

    /// Pending switch notification, if the engine switched and the event
    /// was not yielded yet.
    fn pending_switch(&mut self) -> Option<SwitchEvent> {
        if self.switch_emitted {
            return None;
        }
        let event = self.engine.switch_event()?;
        self.switch_emitted = true;
        Some(event)
    }
}

impl Iterator for MatchStream {
    type Item = Result<MatchEvent>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        // Surface the switch as soon as the engine records it, before the
        // recovered matches that follow from it.
        if let Some(event) = self.pending_switch() {
            return Some(Ok(MatchEvent::Switched(event)));
        }
        if let Some(pair) = self.stashed.take() {
            return Some(Ok(MatchEvent::Match(pair)));
        }
        match self.engine.next_match() {
            Ok(Some(pair)) => {
                // The pull itself may have performed the switch, in which
                // case this pair is already a recovered (post-switch)
                // match: hold it back so `Switched` goes out first.
                if let Some(event) = self.pending_switch() {
                    self.stashed = Some(pair);
                    return Some(Ok(MatchEvent::Switched(event)));
                }
                Some(Ok(MatchEvent::Match(pair)))
            }
            Ok(None) => {
                // The switch can land on the very last tuple: notify
                // before finishing.
                if let Some(event) = self.pending_switch() {
                    return Some(Ok(MatchEvent::Switched(event)));
                }
                self.done = true;
                match self.engine.close() {
                    Ok(()) => Some(Ok(MatchEvent::Finished(self.engine.report()))),
                    Err(e) => Some(Err(e)),
                }
            }
            Err(e) => {
                self.done = true;
                let _ = self.engine.close();
                Some(Err(e))
            }
        }
    }
}

/// A fully drained run: every match pair plus the final report.
///
/// `#[non_exhaustive]`: future fields (e.g. per-event timings) may be
/// added.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct RunOutcome {
    /// Every emitted match pair, in stream order.
    pub matches: Vec<MatchPair>,
    /// The final unified report.
    pub report: RunReport,
}
