//! The unified pipeline facade: declare a linkage job, pick an engine,
//! stream the results.
//!
//! PR 1 and PR 2 grew three disjoint entry points — the serial
//! [`AdaptiveJoin`](crate::core::AdaptiveJoin), the sharded
//! [`ParallelJoin`](crate::exec::ParallelJoin), and per-crate configs
//! with duplicated defaults.  This module is the single, stable surface
//! in front of all of them:
//!
//! * [`Pipeline::builder`] — a fluent builder where you declare **sources**
//!   (in-memory relations, record iterators, or a datagen workload), key
//!   columns, a pluggable **similarity choice** ([`QGramCoefficient`]),
//!   thresholds, a **switch policy**, and an execution mode —
//!   [`serial`](PipelineBuilder::serial) or
//!   [`sharded`](PipelineBuilder::sharded);
//! * [`PipelineConfig`] — the ONE configuration type.  The per-layer
//!   configs (`SwitchJoinConfig`, `ControllerConfig`,
//!   `ParallelJoinConfig`) become thin internals constructed from it;
//! * [`JoinEngine`] — the trait both engines implement, making every
//!   future backend (async, multi-node) a drop-in replacement;
//! * [`MatchStream`] — `run()` returns an iterator of [`MatchEvent`]s:
//!   each [`MatchEvent::Match`], the mid-stream
//!   [`MatchEvent::Switched`] notification, and a final
//!   [`MatchEvent::Finished`] carrying the unified [`RunReport`].
//!
//! # Serial quickstart
//!
//! ```
//! use linkage::api::Pipeline;
//! use linkage::datagen::{generate, DatagenConfig, GeneratedData};
//!
//! let data = generate(&DatagenConfig::mid_stream_dirty(300, 42))?;
//! let outcome = Pipeline::builder()
//!     .left(&data.parents)
//!     .right(&data.children)
//!     .key_column(GeneratedData::KEY_COLUMN)
//!     .serial()
//!     .collect()?;
//!
//! assert!(outcome.report.switch.is_some(), "dirty tail must trigger");
//! assert_eq!(outcome.matches.len() as u64, outcome.report.emitted.total());
//! # Ok::<(), linkage::types::LinkageError>(())
//! ```
//!
//! # Sharded execution and streaming events
//!
//! Switching engines is one builder call — the declaration does not
//! change, and the emitted match-pair set is identical:
//!
//! ```
//! use linkage::api::{MatchEvent, Pipeline};
//! use linkage::datagen::{generate, DatagenConfig, GeneratedData};
//!
//! let data = generate(&DatagenConfig::mid_stream_dirty(200, 7))?;
//! let mut matches = 0u64;
//! for event in Pipeline::builder()
//!     .left(&data.parents)
//!     .right(&data.children)
//!     .key_column(GeneratedData::KEY_COLUMN)
//!     .sharded(2)
//!     .run()?
//! {
//!     match event? {
//!         MatchEvent::Match(_) => matches += 1,
//!         MatchEvent::Switched(event) => assert!(event.after_tuples > 0),
//!         MatchEvent::Finished(report) => assert_eq!(report.emitted.total(), matches),
//!         _ => {}
//!     }
//! }
//! # Ok::<(), linkage::types::LinkageError>(())
//! ```
//!
//! # Checkpoint and resume
//!
//! A running stream can be checkpointed with
//! [`MatchStream::snapshot`] — a versioned, checksummed, atomically
//! written container specified byte-for-byte in `docs/format.md` — and
//! picked up later by a fresh pipeline with the **same declaration** via
//! [`Pipeline::resume`].  The resumed stream emits the bit-identical
//! remaining event sequence, including across the exact → approximate
//! switch:
//!
//! ```
//! use linkage::api::{MatchEvent, Pipeline, PipelineBuilder};
//! use linkage::datagen::{generate, DatagenConfig, GeneratedData};
//!
//! let data = generate(&DatagenConfig::mid_stream_dirty(120, 9))?;
//! let declare = || -> PipelineBuilder {
//!     Pipeline::builder()
//!         .left(&data.parents)
//!         .right(&data.children)
//!         .key_column(GeneratedData::KEY_COLUMN)
//!         .serial()
//! };
//!
//! // Consume a few events, checkpoint, and abandon the run.
//! let mut stream = declare().run()?;
//! let head: Vec<_> = stream.by_ref().take(5).collect::<Result<_, _>>()?;
//! let path = std::env::temp_dir().join("linkage-doctest.snap");
//! stream.snapshot(&path)?;
//! drop(stream); // simulated crash
//!
//! // A brand-new pipeline resumes exactly where the snapshot was cut.
//! let tail = declare().resume(&path)?;
//! let resumed_matches = tail
//!     .filter(|e| matches!(e, Ok(MatchEvent::Match(_))))
//!     .count();
//! let full = declare().collect()?;
//! let head_matches = head
//!     .iter()
//!     .filter(|e| matches!(e, MatchEvent::Match(_)))
//!     .count();
//! assert_eq!(head_matches + resumed_matches, full.matches.len());
//! # std::fs::remove_file(&path).ok();
//! # Ok::<(), linkage::types::LinkageError>(())
//! ```

mod builder;
mod config;
mod engine;
mod session;
mod source;
mod stream;

pub use builder::{Pipeline, PipelineBuilder};
pub use config::{ExecutionMode, PipelineConfig};
pub use engine::{JoinEngine, RunReport};
pub use session::SessionInput;
pub use source::Source;
pub use stream::{MatchEvent, MatchStream, RunOutcome};

// The vocabulary the builder takes and the events carry, re-exported so
// callers can stay on `linkage::api` alone.
pub use linkage_core::{SwitchEvent, SwitchPolicy};
pub use linkage_exec::ShardStats;
pub use linkage_operators::{JoinPhase, PerKind};
pub use linkage_text::{QGramCoefficient, QGramConfig};
pub use linkage_types::{
    defaults, InterleavePolicy, LinkageError, MatchKind, MatchPair, PerSide, Record, RecordId,
    Relation, Result, Schema,
};
