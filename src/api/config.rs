//! The one configuration type behind the pipeline builder.

use linkage_core::{AssessorConfig, ControllerConfig, MonitorConfig, SwitchPolicy};
use linkage_exec::ParallelJoinConfig;
use linkage_operators::SwitchJoinConfig;
use linkage_text::{QGramCoefficient, QGramConfig};
use linkage_types::{defaults, InterleavePolicy, LinkageError, PerSide, Result};

/// Which execution backend runs the pipeline.
///
/// `#[non_exhaustive]`: future backends (async, multi-node) will add
/// variants without a breaking change.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[non_exhaustive]
pub enum ExecutionMode {
    /// The serial adaptive join: one thread, per-tuple control loop.
    #[default]
    Serial,
    /// The partition-parallel executor: worker shards in lock-step
    /// epochs with a global switch decision.
    Sharded {
        /// Number of worker shards (threads).
        shards: usize,
    },
}

impl ExecutionMode {
    /// Shard count of this mode (1 for serial execution).
    pub fn shards(&self) -> usize {
        match self {
            ExecutionMode::Serial => 1,
            ExecutionMode::Sharded { shards } => *shards,
        }
    }
}

/// Everything a linkage pipeline needs to know, in one place.
///
/// This type **subsumes** the per-layer configurations: the operator
/// layer's `SwitchJoinConfig`, the controller's `ControllerConfig`
/// (monitor + assessor + switch policy) and the executor's
/// `ParallelJoinConfig` are all constructed *from* it (see
/// [`Self::switch_join`], [`Self::controller`], [`Self::parallel`]) and
/// never need to be touched by callers.  All defaults are the paper's,
/// defined once in [`defaults`].
///
/// `#[non_exhaustive]`: construct via [`Default`] or the
/// [`Pipeline::builder`](crate::api::Pipeline::builder) fluent API.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct PipelineConfig {
    /// Join key column per side.
    pub keys: PerSide<usize>,
    /// Q-gram extraction (window width, padding, key normalisation).
    pub qgram: QGramConfig,
    /// The pluggable similarity choice scoring approximate candidates.
    pub similarity: QGramCoefficient,
    /// Similarity threshold `θ_sim` of the approximate phase.
    pub theta_sim: f64,
    /// Significance threshold `θ_out` of the binomial outlier test.
    pub theta_out: f64,
    /// Monitor cadence in consumed child tuples.
    pub check_every: u64,
    /// Minimum trials before the outlier test is applied.
    pub min_trials: u64,
    /// Consecutive outlier verdicts required to trigger the switch.
    pub consecutive_alarms: u32,
    /// Declared size of the reference (left) relation — the paper's
    /// `|R|` catalog statistic.  `None` infers it from the left source.
    pub reference_size: Option<u64>,
    /// When the actuator switches exact → approximate.
    pub switch_policy: SwitchPolicy,
    /// Which engine executes the pipeline.
    pub execution: ExecutionMode,
    /// Epoch size of the sharded executor (ignored by the serial engine).
    pub batch_size: usize,
    /// Worker channel depth of the sharded executor (ignored serially).
    pub channel_capacity: usize,
    /// How the two sources are interleaved into one sided stream.
    pub interleave: InterleavePolicy,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        Self {
            keys: PerSide::new(0, 0),
            qgram: QGramConfig::default(),
            similarity: QGramCoefficient::default(),
            theta_sim: defaults::THETA_SIM,
            theta_out: defaults::THETA_OUT,
            check_every: defaults::CHECK_EVERY,
            min_trials: defaults::MIN_TRIALS,
            consecutive_alarms: defaults::CONSECUTIVE_ALARMS,
            reference_size: None,
            switch_policy: SwitchPolicy::default(),
            execution: ExecutionMode::default(),
            batch_size: defaults::EPOCH_BATCH_SIZE,
            channel_capacity: defaults::CHANNEL_CAPACITY,
            interleave: InterleavePolicy::default(),
        }
    }
}

impl PipelineConfig {
    /// Fingerprint this configuration: CRC-32 of its canonical `Debug`
    /// rendering — the same identity scheme the snapshot `META` section
    /// uses.  The `linkage-server` protocol carries it in every `OPEN`
    /// request, so a client and server silently disagreeing about a
    /// config codec is caught as a typed mismatch, never a garbled
    /// session.
    pub fn fingerprint(&self) -> u32 {
        linkage_types::snapshot::crc32(format!("{self:?}").as_bytes())
    }

    /// Check the configuration for internal consistency.
    pub fn validate(&self) -> Result<()> {
        if !(0.0..=1.0).contains(&self.theta_sim) {
            return Err(LinkageError::config(format!(
                "θ_sim must be in [0, 1], got {}",
                self.theta_sim
            )));
        }
        if !(0.0..=1.0).contains(&self.theta_out) {
            return Err(LinkageError::config(format!(
                "θ_out must be in [0, 1], got {}",
                self.theta_out
            )));
        }
        if self.check_every == 0 {
            return Err(LinkageError::config("check_every must be positive"));
        }
        if self.consecutive_alarms == 0 {
            return Err(LinkageError::config("consecutive_alarms must be positive"));
        }
        if self.batch_size == 0 {
            return Err(LinkageError::config("batch_size must be positive"));
        }
        if self.channel_capacity == 0 {
            return Err(LinkageError::config("channel_capacity must be positive"));
        }
        if self.execution.shards() == 0 {
            return Err(LinkageError::config(
                "sharded execution requires at least one shard",
            ));
        }
        if self.reference_size == Some(0) {
            return Err(LinkageError::config("reference_size must be positive"));
        }
        Ok(())
    }

    /// The operator-layer join configuration this pipeline induces — a
    /// thin internal, never hand-built by callers.
    pub fn switch_join(&self) -> SwitchJoinConfig {
        SwitchJoinConfig::new(self.keys)
            .with_qgram(self.qgram.clone())
            .with_coefficient(self.similarity)
            .with_theta(self.theta_sim)
    }

    /// The controller configuration this pipeline induces for the given
    /// (possibly inferred) reference-relation size.
    pub fn controller(&self, reference_size: u64) -> ControllerConfig {
        ControllerConfig::default()
            .with_monitor(
                MonitorConfig::new(reference_size.max(1)).with_check_every(self.check_every),
            )
            .with_assessor(
                AssessorConfig::default()
                    .with_theta_out(self.theta_out)
                    .with_min_trials(self.min_trials)
                    .with_consecutive_alarms(self.consecutive_alarms),
            )
            .with_policy(self.switch_policy)
    }

    /// The sharded-executor configuration this pipeline induces.
    pub fn parallel(&self, shards: usize, reference_size: u64) -> ParallelJoinConfig {
        ParallelJoinConfig::new(shards, self.keys, reference_size.max(1))
            .with_batch_size(self.batch_size)
            .with_channel_capacity(self.channel_capacity)
            .with_join(self.switch_join())
            .with_controller(self.controller(reference_size))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_agree_with_the_constants_module() {
        let config = PipelineConfig::default();
        assert_eq!(config.qgram.q, defaults::Q);
        assert_eq!(config.theta_sim, defaults::THETA_SIM);
        assert_eq!(config.theta_out, defaults::THETA_OUT);
        assert_eq!(config.check_every, defaults::CHECK_EVERY);
        assert_eq!(config.batch_size, defaults::EPOCH_BATCH_SIZE);
        assert!(config.validate().is_ok());
    }

    #[test]
    fn induced_configs_carry_the_declaration() {
        let config = PipelineConfig {
            keys: PerSide::new(1, 2),
            similarity: QGramCoefficient::Dice,
            theta_sim: 0.7,
            theta_out: 0.05,
            check_every: 8,
            switch_policy: SwitchPolicy::ForceAt(10),
            ..PipelineConfig::default()
        };

        let join = config.switch_join();
        assert_eq!(join.keys, PerSide::new(1, 2));
        assert_eq!(join.coefficient, QGramCoefficient::Dice);
        assert_eq!(join.theta_sim, 0.7);

        let controller = config.controller(123);
        assert_eq!(controller.monitor.reference_size, 123);
        assert_eq!(controller.monitor.check_every, 8);
        assert_eq!(controller.assessor.theta_out, 0.05);
        assert_eq!(controller.policy, SwitchPolicy::ForceAt(10));

        let parallel = config.parallel(3, 123);
        assert_eq!(parallel.shards, 3);
        assert_eq!(parallel.join.theta_sim, 0.7);
        assert_eq!(parallel.controller.policy, SwitchPolicy::ForceAt(10));
    }

    #[test]
    fn validation_rejects_illegal_values() {
        let ok = PipelineConfig::default();
        for broken in [
            {
                let mut c = ok.clone();
                c.theta_sim = 1.5;
                c
            },
            {
                let mut c = ok.clone();
                c.check_every = 0;
                c
            },
            {
                let mut c = ok.clone();
                c.execution = ExecutionMode::Sharded { shards: 0 };
                c
            },
            {
                let mut c = ok.clone();
                c.reference_size = Some(0);
                c
            },
        ] {
            assert!(matches!(broken.validate(), Err(LinkageError::Config(_))));
        }
    }
}
