//! # linkage
//!
//! Umbrella crate for the adaptive record-linkage workspace
//! (conf_edbt_LenguMFGM09): a pipelined exact symmetric hash join that is
//! switched mid-stream to an approximate q-gram similarity join when a
//! binomial outlier test flags a completeness problem.
//!
//! This facade re-exports the workspace crates under stable module names so
//! the examples (and downstream users) can write `linkage::core::...`
//! without depending on each sub-crate individually:
//!
//! * [`types`] — records, relations, streams, match pairs;
//! * [`text`] — normalisation, q-grams, similarity functions;
//! * [`stats`] — binomial outlier detection and running statistics;
//! * [`operators`] — scans and the exact/approximate/switchable joins;
//! * [`core`] — the monitor → assessor → actuator control loop;
//! * [`exec`] — the sharded partition-parallel executor;
//! * [`datagen`] — deterministic dirty-dataset generation.
//!
//! See `examples/quickstart.rs` for an end-to-end adaptive join and
//! `examples/parallel_scaling.rs` for the sharded executor.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use linkage_core as core;
pub use linkage_datagen as datagen;
pub use linkage_exec as exec;
pub use linkage_operators as operators;
pub use linkage_stats as stats;
pub use linkage_text as text;
pub use linkage_types as types;
