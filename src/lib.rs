//! # linkage
//!
//! Adaptive record linkage (conf_edbt_LenguMFGM09): a pipelined exact
//! symmetric hash join that is switched **mid-stream** to an approximate
//! q-gram similarity join when a binomial outlier test flags a
//! completeness problem — behind one declarative facade, [`api`], with
//! swappable execution engines.
//!
//! ## The pipeline builder
//!
//! Declare sources, a key column and an execution mode; every other knob
//! defaults to the paper's value ([`types::defaults`]):
//!
//! ```
//! use linkage::api::Pipeline;
//! use linkage::datagen::{generate, DatagenConfig, GeneratedData};
//!
//! // A workload whose child keys turn dirty halfway through the stream.
//! let data = generate(&DatagenConfig::mid_stream_dirty(300, 42))?;
//!
//! let outcome = Pipeline::builder()
//!     .left(&data.parents)
//!     .right(&data.children)
//!     .key_column(GeneratedData::KEY_COLUMN)
//!     .serial()
//!     .collect()?;
//!
//! // The controller detected the dirt and switched mid-stream.
//! let switch = outcome.report.switch.expect("switch must fire");
//! assert!(switch.after_tuples > 0);
//! assert!(outcome.report.emitted.approximate > 0);
//! # Ok::<(), linkage::types::LinkageError>(())
//! ```
//!
//! Moving the same declaration onto the sharded parallel engine is one
//! builder call, and the emitted match-pair set is identical:
//!
//! ```
//! use linkage::api::Pipeline;
//! use linkage::datagen::{generate, DatagenConfig, GeneratedData};
//! use std::collections::HashSet;
//!
//! let data = generate(&DatagenConfig::mid_stream_dirty(150, 7))?;
//! let declare = || {
//!     Pipeline::builder()
//!         .left(&data.parents)
//!         .right(&data.children)
//!         .key_column(GeneratedData::KEY_COLUMN)
//! };
//!
//! let serial = declare().serial().collect()?;
//! let sharded = declare().sharded(2).collect()?;
//!
//! let ids = |o: &linkage::api::RunOutcome| -> HashSet<_> {
//!     o.matches.iter().map(|p| p.id_pair()).collect()
//! };
//! assert_eq!(ids(&serial), ids(&sharded));
//! # Ok::<(), linkage::types::LinkageError>(())
//! ```
//!
//! See the [`api`] module docs for streaming consumption
//! (`run()` → [`api::MatchEvent`] iterator), the pluggable similarity
//! choice and switch policies.
//!
//! ## Layers
//!
//! The facade re-exports the workspace crates under stable module names
//! for callers who need to drop below the builder:
//!
//! * [`types`] — records, relations, streams, match pairs, shared
//!   [`types::defaults`];
//! * [`text`] — normalisation, q-grams, similarity functions;
//! * [`stats`] — binomial outlier detection and running statistics;
//! * [`operators`] — scans and the exact/approximate/switchable joins;
//! * [`core`] — the monitor → assessor → actuator control loop;
//! * [`exec`] — the sharded partition-parallel executor;
//! * [`datagen`] — deterministic dirty-dataset generation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod api;

pub use linkage_core as core;
pub use linkage_datagen as datagen;
pub use linkage_exec as exec;
pub use linkage_operators as operators;
pub use linkage_stats as stats;
pub use linkage_text as text;
pub use linkage_types as types;
