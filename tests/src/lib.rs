//! # linkage-tests
//!
//! Cross-crate integration tests for the adaptive linkage pipeline.  The
//! unit tests inside each crate cover their own layer; the suites here
//! exercise the full stack — generated workloads, pipelined operators,
//! the adaptive controller — against the quadratic oracle joins and the
//! generated ground truth:
//!
//! * `exact_equivalence` — the pipelined `SymmetricHashJoin` emits
//!   exactly the pairs of a nested-loop oracle, on clean, duplicate-key
//!   and dirty workloads;
//! * `adaptive_recovery` — on a mid-stream-dirt workload the controller
//!   switches the join mid-stream, strictly increases the number of
//!   correct matches over exact-only, and never emits a duplicate pair;
//! * `parallel_equivalence` — the sharded executor emits the identical
//!   match-pair set as the nested-loop oracles for every shard count,
//!   including across a mid-stream exact → approximate switch
//!   (property-based over workload, shard count, epoch size and switch
//!   point);
//! * `api_parity` — a `linkage::api` builder declaration produces the
//!   same match-pair set and equivalent `RunReport` counters whether it
//!   executes `.serial()` or `.sharded(n)` (property-based), and every
//!   pluggable similarity coefficient agrees with its nested-loop oracle;
//! * `probe_kernel_equivalence` — the prefix-filtered probe kernel
//!   (dense ids, flat postings, rare-first prefix candidate generation,
//!   length filter, merge-based verification) emits the
//!   **bit-identical** match stream of the retained string-keyed
//!   reference probe *and* the match-pair set of the quadratic oracle,
//!   on randomized workloads, for all four `QGramCoefficient`s,
//!   including across the §3.3 mid-stream switch/handover and across a
//!   mid-stream coefficient change;
//! * `protocol` — the operator lifecycle is enforced across the stack;
//! * `snapshot_resume` — a pipeline snapshotted at **any** event position
//!   and resumed in a fresh process-equivalent pipeline emits the
//!   bit-identical remaining event stream (both engines, every
//!   coefficient, before/at/after the §3.3 switch, property-based over
//!   workload, sharding, epoching and cut position); every truncation and
//!   every single-byte corruption of a snapshot file is rejected with a
//!   typed error, never a panic, and `docs/format.md`'s version constant
//!   is checked against the code;
//! * `server_service` — the `linkage-server` session service: the
//!   eviction/rehydration round trip is bit-identical across the §3.3
//!   switch boundary (cut × poll-depth sweep around a forced switch),
//!   K interleaved sessions over a live server match K solo in-process
//!   runs under budget-forced eviction (property-based), and
//!   `docs/server.md`'s constants and kind/code tables are checked
//!   against the code.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

#[cfg(test)]
mod common {
    use linkage_datagen::GeneratedData;
    use linkage_operators::InterleavedScan;
    use linkage_types::{MatchPair, PerSide, RecordId, VecStream};
    use std::collections::HashSet;

    pub const KEYS: PerSide<usize> = PerSide {
        left: GeneratedData::KEY_COLUMN,
        right: GeneratedData::KEY_COLUMN,
    };

    pub fn scan(data: &GeneratedData) -> InterleavedScan<VecStream, VecStream> {
        InterleavedScan::alternating(
            VecStream::from_relation(&data.parents),
            VecStream::from_relation(&data.children),
        )
    }

    pub fn id_set(pairs: &[MatchPair]) -> HashSet<(RecordId, RecordId)> {
        pairs.iter().map(MatchPair::id_pair).collect()
    }

    /// Assert the stream contains no duplicate `(left, right)` pair.
    pub fn assert_no_duplicates(pairs: &[MatchPair]) {
        let mut seen = HashSet::new();
        for p in pairs {
            assert!(
                seen.insert(p.id_pair()),
                "duplicate pair {:?} in output stream",
                p.id_pair()
            );
        }
    }
}

#[cfg(test)]
mod exact_equivalence {
    use super::common::*;
    use linkage_datagen::{generate, DatagenConfig};
    use linkage_operators::{oracle, Operator, SymmetricHashJoin};
    use linkage_text::NormalizeConfig;

    fn assert_matches_oracle(config: &DatagenConfig) {
        let data = generate(config).expect("datagen failed");
        let mut join = SymmetricHashJoin::new(scan(&data), KEYS);
        let pairs = join.run_to_end().expect("join failed");
        let expected = oracle::nested_loop_exact(
            &data.parents,
            &data.children,
            KEYS,
            &NormalizeConfig::default(),
        )
        .expect("oracle failed");
        assert_eq!(
            id_set(&pairs),
            id_set(&expected),
            "pipelined join disagrees with the nested-loop oracle"
        );
        assert_eq!(pairs.len(), expected.len(), "duplicate or missing pairs");
        assert_no_duplicates(&pairs);
    }

    #[test]
    fn clean_workload() {
        assert_matches_oracle(&DatagenConfig::clean(150, 1));
    }

    #[test]
    fn duplicate_key_workload() {
        assert_matches_oracle(&DatagenConfig::clean(60, 2).with_children_per_parent(3));
    }

    #[test]
    fn dirty_workload() {
        // Both the pipelined join and the oracle miss dirty keys equally.
        assert_matches_oracle(&DatagenConfig::mid_stream_dirty(150, 3));
    }
}

#[cfg(test)]
mod adaptive_recovery {
    use super::common::*;
    use linkage_core::{AdaptiveJoin, ControllerConfig};
    use linkage_datagen::{generate, DatagenConfig};
    use linkage_operators::{
        oracle, JoinPhase, Operator, SwitchJoin, SwitchJoinConfig, SymmetricHashJoin,
    };
    use linkage_text::QGramJaccard;
    use linkage_types::RecordId;
    use std::collections::HashSet;

    const THETA_SIM: f64 = 0.8;

    #[test]
    fn controller_switches_mid_stream_and_recovers_matches() {
        let config = DatagenConfig::mid_stream_dirty(250, 7);
        let data = generate(&config).expect("datagen failed");
        let truth: HashSet<(RecordId, RecordId)> = data.truth.iter().copied().collect();

        // Baseline: exact-only.
        let mut exact_join = SymmetricHashJoin::new(scan(&data), KEYS);
        let exact_pairs = exact_join.run_to_end().expect("exact join failed");
        let exact_correct = id_set(&exact_pairs).intersection(&truth).count();

        // Adaptive: SwitchJoin driven by the monitor/assessor/actuator loop.
        let switch = SwitchJoin::new(
            scan(&data),
            SwitchJoinConfig::new(KEYS).with_theta(THETA_SIM),
        );
        let mut adaptive =
            AdaptiveJoin::new(switch, ControllerConfig::new(data.parents.len() as u64));
        let adaptive_pairs = adaptive.run_to_end().expect("adaptive join failed");

        // The switch really happened mid-stream.
        let event = adaptive.switch_event().expect("controller never switched");
        let total_input = (data.parents.len() + data.children.len()) as u64;
        assert!(event.after_tuples > 0 && event.after_tuples < total_input);
        assert_eq!(adaptive.phase(), JoinPhase::Approximate);

        // Strictly more *correct* matches than exact-only.
        let adaptive_correct = id_set(&adaptive_pairs).intersection(&truth).count();
        assert!(
            adaptive_correct > exact_correct,
            "adaptive {adaptive_correct} vs exact {exact_correct}"
        );

        // Everything the exact join found is still in the adaptive output.
        assert!(id_set(&adaptive_pairs).is_superset(&id_set(&exact_pairs)));

        // No duplicates, in particular none of the pairs the exact phase
        // already emitted reappear after the switch.
        assert_no_duplicates(&adaptive_pairs);

        // Soundness: every emitted pair passes the similarity oracle.
        let allowed = id_set(
            &oracle::nested_loop_similarity(
                &data.parents,
                &data.children,
                KEYS,
                &Default::default(),
                &QGramJaccard::default(),
                THETA_SIM,
            )
            .expect("oracle failed"),
        );
        assert!(id_set(&adaptive_pairs).is_subset(&allowed));
    }

    #[test]
    fn clean_workload_never_switches() {
        let data = generate(&DatagenConfig::clean(200, 9)).expect("datagen failed");
        let switch = SwitchJoin::new(scan(&data), SwitchJoinConfig::new(KEYS));
        let mut adaptive =
            AdaptiveJoin::new(switch, ControllerConfig::new(data.parents.len() as u64));
        let pairs = adaptive.run_to_end().expect("adaptive join failed");
        assert!(adaptive.switch_event().is_none());
        assert_eq!(adaptive.phase(), JoinPhase::Exact);
        assert_eq!(pairs.len(), data.truth.len());
    }

    #[test]
    fn manual_switch_is_equivalent_to_controller_switch_result_set() {
        // Driving SwitchJoin by hand at the same point the controller chose
        // yields the same distinct result set.
        let data = generate(&DatagenConfig::mid_stream_dirty(120, 11)).expect("datagen failed");

        let switch = SwitchJoin::new(scan(&data), SwitchJoinConfig::new(KEYS));
        let mut adaptive =
            AdaptiveJoin::new(switch, ControllerConfig::new(data.parents.len() as u64));
        let controller_pairs = adaptive.run_to_end().expect("adaptive failed");
        let switch_at = adaptive.switch_event().expect("no switch").after_tuples;

        let mut manual = SwitchJoin::new(scan(&data), SwitchJoinConfig::new(KEYS));
        manual.open().expect("open failed");
        for _ in 0..switch_at {
            assert!(manual.advance().expect("advance failed"));
        }
        manual.switch_to_approximate().expect("switch failed");
        let mut manual_pairs = Vec::new();
        while let Some(p) = manual.next().expect("next failed") {
            manual_pairs.push(p);
        }
        manual.close().expect("close failed");

        assert_eq!(id_set(&manual_pairs), id_set(&controller_pairs));
        assert_no_duplicates(&manual_pairs);
    }
}

#[cfg(test)]
mod parallel_equivalence {
    use super::common::*;
    use linkage_datagen::{generate, DatagenConfig, GeneratedData};
    use linkage_exec::{ParallelJoin, ParallelJoinConfig};
    use linkage_operators::{oracle, Operator};
    use linkage_text::QGramJaccard;
    use linkage_types::{MatchPair, RecordId};
    use proptest::prelude::*;
    use std::collections::HashSet;

    const THETA_SIM: f64 = 0.8;

    /// Run the sharded executor, optionally forcing the global switch.
    fn parallel_pairs(
        data: &GeneratedData,
        shards: usize,
        batch: usize,
        force_switch_after: Option<u64>,
    ) -> Vec<MatchPair> {
        let mut config =
            ParallelJoinConfig::new(shards, KEYS, data.parents.len() as u64).with_batch_size(batch);
        if let Some(after) = force_switch_after {
            config = config.with_forced_switch_after(after);
        }
        let mut join = ParallelJoin::new(scan(data), config);
        let pairs = join.run_to_end().expect("parallel join failed");
        if force_switch_after.is_some() {
            assert!(join.switch_event().is_some(), "forced switch must fire");
        }
        pairs
    }

    fn exact_oracle(data: &GeneratedData) -> HashSet<(RecordId, RecordId)> {
        id_set(
            &oracle::nested_loop_exact(&data.parents, &data.children, KEYS, &Default::default())
                .expect("oracle failed"),
        )
    }

    fn similarity_oracle(data: &GeneratedData) -> HashSet<(RecordId, RecordId)> {
        id_set(
            &oracle::nested_loop_similarity(
                &data.parents,
                &data.children,
                KEYS,
                &Default::default(),
                &QGramJaccard::default(),
                THETA_SIM,
            )
            .expect("oracle failed"),
        )
    }

    #[test]
    fn clean_workload_matches_exact_oracle_for_every_shard_count() {
        let data = generate(&DatagenConfig::clean(90, 31)).expect("datagen failed");
        let expected = exact_oracle(&data);
        for shards in 1..=4 {
            let pairs = parallel_pairs(&data, shards, 32, None);
            assert_no_duplicates(&pairs);
            assert_eq!(id_set(&pairs), expected, "{shards} shards");
        }
    }

    #[test]
    fn switched_workload_matches_similarity_oracle_for_every_shard_count() {
        // Once a switch happens — wherever it lands — the final match set
        // is the full similarity-oracle set: pre-switch resident pairs are
        // recovered by the (cross-shard) handover, later pairs are found
        // by broadcast probing.
        let data = generate(&DatagenConfig::mid_stream_dirty(90, 32)).expect("datagen failed");
        let expected = similarity_oracle(&data);
        for shards in 1..=4 {
            let pairs = parallel_pairs(&data, shards, 32, Some(50));
            assert_no_duplicates(&pairs);
            assert_eq!(id_set(&pairs), expected, "{shards} shards");
        }
    }

    proptest! {
        #[test]
        fn shard_count_never_changes_the_match_set(
            parents in 24usize..64,
            seed in 0u64..10_000,
            shards in 2usize..5,
            batch in 8usize..40,
            switch_percent in 0u64..100,
        ) {
            let data = generate(&DatagenConfig::mid_stream_dirty(parents, seed))
                .expect("datagen failed");
            let total = (data.parents.len() + data.children.len()) as u64;
            // A mid-stream switch point anywhere in the stream; the first
            // epoch boundary at or after it performs the global handover.
            let force = 1 + switch_percent * (total - 1) / 100;

            let expected = similarity_oracle(&data);
            let sharded = parallel_pairs(&data, shards, batch, Some(force));
            assert_no_duplicates(&sharded);
            prop_assert_eq!(&id_set(&sharded), &expected);

            // And 1 shard agrees, so N-shard ≡ 1-shard ≡ oracle.
            let single = parallel_pairs(&data, 1, batch, Some(force));
            prop_assert_eq!(&id_set(&single), &expected);
        }

        #[test]
        fn unswitched_exact_phase_is_partition_invariant(
            parents in 24usize..64,
            seed in 0u64..10_000,
            shards in 2usize..5,
            batch in 8usize..40,
        ) {
            let data = generate(&DatagenConfig::clean(parents, seed)).expect("datagen failed");
            let pairs = parallel_pairs(&data, shards, batch, None);
            assert_no_duplicates(&pairs);
            prop_assert_eq!(&id_set(&pairs), &exact_oracle(&data));
        }
    }
}

#[cfg(test)]
mod api_parity {
    use super::common::*;
    use linkage::api::{MatchEvent, Pipeline, PipelineBuilder, QGramCoefficient, RunOutcome};
    use linkage_datagen::{generate, DatagenConfig, GeneratedData};
    use linkage_operators::oracle;
    use proptest::prelude::*;

    fn declare(data: &GeneratedData) -> PipelineBuilder {
        Pipeline::builder()
            .left(&data.parents)
            .right(&data.children)
            .key_column(GeneratedData::KEY_COLUMN)
    }

    /// The two engines must agree on the match-pair set and on the
    /// counters of the unified report.
    fn assert_equivalent(serial: &RunOutcome, sharded: &RunOutcome) {
        assert_no_duplicates(&serial.matches);
        assert_no_duplicates(&sharded.matches);
        assert_eq!(id_set(&serial.matches), id_set(&sharded.matches));
        assert_eq!(serial.report.engine, "serial");
        assert_eq!(sharded.report.engine, "sharded");
        assert_eq!(serial.report.consumed, sharded.report.consumed);
        assert_eq!(serial.report.emitted, sharded.report.emitted);
        assert_eq!(serial.report.phase, sharded.report.phase);
        assert_eq!(
            serial.report.switch.is_some(),
            sharded.report.switch.is_some()
        );
    }

    #[test]
    fn adaptive_serial_and_sharded_pipelines_agree() {
        let data = generate(&DatagenConfig::mid_stream_dirty(150, 41)).expect("datagen failed");
        let serial = declare(&data).serial().collect().expect("serial failed");
        assert!(serial.report.switch.is_some(), "workload must switch");
        for shards in [1, 2, 4] {
            let sharded = declare(&data)
                .sharded(shards)
                .collect()
                .expect("sharded failed");
            assert_eq!(sharded.report.shards, shards);
            assert_eq!(sharded.report.shard_stats.len(), shards);
            assert_equivalent(&serial, &sharded);
        }
    }

    #[test]
    fn event_stream_orders_switch_before_recovered_matches_and_finishes() {
        let data = generate(&DatagenConfig::mid_stream_dirty(120, 43)).expect("datagen failed");
        for (engine, stream) in [
            ("serial", declare(&data).serial().run().expect("run failed")),
            (
                "sharded",
                // A small epoch so the triggering epoch buffers exact
                // pairs alongside the recovered ones.
                declare(&data)
                    .sharded(3)
                    .batch_size(16)
                    .run()
                    .expect("run failed"),
            ),
        ] {
            let mut switched_at: Option<usize> = None;
            let mut recovered = 0u64;
            let mut first_after_switch_checked = false;
            let mut matches = 0usize;
            let mut finished = false;
            for (i, event) in stream.enumerate() {
                assert!(!finished, "{engine}: no events after Finished");
                match event.expect("event failed") {
                    MatchEvent::Match(pair) => {
                        // Both exact phases emit only exact-kind pairs:
                        // an approximate match before `Switched` would be
                        // a recovered pair leaking ahead of its
                        // notification.
                        if switched_at.is_none() {
                            assert!(
                                pair.kind.is_exact(),
                                "{engine}: approximate match at event {i} \
                                 precedes Switched"
                            );
                        } else if !first_after_switch_checked {
                            // …and the recovered pairs (all approximate on
                            // this workload) come right after `Switched`:
                            // an exact-kind pair here would be a displaced
                            // pre-switch pair.
                            first_after_switch_checked = true;
                            if recovered > 0 {
                                assert!(
                                    pair.kind.is_approximate(),
                                    "{engine}: pre-switch pair at event {i} \
                                     follows Switched"
                                );
                            }
                        }
                        matches += 1;
                    }
                    MatchEvent::Switched(event) => {
                        assert!(switched_at.is_none(), "{engine}: at most one switch");
                        assert!(event.after_tuples > 0);
                        recovered = event.recovered;
                        switched_at = Some(i);
                    }
                    MatchEvent::Finished(report) => {
                        assert_eq!(report.emitted.total() as usize, matches);
                        finished = true;
                    }
                    _ => {}
                }
            }
            assert!(finished, "{engine}: stream must end with Finished");
            assert!(
                switched_at.is_some(),
                "{engine}: dirty workload must switch"
            );
            assert!(
                recovered > 0,
                "{engine}: this workload must recover matches"
            );
        }
    }

    #[test]
    fn mixing_datagen_with_explicit_sources_is_a_config_error() {
        let data = generate(&DatagenConfig::clean(20, 45)).expect("datagen failed");
        let err = Pipeline::builder()
            .datagen(DatagenConfig::clean(20, 45))
            .left(&data.parents)
            .right(&data.children)
            .key_column(GeneratedData::KEY_COLUMN)
            .build()
            .unwrap_err();
        assert!(
            matches!(err, linkage_types::LinkageError::Config(ref m) if m.contains("datagen")),
            "unexpected error: {err}"
        );
    }

    #[test]
    fn every_similarity_coefficient_matches_its_oracle_on_both_engines() {
        // One dirty workload, each pluggable coefficient: the kernel
        // (with its per-coefficient pruning bound) must agree with the
        // quadratic oracle using the corresponding StringSimilarity, on
        // the serial and the sharded engine alike.
        let data = generate(&DatagenConfig::mid_stream_dirty(60, 44)).expect("datagen failed");
        for coefficient in QGramCoefficient::ALL {
            let sim = coefficient.with_config(Default::default());
            let expected = id_set(
                &oracle::nested_loop_similarity(
                    &data.parents,
                    &data.children,
                    KEYS,
                    &Default::default(),
                    sim.as_ref(),
                    0.8,
                )
                .expect("oracle failed"),
            );
            for builder in [
                declare(&data).approximate_from_start().serial(),
                declare(&data).approximate_from_start().sharded(3),
            ] {
                let outcome = builder
                    .similarity(coefficient)
                    .collect()
                    .expect("pipeline failed");
                assert_no_duplicates(&outcome.matches);
                assert_eq!(
                    id_set(&outcome.matches),
                    expected,
                    "{} disagrees with its oracle",
                    coefficient.name()
                );
            }
        }
    }

    proptest! {
        #[test]
        fn serial_and_sharded_builder_runs_are_equivalent(
            parents in 24usize..56,
            seed in 0u64..10_000,
            shards in 2usize..5,
            batch in 8usize..40,
            switch_percent in 0u64..100,
        ) {
            let data = generate(&DatagenConfig::mid_stream_dirty(parents, seed))
                .expect("datagen failed");
            let total = (data.parents.len() + data.children.len()) as u64;
            // Pin the switch to a fixed stream position so both engines
            // flip at a comparable point (the sharded engine rounds up to
            // its next epoch boundary; the match-pair set and the kind
            // split are invariant to that rounding).
            let force = 1 + switch_percent * (total - 1) / 100;

            let serial = declare(&data)
                .force_switch_at(force)
                .serial()
                .collect()
                .expect("serial failed");
            let sharded = declare(&data)
                .force_switch_at(force)
                .sharded(shards)
                .batch_size(batch)
                .collect()
                .expect("sharded failed");
            assert_equivalent(&serial, &sharded);
            prop_assert!(serial.report.switch.is_some());
        }
    }
}

#[cfg(test)]
mod probe_kernel_equivalence {
    use super::common::*;
    use linkage_datagen::{generate, DatagenConfig, GeneratedData};
    use linkage_operators::{oracle, ExactJoinCore, PreparedBatch, ReferenceSshCore, SshJoinCore};
    use linkage_text::{NormalizeConfig, QGramCoefficient, QGramConfig};
    use linkage_types::{MatchKind, MatchPair, ShardId, Side, SidedRecord};
    use proptest::prelude::*;
    use std::collections::VecDeque;

    const THETA: f64 = 0.8;

    /// The interleaved tuple feed both kernels consume, in stream order.
    fn feed(data: &GeneratedData) -> Vec<SidedRecord> {
        let mut tuples = Vec::new();
        let (parents, children) = (data.parents.records(), data.children.records());
        let mut i = 0;
        while i < parents.len() || i < children.len() {
            if let Some(p) = parents.get(i) {
                tuples.push(SidedRecord::new(Side::Left, p.clone()));
            }
            if let Some(c) = children.get(i) {
                tuples.push(SidedRecord::new(Side::Right, c.clone()));
            }
            i += 1;
        }
        tuples
    }

    /// The stream view the bit-identical comparison uses: pair identity,
    /// kind **and** the exact similarity bits.
    fn view(
        pairs: &VecDeque<MatchPair>,
    ) -> Vec<(
        (linkage_types::RecordId, linkage_types::RecordId),
        MatchKind,
    )> {
        pairs.iter().map(|p| (p.id_pair(), p.kind)).collect()
    }

    /// Run the interned kernel and the string-keyed reference over the
    /// same feed (optionally switching from an exact phase after
    /// `switch_at` tuples) and require bit-identical output streams;
    /// returns the interned kernel's pairs for the oracle comparison.
    fn run_both(
        tuples: &[SidedRecord],
        coefficient: QGramCoefficient,
        switch_at: Option<usize>,
    ) -> Vec<MatchPair> {
        let (mut fast_out, mut ref_out) = (VecDeque::new(), VecDeque::new());

        let (mut fast, mut reference) = match switch_at {
            None => (
                SshJoinCore::new(KEYS, QGramConfig::default(), THETA).with_coefficient(coefficient),
                ReferenceSshCore::new(KEYS, QGramConfig::default(), THETA)
                    .with_coefficient(coefficient),
            ),
            Some(at) => {
                // Exact phase first: both kernels take over the *same*
                // accumulated hash tables, mirroring the §3.3 handover.
                // The exact phase's own emissions open both streams —
                // the handover suppresses exactly those pairs, so the
                // combined stream is the full join result.
                let mut exact = ExactJoinCore::new(KEYS, NormalizeConfig::default());
                let mut exact_out = VecDeque::new();
                for sided in &tuples[..at] {
                    exact.process(sided.clone(), &mut exact_out).unwrap();
                }
                fast_out.extend(exact_out.iter().cloned());
                ref_out.extend(exact_out.iter().cloned());
                let tables = exact.into_tables();
                let (fast, fast_recovered) = SshJoinCore::new(KEYS, QGramConfig::default(), THETA)
                    .with_coefficient(coefficient)
                    .with_exact_state(tables.clone(), &mut fast_out);
                let (reference, ref_recovered) =
                    ReferenceSshCore::new(KEYS, QGramConfig::default(), THETA)
                        .with_coefficient(coefficient)
                        .with_exact_state(tables, &mut ref_out);
                assert_eq!(
                    fast_recovered, ref_recovered,
                    "handover recovery counts must agree"
                );
                (fast, reference)
            }
        };

        let rest = switch_at.unwrap_or(0);
        for sided in &tuples[rest..] {
            fast.process(sided.clone(), &mut fast_out).unwrap();
            reference.process(sided.clone(), &mut ref_out).unwrap();
        }

        assert_eq!(
            view(&fast_out),
            view(&ref_out),
            "interned kernel and string-keyed reference diverged \
             ({}, switch_at {switch_at:?})",
            coefficient.name()
        );
        assert_eq!(fast.stored(), reference.stored());
        assert_eq!(fast.emitted_exact(), reference.emitted_exact());
        assert_eq!(fast.emitted_approx(), reference.emitted_approx());
        fast_out.into_iter().collect()
    }

    /// Like [`view`], over the collected pair vectors the runners return.
    fn view_vec(
        pairs: &[MatchPair],
    ) -> Vec<(
        (linkage_types::RecordId, linkage_types::RecordId),
        MatchKind,
    )> {
        pairs.iter().map(|p| (p.id_pair(), p.kind)).collect()
    }

    /// Run the interned kernel through the **batched** entry point
    /// (`probe_batch_into`, every tuple homed on one pseudo-shard) over
    /// the same feed, chunked into `batch_size` tuple batches.  With
    /// `switch_at`, an exact phase runs first and the handover happens
    /// at an arbitrary stream position — i.e. mid-batch from the batched
    /// execution's point of view, since `switch_at` need not be a
    /// multiple of `batch_size`.
    fn run_batched(
        tuples: &[SidedRecord],
        coefficient: QGramCoefficient,
        switch_at: Option<usize>,
        batch_size: usize,
    ) -> Vec<MatchPair> {
        let home = ShardId(0);
        let mut out = VecDeque::new();
        let mut core = match switch_at {
            None => {
                SshJoinCore::new(KEYS, QGramConfig::default(), THETA).with_coefficient(coefficient)
            }
            Some(at) => {
                let mut exact = ExactJoinCore::new(KEYS, NormalizeConfig::default());
                for sided in &tuples[..at] {
                    exact.process(sided.clone(), &mut out).unwrap();
                }
                let (core, _) = SshJoinCore::new(KEYS, QGramConfig::default(), THETA)
                    .with_coefficient(coefficient)
                    .with_exact_state(exact.into_tables(), &mut out);
                core
            }
        };
        // An empty batch up front must be a no-op on the stream.
        core.probe_batch_into(&PreparedBatch::default(), Some(home), &mut out)
            .unwrap();
        let rest = switch_at.unwrap_or(0);
        for chunk in tuples[rest..].chunks(batch_size.max(1)) {
            let mut batch = PreparedBatch::with_capacity(chunk.len());
            for sided in chunk {
                let (key, grams) = core.prepare(sided).unwrap();
                batch.push(sided.clone(), key, grams, home);
            }
            core.probe_batch_into(&batch, Some(home), &mut out).unwrap();
        }
        out.into_iter().collect()
    }

    fn oracle_set(
        data: &GeneratedData,
        coefficient: QGramCoefficient,
    ) -> std::collections::HashSet<(linkage_types::RecordId, linkage_types::RecordId)> {
        let sim = coefficient.with_config(QGramConfig::default());
        id_set(
            &oracle::nested_loop_similarity(
                &data.parents,
                &data.children,
                KEYS,
                &NormalizeConfig::default(),
                sim.as_ref(),
                THETA,
            )
            .expect("oracle failed"),
        )
    }

    #[test]
    fn all_coefficients_agree_with_reference_and_oracle() {
        let data = generate(&DatagenConfig::mid_stream_dirty(70, 51)).expect("datagen failed");
        let tuples = feed(&data);
        for coefficient in QGramCoefficient::ALL {
            let pairs = run_both(&tuples, coefficient, None);
            assert_no_duplicates(&pairs);
            assert_eq!(
                id_set(&pairs),
                oracle_set(&data, coefficient),
                "{} kernel disagrees with its oracle",
                coefficient.name()
            );
        }
    }

    #[test]
    fn switch_path_agrees_with_reference_and_oracle() {
        let data = generate(&DatagenConfig::mid_stream_dirty(60, 52)).expect("datagen failed");
        let tuples = feed(&data);
        for switch_at in [0, 1, tuples.len() / 3, tuples.len() / 2, tuples.len()] {
            let pairs = run_both(&tuples, QGramCoefficient::Jaccard, Some(switch_at));
            assert_no_duplicates(&pairs);
            assert_eq!(
                id_set(&pairs),
                oracle_set(&data, QGramCoefficient::Jaccard),
                "switch at {switch_at} changed the match set"
            );
        }
    }

    /// Run both kernels over the feed with a coefficient change applied
    /// (via `set_coefficient`) after `change_at` tuples, requiring
    /// bit-identical streams throughout.  There is no static oracle for
    /// a mid-stream coefficient schedule — each pair is scored under the
    /// coefficient active when its later tuple arrives — so bit-identity
    /// with the independently implemented reference is the check.
    fn run_both_with_coefficient_change(
        tuples: &[SidedRecord],
        first: QGramCoefficient,
        second: QGramCoefficient,
        change_at: usize,
    ) {
        let mut fast =
            SshJoinCore::new(KEYS, QGramConfig::default(), THETA).with_coefficient(first);
        let mut reference =
            ReferenceSshCore::new(KEYS, QGramConfig::default(), THETA).with_coefficient(first);
        let (mut fast_out, mut ref_out) = (VecDeque::new(), VecDeque::new());
        for (i, sided) in tuples.iter().enumerate() {
            if i == change_at {
                fast.set_coefficient(second);
                reference.set_coefficient(second);
            }
            fast.process(sided.clone(), &mut fast_out).unwrap();
            reference.process(sided.clone(), &mut ref_out).unwrap();
        }
        assert_eq!(
            view(&fast_out),
            view(&ref_out),
            "kernels diverged under a {} → {} change at {change_at}",
            first.name(),
            second.name()
        );
        assert_eq!(fast.emitted_exact(), reference.emitted_exact());
        assert_eq!(fast.emitted_approx(), reference.emitted_approx());
    }

    #[test]
    fn mid_stream_coefficient_change_stays_bit_identical() {
        let data = generate(&DatagenConfig::mid_stream_dirty(60, 53)).expect("datagen failed");
        let tuples = feed(&data);
        for (first, second) in [
            (QGramCoefficient::Jaccard, QGramCoefficient::Overlap),
            (QGramCoefficient::Overlap, QGramCoefficient::Jaccard),
            (QGramCoefficient::Dice, QGramCoefficient::Cosine),
        ] {
            for change_at in [0, 1, tuples.len() / 2, tuples.len()] {
                run_both_with_coefficient_change(&tuples, first, second, change_at);
            }
        }
    }

    #[test]
    fn batched_probe_is_bit_identical_to_serial_and_reference() {
        // `run_both` already proves serial == reference bit-identically,
        // so serial == batched closes the three-way agreement.  Batch
        // sizes cover singleton batches, sizes that don't divide the
        // stream, and one batch holding the whole feed.
        let data = generate(&DatagenConfig::mid_stream_dirty(60, 54)).expect("datagen failed");
        let tuples = feed(&data);
        for coefficient in QGramCoefficient::ALL {
            let serial = run_both(&tuples, coefficient, None);
            for batch_size in [1, 3, 8, 64, tuples.len()] {
                let batched = run_batched(&tuples, coefficient, None, batch_size);
                assert_eq!(
                    view_vec(&serial),
                    view_vec(&batched),
                    "batched probe diverged ({}, batch_size {batch_size})",
                    coefficient.name()
                );
            }
        }
    }

    #[test]
    fn batched_switch_handover_is_bit_identical_to_serial() {
        // The §3.3 handover lands at stream positions that are not batch
        // boundaries, so the first approximate batch mixes recovered
        // state with fresh tuples; `switch_at == len` leaves an empty
        // approximate remainder (zero batches after the up-front empty
        // one `run_batched` always issues).
        let data = generate(&DatagenConfig::mid_stream_dirty(48, 55)).expect("datagen failed");
        let tuples = feed(&data);
        for switch_at in [0, 1, tuples.len() / 3, tuples.len() / 2, tuples.len()] {
            let serial = run_both(&tuples, QGramCoefficient::Jaccard, Some(switch_at));
            for batch_size in [1, 5, 64] {
                let batched = run_batched(
                    &tuples,
                    QGramCoefficient::Jaccard,
                    Some(switch_at),
                    batch_size,
                );
                assert_eq!(
                    view_vec(&serial),
                    view_vec(&batched),
                    "batched handover diverged (switch_at {switch_at}, \
                     batch_size {batch_size})"
                );
            }
        }
    }

    proptest! {
        /// Randomized workloads: the interned kernel is bit-identical to
        /// the string-keyed reference and set-identical to the quadratic
        /// oracle, for every coefficient.
        #[test]
        fn interned_kernel_equals_reference_and_oracle(
            parents in 16usize..48,
            seed in 0u64..10_000,
            coefficient_idx in 0usize..4,
        ) {
            let coefficient = QGramCoefficient::ALL[coefficient_idx];
            let data = generate(&DatagenConfig::mid_stream_dirty(parents, seed))
                .expect("datagen failed");
            let tuples = feed(&data);
            let pairs = run_both(&tuples, coefficient, None);
            assert_no_duplicates(&pairs);
            prop_assert_eq!(id_set(&pairs), oracle_set(&data, coefficient));
        }

        /// A mid-stream coefficient change at an arbitrary position
        /// keeps the prefix kernel bit-identical to the reference (the
        /// prefix length is recomputed per probe from the active
        /// coefficient).
        #[test]
        fn coefficient_change_stays_bit_identical(
            parents in 16usize..40,
            seed in 0u64..10_000,
            first_idx in 0usize..4,
            second_idx in 0usize..4,
            change_percent in 0usize..101,
        ) {
            let data = generate(&DatagenConfig::mid_stream_dirty(parents, seed))
                .expect("datagen failed");
            let tuples = feed(&data);
            let change_at = change_percent * tuples.len() / 100;
            run_both_with_coefficient_change(
                &tuples,
                QGramCoefficient::ALL[first_idx],
                QGramCoefficient::ALL[second_idx],
                change_at,
            );
        }

        /// The batched probe entry point stays bit-identical to the
        /// serial kernel (and hence the reference) under random batch
        /// sizes, coefficients and switch positions.
        #[test]
        fn batched_probe_equals_serial(
            parents in 12usize..32,
            seed in 0u64..10_000,
            coefficient_idx in 0usize..4,
            batch_size in 1usize..24,
            switch_percent in 0usize..101,
        ) {
            let coefficient = QGramCoefficient::ALL[coefficient_idx];
            let data = generate(&DatagenConfig::mid_stream_dirty(parents, seed))
                .expect("datagen failed");
            let tuples = feed(&data);
            let switch_at = switch_percent * tuples.len() / 100;
            let serial = run_both(&tuples, coefficient, Some(switch_at));
            let batched = run_batched(&tuples, coefficient, Some(switch_at), batch_size);
            prop_assert_eq!(view_vec(&serial), view_vec(&batched));
        }

        /// The §3.3 mid-stream switch/handover at an arbitrary stream
        /// position preserves all three-way agreement.
        #[test]
        fn switch_handover_equals_reference_and_oracle(
            parents in 16usize..40,
            seed in 0u64..10_000,
            coefficient_idx in 0usize..4,
            switch_percent in 0usize..101,
        ) {
            let coefficient = QGramCoefficient::ALL[coefficient_idx];
            let data = generate(&DatagenConfig::mid_stream_dirty(parents, seed))
                .expect("datagen failed");
            let tuples = feed(&data);
            let switch_at = switch_percent * tuples.len() / 100;
            let pairs = run_both(&tuples, coefficient, Some(switch_at));
            assert_no_duplicates(&pairs);
            prop_assert_eq!(id_set(&pairs), oracle_set(&data, coefficient));
        }
    }
}

#[cfg(test)]
mod protocol {
    use super::common::*;
    use linkage_core::{AdaptiveJoin, ControllerConfig};
    use linkage_datagen::{generate, DatagenConfig};
    use linkage_operators::{Operator, OperatorState, SwitchJoin, SwitchJoinConfig};

    #[test]
    fn lifecycle_is_enforced_through_the_whole_stack() {
        let data = generate(&DatagenConfig::clean(10, 1)).expect("datagen failed");
        let switch = SwitchJoin::new(scan(&data), SwitchJoinConfig::new(KEYS));
        let mut join = AdaptiveJoin::new(switch, ControllerConfig::new(10));

        assert_eq!(join.state(), OperatorState::Created);
        assert!(join.next().is_err(), "next before open must fail");
        join.open().expect("open failed");
        assert!(join.open().is_err(), "double open must fail");
        assert!(join.next().expect("next failed").is_some());
        join.close().expect("close failed");
        assert!(join.next().is_err(), "next after close must fail");
        assert_eq!(join.state(), OperatorState::Closed);
    }

    #[test]
    fn batch_pulls_cross_the_stack() {
        let data = generate(&DatagenConfig::clean(30, 2)).expect("datagen failed");
        let mut join = SwitchJoin::new(scan(&data), SwitchJoinConfig::new(KEYS));
        join.open().expect("open failed");
        let first = join.next_batch(10).expect("batch failed");
        assert_eq!(first.len(), 10);
        let rest = join.next_batch(1000).expect("batch failed");
        assert_eq!(first.len() + rest.len(), 30);
        join.close().expect("close failed");
    }
}

#[cfg(test)]
mod snapshot_resume {
    use linkage::api::{MatchEvent, MatchStream, Pipeline, PipelineBuilder, QGramCoefficient};
    use linkage_datagen::{generate, DatagenConfig, GeneratedData};
    use linkage_types::snapshot::{SnapshotFile, FORMAT_VERSION, MAGIC};
    use linkage_types::LinkageError;
    use proptest::prelude::*;
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn declare(data: &GeneratedData) -> PipelineBuilder {
        Pipeline::builder()
            .left(&data.parents)
            .right(&data.children)
            .key_column(GeneratedData::KEY_COLUMN)
    }

    /// A fresh snapshot path under the system temp dir; unique per call
    /// so parallel tests never collide.
    fn snap_path(tag: &str) -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        let n = N.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!("linkage-snap-{}-{tag}-{n}.bin", std::process::id()))
    }

    /// A bit-faithful fingerprint of one stream event: `Match` keeps the
    /// full pair `Debug` (records, kind, exact similarity), `Switched`
    /// keeps σ as raw bits, `Finished` keeps every deterministic counter
    /// (wall-clock latency and size estimates are excluded by design).
    fn fingerprint(event: MatchEvent) -> String {
        match event {
            MatchEvent::Match(pair) => format!("M {pair:?}"),
            MatchEvent::Switched(s) => format!(
                "S after={} sigma={:016x} recovered={}",
                s.after_tuples,
                s.sigma.to_bits(),
                s.recovered
            ),
            MatchEvent::Finished(r) => format!(
                "F {} shards={} {:?} consumed={:?} emitted={:?} switch={:?}",
                r.engine,
                r.shards,
                r.phase,
                r.consumed,
                r.emitted,
                r.switch
                    .map(|s| (s.after_tuples, s.sigma.to_bits(), s.recovered)),
            ),
            _ => "other".to_owned(),
        }
    }

    fn drain(stream: MatchStream) -> Vec<String> {
        stream
            .map(|event| fingerprint(event.expect("stream event failed")))
            .collect()
    }

    /// The defining invariant of the snapshot subsystem: run the same
    /// declaration twice, once uninterrupted and once snapshotted after
    /// `cut` events + resumed in a brand-new pipeline, and require the
    /// two event sequences to be identical, bit for bit.  Returns the
    /// uninterrupted sequence so callers can probe it (switch position).
    fn assert_resume_bit_identical(
        make: &dyn Fn() -> PipelineBuilder,
        cut: usize,
        tag: &str,
    ) -> Vec<String> {
        let full = drain(make().run().expect("uninterrupted run failed"));
        // `Finished` flips the stream to done, where snapshot (rightly)
        // refuses; cap the cut at the last snapshottable position.
        let cut = cut.min(full.len().saturating_sub(1));

        let mut stream = make().run().expect("interrupted run failed");
        let mut events = Vec::with_capacity(full.len());
        for _ in 0..cut {
            let event = stream.next().expect("stream ended early");
            events.push(fingerprint(event.expect("stream event failed")));
        }
        let path = snap_path(tag);
        stream.snapshot(&path).expect("snapshot failed");
        drop(stream); // the interrupted pipeline dies here

        let resumed = make().resume(&path).expect("resume failed");
        events.extend(drain(resumed));
        std::fs::remove_file(&path).ok();

        assert_eq!(
            events,
            full,
            "resumed stream diverged (cut after {cut} of {} events)",
            full.len()
        );
        full
    }

    #[test]
    fn serial_natural_switch_resumes_before_at_and_after_the_boundary() {
        let data = generate(&DatagenConfig::mid_stream_dirty(120, 71)).expect("datagen failed");
        let make = || declare(&data).serial();
        let full = assert_resume_bit_identical(&make, 0, "serial-open");
        let switch_at = full
            .iter()
            .position(|f| f.starts_with('S'))
            .expect("dirty workload must switch");
        // Just before the switch notification, exactly at it (the engine
        // may already hold post-switch state plus a stashed recovered
        // pair), and just after it.
        for (cut, tag) in [
            (switch_at.saturating_sub(1), "serial-pre"),
            (switch_at, "serial-at"),
            (switch_at + 1, "serial-post"),
            (full.len() - 1, "serial-end"),
        ] {
            assert_resume_bit_identical(&make, cut, tag);
        }
    }

    #[test]
    fn sharded_natural_switch_resumes_before_at_and_after_the_boundary() {
        let data = generate(&DatagenConfig::mid_stream_dirty(120, 72)).expect("datagen failed");
        let make = || declare(&data).sharded(3).batch_size(16);
        let full = assert_resume_bit_identical(&make, 0, "sharded-open");
        let switch_at = full
            .iter()
            .position(|f| f.starts_with('S'))
            .expect("dirty workload must switch");
        for (cut, tag) in [
            (switch_at.saturating_sub(1), "sharded-pre"),
            (switch_at, "sharded-at"),
            (switch_at + 1, "sharded-post"),
            (full.len() - 1, "sharded-end"),
        ] {
            assert_resume_bit_identical(&make, cut, tag);
        }
    }

    #[test]
    fn every_coefficient_resumes_bit_identically_on_both_engines() {
        let data = generate(&DatagenConfig::mid_stream_dirty(60, 73)).expect("datagen failed");
        for coefficient in QGramCoefficient::ALL {
            for (engine, shards) in [("serial", 0), ("sharded", 2)] {
                let make = || {
                    let b = declare(&data)
                        .approximate_from_start()
                        .similarity(coefficient);
                    if shards == 0 {
                        b.serial()
                    } else {
                        b.sharded(shards)
                    }
                };
                let tag = format!("{engine}-{}", coefficient.name());
                let full = assert_resume_bit_identical(&make, 5, &tag);
                assert!(full.len() > 6, "workload too small to cut at 5");
            }
        }
    }

    proptest! {
        /// Random workload, engine, epoching and cut position: the
        /// resumed event stream is always bit-identical.
        #[test]
        fn resume_is_bit_identical_anywhere(
            parents in 24usize..48,
            seed in 0u64..10_000,
            shards in 0usize..4, // 0 = serial
            batch in 8usize..40,
            cut_percent in 0usize..101,
        ) {
            let data = generate(&DatagenConfig::mid_stream_dirty(parents, seed))
                .expect("datagen failed");
            let make = || {
                let b = declare(&data);
                if shards == 0 {
                    b.serial()
                } else {
                    b.sharded(shards).batch_size(batch)
                }
            };
            // Probe the sequence length once, then cut proportionally.
            let total = drain(make().run().expect("probe run failed")).len();
            let cut = cut_percent * total / 100;
            assert_resume_bit_identical(&make, cut, "prop");
        }
    }

    // ---- corruption & misuse -------------------------------------------

    /// Write one serial-engine snapshot and return its raw bytes plus the
    /// workload, for the corruption tests to mutate.
    fn snapshot_bytes(data: &GeneratedData, cut: usize, tag: &str) -> Vec<u8> {
        let mut stream = declare(data).serial().run().expect("run failed");
        for _ in 0..cut {
            stream
                .next()
                .expect("stream ended early")
                .expect("event failed");
        }
        let path = snap_path(tag);
        stream.snapshot(&path).expect("snapshot failed");
        let bytes = std::fs::read(&path).expect("read failed");
        std::fs::remove_file(&path).ok();
        bytes
    }

    #[test]
    fn every_truncation_is_a_typed_error() {
        let data = generate(&DatagenConfig::mid_stream_dirty(40, 74)).expect("datagen failed");
        let bytes = snapshot_bytes(&data, 10, "trunc");
        for len in 0..bytes.len() {
            match SnapshotFile::from_bytes(&bytes[..len]) {
                Err(LinkageError::Snapshot(_)) => {}
                Err(other) => panic!("truncation at {len} gave a non-snapshot error: {other}"),
                Ok(_) => panic!("truncation at {len} of {} parsed", bytes.len()),
            }
        }
        assert!(
            SnapshotFile::from_bytes(&bytes).is_ok(),
            "untouched bytes must parse"
        );
    }

    #[test]
    fn every_single_byte_corruption_fails_resume_without_panicking() {
        let data = generate(&DatagenConfig::mid_stream_dirty(30, 75)).expect("datagen failed");
        let bytes = snapshot_bytes(&data, 8, "flip");
        let path = snap_path("flip-mut");
        for pos in 0..bytes.len() {
            let mut corrupt = bytes.clone();
            corrupt[pos] ^= 0xff;
            std::fs::write(&path, &corrupt).expect("write failed");
            match declare(&data).serial().resume(&path) {
                Err(LinkageError::Snapshot(_)) => {}
                Err(other) => panic!("flip at byte {pos} gave a non-snapshot error: {other}"),
                Ok(_) => panic!("flip at byte {pos} of {} resumed", bytes.len()),
            }
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn future_format_versions_are_rejected_by_name() {
        let data = generate(&DatagenConfig::mid_stream_dirty(30, 76)).expect("datagen failed");
        let mut bytes = snapshot_bytes(&data, 4, "version");
        assert_eq!(&bytes[..8], &MAGIC, "magic leads the file");
        let version = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
        assert_eq!(version, FORMAT_VERSION, "writer stamps the current version");
        bytes[8..12].copy_from_slice(&(FORMAT_VERSION + 1).to_le_bytes());
        match SnapshotFile::from_bytes(&bytes) {
            Err(LinkageError::Snapshot(msg)) => {
                assert!(msg.contains("version"), "unexpected message: {msg}")
            }
            other => panic!("future version accepted: {other:?}"),
        }
    }

    #[test]
    fn resuming_on_the_wrong_engine_shards_or_config_is_rejected() {
        let data = generate(&DatagenConfig::mid_stream_dirty(40, 77)).expect("datagen failed");
        let path = snap_path("mismatch");
        let mut stream = declare(&data).serial().run().expect("run failed");
        for _ in 0..6 {
            stream
                .next()
                .expect("stream ended early")
                .expect("event failed");
        }
        stream.snapshot(&path).expect("snapshot failed");
        drop(stream);

        // Wrong engine.
        let err = declare(&data).sharded(2).resume(&path).unwrap_err();
        assert!(
            matches!(err, LinkageError::Snapshot(ref m) if m.contains("serial")),
            "unexpected error: {err}"
        );
        // Wrong configuration (different similarity threshold).
        let err = declare(&data)
            .theta_sim(0.9)
            .serial()
            .resume(&path)
            .unwrap_err();
        assert!(
            matches!(err, LinkageError::Snapshot(ref m) if m.contains("fingerprint")),
            "unexpected error: {err}"
        );
        // The honest declaration still resumes.
        let resumed = declare(&data)
            .serial()
            .resume(&path)
            .expect("resume failed");
        drain(resumed);
        std::fs::remove_file(&path).ok();

        // Sharded snapshots additionally pin the shard count.
        let mut stream = declare(&data).sharded(3).run().expect("run failed");
        stream.snapshot(&path).expect("snapshot failed");
        drop(stream);
        let err = declare(&data).sharded(2).resume(&path).unwrap_err();
        assert!(
            matches!(err, LinkageError::Snapshot(ref m) if m.contains("shard")),
            "unexpected error: {err}"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn snapshotting_a_finished_stream_is_a_typed_error() {
        let data = generate(&DatagenConfig::clean(20, 78)).expect("datagen failed");
        let mut stream = declare(&data).serial().run().expect("run failed");
        while stream.next().is_some() {}
        let err = stream.snapshot(snap_path("done")).unwrap_err();
        assert!(
            matches!(err, LinkageError::Snapshot(ref m) if m.contains("finished")),
            "unexpected error: {err}"
        );
    }

    #[test]
    fn resuming_a_missing_file_is_an_io_error_not_a_panic() {
        let data = generate(&DatagenConfig::clean(20, 79)).expect("datagen failed");
        let err = declare(&data)
            .serial()
            .resume(snap_path("missing"))
            .unwrap_err();
        assert!(
            matches!(err, LinkageError::Io(_)),
            "unexpected error: {err}"
        );
    }

    /// `docs/format.md` is normative: the version and magic it names must
    /// be the ones this build writes, so the spec cannot silently drift
    /// from the code.
    #[test]
    fn format_spec_version_and_magic_match_the_code() {
        let spec =
            std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/../docs/format.md"))
                .expect("docs/format.md must exist");
        let version: u32 = spec
            .lines()
            .find_map(|l| l.strip_prefix("`FORMAT_VERSION` = "))
            .expect("spec must declare `FORMAT_VERSION` = N")
            .trim()
            .parse()
            .expect("spec version must be an integer");
        assert_eq!(version, FORMAT_VERSION, "docs/format.md is out of date");
        let magic = spec
            .lines()
            .find_map(|l| l.strip_prefix("`MAGIC` = "))
            .expect("spec must declare `MAGIC` = ...")
            .trim();
        assert_eq!(
            magic,
            format!("{:?}", std::str::from_utf8(&MAGIC).unwrap()),
            "docs/format.md magic is out of date"
        );
    }
}

#[cfg(test)]
mod server_service {
    //! The `linkage-server` session service against in-process ground
    //! truth: eviction round trips across the §3.3 switch boundary,
    //! interleaved multi-session isolation, and the `docs/server.md`
    //! spec constants.

    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU64, Ordering};

    use linkage::api::{Pipeline, PipelineConfig, SwitchPolicy};
    use linkage_datagen::{generate, DatagenConfig, GeneratedData};
    use linkage_server::proto::{wire_event, WireEvent};
    use linkage_server::session::record_bytes;
    use linkage_server::{Client, LinkageServer, ServerConfig, SessionManager};
    use linkage_types::{PerSide, Side, SidedRecord};
    use proptest::prelude::*;

    fn scratch_dir(tag: &str) -> PathBuf {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "linkage-tests-server-{tag}-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).expect("scratch dir");
        dir
    }

    fn session_config(reference: u64) -> PipelineConfig {
        let mut config = PipelineConfig::default();
        config.keys = PerSide::new(GeneratedData::KEY_COLUMN, GeneratedData::KEY_COLUMN);
        config.reference_size = Some(reference);
        config
    }

    /// The canonical feed order used throughout: parents, then children
    /// in stream order.
    fn feed_sequence(data: &GeneratedData) -> Vec<SidedRecord> {
        data.parents
            .records()
            .iter()
            .map(|r| SidedRecord::new(Side::Left, r.clone()))
            .chain(
                data.children
                    .records()
                    .iter()
                    .map(|r| SidedRecord::new(Side::Right, r.clone())),
            )
            .collect()
    }

    /// Ground truth: the same config over the same feed order as a
    /// direct in-process session, every event collected.
    fn solo_events(config: &PipelineConfig, sequence: &[SidedRecord]) -> Vec<WireEvent> {
        let (pipeline, input) = Pipeline::builder()
            .config(config.clone())
            .session()
            .expect("session build");
        let stream = pipeline.run().expect("session run");
        for record in sequence {
            input.push_sided(record.clone()).expect("push");
        }
        input.finish();
        stream
            .map(|event| wire_event(&event.expect("event")))
            .collect()
    }

    /// Evicting a session parked right around the §3.3 exact →
    /// approximate switch — one tuple before, at, and one after the
    /// forced switch point, with 0/1/3 events already delivered — and
    /// rehydrating it yields the bit-identical full event sequence.
    #[test]
    fn eviction_round_trip_is_bit_identical_across_the_switch_boundary() {
        let data = generate(&DatagenConfig::mid_stream_dirty(80, 17)).expect("datagen");
        let sequence = feed_sequence(&data);
        let switch_at = (sequence.len() / 2) as u64;
        let mut config = session_config(data.parents.len() as u64);
        config.switch_policy = SwitchPolicy::ForceAt(switch_at);
        let expected = solo_events(&config, &sequence);
        assert!(
            expected.iter().any(|e| matches!(e, WireEvent::Switched(_))),
            "the forced switch must appear in the event stream"
        );

        for cut in [switch_at - 1, switch_at, switch_at + 1] {
            for polled in [0usize, 1, 3] {
                let dir = scratch_dir("switch-evict");
                let mut manager = SessionManager::new(2, u64::MAX, dir).expect("manager");
                let id = manager
                    .open(config.clone(), config.fingerprint())
                    .expect("open");

                // Feed up to the cut, deliver a few events, park.
                let mut session = manager.checkout(id).expect("checkout");
                let added = session
                    .feed(sequence[..cut as usize].to_vec())
                    .expect("feed prefix");
                let (mut got, _) = session.poll(polled).expect("poll prefix");
                manager.checkin(session, added as i64);

                // Evict mid-stream, then transparently rehydrate.
                assert_eq!(manager.evict_all().expect("evict"), 1);
                let mut session = manager.checkout(id).expect("rehydrate");
                session
                    .feed(sequence[cut as usize..].to_vec())
                    .expect("feed rest");
                session.fin();
                loop {
                    let (events, _) = session.poll(64).expect("drain");
                    assert!(!events.is_empty(), "drain stalled before Finished");
                    let done = events.iter().any(|e| matches!(e, WireEvent::Finished(_)));
                    got.extend(events);
                    if done {
                        break;
                    }
                }
                manager.checkin(session, 0);
                assert_eq!(got, expected, "cut={cut} polled={polled}");
            }
        }
    }

    proptest! {
        /// K sessions interleaved over one live server — fed round-robin
        /// in batches, polled between feeds, with a budget tight enough
        /// that idle sessions get evicted and rehydrated mid-run — each
        /// emit the bit-identical event sequence of their solo run.
        #[test]
        fn interleaved_server_sessions_match_solo_runs(
            seeds in proptest::collection::vec(0u64..1000, 2..4usize),
            batch in 8usize..32,
        ) {
            let workloads: Vec<GeneratedData> = seeds
                .iter()
                .map(|&s| {
                    generate(&DatagenConfig::mid_stream_dirty(
                        60 + (s % 3) as usize * 20,
                        s,
                    ))
                    .expect("datagen")
                })
                .collect();
            let configs: Vec<PipelineConfig> = workloads
                .iter()
                .map(|d| session_config(d.parents.len() as u64))
                .collect();
            let sequences: Vec<Vec<SidedRecord>> =
                workloads.iter().map(feed_sequence).collect();
            let expected: Vec<Vec<WireEvent>> = configs
                .iter()
                .zip(&sequences)
                .map(|(c, s)| solo_events(c, s))
                .collect();

            // Budget: the largest single session fits, the set does not
            // — so idle sessions must cycle through disk.
            let session_bytes: Vec<u64> = sequences
                .iter()
                .map(|s| s.iter().map(record_bytes).sum())
                .collect();
            let mut server_config = ServerConfig::default();
            server_config.evict_dir = Some(scratch_dir("prop"));
            server_config.budget_bytes =
                session_bytes.iter().copied().max().unwrap_or(0) + 64;
            server_config.max_sessions = sequences.len();
            let server = LinkageServer::start(server_config).expect("server");
            let mut client = Client::connect(server.addr()).expect("connect");

            let ids: Vec<u64> = configs
                .iter()
                .map(|c| client.open(c).expect("open"))
                .collect();
            let mut got: Vec<Vec<WireEvent>> = vec![Vec::new(); ids.len()];
            let mut offsets = vec![0usize; ids.len()];
            loop {
                let mut progressed = false;
                for (k, &id) in ids.iter().enumerate() {
                    if offsets[k] < sequences[k].len() {
                        let end = (offsets[k] + batch).min(sequences[k].len());
                        client
                            .feed(id, &sequences[k][offsets[k]..end])
                            .expect("feed");
                        offsets[k] = end;
                        got[k].extend(client.poll(id, 16).expect("poll"));
                        progressed = true;
                    }
                }
                if !progressed {
                    break;
                }
            }
            for (k, &id) in ids.iter().enumerate() {
                got[k].extend(client.drain(id, 128).expect("drain"));
                assert_eq!(got[k], expected[k], "session {k} diverged from its solo run");
                client.close(id).expect("close");
            }
            let stats = client.stats().expect("stats");
            prop_assert!(
                stats.evictions >= 1,
                "the budget must have forced at least one eviction (stats: {stats:?})"
            );
            prop_assert!(stats.rehydrations >= 1);
            server.shutdown().expect("shutdown");
        }
    }

    /// `docs/server.md` is normative: its constants and its message-kind
    /// and error-code tables must match the code.
    #[test]
    fn server_spec_constants_match_the_code() {
        use linkage_types::wire::{code, msg, MAX_FRAME_BYTES, WIRE_VERSION};

        let spec =
            std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/../docs/server.md"))
                .expect("docs/server.md must exist");
        let constant = |name: &str| -> u32 {
            spec.lines()
                .find_map(|l| l.strip_prefix(&format!("`{name}` = ")))
                .unwrap_or_else(|| panic!("spec must declare `{name}` = N"))
                .trim()
                .parse()
                .expect("spec constant must be an integer")
        };
        assert_eq!(
            constant("WIRE_VERSION"),
            WIRE_VERSION,
            "docs/server.md is out of date"
        );
        assert_eq!(constant("MAX_FRAME_BYTES"), MAX_FRAME_BYTES);
        assert_eq!(
            constant("MANIFEST_KIND"),
            linkage_server::session::MANIFEST_KIND,
            "the eviction manifest section kind drifted from the spec"
        );
        assert_eq!(
            constant("EVICT_BIND_KIND"),
            linkage_server::session::EVICT_BIND_KIND,
            "the snapshot binding section kind drifted from the spec"
        );

        // Table rows look like "| `OPEN`    | 1    | ..." — the second
        // cell is the byte/code value.
        let tabulated = |name: &str| -> u32 {
            spec.lines()
                .find_map(|l| {
                    let l = l.trim();
                    l.strip_prefix(&format!("| `{name}`"))?
                        .split('|')
                        .nth(1)?
                        .trim()
                        .parse()
                        .ok()
                })
                .unwrap_or_else(|| panic!("spec must tabulate `{name}`"))
        };
        for (name, byte) in [
            ("OPEN", msg::OPEN),
            ("FEED", msg::FEED),
            ("POLL", msg::POLL),
            ("FIN", msg::FIN),
            ("CLOSE", msg::CLOSE),
            ("STATS", msg::STATS),
            ("SHUTDOWN", msg::SHUTDOWN),
            ("OPENED", msg::OPENED),
            ("FED", msg::FED),
            ("EVENTS", msg::EVENTS),
            ("CLOSED", msg::CLOSED),
            ("STATS_REPLY", msg::STATS_REPLY),
            ("BYE", msg::BYE),
            ("ERR", msg::ERR),
        ] {
            assert_eq!(tabulated(name), byte as u32, "message kind `{name}`");
        }
        for (name, value) in [
            ("BAD_REQUEST", code::BAD_REQUEST),
            ("BUSY", code::BUSY),
            ("OVER_BUDGET", code::OVER_BUDGET),
            ("NO_SUCH_SESSION", code::NO_SUCH_SESSION),
            ("SHUTTING_DOWN", code::SHUTTING_DOWN),
            ("INTERNAL", code::INTERNAL),
            ("QUARANTINED", code::QUARANTINED),
        ] {
            assert_eq!(tabulated(name), value, "error code `{name}`");
        }
    }
}
