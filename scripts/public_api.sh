#!/usr/bin/env bash
# Public-API snapshot check: derive the workspace's documented item
# surface from rustdoc's generated file tree (one HTML file per public
# item) and diff it against the checked-in snapshot, so API-surface
# changes are always visible — and reviewed — in the diff.
#
# Usage:
#   scripts/public_api.sh           # check against docs/public_api.txt
#   scripts/public_api.sh --bless   # regenerate the snapshot
set -euo pipefail
cd "$(dirname "$0")/.."

CRATES=(linkage linkage-types linkage-text linkage-stats linkage-operators
        linkage-core linkage-exec linkage-datagen linkage-server
        linkage-experiments)

# A dedicated target dir keeps stale docs out of the surface: wipe only
# the rendered docs so compiled dependency artifacts stay cached.
TARGET_DIR="${CARGO_TARGET_DIR:-target}/public-api"
rm -rf "$TARGET_DIR/doc"
args=()
for crate in "${CRATES[@]}"; do args+=(-p "$crate"); done
CARGO_TARGET_DIR="$TARGET_DIR" cargo doc --no-deps --quiet "${args[@]}"

SNAPSHOT=docs/public_api.txt
CURRENT="$(mktemp)"
trap 'rm -f "$CURRENT"' EXIT
(
  cd "$TARGET_DIR/doc"
  # One line per public item: rustdoc emits `<kind>.<Name>.html` per item.
  # Filtering to the known item kinds keeps incidental pages a future
  # rustdoc might add (redirects, indexes) out of the tracked surface, so
  # only genuine item additions/removals/renames show up in the diff.
  find linkage linkage_* -type f -regextype posix-extended -regex \
    '.*/(struct|enum|trait|fn|constant|static|type|union|macro|attr|derive)\.[^/]+\.html' |
    LC_ALL=C sort
) > "$CURRENT"

if [[ "${1:-}" == "--bless" ]]; then
  mkdir -p "$(dirname "$SNAPSHOT")"
  cp "$CURRENT" "$SNAPSHOT"
  echo "public_api: snapshot blessed ($(wc -l < "$SNAPSHOT") items)"
  exit 0
fi

if [[ ! -f "$SNAPSHOT" ]]; then
  echo "public_api: missing $SNAPSHOT — run scripts/public_api.sh --bless" >&2
  exit 1
fi
if ! diff -u "$SNAPSHOT" "$CURRENT"; then
  echo
  echo "public_api: the documented API surface changed (diff above)." >&2
  echo "If the change is intended, run scripts/public_api.sh --bless" >&2
  exit 1
fi
echo "public_api: surface matches snapshot ($(wc -l < "$SNAPSHOT") items)"
