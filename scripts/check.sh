#!/usr/bin/env bash
# Repository check suite: formatting, lints, and the tier-1 verify command.
# Usage: scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --examples"
cargo build --examples

echo "==> cargo doc (deny warnings)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "==> cargo test --doc"
cargo test --doc -q

echo "==> public API snapshot"
scripts/public_api.sh

echo "==> tier-1: cargo build --release && cargo test -q"
cargo build --release
cargo test -q

echo "All checks passed."
