#!/usr/bin/env bash
# Machine-readable bench pipeline: run the probe-kernel microbench and the
# shard-count scaling sweep, and write the next BENCH_<n>.json trajectory
# file (which embeds probe_ns_per_tuple / insert_ns_per_tuple).
#
# Usage: scripts/bench.sh [--smoke|--full] [--server] [--out PATH]
#                         [--baseline PATH] [--max-regression FRACTION]
#                         [--summary PATH]
#
#   --smoke           seconds-long sweep for CI (default)
#   --full            the order-of-magnitude-larger local sweep
#   --server          also drive the linkage-server mixed-traffic model
#                     and embed + gate sessions_per_s / request_p50_ms /
#                     request_p99_ms (gates skip with a note against
#                     baselines that predate the server subsystem)
#   --out PATH        output file; default: the first unused BENCH_<n>.json
#                     (n starts at 2 — the PR that introduced the pipeline)
#   --baseline PATH   gate headline throughput AND the probe-kernel
#                     microbench metrics (probe_ns_per_tuple,
#                     probe_batch_ns_per_tuple, insert_ns_per_tuple,
#                     skewed_probe_ns_per_tuple) against this report,
#                     failing on a regression beyond --max-regression
#   --max-regression  allowed fractional regression (default 0.20)
#   --min-speedup     required 4-shard/1-shard throughput ratio (skipped
#                     automatically on hosts with fewer than 4 cores)
#   --summary PATH    append a Markdown candidate-funnel delta table
#                     (current vs baseline) to PATH — CI passes
#                     $GITHUB_STEP_SUMMARY
#
# The sweep always measures two probe-kernel points: the uniform smoke
# workload and the Zipf-skewed one (--skewed on the standalone
# bench_probe), both embedded in the written BENCH_<n>.json.
set -euo pipefail
cd "$(dirname "$0")/.."

MODE="--smoke"
OUT=""
EXTRA=()
while [[ $# -gt 0 ]]; do
  case "$1" in
    --smoke|--full) MODE="$1"; shift ;;
    --server) EXTRA+=("$1"); shift ;;
    --out) OUT="$2"; shift 2 ;;
    --baseline|--max-regression|--min-speedup|--summary) EXTRA+=("$1" "$2"); shift 2 ;;
    *) echo "bench.sh: unknown argument: $1" >&2; exit 2 ;;
  esac
done

if [[ -z "$OUT" ]]; then
  n=2
  while [[ -e "BENCH_${n}.json" ]]; do n=$((n + 1)); done
  OUT="BENCH_${n}.json"
fi

SHA="$(git rev-parse HEAD 2>/dev/null || echo unknown)"

# bench_probe is built alongside the sweep for standalone probe-kernel
# iteration (`target/release/bench_probe --smoke|--full [--out PATH]`);
# bench_scaling runs the same measurement itself and embeds it into the
# trajectory document as probe_ns_per_tuple / insert_ns_per_tuple, so the
# pipeline does not run it twice.  Both are built with the `simd`
# feature: the trajectory records the chunked block-verify kernel — the
# configuration the perf numbers in docs/perf.md describe.  `fault` is
# enabled too so a `--server` run also measures the faulty-mode point
# (faulty_request_p99_ms: RetryClient traffic under a 1% injected
# connection drop); failpoints stay disarmed everywhere else, so the
# healthy-path numbers are unaffected.
echo "==> cargo build --release -p linkage-experiments --features simd,fault --bin bench_scaling --bin bench_probe"
cargo build --release -p linkage-experiments --features simd,fault --bin bench_scaling --bin bench_probe

echo "==> bench_scaling ${MODE} -> ${OUT} (sha ${SHA})"
target/release/bench_scaling "${MODE}" --out "${OUT}" --sha "${SHA}" ${EXTRA[@]+"${EXTRA[@]}"}

echo "Wrote ${OUT}."
