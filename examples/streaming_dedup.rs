//! Near-duplicate detection: the approximate similarity join applied from
//! the first tuple, reporting record pairs whose keys are similar but not
//! byte-identical — all through the `linkage::api` builder.
//!
//! Run with: `cargo run --release --example streaming_dedup`

use linkage::api::{MatchEvent, Pipeline};
use linkage::datagen::{generate, DatagenConfig, GeneratedData};

fn main() {
    // A relation with injected near-duplicates: the dirty children are
    // 1-edit variants of parent keys, so parents ⋈ children under a
    // similarity threshold is exactly a near-duplicate report.
    let data = generate(
        &DatagenConfig::mid_stream_dirty(300, 42)
            .with_clean_prefix(0.0)
            .with_dirty_fraction(0.3),
    )
    .expect("datagen failed");

    let stream = Pipeline::builder()
        .left(&data.parents)
        .right(&data.children)
        .key_column(GeneratedData::KEY_COLUMN)
        .approximate_from_start()
        .run()
        .expect("pipeline failed");

    let mut near_duplicates = 0usize;
    let mut exact_duplicates = 0usize;
    for event in stream {
        let pair = match event.expect("join failed") {
            MatchEvent::Match(pair) => pair,
            _ => continue,
        };
        if pair.kind.is_exact() {
            exact_duplicates += 1;
        } else {
            near_duplicates += 1;
            if near_duplicates <= 5 {
                println!(
                    "near-duplicate (sim {:.3}):\n    {}\n    {}",
                    pair.kind.similarity(),
                    pair.left.key_str(GeneratedData::KEY_COLUMN).expect("key"),
                    pair.right.key_str(GeneratedData::KEY_COLUMN).expect("key"),
                );
            }
        }
    }
    println!("\n{exact_duplicates} exact duplicates, {near_duplicates} near-duplicates found");
}
