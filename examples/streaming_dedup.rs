//! Near-duplicate detection inside a single stream: the SSH join applied
//! as a self-join, reporting record pairs whose keys are similar but not
//! byte-identical.
//!
//! Run with: `cargo run --release --example streaming_dedup`

use linkage::datagen::{generate, DatagenConfig};
use linkage::operators::{InterleavedScan, Operator, SshJoin};
use linkage::text::QGramConfig;
use linkage::types::{InterleavePolicy, PerSide, VecStream};

fn main() {
    // A relation with injected near-duplicates: the dirty children are
    // 1-edit variants of parent keys, so parents ⋈ children under a
    // similarity threshold is exactly a near-duplicate report.
    let data = generate(&DatagenConfig {
        parents: 300,
        clean_prefix: 0.0,
        dirty_fraction: 0.3,
        ..DatagenConfig::default()
    })
    .expect("datagen failed");

    let scan = InterleavedScan::new(
        VecStream::from_relation(&data.parents),
        VecStream::from_relation(&data.children),
        InterleavePolicy::Alternate,
    );
    let mut join = SshJoin::new(scan, PerSide::new(1, 1), QGramConfig::default(), 0.8);

    let mut near_duplicates = 0usize;
    let mut exact_duplicates = 0usize;
    join.open().expect("open failed");
    while let Some(pair) = join.next().expect("join failed") {
        if pair.kind.is_exact() {
            exact_duplicates += 1;
        } else {
            near_duplicates += 1;
            if near_duplicates <= 5 {
                println!(
                    "near-duplicate (sim {:.3}):\n    {}\n    {}",
                    pair.kind.similarity(),
                    pair.left.key_str(1).expect("key"),
                    pair.right.key_str(1).expect("key"),
                );
            }
        }
    }
    join.close().expect("close failed");
    println!("\n{exact_duplicates} exact duplicates, {near_duplicates} near-duplicates found");
}
