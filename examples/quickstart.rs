//! End-to-end demo of the adaptive linkage pipeline.
//!
//! Generates a parent/child dataset whose child keys turn dirty halfway
//! through the stream, runs the exact-only baseline and the adaptive join,
//! and prints exact-vs-approximate match counts side by side.
//!
//! Run with: `cargo run --release --example quickstart`

use linkage::core::{AdaptiveJoin, ControllerConfig};
use linkage::datagen::{generate, DatagenConfig, GeneratedData};
use linkage::operators::{
    InterleavedScan, Operator, SwitchJoin, SwitchJoinConfig, SymmetricHashJoin,
};
use linkage::types::{PerSide, RecordId, VecStream};
use std::collections::HashSet;

fn main() {
    // A dirty two-relation dataset: 800 parents, one child each; child keys
    // are clean for the first half of the stream, then every key suffers
    // one character edit.
    let data = generate(&DatagenConfig::mid_stream_dirty(800, 42)).expect("datagen failed");
    let truth: HashSet<(RecordId, RecordId)> = data.truth.iter().copied().collect();
    let keys = PerSide::new(GeneratedData::KEY_COLUMN, GeneratedData::KEY_COLUMN);
    let scan = || {
        InterleavedScan::alternating(
            VecStream::from_relation(&data.parents),
            VecStream::from_relation(&data.children),
        )
    };
    println!(
        "dataset: {} parents, {} children ({} dirty keys in the tail)\n",
        data.parents.len(),
        data.children.len(),
        data.dirty_children
    );

    // Baseline: exact symmetric hash join only.
    let mut exact = SymmetricHashJoin::new(scan(), keys);
    let exact_pairs = exact.run_to_end().expect("exact join failed");
    let exact_correct = exact_pairs
        .iter()
        .filter(|p| truth.contains(&p.id_pair()))
        .count();
    println!(
        "exact-only : {:>4} pairs ({} correct) — misses every dirty key",
        exact_pairs.len(),
        exact_correct
    );

    // The adaptive pipeline: exact join monitored by the binomial outlier
    // test, switched to the approximate SSH join when dirt is detected.
    let join = SwitchJoin::new(scan(), SwitchJoinConfig::new(keys));
    let mut adaptive = AdaptiveJoin::new(join, ControllerConfig::new(data.parents.len() as u64));
    let pairs = adaptive.run_to_end().expect("adaptive join failed");
    let report = adaptive.report();
    let correct = pairs
        .iter()
        .filter(|p| truth.contains(&p.id_pair()))
        .count();

    println!(
        "adaptive   : {:>4} pairs ({} correct) — {} exact + {} approximate",
        pairs.len(),
        correct,
        report.emitted.exact,
        report.emitted.approximate
    );
    match report.switch {
        Some(event) => println!(
            "\nswitched after {} input tuples (σ = {:.2e}), recovering {} matches from resident state",
            event.after_tuples, event.sigma, event.recovered
        ),
        None => println!("\nno switch happened — data was clean"),
    }
    println!(
        "recall: exact-only {:.3} → adaptive {:.3}",
        exact_correct as f64 / truth.len() as f64,
        correct as f64 / truth.len() as f64
    );
}
