//! End-to-end demo of the adaptive linkage pipeline via `linkage::api`.
//!
//! Generates a parent/child dataset whose child keys turn dirty halfway
//! through the stream, runs the exact-only baseline and the adaptive
//! pipeline through the same builder, and prints exact-vs-approximate
//! match counts side by side.
//!
//! Run with: `cargo run --release --example quickstart`

use linkage::api::{Pipeline, PipelineBuilder, RunOutcome};
use linkage::datagen::{generate, DatagenConfig, GeneratedData};
use linkage::types::RecordId;
use std::collections::HashSet;

fn main() {
    // A dirty two-relation dataset: 800 parents, one child each; child keys
    // are clean for the first half of the stream, then every key suffers
    // one character edit.
    let data = generate(&DatagenConfig::mid_stream_dirty(800, 42)).expect("datagen failed");
    let truth: HashSet<(RecordId, RecordId)> = data.truth.iter().copied().collect();
    println!(
        "dataset: {} parents, {} children ({} dirty keys in the tail)\n",
        data.parents.len(),
        data.children.len(),
        data.dirty_children
    );

    // One declaration; the baseline and the adaptive run differ only in
    // their switch policy.
    let declare = || -> PipelineBuilder {
        Pipeline::builder()
            .left(&data.parents)
            .right(&data.children)
            .key_column(GeneratedData::KEY_COLUMN)
            .serial()
    };
    let correct = |outcome: &RunOutcome| {
        outcome
            .matches
            .iter()
            .filter(|p| truth.contains(&p.id_pair()))
            .count()
    };

    // Baseline: the exact join only, never switching.
    let exact = declare().never_switch().collect().expect("exact failed");
    let exact_correct = correct(&exact);
    println!(
        "exact-only : {:>4} pairs ({} correct) — misses every dirty key",
        exact.matches.len(),
        exact_correct
    );

    // The adaptive pipeline: exact join monitored by the binomial outlier
    // test, switched to the approximate SSH join when dirt is detected.
    let adaptive = declare().collect().expect("adaptive failed");
    let adaptive_correct = correct(&adaptive);
    println!(
        "adaptive   : {:>4} pairs ({} correct) — {} exact + {} approximate",
        adaptive.matches.len(),
        adaptive_correct,
        adaptive.report.emitted.exact,
        adaptive.report.emitted.approximate
    );

    match adaptive.report.switch {
        Some(event) => println!(
            "\nswitched after {} input tuples (σ = {:.2e}), recovering {} matches from resident state",
            event.after_tuples, event.sigma, event.recovered
        ),
        None => println!("\nno switch happened — data was clean"),
    }
    println!(
        "recall: exact-only {:.3} → adaptive {:.3}",
        exact_correct as f64 / truth.len() as f64,
        adaptive_correct as f64 / truth.len() as f64
    );
}
