//! Shard-count scaling demo of the parallel adaptive pipeline.
//!
//! Runs the same mid-stream-dirt workload through the `linkage::api`
//! builder at 1, 2 and 4 shards and prints throughput, the global switch
//! point and the per-shard resident-state total.  On a multi-core
//! machine the post-switch (approximate) phase dominates and scales with
//! the shard count; on a single core the run demonstrates result
//! invariance only.
//!
//! Run with: `cargo run --release --example parallel_scaling`

use std::collections::HashSet;
use std::time::Instant;

use linkage::api::Pipeline;
use linkage::datagen::{generate, DatagenConfig, GeneratedData};
use linkage::types::RecordId;

fn main() {
    let data = generate(&DatagenConfig::mid_stream_dirty(2000, 42)).expect("datagen failed");
    println!(
        "dataset: {} parents, {} children ({} dirty keys); cores available: {}\n",
        data.parents.len(),
        data.children.len(),
        data.dirty_children,
        std::thread::available_parallelism().map_or(1, usize::from)
    );
    println!(
        "{:>6} {:>10} {:>12} {:>8} {:>9} {:>14}",
        "shards", "pairs", "tuples/s", "switch", "recov.", "state bytes"
    );

    let mut reference: Option<HashSet<(RecordId, RecordId)>> = None;
    for shards in [1, 2, 4] {
        // Build first: the timer measures the join, not source cloning or
        // worker spawning (matching the experiments harness).
        let pipeline = Pipeline::builder()
            .left(&data.parents)
            .right(&data.children)
            .key_column(GeneratedData::KEY_COLUMN)
            .sharded(shards)
            .batch_size(256)
            .build()
            .expect("invalid pipeline");
        let start = Instant::now();
        let outcome = pipeline.collect().expect("parallel pipeline failed");
        let elapsed = start.elapsed();
        let report = &outcome.report;

        let ids: HashSet<(RecordId, RecordId)> =
            outcome.matches.iter().map(|p| p.id_pair()).collect();
        match &reference {
            None => reference = Some(ids),
            Some(expected) => assert_eq!(
                expected, &ids,
                "shard count must not change the match-pair set"
            ),
        }

        println!(
            "{:>6} {:>10} {:>12.0} {:>8} {:>9} {:>14}",
            shards,
            outcome.matches.len(),
            report.total_consumed() as f64 / elapsed.as_secs_f64(),
            report
                .switch
                .map(|e| e.after_tuples.to_string())
                .unwrap_or_else(|| "-".into()),
            report.switch.map(|e| e.recovered).unwrap_or(0),
            report.state_bytes()
        );
    }
    println!("\nidentical match-pair set at every shard count ✓");
}
