//! Shard-count scaling demo of the parallel adaptive join.
//!
//! Runs the same mid-stream-dirt workload through the sharded executor at
//! 1, 2 and 4 shards and prints throughput, the global switch point and
//! the per-shard resident-state breakdown.  On a multi-core machine the
//! post-switch (approximate) phase dominates and scales with the shard
//! count; on a single core the run demonstrates result invariance only.
//!
//! Run with: `cargo run --release --example parallel_scaling`

use std::collections::HashSet;
use std::time::Instant;

use linkage::datagen::{generate, DatagenConfig, GeneratedData};
use linkage::exec::{ParallelJoin, ParallelJoinConfig};
use linkage::operators::{InterleavedScan, Operator};
use linkage::types::{PerSide, RecordId, VecStream};

fn main() {
    let data = generate(&DatagenConfig::mid_stream_dirty(2000, 42)).expect("datagen failed");
    let keys = PerSide::new(GeneratedData::KEY_COLUMN, GeneratedData::KEY_COLUMN);
    println!(
        "dataset: {} parents, {} children ({} dirty keys); cores available: {}\n",
        data.parents.len(),
        data.children.len(),
        data.dirty_children,
        std::thread::available_parallelism().map_or(1, usize::from)
    );
    println!(
        "{:>6} {:>10} {:>12} {:>8} {:>9} {:>14}",
        "shards", "pairs", "tuples/s", "switch", "recov.", "state bytes"
    );

    let mut reference: Option<HashSet<(RecordId, RecordId)>> = None;
    for shards in [1, 2, 4] {
        let scan = InterleavedScan::alternating(
            VecStream::from_relation(&data.parents),
            VecStream::from_relation(&data.children),
        );
        let config =
            ParallelJoinConfig::new(shards, keys, data.parents.len() as u64).with_batch_size(256);
        let mut join = ParallelJoin::new(scan, config);
        let start = Instant::now();
        let pairs = join.run_to_end().expect("parallel join failed");
        let elapsed = start.elapsed();
        let report = join.report();

        let ids: HashSet<(RecordId, RecordId)> = pairs.iter().map(|p| p.id_pair()).collect();
        match &reference {
            None => reference = Some(ids),
            Some(expected) => assert_eq!(
                expected, &ids,
                "shard count must not change the match-pair set"
            ),
        }

        let state: usize = report
            .shards
            .iter()
            .map(|s| s.state_bytes.left + s.state_bytes.right)
            .sum();
        println!(
            "{:>6} {:>10} {:>12.0} {:>8} {:>9} {:>14}",
            shards,
            pairs.len(),
            join.total_consumed() as f64 / elapsed.as_secs_f64(),
            report
                .switch
                .map(|e| e.after_tuples.to_string())
                .unwrap_or_else(|| "-".into()),
            report.switch.map(|e| e.recovered).unwrap_or(0),
            state
        );
    }
    println!("\nidentical match-pair set at every shard count ✓");
}
