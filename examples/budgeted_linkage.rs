//! Choosing the similarity threshold under a quality budget: sweep θ_sim
//! and report the recall/precision trade-off on a dirty workload.
//!
//! Run with: `cargo run --release --example budgeted_linkage`

use linkage::datagen::{generate, DatagenConfig, GeneratedData};
use linkage::operators::{InterleavedScan, Operator, SshJoin};
use linkage::text::QGramConfig;
use linkage::types::{PerSide, RecordId, VecStream};
use std::collections::HashSet;

fn main() {
    let data = generate(&DatagenConfig::mid_stream_dirty(400, 42)).expect("datagen failed");
    let truth: HashSet<(RecordId, RecordId)> = data.truth.iter().copied().collect();
    let keys = PerSide::new(GeneratedData::KEY_COLUMN, GeneratedData::KEY_COLUMN);

    println!(
        "θ_sim sweep on {} true matches ({} dirty):",
        truth.len(),
        data.dirty_children
    );
    println!(
        "{:>6} {:>7} {:>8} {:>10}",
        "θ_sim", "pairs", "recall", "precision"
    );
    for theta in [0.95, 0.9, 0.85, 0.8, 0.75, 0.7, 0.6] {
        let scan = InterleavedScan::alternating(
            VecStream::from_relation(&data.parents),
            VecStream::from_relation(&data.children),
        );
        let mut join = SshJoin::new(scan, keys, QGramConfig::default(), theta);
        let pairs = join.run_to_end().expect("join failed");
        let correct = pairs
            .iter()
            .filter(|p| truth.contains(&p.id_pair()))
            .count();
        let recall = correct as f64 / truth.len() as f64;
        let precision = if pairs.is_empty() {
            1.0
        } else {
            correct as f64 / pairs.len() as f64
        };
        println!(
            "{theta:>6.2} {:>7} {recall:>8.3} {precision:>10.3}",
            pairs.len()
        );
    }
    println!("\nlower thresholds buy recall with probe cost (and, eventually, precision).");
}
