//! Choosing the similarity threshold under a quality budget: sweep θ_sim
//! through the `linkage::api` builder and report the recall/precision
//! trade-off on a dirty workload.
//!
//! Run with: `cargo run --release --example budgeted_linkage`

use linkage::api::Pipeline;
use linkage::datagen::{generate, DatagenConfig, GeneratedData};
use linkage::types::RecordId;
use std::collections::HashSet;

fn main() {
    let data = generate(&DatagenConfig::mid_stream_dirty(400, 42)).expect("datagen failed");
    let truth: HashSet<(RecordId, RecordId)> = data.truth.iter().copied().collect();

    println!(
        "θ_sim sweep on {} true matches ({} dirty):",
        truth.len(),
        data.dirty_children
    );
    println!(
        "{:>6} {:>7} {:>8} {:>10}",
        "θ_sim", "pairs", "recall", "precision"
    );
    for theta in [0.95, 0.9, 0.85, 0.8, 0.75, 0.7, 0.6] {
        let outcome = Pipeline::builder()
            .left(&data.parents)
            .right(&data.children)
            .key_column(GeneratedData::KEY_COLUMN)
            .approximate_from_start()
            .theta_sim(theta)
            .collect()
            .expect("pipeline failed");
        let correct = outcome
            .matches
            .iter()
            .filter(|p| truth.contains(&p.id_pair()))
            .count();
        let recall = correct as f64 / truth.len() as f64;
        let precision = if outcome.matches.is_empty() {
            1.0
        } else {
            correct as f64 / outcome.matches.len() as f64
        };
        println!(
            "{theta:>6.2} {:>7} {recall:>8.3} {precision:>10.3}",
            outcome.matches.len()
        );
    }
    println!("\nlower thresholds buy recall with probe cost (and, eventually, precision).");
}
