//! The linkage **service** end to end in one process: start a
//! `linkage-server`, open two independent sessions over its TCP line
//! protocol, feed them incrementally, drain their match streams
//! (including the mid-stream switch), print the server's `STATS`, and
//! shut down gracefully.
//!
//! Run with: `cargo run --release --example server_client`

use linkage::api::PipelineConfig;
use linkage::datagen::{generate, DatagenConfig, GeneratedData};
use linkage::types::{PerSide, Result, Side, SidedRecord};
use linkage_server::proto::WireEvent;
use linkage_server::{Client, LinkageServer, ServerConfig};

fn main() -> Result<()> {
    // A server on an ephemeral port.  A real deployment would pin the
    // address, enable `handle_sigterm`, and point `evict_dir` somewhere
    // stable so sessions survive restarts.
    let mut server_config = ServerConfig::default();
    server_config.handle_sigterm = true;
    let server = LinkageServer::start(server_config)?;
    println!("server listening on {}", server.addr());

    let mut client = Client::connect(server.addr())?;

    // Two sessions with different workloads, interleaved over one
    // connection.  Each ships its pipeline config at OPEN.
    let mut sessions = Vec::new();
    for seed in [7u64, 23] {
        let data = generate(&DatagenConfig::mid_stream_dirty(200, seed))?;
        let mut config = PipelineConfig::default();
        config.keys = PerSide::new(GeneratedData::KEY_COLUMN, GeneratedData::KEY_COLUMN);
        config.reference_size = Some(data.parents.len() as u64);
        let id = client.open(&config)?;
        println!("opened session {id} (seed {seed})");
        sessions.push((id, data));
    }

    // Feed both sessions in alternating batches — the server multiplexes
    // them over its worker pool — polling ready events as we go.
    let feeds: Vec<(u64, Vec<SidedRecord>)> = sessions
        .iter()
        .map(|(id, data)| {
            let sequence: Vec<SidedRecord> = data
                .parents
                .records()
                .iter()
                .map(|r| SidedRecord::new(Side::Left, r.clone()))
                .chain(
                    data.children
                        .records()
                        .iter()
                        .map(|r| SidedRecord::new(Side::Right, r.clone())),
                )
                .collect();
            (*id, sequence)
        })
        .collect();
    let mut early: Vec<Vec<WireEvent>> = vec![Vec::new(); feeds.len()];
    let batch = 64;
    let longest = feeds.iter().map(|(_, s)| s.len()).max().unwrap_or(0);
    for start in (0..longest).step_by(batch) {
        for (k, (id, sequence)) in feeds.iter().enumerate() {
            if start < sequence.len() {
                let end = (start + batch).min(sequence.len());
                let ack = client.feed(*id, &sequence[start..end])?;
                early[k].extend(client.poll(*id, 32)?);
                if end == sequence.len() {
                    println!(
                        "session {id}: fed all {} records ({} server-resident bytes)",
                        ack.accepted, ack.state_bytes
                    );
                }
            }
        }
    }

    // Declare both inputs finished and drain to the final report.
    for (k, (id, _)) in feeds.iter().enumerate() {
        let mut events = std::mem::take(&mut early[k]);
        events.extend(client.drain(*id, 128)?);
        let mut matches = 0usize;
        let mut switched = None;
        for event in &events {
            match event {
                WireEvent::Match(_) => matches += 1,
                WireEvent::Switched(s) => switched = Some(s.after_tuples),
                WireEvent::Finished(report) => {
                    println!(
                        "session {id}: {} matches ({} exact, {} approximate), \
                         switched at {:?} consumed tuples, engine {}",
                        matches,
                        report.emitted_exact,
                        report.emitted_approximate,
                        switched,
                        report.engine,
                    );
                }
            }
        }
        client.close(*id)?;
    }

    let stats = client.stats()?;
    println!(
        "server stats: opened={} finished={} closed={} evictions={} \
         rehydrations={} rejected_busy={} rejected_over_budget={}",
        stats.opened,
        stats.finished,
        stats.closed,
        stats.evictions,
        stats.rehydrations,
        stats.rejected_busy,
        stats.rejected_over_budget,
    );

    let persisted = server.shutdown()?;
    println!("server shut down cleanly ({persisted} sessions persisted)");
    Ok(())
}
