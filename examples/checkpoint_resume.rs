//! Checkpoint/resume demo: interrupt an adaptive linkage run mid-stream,
//! persist it with `MatchStream::snapshot`, and resume it in a brand-new
//! pipeline with `Pipeline::resume` — the resumed stream emits exactly
//! the events the interrupted run still owed, bit for bit.
//!
//! The snapshot is the versioned columnar container specified in
//! `docs/format.md`: magic + version + checksummed sections, written
//! atomically (temp file + rename).
//!
//! Run with: `cargo run --release --example checkpoint_resume`

use linkage::api::{MatchEvent, Pipeline, PipelineBuilder};
use linkage::datagen::{generate, DatagenConfig, GeneratedData};
use std::time::Instant;

fn main() {
    // A workload that switches mid-stream: child keys turn dirty halfway
    // through, so the checkpoint below lands in the approximate phase
    // with the §3.3 handover already behind it.
    let data = generate(&DatagenConfig::mid_stream_dirty(600, 7)).expect("datagen failed");
    let declare = || -> PipelineBuilder {
        Pipeline::builder()
            .left(&data.parents)
            .right(&data.children)
            .key_column(GeneratedData::KEY_COLUMN)
            .serial()
    };

    // Reference: the uninterrupted run.
    let full = declare().collect().expect("uninterrupted run failed");
    println!(
        "uninterrupted: {} pairs ({} exact + {} approximate)",
        full.matches.len(),
        full.report.emitted.exact,
        full.report.emitted.approximate
    );

    // Interrupted run: consume roughly two thirds of the output, then
    // checkpoint and "crash" (drop the stream).
    let cut = full.matches.len() * 2 / 3;
    let path = std::env::temp_dir().join("linkage-checkpoint-demo.snap");
    let mut consumed = Vec::new();
    {
        let mut stream = declare().run().expect("run failed");
        while consumed.len() < cut {
            match stream.next().expect("stream ended early") {
                Ok(MatchEvent::Match(pair)) => consumed.push(pair),
                Ok(MatchEvent::Switched(s)) => {
                    println!(
                        "switched after {} tuples (σ = {:.2e}), {} recovered",
                        s.after_tuples, s.sigma, s.recovered
                    );
                }
                Ok(_) => {}
                Err(e) => panic!("stream error: {e}"),
            }
        }
        let start = Instant::now();
        stream.snapshot(&path).expect("snapshot failed");
        let bytes = std::fs::metadata(&path).expect("stat failed").len();
        println!(
            "checkpointed after {} of {} pairs: {:.1} KiB in {:.2?}",
            consumed.len(),
            full.matches.len(),
            bytes as f64 / 1024.0,
            start.elapsed()
        );
        // The stream is dropped here without being drained — the "crash".
    }

    // Resume: a brand-new pipeline with the same declaration picks up
    // where the snapshot left off.
    let start = Instant::now();
    let resumed = declare().resume(&path).expect("resume failed");
    println!("resumed in {:.2?}", start.elapsed());
    for event in resumed {
        if let MatchEvent::Match(pair) = event.expect("resumed stream error") {
            consumed.push(pair);
        }
    }
    std::fs::remove_file(&path).ok();

    // The interrupted + resumed output is the uninterrupted output.
    assert_eq!(consumed.len(), full.matches.len(), "pair count diverged");
    for (a, b) in consumed.iter().zip(&full.matches) {
        assert_eq!(a, b, "resumed stream diverged");
    }
    println!(
        "resumed tail matches the uninterrupted run exactly: {} + {} = {} pairs",
        cut,
        consumed.len() - cut,
        consumed.len()
    );
}
