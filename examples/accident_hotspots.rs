//! The paper's motivating scenario: linking accident reports to a location
//! atlas even though report locations are typed by hand (and dirty), then
//! ranking locations by accident count — all through the `linkage::api`
//! builder.
//!
//! Run with: `cargo run --release --example accident_hotspots`

use linkage::api::Pipeline;
use linkage::types::{Field, Relation, Schema, Value};
use std::collections::HashMap;

const LOCATION_COLUMN: usize = 1;

fn atlas() -> Relation {
    let mut rel = Relation::empty(
        "atlas",
        Schema::of(vec![Field::integer("id"), Field::string("location")]),
    );
    for loc in [
        "TAA BZ SANTA CRISTINA VALGARDENA",
        "LIG GE GENOVA NERVI CAPOLUNGO",
        "PIE TO TORINO CENTRO STAZIONE",
        "LAZ RM ROMA EUR LAURENTINA",
        "CAM NA NAPOLI VOMERO ARENELLA",
    ] {
        let id = rel.len() as i64;
        rel.push_values(vec![Value::Int(id), Value::string(loc)])
            .expect("valid row");
    }
    rel
}

fn reports() -> Relation {
    let mut rel = Relation::empty(
        "reports",
        Schema::of(vec![Field::integer("id"), Field::string("location")]),
    );
    // Hand-typed locations: some exact, some with typos.
    for loc in [
        "TAA BZ SANTA CRISTINA VALGARDENA",
        "TAA BZ SANTA CRISTINx VALGARDENA",
        "TAA BZ SANTA CRITSINA VALGARDENA",
        "LIG GE GENOVA NERVI CAPOLUNGO",
        "LIG GE GENOVA NERVx CAPOLUNGO",
        "PIE TO TORINO CENTRO STAZIONE",
        "LAZ RM ROMA EUR LAURENTINA",
        "LAZ RM ROMA EUR LAURENTTNA",
    ] {
        let id = rel.len() as i64;
        rel.push_values(vec![Value::Int(id), Value::string(loc)])
            .expect("valid row");
    }
    rel
}

fn main() {
    // This tiny stream is too short for the statistical monitor, so run
    // the approximate join from the start to link the typo'd reports too.
    let outcome = Pipeline::builder()
        .left(atlas())
        .right(reports())
        .key_column(LOCATION_COLUMN)
        .approximate_from_start()
        .collect()
        .expect("pipeline failed");

    let mut per_location: HashMap<String, usize> = HashMap::new();
    for pair in &outcome.matches {
        let loc = pair
            .left
            .key_str(LOCATION_COLUMN)
            .expect("string key")
            .to_string();
        *per_location.entry(loc).or_insert(0) += 1;
    }

    let mut ranking: Vec<(String, usize)> = per_location.into_iter().collect();
    ranking.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    println!("accident hotspots (reports linked per atlas location):");
    for (loc, count) in ranking {
        println!("{count:>3}  {loc}");
    }
}
