//! Nested-loop reference joins.
//!
//! Quadratic, materialised, and obviously correct — the oracles the
//! integration tests and benchmarks compare the pipelined operators
//! against.  Not for production use.

use linkage_text::{normalize, NormalizeConfig, StringSimilarity};
use linkage_types::{MatchPair, PerSide, Relation, Result};

/// Exact nested-loop join: emits one pair per `(l, r)` with equal
/// normalised keys, in left-major order.
pub fn nested_loop_exact(
    left: &Relation,
    right: &Relation,
    keys: PerSide<usize>,
    config: &NormalizeConfig,
) -> Result<Vec<MatchPair>> {
    let mut out = Vec::new();
    for l in left.records() {
        let lk = normalize(l.key_str(keys.left)?, config);
        for r in right.records() {
            let rk = normalize(r.key_str(keys.right)?, config);
            if lk == rk {
                out.push(MatchPair::exact(l.clone(), r.clone()));
            }
        }
    }
    Ok(out)
}

/// Similarity nested-loop join: emits one pair per `(l, r)` whose keys
/// score at or above `theta` under `sim`; pairs with equal normalised keys
/// are emitted with exact kind, mirroring the SSH join's classification.
pub fn nested_loop_similarity(
    left: &Relation,
    right: &Relation,
    keys: PerSide<usize>,
    config: &NormalizeConfig,
    sim: &dyn StringSimilarity,
    theta: f64,
) -> Result<Vec<MatchPair>> {
    let mut out = Vec::new();
    for l in left.records() {
        let lraw = l.key_str(keys.left)?;
        let lk = normalize(lraw, config);
        for r in right.records() {
            let rraw = r.key_str(keys.right)?;
            let rk = normalize(rraw, config);
            if lk == rk {
                out.push(MatchPair::exact(l.clone(), r.clone()));
            } else {
                let s = sim.similarity(lraw, rraw);
                if s >= theta {
                    out.push(MatchPair::approximate(l.clone(), r.clone(), s));
                }
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use linkage_text::QGramJaccard;
    use linkage_types::{Field, Schema, Value};

    fn relation(name: &str, keys: &[&str]) -> Relation {
        let mut rel = Relation::empty(name, Schema::of(vec![Field::string("k")]));
        for k in keys {
            rel.push_values(vec![Value::string(*k)]).unwrap();
        }
        rel
    }

    #[test]
    fn exact_oracle_finds_all_equal_pairs() {
        let left = relation("l", &["a", "b", "a"]);
        let right = relation("r", &["a", "c"]);
        let pairs = nested_loop_exact(
            &left,
            &right,
            PerSide::new(0, 0),
            &NormalizeConfig::default(),
        )
        .unwrap();
        assert_eq!(pairs.len(), 2);
        assert!(pairs.iter().all(|p| p.kind.is_exact()));
    }

    #[test]
    fn similarity_oracle_classifies_equal_vs_similar() {
        let left = relation("l", &["LIG GE GENOVA NERVI CAPOLUNGO"]);
        let right = relation(
            "r",
            &[
                "LIG GE GENOVA NERVI CAPOLUNGO",
                "LIG GE GENOVA NERVx CAPOLUNGO",
                "ROMA",
            ],
        );
        let sim = QGramJaccard::default();
        let pairs = nested_loop_similarity(
            &left,
            &right,
            PerSide::new(0, 0),
            &NormalizeConfig::default(),
            &sim,
            0.8,
        )
        .unwrap();
        assert_eq!(pairs.len(), 2);
        assert!(pairs[0].kind.is_exact());
        assert!(pairs[1].kind.is_approximate());
    }
}
