//! The approximate similarity join SSHJoin (paper §2.2).
//!
//! A symmetric *set* hash join: each side maintains an inverted index from
//! q-grams to the tuples containing them.  An arriving tuple's key is
//! tokenised into its q-gram set; probing the opposite index counts, per
//! candidate, the number of shared grams, from which the Jaccard similarity
//! is computed in O(1) (`c / (|A| + |B| − c)`).  Candidates that cannot
//! reach the threshold are pruned early with the `|A ∩ B| ≥ θ·|A|` bound.
//!
//! # The prefix-filtered probe kernel
//!
//! Grams are interned to dense [`GramId`]s at tokenisation time (see
//! `linkage_text::intern`), so the probe path is pure integer work:
//!
//! * posting lists live in a **flat** `Vec<Vec<u32>>` indexed directly by
//!   gram id — no hashing at probe time at all;
//! * candidate generation is **prefix-filtered** (classic set-similarity
//!   prefix filtering): with `t = coefficient.min_overlap(|A|, θ)`, only
//!   the first `|A| − t + 1` posting lists of the probe set are scanned,
//!   traversed in the **rare-first** order snapshotted by
//!   `QGramSet::probe_order` — by pigeonhole every candidate that can
//!   still reach θ shares a gram with that prefix (see
//!   [`QGramCoefficient::prefix_len`]), and the rare-first order makes
//!   the scanned lists the shortest ones;
//! * candidate dedup uses an **epoch-stamped array** indexed by tuple
//!   position (O(1) logical reset per probe — no per-probe `HashMap`
//!   allocation), and a **length filter** drops a candidate at first
//!   touch when its gram-set size makes the threshold unreachable even
//!   at maximum possible overlap `min(|A|, |B|)`;
//! * surviving candidates are scored by **merge-based verification**: an
//!   early-exit sorted-id merge (galloping for lopsided sizes, see
//!   `linkage_text::overlap_at_least`) against the candidate's stored
//!   gram column computes the *exact* overlap, so the emitted similarity
//!   is identical to a full posting-list count.
//!
//! Candidates are emitted in arrival order (their tuple position), which
//! keeps the output stream deterministic and bit-identical to the
//! retained string-keyed reference kernel in [`crate::reference`].  The
//! [`ProbeFunnel`] counters expose how many posting entries were scanned
//! or skipped and how many candidates survived each stage.
//!
//! The join kernel lives in [`SshJoinCore`]; [`SshJoinCore::from_exact`]
//! implements the paper's §3.3 state handover: it rebuilds the inverted
//! index from the exact join's hash tables (interning every resident key
//! exactly once) and re-probes the accumulated
//! tuples against each other to *recover* approximate matches the exact
//! operator missed, using the per-tuple matched-exactly flags to skip
//! pairs the exact operator already emitted.
//!
//! [`GramId`]: linkage_text::GramId

use std::collections::VecDeque;
use std::sync::Arc;

use linkage_text::{normalize, GramId, QGramCoefficient, QGramConfig, QGramSet, SharedInterner};
use linkage_types::{MatchPair, PerSide, Record, Result, ShardId, Side, SidedRecord};

use crate::batch::PreparedBatch;
use crate::exact::orient;
use crate::iterator::{Operator, OperatorState};
use crate::state::KeyTable;

/// The verification primitive behind every candidate scoring site: exact
/// `|a ∩ b|` with the early-exit contract of
/// [`overlap_at_least`](linkage_text::overlap_at_least).
///
/// With the `simd` feature the probe side is read from the scratch's
/// epoch-stamped gram table (filled by [`ProbeScratch::stamp_probe`]
/// once per probe, so `a` **must** be the most recently stamped set) and
/// the candidate side is counted with the branch-free 8-lane chunk loop
/// of [`overlap_stamped`]; the element-at-a-time galloping merge is
/// retained for lopsided pairs, where skipping beats scanning.  Without
/// the feature it is the plain merge.  Every path computes the same
/// exact count, so the emitted match stream is bit-identical either way.
#[inline]
fn verify_overlap(scratch: &ProbeScratch, a: &[GramId], b: &[GramId], min: usize) -> Option<usize> {
    #[cfg(feature = "simd")]
    {
        if b.len() >= linkage_text::GALLOP_RATIO * a.len().max(1) {
            return linkage_text::overlap_at_least(a, b, min);
        }
        overlap_stamped(&scratch.gram_stamps, scratch.gram_epoch, b, min)
    }
    #[cfg(not(feature = "simd"))]
    {
        let _ = scratch;
        linkage_text::overlap_at_least(a, b, min)
    }
}

/// Count how many of `b`'s gram ids are stamped with the current probe
/// epoch — exactly `|a ∩ b|` for the stamped probe set `a`, since gram
/// sets are deduplicated.  The candidate slice is consumed in
/// [`CHUNK_LANES`](linkage_text::CHUNK_LANES)-wide blocks whose lane
/// bodies are branch-free table lookups (each compiles to a compare +
/// add, with no data-dependent branches for the predictor to miss, and
/// the per-block trip count is static so the compiler unrolls it);
/// between blocks the usual infeasibility exit applies.  `get` rather
/// than indexing because candidate ids beyond the stamped range simply
/// cannot have been stamped.
#[cfg(feature = "simd")]
#[inline]
fn overlap_stamped(stamps: &[u32], epoch: u32, b: &[GramId], min: usize) -> Option<usize> {
    if b.len() < min {
        return None;
    }
    let mut count = 0usize;
    let mut remaining = b.len();
    let mut chunks = b.chunks_exact(linkage_text::CHUNK_LANES);
    for chunk in &mut chunks {
        if count + remaining < min {
            return None;
        }
        let mut hits = 0usize;
        for g in chunk {
            hits += usize::from(stamps.get(g.as_usize()) == Some(&epoch));
        }
        count += hits;
        remaining -= linkage_text::CHUNK_LANES;
    }
    for g in chunks.remainder() {
        count += usize::from(stamps.get(g.as_usize()) == Some(&epoch));
    }
    (count >= min).then_some(count)
}

/// One tuple resident in the SSH join, with its pre-extracted q-gram set.
#[derive(Debug, Clone)]
pub struct SshStored {
    /// The tuple itself.
    pub record: Record,
    /// The normalised join key.
    pub key: Arc<str>,
    /// The interned q-gram set of the key.
    pub grams: QGramSet,
    /// Carried-over matched-exactly flag (see [`crate::state::StoredTuple`]).
    pub matched_exactly: bool,
}

/// Cumulative candidate-funnel counters of one probe kernel: how much
/// work the prefix filter admitted at each stage, and how much it
/// skipped.  Monotone over a core's lifetime; aggregate across shards
/// with [`ProbeFunnel::absorb`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProbeFunnel {
    /// Posting entries visited by prefix scans (re-touches included).
    pub candidates_scanned: u64,
    /// Distinct candidates that survived the first-touch length filter
    /// and entered a candidate list.
    pub candidates_after_length_filter: u64,
    /// Candidates whose merge-verified exact overlap reached the
    /// coefficient's `min_overlap` bound (and were therefore scored
    /// against θ).
    pub candidates_verified: u64,
    /// Posting entries in the non-prefix gram lists that were never
    /// scanned — the work the prefix filter saved outright.
    pub prefix_postings_skipped: u64,
}

impl ProbeFunnel {
    /// Fold another funnel into this one (shard aggregation).
    pub fn absorb(&mut self, other: ProbeFunnel) {
        self.candidates_scanned += other.candidates_scanned;
        self.candidates_after_length_filter += other.candidates_after_length_filter;
        self.candidates_verified += other.candidates_verified;
        self.prefix_postings_skipped += other.prefix_postings_skipped;
    }
}

/// Reusable probe state: one epoch stamp per resident tuple position for
/// candidate dedup, the candidate list of the current probe, and the
/// cumulative funnel counters.
///
/// Bumping `epoch` logically resets every stamp in O(1); a position has
/// been touched by the current probe exactly when its stamp equals the
/// current epoch.  The buffers are owned by the [`SshJoinCore`] (not the
/// index) so a single scratch serves both sides, and probing needs no
/// allocation at all once the buffers have grown to the resident-state
/// size.  (Pre-prefix-filtering the slots also carried per-candidate
/// overlap counts; exact overlap now comes from merge verification, so a
/// bare stamp suffices.)
#[derive(Debug, Clone, Default)]
struct ProbeScratch {
    epoch: u32,
    /// Epoch stamp per tuple position.
    stamps: Vec<u32>,
    /// Candidate **arena**: positions touched by the current probe (or,
    /// in batch mode, by every probe of the current batch) that passed
    /// the length filter.  Each probe's slice is sorted ascending
    /// (arrival order) after its scan phase; batch mode addresses the
    /// slices through `ranges`.
    candidates: Vec<u32>,
    /// Per-probe `(start, end)` ranges into `candidates`, filled by the
    /// batched scan phase and consumed by the block-verification phase.
    ranges: Vec<(u32, u32)>,
    /// Arena of per-batch-tuple stored positions (`u32::MAX` = the tuple
    /// was not stored here), parallel to `ranges` in batch mode.
    stored_pos: Vec<u32>,
    /// Memoised `(min_overlap, prefix_len)` per probe length for the
    /// `(coefficient, θ)` in `bounds_key` — the per-probe ceil/clamp
    /// float arithmetic of [`QGramCoefficient::min_overlap`] and
    /// [`QGramCoefficient::prefix_len`] is paid once per distinct `|A|`
    /// instead of once per probe.  `u32::MAX` in the first slot marks an
    /// unfilled entry.
    bounds: Vec<(u32, u32)>,
    /// The `(coefficient, θ)` the `bounds` table was computed for.
    /// Checked on every lookup, so a stale table self-invalidates even
    /// if a caller bypasses [`SshJoinCore::set_coefficient`].
    bounds_key: Option<(QGramCoefficient, f64)>,
    /// Epoch stamp per **gram id** (cf. `stamps`, which is per tuple
    /// position): the direct-address table behind the `simd`
    /// verification kernel.  [`Self::stamp_probe`] marks the current
    /// probe's gram ids here so [`overlap_stamped`] can count a
    /// candidate's overlap with plain table lookups instead of a
    /// branchy merge.  Sized to the largest gram id stamped so far.
    gram_stamps: Vec<u32>,
    /// Current epoch of `gram_stamps` (same O(1)-reset discipline as
    /// `epoch`/`stamps`).
    #[cfg_attr(not(feature = "simd"), allow(dead_code))]
    gram_epoch: u32,
    /// Cumulative candidate-funnel counters.
    funnel: ProbeFunnel,
}

impl ProbeScratch {
    /// Start a new probe over an index holding `tuples` residents: grow
    /// the stamp array and open a fresh epoch.  Does **not** clear the
    /// candidate arena — serial probes do that themselves, batch probes
    /// deliberately accumulate.
    fn begin_probe(&mut self, tuples: usize) {
        if self.stamps.len() < tuples {
            self.stamps.resize(tuples, 0);
        }
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            // One real reset every 2³² probes keeps stale stamps from a
            // previous epoch cycle from aliasing the new epoch.
            self.stamps.fill(0);
            self.epoch = 1;
        }
    }

    /// The `(min_overlap, prefix_len)` bounds of a probe with `len`
    /// grams under `(coefficient, theta)`, memoised per length.
    fn bounds(&mut self, coefficient: QGramCoefficient, theta: f64, len: usize) -> (usize, usize) {
        if self.bounds_key != Some((coefficient, theta)) {
            self.bounds.clear();
            self.bounds_key = Some((coefficient, theta));
        }
        if len >= self.bounds.len() {
            self.bounds.resize(len + 1, (u32::MAX, 0));
        }
        let entry = &mut self.bounds[len];
        if entry.0 == u32::MAX {
            *entry = (
                coefficient.min_overlap(len, theta) as u32,
                coefficient.prefix_len(len, theta) as u32,
            );
        }
        (entry.0 as usize, entry.1 as usize)
    }

    /// Mark `grams` (a sorted, deduplicated gram-id set — the probe's)
    /// in the gram-id stamp table under a fresh epoch, so the `simd`
    /// verification kernel can count candidate overlaps by lookup.
    /// Must be called after candidate generation and before the first
    /// [`verify_overlap`] of each probe; in batch mode that means once
    /// per tuple in the *verify* phase, because phase 1 stamps would be
    /// stale by the time phase 2 reads them.
    #[cfg(feature = "simd")]
    fn stamp_probe(&mut self, grams: &[GramId]) {
        // Sorted input: the last id is the largest, so this bounds the
        // whole set.
        let needed = grams.last().map_or(0, |g| g.as_usize() + 1);
        if self.gram_stamps.len() < needed {
            self.gram_stamps.resize(needed, 0);
        }
        self.gram_epoch = self.gram_epoch.wrapping_add(1);
        if self.gram_epoch == 0 {
            self.gram_stamps.fill(0);
            self.gram_epoch = 1;
        }
        let epoch = self.gram_epoch;
        for g in grams {
            self.gram_stamps[g.as_usize()] = epoch;
        }
    }

    /// Without the `simd` feature verification merges the sets directly,
    /// so stamping would be pure overhead.
    #[cfg(not(feature = "simd"))]
    #[inline(always)]
    fn stamp_probe(&mut self, _grams: &[GramId]) {}

    /// Drop the memoised bounds (coefficient or θ changed).
    fn invalidate_bounds(&mut self) {
        self.bounds.clear();
        self.bounds_key = None;
    }

    /// Estimated heap bytes held by the probe scratch — stamp array,
    /// candidate arena, batch ranges and the bounds memo.  Reported via
    /// [`SshJoinCore::scratch_bytes`] so batched probing doesn't hide
    /// RAM from the state accounting.
    fn heap_bytes(&self) -> usize {
        self.stamps.capacity() * std::mem::size_of::<u32>()
            + self.gram_stamps.capacity() * std::mem::size_of::<u32>()
            + self.candidates.capacity() * std::mem::size_of::<u32>()
            + self.ranges.capacity() * std::mem::size_of::<(u32, u32)>()
            + self.stored_pos.capacity() * std::mem::size_of::<u32>()
            + self.bounds.capacity() * std::mem::size_of::<(u32, u32)>()
    }
}

/// One side's inverted q-gram index: flat posting lists indexed directly
/// by [`GramId`].
#[derive(Debug, Clone, Default)]
pub struct GramIndex {
    tuples: Vec<SshStored>,
    /// `postings[gram id] =` positions (arrival order) of the tuples
    /// whose gram set contains that gram.  Indexed by the *shared* id
    /// space, so the vector's length tracks the highest id this side has
    /// seen, not its own distinct-gram count.
    postings: Vec<Vec<u32>>,
    /// Distinct-gram count per tuple position — the `|B|` the length
    /// filter and the similarity arithmetic read, kept flat so the probe
    /// loop never touches the (much larger) tuple entries.
    lens: Vec<u32>,
    /// CSR-style gram **column**: every resident's sorted gram ids,
    /// concatenated in arrival order.  Verification reads candidate gram
    /// sets as cache-linear slices of this column instead of chasing the
    /// per-tuple `Vec` inside [`SshStored`] — consecutive candidates of
    /// one probe land on nearby cache lines.
    grams: Vec<GramId>,
    /// CSR offsets: tuple `i`'s grams live at `grams[offsets[i] ..
    /// offsets[i + 1]]`.  Length `tuples.len() + 1` once non-empty.
    offsets: Vec<u32>,
    posting_entries: usize,
}

impl GramIndex {
    /// Number of indexed tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// Whether the index holds no tuples.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Number of distinct grams with at least one posting.
    pub fn distinct_grams(&self) -> usize {
        self.postings.iter().filter(|p| !p.is_empty()).count()
    }

    /// Total posting-list entries (the paper's §2.3 space metric).
    pub fn posting_entries(&self) -> usize {
        self.posting_entries
    }

    /// The indexed tuples, in arrival order.
    pub fn tuples(&self) -> &[SshStored] {
        &self.tuples
    }

    /// The sorted gram ids of the tuple at `pos`, as a cache-linear
    /// slice of the CSR gram column.  Identical content to
    /// `tuples()[pos].grams.gram_ids()`; this is the representation the
    /// verification kernel reads.
    pub fn gram_column(&self, pos: usize) -> &[GramId] {
        let start = self.offsets[pos] as usize;
        let end = self.offsets[pos + 1] as usize;
        &self.grams[start..end]
    }

    /// Estimated resident-state size in bytes — the bytes doing useful
    /// work.
    ///
    /// Counts the tuple entries, key text, per-tuple gram-id columns
    /// (sorted **and** rare-first permutation), the CSR gram column the
    /// verifier reads (sorted ids concatenated, plus offsets) and the
    /// flat inverted index (headers of *populated* posting lists,
    /// posting entries, per-tuple length column).  Two things are
    /// deliberately **not**
    /// counted here: gram *text*, stored once in the join's shared
    /// [`SharedInterner`] (see [`SshJoinCore::interner_bytes`]); and the
    /// slack of the flat posting layout — never-populated slot headers
    /// and unused posting capacity — reported separately by
    /// [`Self::postings_slack_bytes`].  Same estimate-not-measurement
    /// caveat as [`crate::state::KeyTable::state_bytes`].
    pub fn state_bytes(&self) -> usize {
        let tuples = self.tuples.len() * std::mem::size_of::<SshStored>();
        let keys: usize = self.tuples.iter().map(|t| t.key.len()).sum();
        let gram_ids: usize = self.tuples.iter().map(|t| t.grams.ids_bytes()).sum();
        let postings = self.postings.iter().filter(|p| !p.is_empty()).count()
            * std::mem::size_of::<Vec<u32>>()
            + self.posting_entries * std::mem::size_of::<u32>();
        let lens = self.lens.len() * std::mem::size_of::<u32>();
        let csr = self.grams.len() * std::mem::size_of::<GramId>()
            + self.offsets.len() * std::mem::size_of::<u32>();
        tuples + keys + gram_ids + postings + lens + csr
    }

    /// Estimated bytes the flat posting layout holds **beyond** its
    /// payload: the `Vec` headers of never-populated gram-id slots (the
    /// price of O(1) direct indexing into a shared id space) plus the
    /// unused capacity push-growth left in populated lists.  The latter
    /// drops to ~0 after the internal `shrink_postings` pass run at the
    /// §3.3 switch/handover.
    pub fn postings_slack_bytes(&self) -> usize {
        let empty_headers =
            self.postings.iter().filter(|p| p.is_empty()).count() * std::mem::size_of::<Vec<u32>>();
        let excess: usize = self
            .postings
            .iter()
            .map(|p| (p.capacity() - p.len()) * std::mem::size_of::<u32>())
            .sum();
        empty_headers + excess
    }

    /// Release the unused capacity of every posting list.  Called at the
    /// switch/handover, where the freshly migrated lists still carry
    /// push-growth slack and the join is about to live with them for the
    /// rest of the stream.
    fn shrink_postings(&mut self) {
        for list in &mut self.postings {
            list.shrink_to_fit();
        }
    }

    /// Bulk-reserve for `tuples` upcoming inserts carrying `gram_total`
    /// gram ids in all, none larger than `max_id`: one growth decision
    /// per prepared batch for the tuple/length/CSR columns, and one
    /// posting-table resize covering every insert of the batch (so the
    /// per-tuple resize check in [`Self::insert`] stays a no-op).
    fn reserve_batch(&mut self, tuples: usize, gram_total: usize, max_id: Option<GramId>) {
        self.tuples.reserve(tuples);
        self.lens.reserve(tuples);
        self.offsets
            .reserve(tuples + usize::from(self.offsets.is_empty()));
        self.grams.reserve(gram_total);
        if let Some(max) = max_id {
            if max.as_usize() >= self.postings.len() {
                self.postings.resize(max.as_usize() + 1, Vec::new());
            }
        }
    }

    fn insert(&mut self, stored: SshStored) -> usize {
        let idx = self.tuples.len();
        let pos = u32::try_from(idx).expect("more than u32::MAX resident tuples");
        let ids = stored.grams.gram_ids();
        // The ids are sorted, so covering the last one covers them all:
        // one resize test per tuple instead of one per gram (and a no-op
        // whenever `reserve_batch` already sized the table).
        if let Some(max) = ids.last() {
            if max.as_usize() >= self.postings.len() {
                self.postings.resize(max.as_usize() + 1, Vec::new());
            }
        }
        for id in ids {
            self.postings[id.as_usize()].push(pos);
        }
        if self.offsets.is_empty() {
            self.offsets.push(0);
        }
        self.grams.extend_from_slice(stored.grams.gram_ids());
        let end = u32::try_from(self.grams.len()).expect("CSR gram column exceeds u32::MAX ids");
        self.offsets.push(end);
        self.posting_entries += stored.grams.len();
        self.lens.push(stored.grams.len() as u32);
        self.tuples.push(stored);
        idx
    }

    /// Generate the candidates of `probe` into `scratch` by scanning only
    /// the **rare-first prefix** of its posting lists.  After the call
    /// `scratch.candidates` holds the touched positions that survived
    /// the first-touch length filter, sorted by arrival position
    /// (deterministic output order).  Exact per-candidate overlap is
    /// *not* counted here — callers verify survivors with a sorted-id
    /// merge against the stored gram column.
    ///
    /// With `t = coefficient.min_overlap(|A|, θ)` (recomputed on every
    /// probe, so a mid-stream coefficient or θ change takes effect
    /// immediately), only the first `|A| − t + 1` gram ids in the probe's
    /// rare-first [`QGramSet::probe_order`] are scanned: a candidate
    /// reaching θ shares ≥ t grams with the probe, and at most
    /// `|A| − t` probe grams lie outside the intersection, so every such
    /// candidate appears in at least one scanned list — under any
    /// traversal order ([`QGramCoefficient::prefix_len`]).  Rare-first
    /// makes the scanned lists the shortest ones.
    ///
    /// The length filter is sound: a candidate with `|B|` grams is
    /// dropped only when `coefficient.from_overlap(|A|, |B|,
    /// min(|A|, |B|))` — its best achievable similarity — is below
    /// `theta`.  Equal-key partners always survive it (identical keys
    /// tokenise to identical sets, whose best similarity is 1).
    fn probe_into(
        &self,
        probe: &QGramSet,
        coefficient: QGramCoefficient,
        theta: f64,
        scratch: &mut ProbeScratch,
    ) {
        scratch.candidates.clear();
        let (_, prefix) = scratch.bounds(coefficient, theta, probe.len());
        self.probe_arena(probe, coefficient, theta, prefix, scratch);
    }

    /// The arena-based scan behind [`Self::probe_into`] and the batched
    /// kernel: identical candidate generation, but survivors are
    /// **appended** to the shared candidate arena instead of replacing
    /// it, and the probe's `(start, end)` arena range is returned.  Only
    /// the new tail is sorted, so each probe's slice is in arrival order
    /// regardless of what precedes it in the arena.
    fn probe_arena(
        &self,
        probe: &QGramSet,
        coefficient: QGramCoefficient,
        theta: f64,
        prefix: usize,
        scratch: &mut ProbeScratch,
    ) -> (u32, u32) {
        scratch.begin_probe(self.tuples.len());
        let epoch = scratch.epoch;
        let probe_len = probe.len();
        let order = probe.probe_order();
        let start = scratch.candidates.len();
        for id in &order[..prefix] {
            let Some(list) = self.postings.get(id.as_usize()) else {
                continue;
            };
            scratch.funnel.candidates_scanned += list.len() as u64;
            for &pos in list {
                let stamp = &mut scratch.stamps[pos as usize];
                if *stamp == epoch {
                    continue;
                }
                *stamp = epoch;
                let candidate_len = self.lens[pos as usize] as usize;
                let best = coefficient.from_overlap(
                    probe_len,
                    candidate_len,
                    probe_len.min(candidate_len),
                );
                if best >= theta {
                    scratch.candidates.push(pos);
                }
            }
        }
        for id in &order[prefix..] {
            if let Some(list) = self.postings.get(id.as_usize()) {
                scratch.funnel.prefix_postings_skipped += list.len() as u64;
            }
        }
        scratch.funnel.candidates_after_length_filter += (scratch.candidates.len() - start) as u64;
        scratch.candidates[start..].sort_unstable();
        let end = u32::try_from(scratch.candidates.len()).expect("candidate arena exceeds u32");
        (start as u32, end)
    }
}

/// The probe-then-insert kernel of the approximate SSH join.
#[derive(Debug, Clone)]
pub struct SshJoinCore {
    keys: PerSide<usize>,
    config: QGramConfig,
    coefficient: QGramCoefficient,
    theta: f64,
    interner: SharedInterner,
    sides: PerSide<GramIndex>,
    scratch: ProbeScratch,
    emitted_exact: u64,
    emitted_approx: u64,
}

impl SshJoinCore {
    /// Build a core joining on `keys` with similarity threshold `theta`
    /// over q-gram sets extracted under `config`, scored with the paper's
    /// Jaccard coefficient (override via [`Self::with_coefficient`]).
    /// The core owns a fresh gram interner; share one across cores with
    /// [`Self::with_shared_interner`].
    pub fn new(keys: PerSide<usize>, config: QGramConfig, theta: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&theta),
            "similarity threshold must be in [0, 1], got {theta}"
        );
        Self {
            keys,
            config,
            coefficient: QGramCoefficient::default(),
            theta,
            interner: SharedInterner::new(),
            sides: PerSide::default(),
            scratch: ProbeScratch::default(),
            emitted_exact: 0,
            emitted_approx: 0,
        }
    }

    /// Score candidates with a different q-gram set coefficient.  The
    /// kernel's per-candidate counters and the coefficient's sound
    /// [`QGramCoefficient::min_overlap`] pruning bound adapt automatically.
    #[must_use]
    pub fn with_coefficient(mut self, coefficient: QGramCoefficient) -> Self {
        self.coefficient = coefficient;
        self
    }

    /// Use a shared gram interner instead of the core's own fresh one.
    ///
    /// The sharded executor hands every worker (and its own router-side
    /// prepare kernel) clones of one [`SharedInterner`], so gram ids are
    /// globally consistent: a tuple tokenised once at the router can be
    /// probed against every shard's flat postings, and resident snapshots
    /// shipped between shards for §3.3 recovery carry ids every receiver
    /// understands.  Must be called before any state exists — resident
    /// postings are indexed by the ids of the interner they were built
    /// with.
    #[must_use]
    pub fn with_shared_interner(mut self, interner: SharedInterner) -> Self {
        assert!(
            self.sides.left.is_empty() && self.sides.right.is_empty(),
            "with_shared_interner requires an empty core: resident postings \
             are indexed by the previous interner's ids"
        );
        self.interner = interner;
        self
    }

    /// The similarity coefficient scoring candidates.
    pub fn coefficient(&self) -> QGramCoefficient {
        self.coefficient
    }

    /// Change the scoring coefficient **mid-stream**.
    ///
    /// Takes effect on the next probe: the memoised per-length
    /// `min_overlap`/`prefix_len` table is invalidated and rebuilt from
    /// the new coefficient on demand, and the resident state needs no
    /// rebuild — the inverted index and the stored gram columns are
    /// coefficient-agnostic.
    pub fn set_coefficient(&mut self, coefficient: QGramCoefficient) {
        self.coefficient = coefficient;
        self.scratch.invalidate_bounds();
    }

    /// The shared gram interner handle backing this core's ids.
    pub fn interner(&self) -> &SharedInterner {
        &self.interner
    }

    /// Estimated size of the shared gram table in bytes.  The table is
    /// shared by every core holding a clone of the handle (all shards of
    /// a parallel join), so account for it **once** per join.
    pub fn interner_bytes(&self) -> usize {
        self.interner.state_bytes()
    }

    /// The §3.3 state handover with the paper's default Jaccard scoring;
    /// see [`Self::with_exact_state`].
    pub fn from_exact(
        keys: PerSide<usize>,
        config: QGramConfig,
        theta: f64,
        tables: PerSide<KeyTable>,
        out: &mut VecDeque<MatchPair>,
    ) -> (Self, u64) {
        Self::new(keys, config, theta).with_exact_state(tables, out)
    }

    /// The §3.3 state handover: rebuild the inverted index from the exact
    /// join's tables and recover missed approximate matches among the
    /// already-seen tuples, pushing them into `out`.
    ///
    /// Every resident key is tokenised and interned exactly once (one
    /// short-lived interner lock per key).  Pairs whose keys are
    /// identical are skipped when both tuples carry the matched-exactly
    /// flag — the exact operator already emitted them, and re-emitting
    /// would duplicate output.  Returns the core and the number of
    /// recovered pairs.  Must be called on a freshly built core (no
    /// resident state yet).
    pub fn with_exact_state(
        mut self,
        tables: PerSide<KeyTable>,
        out: &mut VecDeque<MatchPair>,
    ) -> (Self, u64) {
        assert!(
            self.sides.left.is_empty()
                && self.sides.right.is_empty()
                && self.emitted_exact == 0
                && self.emitted_approx == 0,
            "with_exact_state requires a freshly built core: resident state \
             would be re-probed and matches re-emitted"
        );
        let core = &mut self;

        // Migrate: tokenise every resident tuple and rebuild both indexes.
        // Keys stored by the exact core are already normalised, and
        // normalisation is idempotent, so extraction sees identical text.
        // The interner lock is taken per tuple, not around the whole
        // rebuild, so concurrent shard handovers interleave their
        // interning instead of serialising their entire migrations.
        for side in Side::BOTH {
            for stored in tables[side].tuples() {
                let grams = QGramSet::extract(&stored.key, &core.config, &mut core.interner.lock());
                core.sides[side].insert(SshStored {
                    record: stored.record.clone(),
                    key: Arc::clone(&stored.key),
                    grams,
                    matched_exactly: stored.matched_exactly,
                });
            }
            // The migrated lists are long-lived from here on: return the
            // push-growth slack before the join settles into them.
            core.sides[side].shrink_postings();
        }

        // Recover: probe each pre-switch left tuple against the right index.
        // Iterating one side only visits every cross pair exactly once.
        let mut recovered_exact = 0u64;
        let mut recovered_approx = 0u64;
        let coefficient = core.coefficient;
        let theta = core.theta;
        let (left_index, right_index) = (&core.sides.left, &core.sides.right);
        let scratch = &mut core.scratch;
        for l in left_index.tuples() {
            let (bound, _) = scratch.bounds(coefficient, theta, l.grams.len());
            right_index.probe_into(&l.grams, coefficient, theta, scratch);
            scratch.stamp_probe(l.grams.gram_ids());
            let mut verified = 0u64;
            for i in 0..scratch.candidates.len() {
                let pos = scratch.candidates[i];
                let r = &right_index.tuples()[pos as usize];
                let Some(shared) = verify_overlap(
                    scratch,
                    l.grams.gram_ids(),
                    right_index.gram_column(pos as usize),
                    bound,
                ) else {
                    continue;
                };
                verified += 1;
                if l.key == r.key {
                    if l.matched_exactly && r.matched_exactly {
                        // The exact operator already emitted this pair (both
                        // tuples were resident, so whichever arrived later
                        // probed the other) — the flags record that.
                        continue;
                    }
                    // Tables handed over without exact probing (possible when
                    // built by hand): recover the equal-key pair too.
                    out.push_back(MatchPair::exact(l.record.clone(), r.record.clone()));
                    recovered_exact += 1;
                    continue;
                }
                let sim = coefficient.from_overlap(l.grams.len(), r.grams.len(), shared);
                if sim >= theta {
                    out.push_back(MatchPair::approximate(
                        l.record.clone(),
                        r.record.clone(),
                        sim,
                    ));
                    recovered_approx += 1;
                }
            }
            scratch.funnel.candidates_verified += verified;
        }
        core.emitted_exact += recovered_exact;
        core.emitted_approx += recovered_approx;
        let recovered = recovered_exact + recovered_approx;
        (self, recovered)
    }

    /// Process one arriving tuple: probe the opposite index, emit pairs at
    /// or above the threshold into `out`, insert into the own index.
    /// Returns the number of pairs emitted.
    pub fn process(&mut self, sided: SidedRecord, out: &mut VecDeque<MatchPair>) -> Result<usize> {
        let (key, grams) = self.prepare(&sided)?;
        self.process_prepared(&sided, &key, &grams, true, out)
    }

    /// Normalise, tokenise and intern the join key of `sided`, exactly as
    /// [`Self::process`] would.
    ///
    /// The sharded execution layer broadcasts each post-switch tuple to
    /// every shard; preparing once at the router and sharing the result
    /// keeps tokenisation — the per-tuple cost the paper's Table 1 prices
    /// as `α_q · |jA|` — *and* interning off the workers' critical path:
    /// the grams arrive at every shard as dense ids ready for direct
    /// posting-array indexing.
    pub fn prepare(&self, sided: &SidedRecord) -> Result<(Arc<str>, QGramSet)> {
        let raw = sided.record.key_str(self.keys[sided.side])?;
        let key: Arc<str> = Arc::from(normalize(raw, &self.config.normalize).as_str());
        let grams = QGramSet::extract(raw, &self.config, &mut self.interner.lock());
        Ok((key, grams))
    }

    /// [`Self::process`] with the key already prepared, and an explicit
    /// choice of whether the tuple is **stored** in the own-side index.
    ///
    /// `store = false` is the probe-only half of the sharded approximate
    /// join: every shard probes every tuple against its slice of the
    /// resident state, but only the tuple's home shard stores it, so each
    /// resident lives in exactly one shard and no pair is emitted twice.
    /// The caller must pass `key`/`grams` from [`Self::prepare`] for this
    /// `sided` (or from a core sharing the same interner).
    pub fn process_prepared(
        &mut self,
        sided: &SidedRecord,
        key: &Arc<str>,
        grams: &QGramSet,
        store: bool,
        out: &mut VecDeque<MatchPair>,
    ) -> Result<usize> {
        let coefficient = self.coefficient;
        let theta = self.theta;
        let (bound, _) = self.scratch.bounds(coefficient, theta, grams.len());

        let (own, opposite) = self.sides.own_and_opposite_mut(sided.side);
        let scratch = &mut self.scratch;
        opposite.probe_into(grams, coefficient, theta, scratch);
        scratch.stamp_probe(grams.gram_ids());
        let mut emitted = 0usize;
        let mut verified = 0u64;
        let mut matched_exactly = false;
        let mut exact_partners: Vec<usize> = Vec::new();
        for &pos in &scratch.candidates {
            let idx = pos as usize;
            let Some(shared) =
                verify_overlap(scratch, grams.gram_ids(), opposite.gram_column(idx), bound)
            else {
                continue;
            };
            let partner = &opposite.tuples[idx];
            verified += 1;
            let pair = if partner.key == *key {
                matched_exactly = true;
                exact_partners.push(idx);
                let (l, r) = orient(sided.side, sided.record.clone(), partner.record.clone());
                MatchPair::exact(l, r)
            } else {
                let sim = coefficient.from_overlap(grams.len(), partner.grams.len(), shared);
                if sim < theta {
                    continue;
                }
                let (l, r) = orient(sided.side, sided.record.clone(), partner.record.clone());
                MatchPair::approximate(l, r, sim)
            };
            if pair.kind.is_exact() {
                self.emitted_exact += 1;
            } else {
                self.emitted_approx += 1;
            }
            out.push_back(pair);
            emitted += 1;
        }
        scratch.funnel.candidates_verified += verified;
        for idx in exact_partners {
            opposite.tuples[idx].matched_exactly = true;
        }
        if store {
            own.insert(SshStored {
                record: sided.record.clone(),
                key: Arc::clone(key),
                grams: grams.clone(),
                matched_exactly,
            });
        }
        Ok(emitted)
    }

    /// The **batched** probe entry point: run a whole [`PreparedBatch`]
    /// through the kernel in two columnar phases, bit-identically to
    /// calling [`Self::process_prepared`] once per tuple.
    ///
    /// Phase 1 (*scan*) walks the batch in stream order, running each
    /// tuple's prefix-posting scan and first-touch length filter into a
    /// shared candidate arena — inserting tuples homed here as it goes,
    /// so later tuples of the same batch still see earlier ones, exactly
    /// as in serial execution.  Phase 2 (*verify*) scores every
    /// surviving (probe, candidate) pair in blocks, reading candidate
    /// gram sets as cache-linear slices of the CSR gram column (with the
    /// `simd` feature, through the chunked 8-lane kernel).  Epoch
    /// management and scratch growth are amortised across the batch, and
    /// the emission order is the serial order: tuples in batch order,
    /// each tuple's candidates in arrival order.
    ///
    /// `store_home = Some(id)` stores the tuples with
    /// `batch.homes[i] == id` (the sharded executor's home-shard
    /// contract); `None` probes only.  Returns the number of pairs
    /// pushed into `out`.
    pub fn probe_batch_into(
        &mut self,
        batch: &PreparedBatch,
        store_home: Option<ShardId>,
        out: &mut VecDeque<MatchPair>,
    ) -> Result<usize> {
        let coefficient = self.coefficient;
        let theta = self.theta;

        // Phase 1: candidate generation (and home-shard inserts) for the
        // whole batch, into the shared arena.
        self.scratch.candidates.clear();
        self.scratch.ranges.clear();
        self.scratch.stored_pos.clear();
        // Bulk-reserve each side's index for the tuples this batch will
        // store there, so the per-tuple inserts below never grow the
        // tuple/CSR columns or the posting table mid-batch.
        if let Some(home) = store_home {
            for side in [Side::Left, Side::Right] {
                let mut tuples = 0usize;
                let mut gram_total = 0usize;
                let mut max_id: Option<GramId> = None;
                for i in 0..batch.len() {
                    if batch.homes[i] == home && batch.sided[i].side == side {
                        tuples += 1;
                        gram_total += batch.grams[i].len();
                        if let Some(&last) = batch.grams[i].gram_ids().last() {
                            max_id = Some(max_id.map_or(last, |m| m.max(last)));
                        }
                    }
                }
                if tuples > 0 {
                    let (own, _) = self.sides.own_and_opposite_mut(side);
                    own.reserve_batch(tuples, gram_total, max_id);
                }
            }
        }
        for i in 0..batch.len() {
            let grams = &batch.grams[i];
            let prefix = self.scratch.bounds(coefficient, theta, grams.len()).1;
            let (own, opposite) = self.sides.own_and_opposite_mut(batch.sided[i].side);
            let range = opposite.probe_arena(grams, coefficient, theta, prefix, &mut self.scratch);
            self.scratch.ranges.push(range);
            if store_home == Some(batch.homes[i]) {
                // The matched-exactly flag is not known until this
                // tuple's verify phase; phase 2 back-patches it.
                let pos = own.insert(SshStored {
                    record: batch.sided[i].record.clone(),
                    key: Arc::clone(&batch.keys[i]),
                    grams: grams.clone(),
                    matched_exactly: false,
                });
                self.scratch.stored_pos.push(pos as u32);
            } else {
                self.scratch.stored_pos.push(u32::MAX);
            }
        }

        // Phase 2: block verification of the surviving pairs, in serial
        // emission order.
        let mut emitted_total = 0usize;
        for i in 0..batch.len() {
            let sided = &batch.sided[i];
            let key = &batch.keys[i];
            let grams = &batch.grams[i];
            let bound = self.scratch.bounds(coefficient, theta, grams.len()).0;
            let (start, end) = self.scratch.ranges[i];
            // Stamp here, not in phase 1: the gram-stamp table holds one
            // probe's ids at a time, and by phase 2 a phase-1 stamp
            // would have been overwritten by every later tuple's scan.
            self.scratch.stamp_probe(grams.gram_ids());
            let (own, opposite) = self.sides.own_and_opposite_mut(sided.side);
            let mut verified = 0u64;
            let mut matched_exactly = false;
            let mut exact_partners: Vec<usize> = Vec::new();
            for c in start as usize..end as usize {
                let idx = self.scratch.candidates[c] as usize;
                let Some(shared) = verify_overlap(
                    &self.scratch,
                    grams.gram_ids(),
                    opposite.gram_column(idx),
                    bound,
                ) else {
                    continue;
                };
                verified += 1;
                let partner = &opposite.tuples[idx];
                let pair = if partner.key == *key {
                    matched_exactly = true;
                    exact_partners.push(idx);
                    let (l, r) = orient(sided.side, sided.record.clone(), partner.record.clone());
                    MatchPair::exact(l, r)
                } else {
                    let sim = coefficient.from_overlap(grams.len(), partner.grams.len(), shared);
                    if sim < theta {
                        continue;
                    }
                    let (l, r) = orient(sided.side, sided.record.clone(), partner.record.clone());
                    MatchPair::approximate(l, r, sim)
                };
                if pair.kind.is_exact() {
                    self.emitted_exact += 1;
                } else {
                    self.emitted_approx += 1;
                }
                out.push_back(pair);
                emitted_total += 1;
            }
            self.scratch.funnel.candidates_verified += verified;
            for idx in exact_partners {
                opposite.tuples[idx].matched_exactly = true;
            }
            let pos = self.scratch.stored_pos[i];
            if matched_exactly && pos != u32::MAX {
                own.tuples[pos as usize].matched_exactly = true;
            }
        }
        Ok(emitted_total)
    }

    /// Estimated heap bytes of the reusable probe scratch: the
    /// epoch-stamp array, the candidate arena, the batch range/position
    /// columns and the memoised bounds table.  Reported by the executor
    /// alongside postings slack so the batched kernel's working memory
    /// doesn't hide as untracked RAM.
    pub fn scratch_bytes(&self) -> usize {
        self.scratch.heap_bytes()
    }

    /// Snapshot every resident tuple, tagged with its side.
    ///
    /// Cheap relative to the state itself — records and keys are
    /// `Arc`-shared and gram sets are dense id arrays — and used by the
    /// sharded switch handover to ship one shard's residents to the
    /// others for cross-shard match recovery.  The ids are meaningful to
    /// any core sharing this core's interner.
    pub fn residents(&self) -> Vec<(Side, SshStored)> {
        let mut out = Vec::with_capacity(self.sides.left.len() + self.sides.right.len());
        for side in Side::BOTH {
            for stored in self.sides[side].tuples() {
                out.push((side, stored.clone()));
            }
        }
        out
    }

    /// Probe foreign residents (from **other** shards) against the local
    /// indexes, emitting recovered matches into `out`.
    ///
    /// This is the cross-shard half of the §3.3 handover: under hash
    /// partitioning a dirty tuple and its true partner usually accumulated
    /// in *different* shards during the exact phase, so after each shard's
    /// local [`Self::from_exact`] recovery the coordinator routes every
    /// shard's residents past the shards that came before it.  Foreign
    /// tuples are probed but never stored, and the same matched-exactly
    /// suppression as local recovery applies.  The foreign gram ids must
    /// come from the same shared interner as this core's.  Returns the
    /// number of recovered pairs.
    pub fn recover_foreign(
        &mut self,
        foreign: &[(Side, SshStored)],
        out: &mut VecDeque<MatchPair>,
    ) -> u64 {
        let mut recovered_exact = 0u64;
        let mut recovered_approx = 0u64;
        let coefficient = self.coefficient;
        let theta = self.theta;
        for (side, f) in foreign {
            let scratch = &mut self.scratch;
            let bound = scratch.bounds(coefficient, theta, f.grams.len()).0;
            let local = &self.sides[side.opposite()];
            local.probe_into(&f.grams, coefficient, theta, scratch);
            scratch.stamp_probe(f.grams.gram_ids());
            let mut verified = 0u64;
            for i in 0..scratch.candidates.len() {
                let pos = scratch.candidates[i];
                let partner = &local.tuples[pos as usize];
                let Some(shared) = verify_overlap(
                    scratch,
                    f.grams.gram_ids(),
                    local.gram_column(pos as usize),
                    bound,
                ) else {
                    continue;
                };
                verified += 1;
                if partner.key == f.key {
                    if partner.matched_exactly && f.matched_exactly {
                        continue;
                    }
                    let (l, r) = orient(*side, f.record.clone(), partner.record.clone());
                    out.push_back(MatchPair::exact(l, r));
                    recovered_exact += 1;
                    continue;
                }
                let sim = coefficient.from_overlap(f.grams.len(), partner.grams.len(), shared);
                if sim >= theta {
                    let (l, r) = orient(*side, f.record.clone(), partner.record.clone());
                    out.push_back(MatchPair::approximate(l, r, sim));
                    recovered_approx += 1;
                }
            }
            self.scratch.funnel.candidates_verified += verified;
        }
        self.emitted_exact += recovered_exact;
        self.emitted_approx += recovered_approx;
        recovered_exact + recovered_approx
    }

    /// The similarity threshold.
    pub fn theta(&self) -> f64 {
        self.theta
    }

    /// Pairs emitted with identical keys.
    pub fn emitted_exact(&self) -> u64 {
        self.emitted_exact
    }

    /// Pairs emitted by similarity only.
    pub fn emitted_approx(&self) -> u64 {
        self.emitted_approx
    }

    /// Number of tuples indexed per side.
    pub fn stored(&self) -> PerSide<usize> {
        self.sides.map(GramIndex::len)
    }

    /// Read access to the per-side indexes (state-size reporting).
    pub fn indexes(&self) -> &PerSide<GramIndex> {
        &self.sides
    }

    /// Estimated resident-state size in bytes, per side.  Gram text is
    /// not included — it lives once in the shared interner (see
    /// [`Self::interner_bytes`]) — and neither is flat-posting slack,
    /// reported by [`Self::postings_slack_bytes`].
    pub fn state_bytes(&self) -> PerSide<usize> {
        self.sides.map(GramIndex::state_bytes)
    }

    /// Estimated flat-posting slack bytes, per side (empty slot headers
    /// plus unused posting capacity; see
    /// [`GramIndex::postings_slack_bytes`]).
    pub fn postings_slack_bytes(&self) -> PerSide<usize> {
        self.sides.map(GramIndex::postings_slack_bytes)
    }

    /// Cumulative candidate-funnel counters over every probe this core
    /// ran (steady-state, handover recovery and foreign recovery alike).
    pub fn funnel(&self) -> ProbeFunnel {
        self.scratch.funnel
    }

    /// Re-insert one resident tuple during snapshot restore, without
    /// probing.
    ///
    /// The snapshot stores only the arrival-order tuple column per side
    /// (record, key, gram-id set with its original rare-first probe
    /// order, matched-exactly flag); replaying the inserts in that order
    /// re-derives every index structure — flat postings, the length
    /// column, the CSR gram column and the posting-entry count — so none
    /// of them is ever written to disk.  **Snapshot restore only**; call
    /// [`Self::finish_restore`] once after the last insert.
    pub fn insert_restored(&mut self, side: Side, stored: SshStored) {
        self.sides[side].insert(stored);
    }

    /// Finish a snapshot restore: release posting push-growth slack
    /// (the replayed lists are long-lived, exactly as at the §3.3
    /// handover) and restore the counters that replaying inserts cannot
    /// re-derive — the emission counters and the cumulative probe
    /// funnel.
    pub fn finish_restore(&mut self, emitted_exact: u64, emitted_approx: u64, funnel: ProbeFunnel) {
        for side in Side::BOTH {
            self.sides[side].shrink_postings();
        }
        self.emitted_exact = emitted_exact;
        self.emitted_approx = emitted_approx;
        self.scratch.funnel = funnel;
    }
}

/// The approximate SSH join as a standalone pipelined [`Operator`].
pub struct SshJoin<I> {
    input: I,
    core: SshJoinCore,
    out: VecDeque<MatchPair>,
    state: OperatorState,
    consumed: PerSide<u64>,
}

impl<I: Operator<Item = SidedRecord>> SshJoin<I> {
    /// Build over a sided input with the given key columns, q-gram
    /// configuration and similarity threshold.
    pub fn new(input: I, keys: PerSide<usize>, config: QGramConfig, theta: f64) -> Self {
        Self {
            input,
            core: SshJoinCore::new(keys, config, theta),
            out: VecDeque::new(),
            state: OperatorState::default(),
            consumed: PerSide::default(),
        }
    }

    /// Score candidates with a different q-gram set coefficient.
    #[must_use]
    pub fn with_coefficient(mut self, coefficient: QGramCoefficient) -> Self {
        self.core = self.core.with_coefficient(coefficient);
        self
    }

    /// Number of input tuples consumed from each side.
    pub fn consumed(&self) -> PerSide<u64> {
        self.consumed
    }

    /// Pairs emitted, split `(exact-key, similarity-only)`.
    pub fn emitted(&self) -> (u64, u64) {
        (self.core.emitted_exact(), self.core.emitted_approx())
    }

    /// Number of tuples indexed per side.
    pub fn stored(&self) -> PerSide<usize> {
        self.core.stored()
    }

    /// Read access to the per-side inverted indexes (state-size reporting).
    pub fn indexes(&self) -> &PerSide<GramIndex> {
        self.core.indexes()
    }
}

impl<I: Operator<Item = SidedRecord>> Operator for SshJoin<I> {
    type Item = MatchPair;

    fn name(&self) -> &'static str {
        "ssh-join"
    }

    fn state(&self) -> OperatorState {
        self.state
    }

    fn open(&mut self) -> Result<()> {
        self.state.check_open(self.name())?;
        self.input.open()?;
        self.state = OperatorState::Open;
        Ok(())
    }

    fn next(&mut self) -> Result<Option<MatchPair>> {
        self.state.check_next(self.name())?;
        loop {
            if let Some(pair) = self.out.pop_front() {
                return Ok(Some(pair));
            }
            match self.input.next()? {
                Some(sided) => {
                    self.consumed[sided.side] += 1;
                    self.core.process(sided, &mut self.out)?;
                }
                None => return Ok(None),
            }
        }
    }

    fn close(&mut self) -> Result<()> {
        if self.state != OperatorState::Closed {
            self.input.close()?;
            self.state = OperatorState::Closed;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::InterleavedScan;
    use linkage_types::{Field, Schema, Value, VecStream};

    fn stream_of(keys: &[&str]) -> VecStream {
        let records = keys
            .iter()
            .enumerate()
            .map(|(i, k)| Record::new(i as u64, vec![Value::string(*k)]))
            .collect();
        VecStream::new(Schema::of(vec![Field::string("k")]), records)
    }

    fn join_all(left: &[&str], right: &[&str], theta: f64) -> Vec<MatchPair> {
        let scan = InterleavedScan::alternating(stream_of(left), stream_of(right));
        let mut join = SshJoin::new(scan, PerSide::new(0, 0), QGramConfig::default(), theta);
        join.run_to_end().unwrap()
    }

    const LONG_A: &str = "TAA BZ SANTA CRISTINA VALGARDENA";
    const LONG_A_TYPO: &str = "TAA BZ SANTA CRISTINx VALGARDENA";
    const UNRELATED: &str = "LIG GE GENOVA NERVI";

    #[test]
    fn near_duplicates_match_and_unrelated_do_not() {
        let pairs = join_all(&[LONG_A], &[LONG_A_TYPO, UNRELATED], 0.8);
        assert_eq!(pairs.len(), 1);
        assert_eq!(pairs[0].id_pair().1.as_u64(), 0);
        assert!(pairs[0].kind.is_approximate());
        assert!(pairs[0].kind.similarity() > 0.8 && pairs[0].kind.similarity() < 1.0);
    }

    #[test]
    fn identical_keys_emit_exact_kind() {
        let pairs = join_all(&[LONG_A], &[LONG_A], 0.8);
        assert_eq!(pairs.len(), 1);
        assert!(pairs[0].kind.is_exact());
    }

    #[test]
    fn symmetric_discovery_each_pair_once() {
        // Both orders of arrival must find the pair, but only once.
        let pairs = join_all(&[LONG_A, UNRELATED], &[UNRELATED, LONG_A_TYPO], 0.8);
        let mut seen = std::collections::HashSet::new();
        for p in &pairs {
            assert!(seen.insert(p.id_pair()), "duplicate {:?}", p.id_pair());
        }
        assert_eq!(pairs.len(), 2, "typo pair and exact unrelated pair");
    }

    #[test]
    fn threshold_one_only_accepts_identical_gram_sets() {
        let pairs = join_all(&[LONG_A, LONG_A_TYPO], &[LONG_A], 1.0);
        assert_eq!(pairs.len(), 1);
        assert!(pairs[0].kind.is_exact());
    }

    #[test]
    fn empty_keys_never_match_through_the_index() {
        let pairs = join_all(&["", "x"], &["", "x"], 0.5);
        // Only the "x"/"x" pair: empty keys produce no grams, hence no
        // candidates in the inverted index.
        assert_eq!(pairs.len(), 1);
        assert_eq!(pairs[0].left.key_str(0).unwrap(), "x");
    }

    #[test]
    fn index_counters_grow_with_insertions() {
        let scan = InterleavedScan::alternating(stream_of(&[LONG_A]), stream_of(&[UNRELATED]));
        let mut join = SshJoin::new(scan, PerSide::new(0, 0), QGramConfig::default(), 0.8);
        join.run_to_end().unwrap();
        assert_eq!(join.stored(), PerSide::new(1, 1));
        let idx = &join.core.indexes()[Side::Left];
        assert!(idx.distinct_grams() > 10);
        assert_eq!(idx.posting_entries(), idx.tuples()[0].grams.len());
        assert_eq!(join.emitted(), (0, 0));
    }

    #[test]
    fn length_filter_drops_hopeless_candidates_before_counting() {
        // A short key shares grams with a long one, but the Jaccard
        // threshold is unreachable at any overlap: the candidate never
        // enters the candidate list.
        let mut core = SshJoinCore::new(PerSide::new(0, 0), QGramConfig::default(), 0.8);
        let mut out = VecDeque::new();
        core.process(sided(Side::Left, 0, LONG_A), &mut out)
            .unwrap();
        let probe = sided(Side::Right, 0, "TAA BZ");
        let (key, grams) = core.prepare(&probe).unwrap();
        assert!(!grams.is_empty());
        let left = &core.sides[Side::Left];
        let mut scratch = ProbeScratch::default();
        left.probe_into(&grams, QGramCoefficient::Jaccard, 0.8, &mut scratch);
        assert!(
            scratch.candidates.is_empty(),
            "length filter must reject the candidate at first touch"
        );
        // But under the Overlap coefficient (denominator min(|A|, |B|))
        // the same candidate is feasible and must survive the filter.
        left.probe_into(&grams, QGramCoefficient::Overlap, 0.8, &mut scratch);
        assert_eq!(scratch.candidates.len(), 1);
        // End-to-end: the probe emits nothing under Jaccard.
        let emitted = core
            .process_prepared(&probe, &key, &grams, false, &mut out)
            .unwrap();
        assert_eq!(emitted, 0);
    }

    #[test]
    fn epoch_counters_survive_many_probes_without_reset_cost() {
        // Many consecutive probes against the same index must stay
        // correct — each probe logically resets the counters by epoch
        // bump, never by clearing.
        let mut core = SshJoinCore::new(PerSide::new(0, 0), QGramConfig::default(), 0.8);
        let mut out = VecDeque::new();
        core.process(sided(Side::Left, 0, LONG_A), &mut out)
            .unwrap();
        core.process(sided(Side::Left, 1, UNRELATED), &mut out)
            .unwrap();
        let probe = sided(Side::Right, 9, LONG_A_TYPO);
        let (key, grams) = core.prepare(&probe).unwrap();
        for _ in 0..100 {
            out.clear();
            let emitted = core
                .process_prepared(&probe, &key, &grams, false, &mut out)
                .unwrap();
            assert_eq!(emitted, 1);
            assert_eq!(out[0].id_pair(), (0.into(), 9.into()));
        }
    }

    #[test]
    fn handover_recovers_missed_matches_and_skips_exact_duplicates() {
        use crate::exact::ExactJoinCore;
        use linkage_text::NormalizeConfig;
        use linkage_types::SidedRecord;

        // Feed an exact core: one clean pair and one typo pair.
        let mut exact = ExactJoinCore::new(PerSide::new(0, 0), NormalizeConfig::default());
        let mut sink = VecDeque::new();
        let feed = [
            (Side::Left, 0u64, LONG_A),
            (Side::Right, 0u64, LONG_A), // exact match -> emitted now
            (Side::Left, 1u64, "LIG GE GENOVA NERVI CAPOLUNGO"),
            (Side::Right, 1u64, "LIG GE GENOVA NERVx CAPOLUNGO"), // typo -> missed
        ];
        for (side, id, key) in feed {
            let rec = Record::new(id, vec![Value::string(key)]);
            exact
                .process(SidedRecord::new(side, rec), &mut sink)
                .unwrap();
        }
        assert_eq!(sink.len(), 1, "exact phase emits only the clean pair");
        sink.clear();

        let (core, recovered) = SshJoinCore::from_exact(
            PerSide::new(0, 0),
            QGramConfig::default(),
            0.8,
            exact.into_tables(),
            &mut sink,
        );
        assert_eq!(recovered, 1, "the typo pair is recovered");
        assert_eq!(sink.len(), 1);
        let pair = &sink[0];
        assert_eq!(pair.left.id.as_u64(), 1);
        assert_eq!(pair.right.id.as_u64(), 1);
        assert!(pair.kind.is_approximate());
        assert_eq!(core.stored(), PerSide::new(2, 2));
    }

    #[test]
    #[should_panic(expected = "threshold")]
    fn rejects_out_of_range_threshold() {
        SshJoinCore::new(PerSide::new(0, 0), QGramConfig::default(), 1.5);
    }

    #[test]
    #[should_panic(expected = "empty core")]
    fn shared_interner_requires_an_empty_core() {
        let mut core = SshJoinCore::new(PerSide::new(0, 0), QGramConfig::default(), 0.8);
        let mut out = VecDeque::new();
        core.process(sided(Side::Left, 0, LONG_A), &mut out)
            .unwrap();
        let _ = core.with_shared_interner(SharedInterner::new());
    }

    fn sided(side: Side, id: u64, key: &str) -> SidedRecord {
        SidedRecord::new(side, Record::new(id, vec![Value::string(key)]))
    }

    #[test]
    fn probe_only_emits_but_does_not_store() {
        let mut core = SshJoinCore::new(PerSide::new(0, 0), QGramConfig::default(), 0.8);
        let mut out = VecDeque::new();
        core.process(sided(Side::Left, 0, LONG_A), &mut out)
            .unwrap();

        let probe = sided(Side::Right, 0, LONG_A_TYPO);
        let (key, grams) = core.prepare(&probe).unwrap();
        let emitted = core
            .process_prepared(&probe, &key, &grams, false, &mut out)
            .unwrap();
        assert_eq!(emitted, 1);
        assert_eq!(
            core.stored(),
            PerSide::new(1, 0),
            "probe-only must not store"
        );

        // Probing again still finds the pair: nothing was consumed or moved.
        let emitted = core
            .process_prepared(&probe, &key, &grams, true, &mut out)
            .unwrap();
        assert_eq!(emitted, 1);
        assert_eq!(core.stored(), PerSide::new(1, 1));
    }

    #[test]
    fn prepared_store_matches_plain_process() {
        let mut plain = SshJoinCore::new(PerSide::new(0, 0), QGramConfig::default(), 0.8);
        let mut prepared = plain.clone();
        let tuples = [
            sided(Side::Left, 0, LONG_A),
            sided(Side::Right, 0, LONG_A_TYPO),
            sided(Side::Right, 1, UNRELATED),
            sided(Side::Left, 1, UNRELATED),
        ];
        let (mut out_a, mut out_b) = (VecDeque::new(), VecDeque::new());
        for t in &tuples {
            plain.process(t.clone(), &mut out_a).unwrap();
            let (key, grams) = prepared.prepare(t).unwrap();
            prepared
                .process_prepared(t, &key, &grams, true, &mut out_b)
                .unwrap();
        }
        let ids = |q: &VecDeque<MatchPair>| q.iter().map(MatchPair::id_pair).collect::<Vec<_>>();
        assert_eq!(ids(&out_a), ids(&out_b));
        assert_eq!(plain.stored(), prepared.stored());
    }

    #[test]
    fn foreign_recovery_finds_cross_shard_pairs_once() {
        // Shard 0 accumulated the clean left tuple, shard 1 its dirty
        // partner — the situation hash partitioning produces for typo
        // pairs.  The shards share one interner, as the executor
        // arranges, so shipped gram ids are mutually meaningful.
        let interner = SharedInterner::new();
        let mut shard0 = SshJoinCore::new(PerSide::new(0, 0), QGramConfig::default(), 0.8)
            .with_shared_interner(interner.clone());
        let mut shard1 = SshJoinCore::new(PerSide::new(0, 0), QGramConfig::default(), 0.8)
            .with_shared_interner(interner);
        let mut out = VecDeque::new();
        shard0
            .process(sided(Side::Left, 0, LONG_A), &mut out)
            .unwrap();
        shard1
            .process(sided(Side::Right, 7, LONG_A_TYPO), &mut out)
            .unwrap();
        assert!(out.is_empty(), "different shards: nothing found locally");

        // Coordinator ships shard 0's residents past shard 1.
        let recovered = shard1.recover_foreign(&shard0.residents(), &mut out);
        assert_eq!(recovered, 1);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].id_pair(), (0.into(), 7.into()));
        assert!(out[0].kind.is_approximate());
        assert_eq!(
            shard1.stored(),
            PerSide::new(0, 1),
            "foreign tuples not stored"
        );
    }

    #[test]
    fn foreign_recovery_respects_matched_exactly_flags() {
        // Both residents carry the flag and equal keys: the pair was already
        // emitted by the exact phase and must be suppressed.
        let interner = SharedInterner::new();
        let mut shard = SshJoinCore::new(PerSide::new(0, 0), QGramConfig::default(), 0.8)
            .with_shared_interner(interner.clone());
        let mut out = VecDeque::new();
        shard
            .process(sided(Side::Right, 3, LONG_A), &mut out)
            .unwrap();
        let flagged: Vec<(Side, SshStored)> = {
            let mut probe = SshJoinCore::new(PerSide::new(0, 0), QGramConfig::default(), 0.8)
                .with_shared_interner(interner);
            probe
                .process(sided(Side::Left, 3, LONG_A), &mut out)
                .unwrap();
            probe
                .residents()
                .into_iter()
                .map(|(side, mut stored)| {
                    stored.matched_exactly = true;
                    (side, stored)
                })
                .collect()
        };
        // Flag the local resident too.
        shard.sides[Side::Right].tuples[0].matched_exactly = true;
        out.clear();
        assert_eq!(shard.recover_foreign(&flagged, &mut out), 0);
        assert!(out.is_empty());
    }

    #[test]
    fn funnel_counts_prefix_scans_skips_and_verifications() {
        let mut core = SshJoinCore::new(PerSide::new(0, 0), QGramConfig::default(), 0.8);
        let mut out = VecDeque::new();
        core.process(sided(Side::Left, 0, LONG_A), &mut out)
            .unwrap();
        core.process(sided(Side::Left, 1, UNRELATED), &mut out)
            .unwrap();
        let before = core.funnel();
        core.process(sided(Side::Right, 2, LONG_A_TYPO), &mut out)
            .unwrap();
        let after = core.funnel();
        // Under Jaccard θ=0.8 the prefix is ~1/5 of the probe set: some
        // postings were scanned, and the non-prefix lists were skipped.
        assert!(after.candidates_scanned > before.candidates_scanned);
        assert!(after.prefix_postings_skipped > before.prefix_postings_skipped);
        // Exactly one candidate survives the length filter (the typo
        // partner; UNRELATED shares no grams) and verifies successfully.
        assert_eq!(
            after.candidates_after_length_filter,
            before.candidates_after_length_filter + 1
        );
        assert_eq!(after.candidates_verified, before.candidates_verified + 1);
    }

    #[test]
    fn coefficient_change_recomputes_prefix_lengths_mid_stream() {
        // The same probe against the same resident state scans a short
        // prefix under Jaccard (θ·|A| bound) but the full gram set under
        // Overlap (min_overlap = 1 ⇒ prefix = |A|): the per-probe funnel
        // deltas expose the recomputation.
        let mut core = SshJoinCore::new(PerSide::new(0, 0), QGramConfig::default(), 0.8);
        let mut out = VecDeque::new();
        core.process(sided(Side::Left, 0, LONG_A), &mut out)
            .unwrap();
        let probe = sided(Side::Right, 1, LONG_A);
        let (key, grams) = core.prepare(&probe).unwrap();

        let before = core.funnel();
        core.process_prepared(&probe, &key, &grams, false, &mut out)
            .unwrap();
        let jaccard = core.funnel();
        assert!(
            jaccard.prefix_postings_skipped > before.prefix_postings_skipped,
            "Jaccard at θ=0.8 must skip non-prefix postings"
        );

        core.set_coefficient(QGramCoefficient::Overlap);
        assert_eq!(core.coefficient(), QGramCoefficient::Overlap);
        core.process_prepared(&probe, &key, &grams, false, &mut out)
            .unwrap();
        let overlap = core.funnel();
        assert_eq!(
            overlap.prefix_postings_skipped, jaccard.prefix_postings_skipped,
            "Overlap's prefix is the whole probe set: nothing newly skipped"
        );
        assert!(
            overlap.candidates_scanned - jaccard.candidates_scanned
                > jaccard.candidates_scanned - before.candidates_scanned,
            "the full-set scan must touch more postings than the prefix scan"
        );
        // Both probes found the equal-key partner.
        assert_eq!(out.len(), 2);
        assert!(out.iter().all(|p| p.kind.is_exact()));
    }

    #[test]
    fn postings_slack_is_separate_and_shrinks_at_handover() {
        use crate::exact::ExactJoinCore;
        use linkage_text::NormalizeConfig;

        // Steady-state inserts leave push-growth capacity and (with a
        // shared id space) empty slots behind.
        let interner = SharedInterner::new();
        // Intern foreign grams first so this core's posting array has
        // leading never-populated slots.
        {
            let mut lock = interner.lock();
            for g in ["zz1", "zz2", "zz3"] {
                lock.intern(g);
            }
        }
        let mut core = SshJoinCore::new(PerSide::new(0, 0), QGramConfig::default(), 0.8)
            .with_shared_interner(interner);
        let mut out = VecDeque::new();
        for i in 0..8 {
            core.process(sided(Side::Left, i, LONG_A), &mut out)
                .unwrap();
        }
        let slack = core.postings_slack_bytes();
        assert!(
            slack.left >= 3 * std::mem::size_of::<Vec<u32>>(),
            "empty slots of foreign ids must be accounted as slack"
        );
        // state_bytes counts payload only: inserting the same key again
        // adds postings but the slack decreases or stays (capacity gets
        // used), never double-counted.
        let state = core.state_bytes().left;
        assert!(state > 0);

        // The handover shrinks the freshly migrated lists: slack is then
        // only the empty headers, not unused capacity.
        let mut exact = ExactJoinCore::new(PerSide::new(0, 0), NormalizeConfig::default());
        for i in 0..8 {
            exact
                .process(sided(Side::Left, i, LONG_A), &mut out)
                .unwrap();
            exact
                .process(sided(Side::Right, 100 + i, UNRELATED), &mut out)
                .unwrap();
        }
        out.clear();
        let (switched, _) = SshJoinCore::from_exact(
            PerSide::new(0, 0),
            QGramConfig::default(),
            0.8,
            exact.into_tables(),
            &mut out,
        );
        let slack = switched.postings_slack_bytes();
        let empty_left = switched.sides[Side::Left]
            .postings
            .iter()
            .filter(|p| p.is_empty())
            .count();
        assert_eq!(
            slack.left,
            empty_left * std::mem::size_of::<Vec<u32>>(),
            "after shrink_postings the only slack is empty slot headers"
        );
    }

    fn batch_of(core: &SshJoinCore, tuples: &[SidedRecord], home: ShardId) -> PreparedBatch {
        let mut batch = PreparedBatch::with_capacity(tuples.len());
        for t in tuples {
            let (key, grams) = core.prepare(t).unwrap();
            batch.push(t.clone(), key, grams, home);
        }
        batch
    }

    #[test]
    fn probe_batch_matches_serial_processing() {
        // Intra-batch cross-side matches (typo pair, exact pair) must
        // come out identically — same pairs, same order, same counters,
        // same matched-exactly flags — from the batched entry point.
        let tuples = [
            sided(Side::Left, 0, LONG_A),
            sided(Side::Right, 0, LONG_A_TYPO),
            sided(Side::Right, 1, UNRELATED),
            sided(Side::Left, 1, UNRELATED),
            sided(Side::Left, 2, LONG_A),
            sided(Side::Right, 2, LONG_A),
        ];
        let interner = SharedInterner::new();
        let mut serial = SshJoinCore::new(PerSide::new(0, 0), QGramConfig::default(), 0.8)
            .with_shared_interner(interner.clone());
        let mut batched = SshJoinCore::new(PerSide::new(0, 0), QGramConfig::default(), 0.8)
            .with_shared_interner(interner);

        let mut out_serial = VecDeque::new();
        for t in &tuples {
            let (key, grams) = serial.prepare(t).unwrap();
            serial
                .process_prepared(t, &key, &grams, true, &mut out_serial)
                .unwrap();
        }

        let batch = batch_of(&batched, &tuples, ShardId(0));
        let mut out_batch = VecDeque::new();
        let emitted = batched
            .probe_batch_into(&batch, Some(ShardId(0)), &mut out_batch)
            .unwrap();

        assert_eq!(emitted, out_serial.len());
        let view =
            |q: &VecDeque<MatchPair>| q.iter().map(|p| (p.id_pair(), p.kind)).collect::<Vec<_>>();
        assert_eq!(view(&out_serial), view(&out_batch));
        assert_eq!(serial.stored(), batched.stored());
        assert_eq!(serial.emitted_exact(), batched.emitted_exact());
        assert_eq!(serial.emitted_approx(), batched.emitted_approx());
        assert_eq!(serial.funnel(), batched.funnel());
        for side in Side::BOTH {
            let flags = |c: &SshJoinCore| {
                c.sides[side]
                    .tuples()
                    .iter()
                    .map(|t| t.matched_exactly)
                    .collect::<Vec<_>>()
            };
            assert_eq!(flags(&serial), flags(&batched), "{side:?} flags");
        }
        // The exact pair (LONG_A on both sides) must have flagged both
        // residents through the phase-2 back-patch.
        assert!(batched.sides[Side::Left].tuples()[2].matched_exactly);
        assert!(batched.sides[Side::Right].tuples()[2].matched_exactly);
    }

    #[test]
    fn probe_batch_store_home_filters_stores() {
        let tuples = [
            sided(Side::Left, 0, LONG_A),
            sided(Side::Right, 0, LONG_A_TYPO),
        ];
        let core = SshJoinCore::new(PerSide::new(0, 0), QGramConfig::default(), 0.8);

        // homes[0] = shard 1, homes[1] = shard 0: a shard-0 worker
        // probes both but stores only the second tuple; its probe still
        // cannot see tuple 0 (stored elsewhere), so nothing is emitted.
        let mut worker = core.clone();
        let mut batch = batch_of(&worker, &tuples, ShardId(1));
        batch.homes[1] = ShardId(0);
        let mut out = VecDeque::new();
        worker
            .probe_batch_into(&batch, Some(ShardId(0)), &mut out)
            .unwrap();
        assert!(out.is_empty());
        assert_eq!(worker.stored(), PerSide::new(0, 1));

        // Probe-only mode stores nothing at all.
        let mut probe_only = core.clone();
        let batch = batch_of(&probe_only, &tuples, ShardId(0));
        probe_only.probe_batch_into(&batch, None, &mut out).unwrap();
        assert_eq!(probe_only.stored(), PerSide::new(0, 0));
    }

    #[test]
    fn empty_and_singleton_batches_are_fine() {
        let mut core = SshJoinCore::new(PerSide::new(0, 0), QGramConfig::default(), 0.8);
        let mut out = VecDeque::new();
        let empty = PreparedBatch::default();
        assert_eq!(
            core.probe_batch_into(&empty, Some(ShardId(0)), &mut out)
                .unwrap(),
            0
        );
        let one = batch_of(&core, &[sided(Side::Left, 0, LONG_A)], ShardId(0));
        assert_eq!(
            core.probe_batch_into(&one, Some(ShardId(0)), &mut out)
                .unwrap(),
            0
        );
        assert_eq!(core.stored(), PerSide::new(1, 0));
    }

    #[test]
    fn gram_column_mirrors_stored_sets() {
        let mut core = SshJoinCore::new(PerSide::new(0, 0), QGramConfig::default(), 0.8);
        let mut out = VecDeque::new();
        for (i, key) in [LONG_A, UNRELATED, LONG_A_TYPO].iter().enumerate() {
            core.process(sided(Side::Left, i as u64, key), &mut out)
                .unwrap();
        }
        let idx = &core.sides[Side::Left];
        for (pos, stored) in idx.tuples().iter().enumerate() {
            assert_eq!(idx.gram_column(pos), stored.grams.gram_ids(), "pos {pos}");
        }
    }

    #[test]
    fn scratch_bytes_reports_probe_allocations() {
        let mut core = SshJoinCore::new(PerSide::new(0, 0), QGramConfig::default(), 0.8);
        assert_eq!(core.scratch_bytes(), 0, "fresh core owns no scratch heap");
        let mut out = VecDeque::new();
        core.process(sided(Side::Left, 0, LONG_A), &mut out)
            .unwrap();
        core.process(sided(Side::Right, 1, LONG_A_TYPO), &mut out)
            .unwrap();
        let serial = core.scratch_bytes();
        assert!(serial > 0, "probing must grow stamps/bounds scratch");
        let batch = batch_of(&core, &[sided(Side::Right, 2, LONG_A)], ShardId(0));
        core.probe_batch_into(&batch, Some(ShardId(0)), &mut out)
            .unwrap();
        assert!(
            core.scratch_bytes() >= serial,
            "batch mode adds range/position columns"
        );
    }

    #[test]
    fn state_bytes_counts_index_growth_and_interner_separately() {
        let mut core = SshJoinCore::new(PerSide::new(0, 0), QGramConfig::default(), 0.8);
        let mut out = VecDeque::new();
        assert_eq!(core.state_bytes(), PerSide::new(0, 0));
        assert_eq!(core.interner_bytes(), 0);
        core.process(sided(Side::Left, 0, LONG_A), &mut out)
            .unwrap();
        let one = core.state_bytes();
        assert!(one.left > 0 && one.right == 0);
        let interner_one = core.interner_bytes();
        assert!(interner_one > 0, "gram text lives in the interner");
        core.process(sided(Side::Left, 1, UNRELATED), &mut out)
            .unwrap();
        assert!(core.state_bytes().left > one.left);
        assert!(core.interner_bytes() > interner_one);
        // Re-inserting the same key adds postings but no new gram text.
        let interner_two = core.interner_bytes();
        core.process(sided(Side::Left, 2, UNRELATED), &mut out)
            .unwrap();
        assert_eq!(core.interner_bytes(), interner_two);
    }
}
