//! The switchable join: exact until told otherwise, approximate after.
//!
//! [`SwitchJoin`] starts life as a pipelined exact symmetric hash join and
//! can be switched to the approximate SSH join **mid-stream** by an external
//! controller (the adaptivity loop in `linkage-core`, or a caller invoking
//! [`SwitchJoin::switch_to_approximate`] directly).  The switch performs the
//! paper's §3.3 state handover:
//!
//! 1. the exact join's per-side hash tables are migrated into the SSH
//!    join's inverted q-gram indexes (tokenising each resident key once);
//! 2. the resident tuples are re-probed against each other, *recovering*
//!    approximate matches the exact operator missed;
//! 3. per-tuple matched-exactly flags suppress the equal-key pairs the
//!    exact operator already emitted, so the combined output stream carries
//!    no duplicates.
//!
//! After the switch, arriving tuples are processed by the SSH join kernel,
//! which emits both equal-key (exact-kind) and similar-key matches.

use std::collections::VecDeque;

use linkage_text::{NormalizeConfig, QGramCoefficient, QGramConfig};
use linkage_types::{defaults, LinkageError, MatchKind, MatchPair, PerSide, Result, SidedRecord};

use crate::exact::ExactJoinCore;
use crate::iterator::{Operator, OperatorState};
use crate::ssh::SshJoinCore;

/// Which join kernel is currently driving the output.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinPhase {
    /// The exact symmetric hash join.
    Exact,
    /// The approximate SSH join (post-switch).
    Approximate,
}

/// Configuration shared by both phases of a [`SwitchJoin`].
///
/// `#[non_exhaustive]`: construct via [`SwitchJoinConfig::new`] or
/// [`Default`] and refine with the `with_*` builders, so new knobs can be
/// added without breaking downstream crates.  The unified
/// `linkage::api::PipelineConfig` constructs this type internally.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct SwitchJoinConfig {
    /// Join key column per side.
    pub keys: PerSide<usize>,
    /// Q-gram extraction (its embedded normalisation is also used by the
    /// exact phase, so key equality and similarity 1.0 coincide).
    pub qgram: QGramConfig,
    /// The q-gram set coefficient scoring candidates in the approximate
    /// phase (the paper's Jaccard by default).
    pub coefficient: QGramCoefficient,
    /// Similarity threshold `θ_sim` for the approximate phase.
    pub theta_sim: f64,
}

impl Default for SwitchJoinConfig {
    /// The paper's defaults, joining both sides on column 0.
    fn default() -> Self {
        Self::new(PerSide::new(0, 0))
    }
}

impl SwitchJoinConfig {
    /// Build with the paper's defaults (`q = 3`, padded, Jaccard,
    /// `θ_sim = 0.8` — see [`linkage_types::defaults`]).
    pub fn new(keys: PerSide<usize>) -> Self {
        Self {
            keys,
            qgram: QGramConfig::default(),
            coefficient: QGramCoefficient::default(),
            theta_sim: defaults::THETA_SIM,
        }
    }

    /// Override the similarity threshold.
    #[must_use]
    pub fn with_theta(mut self, theta_sim: f64) -> Self {
        self.theta_sim = theta_sim;
        self
    }

    /// Override the q-gram configuration.
    #[must_use]
    pub fn with_qgram(mut self, qgram: QGramConfig) -> Self {
        self.qgram = qgram;
        self
    }

    /// Override the similarity coefficient of the approximate phase.
    #[must_use]
    pub fn with_coefficient(mut self, coefficient: QGramCoefficient) -> Self {
        self.coefficient = coefficient;
        self
    }

    /// The key normalisation both phases apply.
    pub fn normalization(&self) -> NormalizeConfig {
        self.qgram.normalize
    }

    /// A fresh exact-phase kernel under this configuration.
    pub fn exact_core(&self) -> ExactJoinCore {
        ExactJoinCore::new(self.keys, self.normalization())
    }

    /// A fresh approximate-phase kernel under this configuration, owning
    /// its own gram interner.
    pub fn ssh_core(&self) -> SshJoinCore {
        SshJoinCore::new(self.keys, self.qgram.clone(), self.theta_sim)
            .with_coefficient(self.coefficient)
    }

    /// A fresh approximate-phase kernel sharing `interner` — what the
    /// sharded executor hands each worker so every shard's gram ids live
    /// in one id space (see
    /// [`SshJoinCore::with_shared_interner`]).
    pub fn ssh_core_with(&self, interner: linkage_text::SharedInterner) -> SshJoinCore {
        self.ssh_core().with_shared_interner(interner)
    }
}

// One long-lived instance per operator: the inline size gap between the
// kernels (the approximate core carries its probe scratch) never
// multiplies across a collection, so boxing would only add indirection.
#[allow(clippy::large_enum_variant)]
enum PhaseCore {
    Exact(ExactJoinCore),
    Approximate(SshJoinCore),
    /// Transient placeholder while the handover runs.
    Switching,
}

/// One decoded phase kernel, ready to be installed by
/// [`SwitchJoin::restore`].
///
/// `PhaseCore` itself stays private (its `Switching` placeholder is an
/// internal invariant of the handover); a snapshot only ever captures a
/// join at rest, so the restored state is always one of the two real
/// kernels.
#[allow(clippy::large_enum_variant)]
pub enum RestoredCore {
    /// The join had not switched yet.
    Exact(ExactJoinCore),
    /// The join had already performed the §3.3 handover.
    Approximate(SshJoinCore),
}

/// Full operator-level state of a [`SwitchJoin`], as reconstructed from a
/// snapshot (`linkage_types::snapshot`).  Built by the engine layers from
/// the decoded sections and installed with [`SwitchJoin::restore`].
pub struct SwitchRestore {
    /// The phase kernel with its resident state replayed.
    pub core: RestoredCore,
    /// Matches that were emitted by a kernel but not yet pulled
    /// downstream when the snapshot was taken.
    pub pending: Vec<MatchPair>,
    /// Input tuples the snapshotted run had consumed per side; the
    /// resumed run re-reads the same sources and discards exactly this
    /// prefix.
    pub consumed: PerSide<u64>,
    /// Emission counters at the snapshot point.
    pub emitted: PerKind,
    /// Matches recovered from resident state during the switch (0 if the
    /// join had not switched).
    pub recovered_at_switch: u64,
    /// Total consumed tuples at the moment of the switch, if it
    /// happened.
    pub switched_after: Option<u64>,
}

/// A join operator that can swap its kernel mid-stream.
pub struct SwitchJoin<I> {
    input: I,
    config: SwitchJoinConfig,
    core: PhaseCore,
    out: VecDeque<MatchPair>,
    state: OperatorState,
    consumed: PerSide<u64>,
    emitted: PerKind,
    recovered_at_switch: u64,
    switched_after: Option<u64>,
}

/// Emission counters split by match kind.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PerKind {
    /// Pairs emitted with identical (normalised) keys.
    pub exact: u64,
    /// Pairs emitted by similarity.
    pub approximate: u64,
}

impl PerKind {
    /// Total pairs emitted.
    pub fn total(&self) -> u64 {
        self.exact + self.approximate
    }
}

impl<I: Operator<Item = SidedRecord>> SwitchJoin<I> {
    /// Build over a sided input, starting in the exact phase.
    pub fn new(input: I, config: SwitchJoinConfig) -> Self {
        let exact = config.exact_core();
        Self {
            input,
            config,
            core: PhaseCore::Exact(exact),
            out: VecDeque::new(),
            state: OperatorState::default(),
            consumed: PerSide::default(),
            emitted: PerKind::default(),
            recovered_at_switch: 0,
            switched_after: None,
        }
    }

    /// The shared configuration of both phases.
    pub fn config(&self) -> &SwitchJoinConfig {
        &self.config
    }

    /// The phase currently driving output.
    pub fn phase(&self) -> JoinPhase {
        match self.core {
            PhaseCore::Exact(_) => JoinPhase::Exact,
            PhaseCore::Approximate(_) | PhaseCore::Switching => JoinPhase::Approximate,
        }
    }

    /// Input tuples consumed per side.
    pub fn consumed(&self) -> PerSide<u64> {
        self.consumed
    }

    /// Total input tuples consumed.
    pub fn total_consumed(&self) -> u64 {
        self.consumed.left + self.consumed.right
    }

    /// Pairs emitted so far, by kind.  The operator emits each distinct
    /// pair at most once, so this is also the distinct-result count the
    /// monitor observes.
    pub fn emitted(&self) -> PerKind {
        self.emitted
    }

    /// Tuples resident per side (hash tables or inverted indexes).
    pub fn stored(&self) -> PerSide<usize> {
        match &self.core {
            PhaseCore::Exact(c) => c.stored(),
            PhaseCore::Approximate(c) => c.stored(),
            PhaseCore::Switching => PerSide::default(),
        }
    }

    /// Total consumed tuples at the moment of the switch, if it happened.
    pub fn switched_after(&self) -> Option<u64> {
        self.switched_after
    }

    /// Matches recovered from resident state during the switch.
    pub fn recovered_at_switch(&self) -> u64 {
        self.recovered_at_switch
    }

    /// Perform the exact → approximate handover now (paper §3.3).
    ///
    /// Recovered matches are buffered and drained by subsequent
    /// [`Operator::next`] calls.  Returns the number of recovered pairs.
    /// Switching requires an open operator, and switching twice is an
    /// adaptivity error.
    pub fn switch_to_approximate(&mut self) -> Result<u64> {
        if self.state != OperatorState::Open {
            return Err(LinkageError::adaptivity(
                "switch_to_approximate requires an open operator",
            ));
        }
        match std::mem::replace(&mut self.core, PhaseCore::Switching) {
            PhaseCore::Exact(exact) => {
                let before = self.out.len();
                let (ssh, recovered) = self
                    .config
                    .ssh_core()
                    .with_exact_state(exact.into_tables(), &mut self.out);
                self.count_new_emissions(before);
                self.core = PhaseCore::Approximate(ssh);
                self.recovered_at_switch = recovered;
                self.switched_after = Some(self.total_consumed());
                Ok(recovered)
            }
            other => {
                self.core = other;
                Err(LinkageError::adaptivity(
                    "switch_to_approximate called on an already approximate join",
                ))
            }
        }
    }

    /// Consume exactly one input tuple, buffering any resulting matches.
    /// Returns `false` when the input is exhausted.  This is the
    /// fine-grained stepping hook the adaptive controller uses to assess
    /// between tuples.
    pub fn advance(&mut self) -> Result<bool> {
        self.state.check_next(self.name())?;
        match self.input.next()? {
            Some(sided) => {
                self.consumed[sided.side] += 1;
                let before = self.out.len();
                match &mut self.core {
                    PhaseCore::Exact(c) => {
                        c.process(sided, &mut self.out)?;
                    }
                    PhaseCore::Approximate(c) => {
                        c.process(sided, &mut self.out)?;
                    }
                    PhaseCore::Switching => {
                        return Err(LinkageError::adaptivity(
                            "advance() during an in-flight switch",
                        ))
                    }
                }
                self.count_new_emissions(before);
                Ok(true)
            }
            None => Ok(false),
        }
    }

    /// Pop one buffered match, if any.
    pub fn pop(&mut self) -> Option<MatchPair> {
        self.out.pop_front()
    }

    /// Number of emitted pairs currently buffered (not yet popped).
    pub fn buffered(&self) -> usize {
        self.out.len()
    }

    /// The exact-phase kernel, if the join has not switched.
    pub fn exact_core_ref(&self) -> Option<&ExactJoinCore> {
        match &self.core {
            PhaseCore::Exact(c) => Some(c),
            _ => None,
        }
    }

    /// The approximate-phase kernel, if the join has switched.
    pub fn ssh_core_ref(&self) -> Option<&SshJoinCore> {
        match &self.core {
            PhaseCore::Approximate(c) => Some(c),
            _ => None,
        }
    }

    /// The buffered matches not yet popped, oldest first — the snapshot
    /// persists these verbatim so a resumed run re-emits them in order.
    pub fn pending_pairs(&self) -> impl ExactSizeIterator<Item = &MatchPair> {
        self.out.iter()
    }

    /// Install snapshot state and fast-forward the input past the prefix
    /// the snapshotted run had already consumed.
    ///
    /// Requires an open, pristine join (nothing consumed, nothing
    /// buffered).  The snapshot stores no input tuples; the resumed
    /// pipeline re-reads the same sources and this method discards
    /// exactly `snap.consumed` tuples per side, verifying the counts as
    /// it goes — a source that ends early or interleaves differently is
    /// a typed [`LinkageError::Snapshot`] error, never silent
    /// corruption.
    pub fn restore(&mut self, snap: SwitchRestore) -> Result<()> {
        if self.state != OperatorState::Open {
            return Err(LinkageError::snapshot("restore requires an open operator"));
        }
        if self.total_consumed() != 0 || !self.out.is_empty() {
            return Err(LinkageError::snapshot(
                "restore requires a pristine join (nothing consumed or buffered)",
            ));
        }
        self.core = match snap.core {
            RestoredCore::Exact(c) => PhaseCore::Exact(c),
            RestoredCore::Approximate(c) => PhaseCore::Approximate(c),
        };
        self.out.extend(snap.pending);
        self.emitted = snap.emitted;
        self.recovered_at_switch = snap.recovered_at_switch;
        self.switched_after = snap.switched_after;

        let target = snap.consumed;
        while self.consumed.left < target.left || self.consumed.right < target.right {
            let Some(sided) = self.input.next()? else {
                return Err(LinkageError::snapshot(format!(
                    "input ended while skipping the consumed prefix: snapshot consumed \
                     {}/{} tuples (left/right), input supplied only {}/{}",
                    target.left, target.right, self.consumed.left, self.consumed.right
                )));
            };
            self.consumed[sided.side] += 1;
            if self.consumed[sided.side] > target[sided.side] {
                return Err(LinkageError::snapshot(format!(
                    "input does not match the snapshot: saw more {:?}-side tuples in the \
                     prefix than the snapshotted run consumed ({} > {})",
                    sided.side, self.consumed[sided.side], target[sided.side]
                )));
            }
        }
        Ok(())
    }

    fn count_new_emissions(&mut self, buffered_before: usize) {
        for pair in self.out.iter().skip(buffered_before) {
            match pair.kind {
                MatchKind::Exact => self.emitted.exact += 1,
                MatchKind::Approximate { .. } => self.emitted.approximate += 1,
            }
        }
    }
}

impl<I: Operator<Item = SidedRecord>> Operator for SwitchJoin<I> {
    type Item = MatchPair;

    fn name(&self) -> &'static str {
        "switch-join"
    }

    fn state(&self) -> OperatorState {
        self.state
    }

    fn open(&mut self) -> Result<()> {
        self.state.check_open(self.name())?;
        self.input.open()?;
        self.state = OperatorState::Open;
        Ok(())
    }

    fn next(&mut self) -> Result<Option<MatchPair>> {
        self.state.check_next(self.name())?;
        loop {
            if let Some(pair) = self.out.pop_front() {
                return Ok(Some(pair));
            }
            if !self.advance()? {
                return Ok(None);
            }
        }
    }

    fn close(&mut self) -> Result<()> {
        if self.state != OperatorState::Closed {
            self.input.close()?;
            self.state = OperatorState::Closed;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::InterleavedScan;
    use linkage_types::{Field, Record, Schema, Value, VecStream};

    fn stream_of(keys: &[&str]) -> VecStream {
        let records = keys
            .iter()
            .enumerate()
            .map(|(i, k)| Record::new(i as u64, vec![Value::string(*k)]))
            .collect();
        VecStream::new(Schema::of(vec![Field::string("k")]), records)
    }

    const A: &str = "TAA BZ SANTA CRISTINA VALGARDENA";
    const A_TYPO: &str = "TAA BZ SANTA CRISTINx VALGARDENA";
    const B: &str = "LIG GE GENOVA NERVI CAPOLUNGO";
    const B_TYPO: &str = "LIG GE GENOVA NERVx CAPOLUNGO";
    const C: &str = "PIE TO TORINO CENTRO STAZIONE";

    fn switch_join(
        left: &[&str],
        right: &[&str],
    ) -> SwitchJoin<InterleavedScan<VecStream, VecStream>> {
        let scan = InterleavedScan::alternating(stream_of(left), stream_of(right));
        SwitchJoin::new(scan, SwitchJoinConfig::new(PerSide::new(0, 0)))
    }

    #[test]
    fn stays_exact_without_a_switch() {
        let mut join = switch_join(&[A, B], &[A, B_TYPO]);
        let pairs = join.run_to_end().unwrap();
        assert_eq!(join.phase(), JoinPhase::Exact);
        assert_eq!(pairs.len(), 1, "typo pair is missed by the exact phase");
        assert_eq!(
            join.emitted(),
            PerKind {
                exact: 1,
                approximate: 0
            }
        );
        assert!(join.switched_after().is_none());
    }

    #[test]
    fn mid_stream_switch_recovers_resident_matches_without_duplicates() {
        let mut join = switch_join(&[A, B, C], &[A, B_TYPO, C]);
        join.open().unwrap();
        // Drain the first four tuples: the clean (A, A) pair is emitted, the
        // (B, B_TYPO) pair is silently missed.
        for _ in 0..4 {
            assert!(join.advance().unwrap());
        }
        let mut pairs: Vec<MatchPair> = std::iter::from_fn(|| join.pop()).collect();
        assert_eq!(pairs.len(), 1);

        // Switch mid-stream: the missed pair is recovered from state.
        let recovered = join.switch_to_approximate().unwrap();
        assert_eq!(recovered, 1);
        assert_eq!(join.phase(), JoinPhase::Approximate);
        assert_eq!(join.switched_after(), Some(4));

        // Finish the stream: the (C, C) pair arrives post-switch and is
        // emitted (as exact kind) by the approximate kernel.
        while let Some(p) = join.next().unwrap() {
            pairs.push(p);
        }
        join.close().unwrap();

        assert_eq!(pairs.len(), 3);
        let mut seen = std::collections::HashSet::new();
        for p in &pairs {
            assert!(seen.insert(p.id_pair()), "duplicate pair {:?}", p.id_pair());
        }
        assert_eq!(
            join.emitted(),
            PerKind {
                exact: 2,
                approximate: 1
            }
        );
        assert_eq!(join.recovered_at_switch(), 1);
    }

    #[test]
    fn switch_twice_is_an_adaptivity_error() {
        let mut join = switch_join(&[A], &[A]);
        join.open().unwrap();
        join.switch_to_approximate().unwrap();
        let err = join.switch_to_approximate().unwrap_err();
        assert!(matches!(err, LinkageError::Adaptivity(_)));
        // The operator must still be usable after the failed switch.
        assert_eq!(join.run_to_end().unwrap().len(), 1);
    }

    #[test]
    fn switch_requires_open_operator() {
        let mut join = switch_join(&[A], &[A]);
        assert!(join.switch_to_approximate().is_err());
    }

    #[test]
    fn immediate_switch_behaves_like_pure_ssh_join() {
        let mut join = switch_join(&[A, B], &[A_TYPO, B_TYPO]);
        join.open().unwrap();
        assert_eq!(join.switch_to_approximate().unwrap(), 0);
        let pairs = join.run_to_end().unwrap();
        assert_eq!(pairs.len(), 2);
        assert!(pairs.iter().all(|p| p.kind.is_approximate()));
    }

    #[test]
    fn counters_track_phases() {
        let mut join = switch_join(&[A, B], &[A, B_TYPO]);
        join.open().unwrap();
        while join.advance().unwrap() {}
        assert_eq!(join.total_consumed(), 4);
        assert_eq!(join.stored(), PerSide::new(2, 2));
        join.switch_to_approximate().unwrap();
        assert_eq!(
            join.stored(),
            PerSide::new(2, 2),
            "state survives the handover"
        );
        assert_eq!(join.emitted().total(), 2);
    }
}
