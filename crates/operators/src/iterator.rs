//! The pipelined operator iterator protocol.
//!
//! Every physical operator follows the classic `OPEN`/`NEXT`/`CLOSE`
//! lifecycle of the relational iterator model, made explicit as a state
//! machine so that illegal transitions (pulling before opening, reopening a
//! closed operator) surface as [`LinkageError::OperatorState`] errors
//! instead of silent misbehaviour.  Unlike [`linkage_types::RecordStream`]
//! — the lenient, infallible contract for leaf *sources* — operators carry
//! state worth protecting (hash tables, inverted indexes, adaptive
//! counters), so every protocol method is fallible.

use linkage_types::{LinkageError, Result};

/// Lifecycle state of an operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OperatorState {
    /// Constructed but not yet opened.
    #[default]
    Created,
    /// Open: `next` may be called.
    Open,
    /// Closed: no further calls succeed except idempotent `close`.
    Closed,
}

impl OperatorState {
    /// Check that `open` is legal from this state.
    pub fn check_open(self, op: &str) -> Result<()> {
        match self {
            OperatorState::Created => Ok(()),
            OperatorState::Open => Err(LinkageError::operator_state(format!(
                "{op}: open() called on an already open operator"
            ))),
            OperatorState::Closed => Err(LinkageError::operator_state(format!(
                "{op}: open() called on a closed operator"
            ))),
        }
    }

    /// Check that `next` is legal from this state.
    pub fn check_next(self, op: &str) -> Result<()> {
        match self {
            OperatorState::Open => Ok(()),
            OperatorState::Created => Err(LinkageError::operator_state(format!(
                "{op}: next() called before open()"
            ))),
            OperatorState::Closed => Err(LinkageError::operator_state(format!(
                "{op}: next() called after close()"
            ))),
        }
    }
}

/// A pipelined physical operator producing items of type `Self::Item`.
///
/// Contract:
///
/// * [`open`](Self::open) transitions `Created → Open` and recursively opens
///   the operator's inputs; calling it twice is an error.
/// * [`next`](Self::next) may only be called while `Open`; it returns
///   `Ok(None)` exactly when the operator is exhausted (further calls keep
///   returning `Ok(None)`).
/// * [`close`](Self::close) transitions to `Closed` and releases input
///   resources; it is idempotent, but opening after closing is an error.
pub trait Operator {
    /// The item type this operator produces.
    type Item;

    /// A short, stable name for error messages and reports.
    fn name(&self) -> &'static str;

    /// Current lifecycle state.
    fn state(&self) -> OperatorState;

    /// Prepare the operator and its inputs for pulling.
    fn open(&mut self) -> Result<()>;

    /// Produce the next item, or `Ok(None)` when exhausted.
    fn next(&mut self) -> Result<Option<Self::Item>>;

    /// Release resources; idempotent.
    fn close(&mut self) -> Result<()>;

    /// Pull up to `max` items in one call.  Returns fewer than `max` items
    /// only when the operator is exhausted.
    fn next_batch(&mut self, max: usize) -> Result<Vec<Self::Item>> {
        let mut out = Vec::with_capacity(max.min(1024));
        while out.len() < max {
            match self.next()? {
                Some(item) => out.push(item),
                None => break,
            }
        }
        Ok(out)
    }

    /// Convenience driver: open if necessary, drain every item, close.
    fn run_to_end(&mut self) -> Result<Vec<Self::Item>> {
        if self.state() == OperatorState::Created {
            self.open()?;
        }
        let mut out = Vec::new();
        while let Some(item) = self.next()? {
            out.push(item);
        }
        self.close()?;
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A counting operator used to exercise the default methods.
    struct Upto {
        n: u32,
        next: u32,
        state: OperatorState,
    }

    impl Operator for Upto {
        type Item = u32;

        fn name(&self) -> &'static str {
            "upto"
        }

        fn state(&self) -> OperatorState {
            self.state
        }

        fn open(&mut self) -> Result<()> {
            self.state.check_open(self.name())?;
            self.state = OperatorState::Open;
            Ok(())
        }

        fn next(&mut self) -> Result<Option<u32>> {
            self.state.check_next(self.name())?;
            if self.next < self.n {
                self.next += 1;
                Ok(Some(self.next - 1))
            } else {
                Ok(None)
            }
        }

        fn close(&mut self) -> Result<()> {
            self.state = OperatorState::Closed;
            Ok(())
        }
    }

    fn upto(n: u32) -> Upto {
        Upto {
            n,
            next: 0,
            state: OperatorState::Created,
        }
    }

    #[test]
    fn protocol_enforces_open_before_next() {
        let mut op = upto(3);
        assert!(matches!(
            op.next(),
            Err(LinkageError::OperatorState(ref m)) if m.contains("before open")
        ));
        op.open().unwrap();
        assert_eq!(op.next().unwrap(), Some(0));
        assert!(op.open().is_err(), "double open must fail");
        op.close().unwrap();
        assert!(op.next().is_err(), "next after close must fail");
        assert!(op.open().is_err(), "reopen after close must fail");
        assert!(op.close().is_ok(), "close is idempotent");
    }

    #[test]
    fn next_batch_is_bounded_and_drains() {
        let mut op = upto(5);
        op.open().unwrap();
        assert_eq!(op.next_batch(2).unwrap(), vec![0, 1]);
        assert_eq!(op.next_batch(10).unwrap(), vec![2, 3, 4]);
        assert!(op.next_batch(1).unwrap().is_empty());
    }

    #[test]
    fn run_to_end_opens_drains_and_closes() {
        let mut op = upto(4);
        assert_eq!(op.run_to_end().unwrap(), vec![0, 1, 2, 3]);
        assert_eq!(op.state(), OperatorState::Closed);
    }

    #[test]
    fn state_checks_name_the_operator() {
        let err = OperatorState::Closed.check_next("ssh-join").unwrap_err();
        assert!(err.to_string().contains("ssh-join"));
    }
}
