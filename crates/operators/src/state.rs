//! The hash-table state of the exact join — the unit handed over to the
//! approximate join at switch time (paper §3.3).

use std::collections::HashMap;
use std::sync::Arc;

use linkage_types::Record;

/// One tuple resident in a join hash table.
#[derive(Debug, Clone)]
pub struct StoredTuple {
    /// The tuple itself.
    pub record: Record,
    /// The normalised join key the tuple was hashed under.
    pub key: Arc<str>,
    /// Whether this tuple has produced at least one **exact** match.
    ///
    /// The flag is the paper's per-tuple *matched-exactly* marker (§3.3): at
    /// switch time the approximate join re-probes the accumulated state, and
    /// a candidate pair whose keys are identical and whose tuples are both
    /// flagged was already emitted by the exact operator — re-emitting it
    /// would duplicate output.
    pub matched_exactly: bool,
}

/// One side's hash table: tuples in arrival order plus an index from the
/// normalised key to the positions holding it.
#[derive(Debug, Clone, Default)]
pub struct KeyTable {
    tuples: Vec<StoredTuple>,
    by_key: HashMap<Arc<str>, Vec<usize>>,
}

impl KeyTable {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of stored tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Insert a tuple under its normalised key, returning its position.
    pub fn insert(&mut self, record: Record, key: Arc<str>) -> usize {
        let idx = self.tuples.len();
        self.by_key.entry(Arc::clone(&key)).or_default().push(idx);
        self.tuples.push(StoredTuple {
            record,
            key,
            matched_exactly: false,
        });
        idx
    }

    /// Positions of the tuples stored under `key`.
    pub fn positions_of(&self, key: &str) -> &[usize] {
        self.by_key.get(key).map(Vec::as_slice).unwrap_or(&[])
    }

    /// The tuple at `idx`.
    pub fn tuple(&self, idx: usize) -> &StoredTuple {
        &self.tuples[idx]
    }

    /// Mark the tuple at `idx` as having matched exactly.
    pub fn mark_matched(&mut self, idx: usize) {
        self.tuples[idx].matched_exactly = true;
    }

    /// All stored tuples, in arrival order.
    pub fn tuples(&self) -> &[StoredTuple] {
        &self.tuples
    }

    /// Consume the table, yielding its tuples in arrival order.  Used by the
    /// exact → approximate state handover.
    pub fn into_tuples(self) -> Vec<StoredTuple> {
        self.tuples
    }

    /// Number of distinct keys in the table.
    pub fn distinct_keys(&self) -> usize {
        self.by_key.len()
    }

    /// Estimated resident-state size in bytes.
    ///
    /// Counts the tuple entries, the shared key text (once — both the tuple
    /// and the index hold `Arc` clones of the same allocation) and the
    /// key-index positions.  An estimate, not an allocator measurement: it
    /// exists so experiments can compare state growth across operators and
    /// shard counts on a consistent scale (the paper's §2.3 space analysis).
    pub fn state_bytes(&self) -> usize {
        let tuples = self.tuples.len() * std::mem::size_of::<StoredTuple>();
        let keys: usize = self.tuples.iter().map(|t| t.key.len()).sum();
        let index = self.by_key.len() * std::mem::size_of::<(Arc<str>, Vec<usize>)>()
            + self
                .by_key
                .values()
                .map(|v| v.len() * std::mem::size_of::<usize>())
                .sum::<usize>();
        tuples + keys + index
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use linkage_types::Value;

    fn rec(id: u64, key: &str) -> (Record, Arc<str>) {
        (Record::new(id, vec![Value::string(key)]), Arc::from(key))
    }

    #[test]
    fn insert_and_probe_by_key() {
        let mut t = KeyTable::new();
        assert!(t.is_empty());
        let (r0, k0) = rec(0, "ROMA");
        let (r1, k1) = rec(1, "MILANO");
        let (r2, k2) = rec(2, "ROMA");
        assert_eq!(t.insert(r0, k0), 0);
        assert_eq!(t.insert(r1, k1), 1);
        assert_eq!(t.insert(r2, k2), 2);
        assert_eq!(t.len(), 3);
        assert_eq!(t.positions_of("ROMA"), &[0, 2]);
        assert_eq!(t.positions_of("MILANO"), &[1]);
        assert!(t.positions_of("NAPOLI").is_empty());
        assert_eq!(t.distinct_keys(), 2);
    }

    #[test]
    fn state_bytes_grow_with_insertions() {
        let mut t = KeyTable::new();
        assert_eq!(t.state_bytes(), 0);
        let (r0, k0) = rec(0, "ROMA");
        t.insert(r0, k0);
        let after_one = t.state_bytes();
        assert!(after_one > 0);
        let (r1, k1) = rec(1, "MILANO");
        t.insert(r1, k1);
        assert!(t.state_bytes() > after_one);
    }

    #[test]
    fn matched_flags_start_false_and_stick() {
        let mut t = KeyTable::new();
        let (r, k) = rec(7, "GENOVA");
        let idx = t.insert(r, k);
        assert!(!t.tuple(idx).matched_exactly);
        t.mark_matched(idx);
        assert!(t.tuple(idx).matched_exactly);
        let tuples = t.into_tuples();
        assert_eq!(tuples.len(), 1);
        assert!(tuples[0].matched_exactly);
        assert_eq!(tuples[0].key.as_ref(), "GENOVA");
    }
}
