//! The retained string-keyed reference probe.
//!
//! This is the approximate join kernel exactly as it existed *before*
//! gram interning: posting lists keyed by gram text in a `HashMap`
//! (SipHash per gram per probe), per-probe overlap counting in a freshly
//! allocated `HashMap<usize, usize>` sorted into arrival order.  Quadratic
//! in neither sense — it is the same inverted-index algorithm — but
//! deliberately slow-path and independent of the interned fast path in
//! [`crate::ssh`]:
//!
//! * the property suites run randomized workloads (all four
//!   [`QGramCoefficient`]s, including the §3.3 mid-stream handover)
//!   through both kernels and require bit-identical match streams;
//! * it shares **no** tokenisation state with the fast path — it builds
//!   [`StringGramSet`]s, the interned kernel builds id sets — so a bug in
//!   the interner cannot cancel out of the comparison.
//!
//! Like [`crate::oracle`], not for production use.

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

use linkage_text::{normalize, Gram, QGramCoefficient, QGramConfig, StringGramSet};
use linkage_types::{MatchPair, PerSide, Record, Result, Side, SidedRecord};

use crate::exact::orient;
use crate::state::KeyTable;

/// One tuple resident in the reference probe, with its string gram set.
#[derive(Debug, Clone)]
pub struct ReferenceStored {
    /// The tuple itself.
    pub record: Record,
    /// The normalised join key.
    pub key: Arc<str>,
    /// The string-keyed q-gram set of the key.
    pub grams: StringGramSet,
    /// Carried-over matched-exactly flag.
    pub matched_exactly: bool,
}

/// One side's string-keyed inverted index (the pre-interning layout).
#[derive(Debug, Clone, Default)]
pub struct ReferenceIndex {
    tuples: Vec<ReferenceStored>,
    postings: HashMap<Gram, Vec<usize>>,
}

impl ReferenceIndex {
    /// Number of indexed tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// Whether the index holds no tuples.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// The indexed tuples, in arrival order.
    pub fn tuples(&self) -> &[ReferenceStored] {
        &self.tuples
    }

    fn insert(&mut self, stored: ReferenceStored) -> usize {
        let idx = self.tuples.len();
        for gram in stored.grams.iter() {
            self.postings.entry(Arc::clone(gram)).or_default().push(idx);
        }
        self.tuples.push(stored);
        idx
    }

    /// Count, per candidate tuple, the grams shared with `probe`; sorted
    /// by arrival position so the output order matches the interned
    /// kernel's.
    fn overlap_counts(&self, probe: &StringGramSet) -> Vec<(usize, usize)> {
        let mut counts: HashMap<usize, usize> = HashMap::new();
        for gram in probe.iter() {
            if let Some(postings) = self.postings.get(gram.as_ref()) {
                for &idx in postings {
                    *counts.entry(idx).or_insert(0) += 1;
                }
            }
        }
        let mut ordered: Vec<(usize, usize)> = counts.into_iter().collect();
        ordered.sort_unstable_by_key(|&(idx, _)| idx);
        ordered
    }
}

/// The string-keyed reference twin of [`SshJoinCore`]: same probe-then-
/// insert protocol, same §3.3 handover, pre-interning data structures.
///
/// [`SshJoinCore`]: crate::ssh::SshJoinCore
#[derive(Debug, Clone)]
pub struct ReferenceSshCore {
    keys: PerSide<usize>,
    config: QGramConfig,
    coefficient: QGramCoefficient,
    theta: f64,
    sides: PerSide<ReferenceIndex>,
    emitted_exact: u64,
    emitted_approx: u64,
}

impl ReferenceSshCore {
    /// Build a reference core joining on `keys` with threshold `theta`
    /// over q-gram sets extracted under `config`.
    pub fn new(keys: PerSide<usize>, config: QGramConfig, theta: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&theta),
            "similarity threshold must be in [0, 1], got {theta}"
        );
        Self {
            keys,
            config,
            coefficient: QGramCoefficient::default(),
            theta,
            sides: PerSide::default(),
            emitted_exact: 0,
            emitted_approx: 0,
        }
    }

    /// Score candidates with a different q-gram set coefficient.
    #[must_use]
    pub fn with_coefficient(mut self, coefficient: QGramCoefficient) -> Self {
        self.coefficient = coefficient;
        self
    }

    /// Change the scoring coefficient mid-stream, mirroring
    /// [`SshJoinCore::set_coefficient`] so the equivalence suites can
    /// drive both kernels through the same coefficient schedule.
    ///
    /// [`SshJoinCore::set_coefficient`]: crate::ssh::SshJoinCore::set_coefficient
    pub fn set_coefficient(&mut self, coefficient: QGramCoefficient) {
        self.coefficient = coefficient;
    }

    /// The §3.3 handover from the exact join's tables: rebuild both
    /// string-keyed indexes and recover missed matches into `out`,
    /// mirroring [`SshJoinCore::with_exact_state`] decision for
    /// decision.  Returns the core and the recovered-pair count.
    ///
    /// [`SshJoinCore::with_exact_state`]: crate::ssh::SshJoinCore::with_exact_state
    pub fn with_exact_state(
        mut self,
        tables: PerSide<KeyTable>,
        out: &mut VecDeque<MatchPair>,
    ) -> (Self, u64) {
        assert!(
            self.sides.left.is_empty() && self.sides.right.is_empty(),
            "with_exact_state requires a freshly built core"
        );
        for side in Side::BOTH {
            for stored in tables[side].tuples() {
                let grams = StringGramSet::extract(&stored.key, &self.config);
                self.sides[side].insert(ReferenceStored {
                    record: stored.record.clone(),
                    key: Arc::clone(&stored.key),
                    grams,
                    matched_exactly: stored.matched_exactly,
                });
            }
        }

        let mut recovered = 0u64;
        let (left_index, right_index) = (&self.sides.left, &self.sides.right);
        let mut pairs: Vec<MatchPair> = Vec::new();
        let mut recovered_exact = 0u64;
        let mut recovered_approx = 0u64;
        for l in left_index.tuples() {
            let bound = self.coefficient.min_overlap(l.grams.len(), self.theta);
            for (r_idx, shared) in right_index.overlap_counts(&l.grams) {
                if shared < bound {
                    continue;
                }
                let r = &right_index.tuples()[r_idx];
                if l.key == r.key {
                    if l.matched_exactly && r.matched_exactly {
                        continue;
                    }
                    pairs.push(MatchPair::exact(l.record.clone(), r.record.clone()));
                    recovered_exact += 1;
                    recovered += 1;
                    continue;
                }
                let sim = self
                    .coefficient
                    .from_overlap(l.grams.len(), r.grams.len(), shared);
                if sim >= self.theta {
                    pairs.push(MatchPair::approximate(
                        l.record.clone(),
                        r.record.clone(),
                        sim,
                    ));
                    recovered_approx += 1;
                    recovered += 1;
                }
            }
        }
        out.extend(pairs);
        self.emitted_exact += recovered_exact;
        self.emitted_approx += recovered_approx;
        (self, recovered)
    }

    /// Process one arriving tuple: probe the opposite index, emit pairs
    /// at or above the threshold into `out`, insert into the own index.
    /// Returns the number of pairs emitted.
    pub fn process(&mut self, sided: SidedRecord, out: &mut VecDeque<MatchPair>) -> Result<usize> {
        let raw = sided.record.key_str(self.keys[sided.side])?;
        let key: Arc<str> = Arc::from(normalize(raw, &self.config.normalize).as_str());
        let grams = StringGramSet::extract(raw, &self.config);

        let bound = self.coefficient.min_overlap(grams.len(), self.theta);
        let coefficient = self.coefficient;
        let (own, opposite) = self.sides.own_and_opposite_mut(sided.side);
        let mut emitted = 0usize;
        let mut matched_exactly = false;
        let mut exact_partners: Vec<usize> = Vec::new();
        for (idx, shared) in opposite.overlap_counts(&grams) {
            if shared < bound {
                continue;
            }
            let partner = &opposite.tuples[idx];
            let pair = if partner.key == key {
                matched_exactly = true;
                exact_partners.push(idx);
                let (l, r) = orient(sided.side, sided.record.clone(), partner.record.clone());
                MatchPair::exact(l, r)
            } else {
                let sim = coefficient.from_overlap(grams.len(), partner.grams.len(), shared);
                if sim < self.theta {
                    continue;
                }
                let (l, r) = orient(sided.side, sided.record.clone(), partner.record.clone());
                MatchPair::approximate(l, r, sim)
            };
            if pair.kind.is_exact() {
                self.emitted_exact += 1;
            } else {
                self.emitted_approx += 1;
            }
            out.push_back(pair);
            emitted += 1;
        }
        for idx in exact_partners {
            opposite.tuples[idx].matched_exactly = true;
        }
        own.insert(ReferenceStored {
            record: sided.record.clone(),
            key,
            grams,
            matched_exactly,
        });
        Ok(emitted)
    }

    /// Pairs emitted with identical keys.
    pub fn emitted_exact(&self) -> u64 {
        self.emitted_exact
    }

    /// Pairs emitted by similarity only.
    pub fn emitted_approx(&self) -> u64 {
        self.emitted_approx
    }

    /// Number of tuples indexed per side.
    pub fn stored(&self) -> PerSide<usize> {
        self.sides.map(ReferenceIndex::len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ssh::SshJoinCore;
    use linkage_types::Value;

    fn sided(side: Side, id: u64, key: &str) -> SidedRecord {
        SidedRecord::new(side, Record::new(id, vec![Value::string(key)]))
    }

    const A: &str = "TAA BZ SANTA CRISTINA VALGARDENA";
    const A_TYPO: &str = "TAA BZ SANTA CRISTINx VALGARDENA";
    const B: &str = "LIG GE GENOVA NERVI";

    #[test]
    fn reference_and_interned_kernels_emit_identical_streams() {
        let feed = [
            sided(Side::Left, 0, A),
            sided(Side::Right, 0, A_TYPO),
            sided(Side::Right, 1, B),
            sided(Side::Left, 1, B),
            sided(Side::Left, 2, A_TYPO),
        ];
        for coefficient in QGramCoefficient::ALL {
            let mut fast = SshJoinCore::new(PerSide::new(0, 0), QGramConfig::default(), 0.8)
                .with_coefficient(coefficient);
            let mut reference =
                ReferenceSshCore::new(PerSide::new(0, 0), QGramConfig::default(), 0.8)
                    .with_coefficient(coefficient);
            let (mut out_fast, mut out_ref) = (VecDeque::new(), VecDeque::new());
            for t in &feed {
                fast.process(t.clone(), &mut out_fast).unwrap();
                reference.process(t.clone(), &mut out_ref).unwrap();
            }
            let view = |q: &VecDeque<MatchPair>| {
                q.iter().map(|p| (p.id_pair(), p.kind)).collect::<Vec<_>>()
            };
            assert_eq!(
                view(&out_fast),
                view(&out_ref),
                "{} kernels disagree",
                coefficient.name()
            );
            assert_eq!(fast.stored(), reference.stored());
            assert_eq!(fast.emitted_exact(), reference.emitted_exact());
            assert_eq!(fast.emitted_approx(), reference.emitted_approx());
        }
    }

    #[test]
    #[should_panic(expected = "threshold")]
    fn rejects_out_of_range_threshold() {
        ReferenceSshCore::new(PerSide::new(0, 0), QGramConfig::default(), -0.1);
    }
}
