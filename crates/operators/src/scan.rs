//! Leaf operators: scans over record streams.

use linkage_types::{
    InterleavePolicy, InterleavedStream, PerSide, Record, RecordStream, Result, Schema, Side,
    SidedRecord,
};

use crate::iterator::{Operator, OperatorState};

/// A scan over a single [`RecordStream`], validating every record against
/// the stream schema at ingestion (operators downstream then index fields
/// positionally without re-checking).
pub struct Scan<S> {
    stream: S,
    state: OperatorState,
    consumed: u64,
}

impl<S: RecordStream> Scan<S> {
    /// Build a scan over `stream`.
    pub fn new(stream: S) -> Self {
        Self {
            stream,
            state: OperatorState::default(),
            consumed: 0,
        }
    }

    /// The schema of the scanned records.
    pub fn schema(&self) -> &Schema {
        self.stream.schema()
    }

    /// Number of records produced so far.
    pub fn consumed(&self) -> u64 {
        self.consumed
    }
}

impl<S: RecordStream> Operator for Scan<S> {
    type Item = Record;

    fn name(&self) -> &'static str {
        "scan"
    }

    fn state(&self) -> OperatorState {
        self.state
    }

    fn open(&mut self) -> Result<()> {
        self.state.check_open(self.name())?;
        self.stream.open();
        self.state = OperatorState::Open;
        Ok(())
    }

    fn next(&mut self) -> Result<Option<Record>> {
        self.state.check_next(self.name())?;
        match self.stream.next_record() {
            Some(record) => {
                self.stream.schema().validate(&record.values)?;
                self.consumed += 1;
                Ok(Some(record))
            }
            None => Ok(None),
        }
    }

    fn close(&mut self) -> Result<()> {
        if self.state != OperatorState::Closed {
            self.stream.close();
            self.state = OperatorState::Closed;
        }
        Ok(())
    }
}

/// The symmetric joins' input: two scans merged into one stream of
/// [`SidedRecord`]s under an [`InterleavePolicy`].
///
/// Validation happens here, per side, so the joins can trust field
/// positions.
pub struct InterleavedScan<L, R> {
    inner: InterleavedStream<L, R>,
    state: OperatorState,
    consumed: PerSide<u64>,
}

impl<L: RecordStream, R: RecordStream> InterleavedScan<L, R> {
    /// Build from two streams and a policy.
    pub fn new(left: L, right: R, policy: InterleavePolicy) -> Self {
        Self {
            inner: InterleavedStream::new(left, right, policy),
            state: OperatorState::default(),
            consumed: PerSide::default(),
        }
    }

    /// Build with the paper's default strictly alternating policy.
    pub fn alternating(left: L, right: R) -> Self {
        Self::new(left, right, InterleavePolicy::Alternate)
    }

    /// Schemas of the two inputs.
    pub fn schemas(&self) -> (&Schema, &Schema) {
        self.inner.schemas()
    }

    /// Number of records produced so far from each side.
    pub fn consumed(&self) -> PerSide<u64> {
        self.consumed
    }
}

impl<L: RecordStream, R: RecordStream> Operator for InterleavedScan<L, R> {
    type Item = SidedRecord;

    fn name(&self) -> &'static str {
        "interleaved-scan"
    }

    fn state(&self) -> OperatorState {
        self.state
    }

    fn open(&mut self) -> Result<()> {
        self.state.check_open(self.name())?;
        self.inner.open();
        self.state = OperatorState::Open;
        Ok(())
    }

    fn next(&mut self) -> Result<Option<SidedRecord>> {
        self.state.check_next(self.name())?;
        match self.inner.next_sided() {
            Some(sided) => {
                let schema = match sided.side {
                    Side::Left => self.inner.schemas().0,
                    Side::Right => self.inner.schemas().1,
                };
                schema.validate(&sided.record.values)?;
                self.consumed[sided.side] += 1;
                Ok(Some(sided))
            }
            None => Ok(None),
        }
    }

    fn close(&mut self) -> Result<()> {
        if self.state != OperatorState::Closed {
            self.inner.close();
            self.state = OperatorState::Closed;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use linkage_types::{Field, Value, VecStream};

    fn stream_of(keys: &[&str]) -> VecStream {
        let records = keys
            .iter()
            .enumerate()
            .map(|(i, k)| Record::new(i as u64, vec![Value::string(*k)]))
            .collect();
        VecStream::new(Schema::of(vec![Field::string("k")]), records)
    }

    #[test]
    fn scan_produces_all_records_and_counts() {
        let mut scan = Scan::new(stream_of(&["a", "b", "c"]));
        let out = scan.run_to_end().unwrap();
        assert_eq!(out.len(), 3);
        assert_eq!(scan.consumed(), 3);
        assert_eq!(scan.schema().len(), 1);
    }

    #[test]
    fn scan_validates_records_at_ingestion() {
        // A record with the wrong arity sneaks into the stream.
        let schema = Schema::of(vec![Field::string("k")]);
        let records = vec![
            Record::new(0u64, vec![Value::string("ok")]),
            Record::new(1u64, vec![Value::string("bad"), Value::Int(1)]),
        ];
        let mut scan = Scan::new(VecStream::new(schema, records));
        scan.open().unwrap();
        assert!(scan.next().unwrap().is_some());
        assert!(scan.next().is_err(), "invalid record must be rejected");
    }

    #[test]
    fn scan_requires_open() {
        let mut scan = Scan::new(stream_of(&["a"]));
        assert!(scan.next().is_err());
        scan.open().unwrap();
        assert!(scan.next().unwrap().is_some());
        scan.close().unwrap();
        assert!(scan.next().is_err());
    }

    #[test]
    fn interleaved_scan_alternates_and_counts_per_side() {
        let mut scan = InterleavedScan::alternating(stream_of(&["l1", "l2"]), stream_of(&["r1"]));
        let out = scan.run_to_end().unwrap();
        assert_eq!(out.len(), 3);
        assert_eq!(out[0].side, Side::Left);
        assert_eq!(out[1].side, Side::Right);
        assert_eq!(scan.consumed()[Side::Left], 2);
        assert_eq!(scan.consumed()[Side::Right], 1);
    }

    #[test]
    fn interleaved_scan_batch_pull() {
        let mut scan =
            InterleavedScan::alternating(stream_of(&["l1", "l2"]), stream_of(&["r1", "r2"]));
        scan.open().unwrap();
        let batch = scan.next_batch(3).unwrap();
        assert_eq!(batch.len(), 3);
        let rest = scan.next_batch(10).unwrap();
        assert_eq!(rest.len(), 1);
    }
}
