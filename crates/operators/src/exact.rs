//! The pipelined exact symmetric hash join (paper §2.1).
//!
//! Both inputs are scanned in an interleaved fashion; each arriving tuple
//! first **probes** the opposite side's hash table (emitting one exact
//! match pair per equal-key partner already seen) and is then **inserted**
//! into its own side's table.  Probing before inserting guarantees each
//! cross pair is discovered exactly once, so the operator never emits
//! duplicates.
//!
//! The join logic lives in [`ExactJoinCore`], separated from the operator
//! plumbing so that [`crate::switch::SwitchJoin`] can drive the same core
//! and hand its accumulated [`KeyTable`]s over to the approximate join
//! mid-stream.

use std::collections::VecDeque;
use std::sync::Arc;

use linkage_text::{normalize, NormalizeConfig};
use linkage_types::{MatchPair, PerSide, Record, Result, Side, SidedRecord};

use crate::iterator::{Operator, OperatorState};
use crate::state::KeyTable;

/// The probe-then-insert kernel of the exact symmetric hash join.
#[derive(Debug, Clone)]
pub struct ExactJoinCore {
    keys: PerSide<usize>,
    normalize: NormalizeConfig,
    tables: PerSide<KeyTable>,
    emitted: u64,
}

impl ExactJoinCore {
    /// Build a core joining on the given key columns, normalising keys with
    /// `normalize` before hashing (the same configuration the approximate
    /// join uses before tokenising, so exact equality and similarity 1.0
    /// coincide).
    pub fn new(keys: PerSide<usize>, normalize: NormalizeConfig) -> Self {
        Self {
            keys,
            normalize,
            tables: PerSide::default(),
            emitted: 0,
        }
    }

    /// Process one arriving tuple: probe the opposite table, emit matches
    /// into `out`, insert into the own table.  Returns the number of pairs
    /// emitted.
    pub fn process(&mut self, sided: SidedRecord, out: &mut VecDeque<MatchPair>) -> Result<usize> {
        let key = self.normalized_key(&sided)?;
        self.process_with_key(sided, key, out)
    }

    /// The normalised join key of `sided`, as [`Self::process`] would
    /// compute it.  The sharded execution layer normalises once at the
    /// router (it needs the key to pick a shard) and then hands the key to
    /// [`Self::process_with_key`], so the work is not repeated per shard.
    pub fn normalized_key(&self, sided: &SidedRecord) -> Result<Arc<str>> {
        let raw = sided.record.key_str(self.keys[sided.side])?;
        Ok(Arc::from(normalize(raw, &self.normalize).as_str()))
    }

    /// [`Self::process`] with the normalised key already computed.
    ///
    /// The caller is responsible for `key` being exactly
    /// [`Self::normalized_key`] of `sided` — an inconsistent key would
    /// silently corrupt the hash table.
    pub fn process_with_key(
        &mut self,
        sided: SidedRecord,
        key: Arc<str>,
        out: &mut VecDeque<MatchPair>,
    ) -> Result<usize> {
        let (own, opposite) = self.tables.own_and_opposite_mut(sided.side);
        let partners = opposite.positions_of(&key).to_vec();
        let my_idx = own.insert(sided.record.clone(), key);

        for idx in &partners {
            opposite.mark_matched(*idx);
            let partner = opposite.tuple(*idx).record.clone();
            let (left, right) = orient(sided.side, sided.record.clone(), partner);
            out.push_back(MatchPair::exact(left, right));
        }
        if !partners.is_empty() {
            own.mark_matched(my_idx);
            self.emitted += partners.len() as u64;
        }
        Ok(partners.len())
    }

    /// Number of match pairs emitted so far.
    pub fn emitted(&self) -> u64 {
        self.emitted
    }

    /// Number of tuples stored per side.
    pub fn stored(&self) -> PerSide<usize> {
        self.tables.map(KeyTable::len)
    }

    /// Read access to the accumulated per-side tables.
    pub fn tables(&self) -> &PerSide<KeyTable> {
        &self.tables
    }

    /// Estimated resident-state size in bytes, per side.
    pub fn state_bytes(&self) -> PerSide<usize> {
        self.tables.map(KeyTable::state_bytes)
    }

    /// Consume the core, yielding its state for the exact → approximate
    /// handover (paper §3.3).
    pub fn into_tables(self) -> PerSide<KeyTable> {
        self.tables
    }

    /// Re-insert one tuple during snapshot restore.
    ///
    /// The snapshot stores only the arrival-order tuple column (record,
    /// normalised key, matched-exactly flag); replaying the inserts in
    /// that order re-derives the by-key hash index, so it never hits
    /// disk.  **Snapshot restore only** — tuples must be replayed in
    /// their original arrival order for positions to line up.
    pub fn insert_restored(
        &mut self,
        side: Side,
        record: Record,
        key: Arc<str>,
        matched_exactly: bool,
    ) {
        let idx = self.tables[side].insert(record, key);
        if matched_exactly {
            self.tables[side].mark_matched(idx);
        }
    }

    /// Restore the emission counter from a snapshot (replayed inserts
    /// bypass probing, so the counter must be set explicitly).
    pub fn set_emitted(&mut self, emitted: u64) {
        self.emitted = emitted;
    }
}

/// Order a `(new tuple, stored partner)` pair as `(left, right)`.
pub(crate) fn orient(new_side: Side, new: Record, stored: Record) -> (Record, Record) {
    match new_side {
        Side::Left => (new, stored),
        Side::Right => (stored, new),
    }
}

/// The exact symmetric hash join as a pipelined [`Operator`].
pub struct SymmetricHashJoin<I> {
    input: I,
    core: ExactJoinCore,
    out: VecDeque<MatchPair>,
    state: OperatorState,
    consumed: PerSide<u64>,
}

impl<I: Operator<Item = SidedRecord>> SymmetricHashJoin<I> {
    /// Build over a sided input, joining on `keys` with default key
    /// normalisation.
    pub fn new(input: I, keys: PerSide<usize>) -> Self {
        Self::with_normalization(input, keys, NormalizeConfig::default())
    }

    /// Build with an explicit key normalisation.
    pub fn with_normalization(input: I, keys: PerSide<usize>, normalize: NormalizeConfig) -> Self {
        Self {
            input,
            core: ExactJoinCore::new(keys, normalize),
            out: VecDeque::new(),
            state: OperatorState::default(),
            consumed: PerSide::default(),
        }
    }

    /// Number of input tuples consumed from each side.
    pub fn consumed(&self) -> PerSide<u64> {
        self.consumed
    }

    /// Number of match pairs emitted so far.
    pub fn emitted(&self) -> u64 {
        self.core.emitted()
    }

    /// Number of tuples resident per side (the paper's state-size metric).
    pub fn stored(&self) -> PerSide<usize> {
        self.core.stored()
    }
}

impl<I: Operator<Item = SidedRecord>> Operator for SymmetricHashJoin<I> {
    type Item = MatchPair;

    fn name(&self) -> &'static str {
        "symmetric-hash-join"
    }

    fn state(&self) -> OperatorState {
        self.state
    }

    fn open(&mut self) -> Result<()> {
        self.state.check_open(self.name())?;
        self.input.open()?;
        self.state = OperatorState::Open;
        Ok(())
    }

    fn next(&mut self) -> Result<Option<MatchPair>> {
        self.state.check_next(self.name())?;
        loop {
            if let Some(pair) = self.out.pop_front() {
                return Ok(Some(pair));
            }
            match self.input.next()? {
                Some(sided) => {
                    self.consumed[sided.side] += 1;
                    self.core.process(sided, &mut self.out)?;
                }
                None => return Ok(None),
            }
        }
    }

    fn close(&mut self) -> Result<()> {
        if self.state != OperatorState::Closed {
            self.input.close()?;
            self.state = OperatorState::Closed;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::InterleavedScan;
    use linkage_types::{Field, MatchKind, RecordId, Schema, Value, VecStream};

    fn stream_of(keys: &[&str]) -> VecStream {
        let records = keys
            .iter()
            .enumerate()
            .map(|(i, k)| Record::new(i as u64, vec![Value::string(*k)]))
            .collect();
        VecStream::new(Schema::of(vec![Field::string("k")]), records)
    }

    fn join_all(left: &[&str], right: &[&str]) -> Vec<MatchPair> {
        let scan = InterleavedScan::alternating(stream_of(left), stream_of(right));
        let mut join = SymmetricHashJoin::new(scan, PerSide::new(0, 0));
        join.run_to_end().unwrap()
    }

    fn id_pairs(pairs: &[MatchPair]) -> Vec<(u64, u64)> {
        let mut ids: Vec<(u64, u64)> = pairs
            .iter()
            .map(|p| (p.left.id.as_u64(), p.right.id.as_u64()))
            .collect();
        ids.sort_unstable();
        ids
    }

    #[test]
    fn equal_keys_join_and_disjoint_keys_do_not() {
        let pairs = join_all(&["a", "b", "c"], &["b", "c", "d"]);
        assert_eq!(id_pairs(&pairs), vec![(1, 0), (2, 1)]);
        assert!(pairs.iter().all(|p| p.kind == MatchKind::Exact));
    }

    #[test]
    fn duplicate_keys_produce_the_full_cross_product_once() {
        let pairs = join_all(&["x", "x"], &["x", "x", "x"]);
        assert_eq!(pairs.len(), 6);
        let mut seen = std::collections::HashSet::new();
        for p in &pairs {
            assert!(seen.insert(p.id_pair()), "duplicate pair {:?}", p.id_pair());
        }
    }

    #[test]
    fn results_are_pipelined_before_input_exhaustion() {
        let scan = InterleavedScan::alternating(stream_of(&["a", "b"]), stream_of(&["a", "b"]));
        let mut join = SymmetricHashJoin::new(scan, PerSide::new(0, 0));
        join.open().unwrap();
        let first = join.next().unwrap().unwrap();
        assert_eq!(first.id_pair(), (RecordId(0), RecordId(0)));
        // Only two tuples were needed to produce the first match.
        assert_eq!(
            join.consumed()[Side::Left] + join.consumed()[Side::Right],
            2
        );
    }

    #[test]
    fn keys_are_normalized_before_hashing() {
        let pairs = join_all(&["Santa  Cristina"], &["SANTA CRISTINA"]);
        assert_eq!(pairs.len(), 1);
    }

    #[test]
    fn matched_flags_are_set_on_both_partners() {
        let scan = InterleavedScan::alternating(stream_of(&["a", "q"]), stream_of(&["a", "z"]));
        let mut join = SymmetricHashJoin::new(scan, PerSide::new(0, 0));
        let pairs = join.run_to_end().unwrap();
        assert_eq!(pairs.len(), 1);
        let tables = join.core.tables();
        let flagged = |side: Side| -> Vec<bool> {
            tables[side]
                .tuples()
                .iter()
                .map(|t| t.matched_exactly)
                .collect()
        };
        assert_eq!(flagged(Side::Left), vec![true, false]);
        assert_eq!(flagged(Side::Right), vec![true, false]);
    }

    #[test]
    fn stored_counts_follow_consumption() {
        let scan = InterleavedScan::alternating(stream_of(&["a", "b", "c"]), stream_of(&["z"]));
        let mut join = SymmetricHashJoin::new(scan, PerSide::new(0, 0));
        join.run_to_end().unwrap();
        assert_eq!(join.stored()[Side::Left], 3);
        assert_eq!(join.stored()[Side::Right], 1);
        assert_eq!(join.emitted(), 0);
    }

    #[test]
    fn non_string_key_column_errors() {
        let schema = Schema::of(vec![Field::integer("id")]);
        let records = vec![Record::new(0u64, vec![Value::Int(5)])];
        let left = VecStream::new(schema.clone(), records.clone());
        let right = VecStream::new(schema, records);
        let scan = InterleavedScan::alternating(left, right);
        let mut join = SymmetricHashJoin::new(scan, PerSide::new(0, 0));
        join.open().unwrap();
        assert!(join.next().is_err());
    }
}
