//! Section payload codecs for the operator layer of a pipeline snapshot.
//!
//! The container format (header, section table, checksums) lives in
//! [`linkage_types::snapshot`]; this module defines **what the operator
//! sections contain** and how a kernel is rebuilt from them.  The byte
//! layout of every payload here is specified in `docs/format.md`.
//!
//! The guiding principle is *replay, don't serialise*: a snapshot stores
//! only the arrival-order tuple columns of each kernel plus the handful
//! of counters replay cannot re-derive.  Decoding re-inserts the tuples
//! through the kernels' own code paths
//! ([`ExactJoinCore::insert_restored`],
//! [`SshJoinCore::insert_restored`]), so every derived structure — the
//! by-key hash index, the flat postings, the CSR gram column — is
//! reconstructed by the exact code that built it the first time, and the
//! on-disk format stays small and stable while the in-memory layout is
//! free to evolve.
//!
//! Bit-identity of a resumed match stream rests on two details encoded
//! here:
//!
//! * the interner section persists gram texts **and** document
//!   frequencies in id order, so restored gram ids and the rare-first
//!   ranking are exactly those of the interrupted run;
//! * each stored q-gram set persists its original probe order (not
//!   re-ranked on restore), so a resumed probe scans posting lists in
//!   precisely the order the interrupted run would have.

use std::sync::Arc;

use linkage_text::{GramId, GramInterner, QGramSet, SharedInterner};
use linkage_types::snapshot::{Decoder, Encoder};
use linkage_types::{LinkageError, MatchPair, Result, Side};

use crate::exact::ExactJoinCore;
use crate::ssh::{ProbeFunnel, SshJoinCore, SshStored};
use crate::switch::{PerKind, SwitchJoinConfig};

/// Encode the shared gram interner: entry count, then every gram text in
/// id order, then the document-frequency column in the same order.
pub fn encode_interner(interner: &SharedInterner) -> Vec<u8> {
    let guard = interner.lock();
    let mut e = Encoder::new();
    e.put_u32(guard.len() as u32);
    for text in guard.texts() {
        e.put_str(text);
    }
    for &freq in guard.doc_freqs() {
        e.put_u32(freq);
    }
    e.finish()
}

/// Decode an interner section back into a table (ids are assigned in
/// storage order, so they match the snapshotted run exactly).
pub fn decode_interner(bytes: &[u8]) -> Result<GramInterner> {
    let mut d = Decoder::new(bytes, "INTERNER");
    let n = d.get_u32()? as usize;
    let mut texts = Vec::with_capacity(n);
    for _ in 0..n {
        texts.push(Arc::<str>::from(d.get_str()?));
    }
    let mut doc_freq = Vec::with_capacity(n);
    for _ in 0..n {
        doc_freq.push(d.get_u32()?);
    }
    d.finish()?;
    GramInterner::from_parts(texts, doc_freq)
}

/// Encode an exact-phase kernel: per side the arrival-order tuple column
/// (record, normalised key, matched-exactly flag), then the emission
/// counter.
pub fn encode_exact_core(core: &ExactJoinCore) -> Vec<u8> {
    let mut e = Encoder::new();
    for side in Side::BOTH {
        let tuples = core.tables()[side].tuples();
        e.put_u32(tuples.len() as u32);
        for t in tuples {
            e.put_record(&t.record);
            e.put_str(&t.key);
            e.put_bool(t.matched_exactly);
        }
    }
    e.put_u64(core.emitted());
    e.finish()
}

/// Decode an exact-core section by replaying every insert in arrival
/// order into a fresh kernel built from `config`.
pub fn decode_exact_core(bytes: &[u8], config: &SwitchJoinConfig) -> Result<ExactJoinCore> {
    let mut d = Decoder::new(bytes, "EXACT_CORE");
    let mut core = config.exact_core();
    for side in Side::BOTH {
        let n = d.get_u32()? as usize;
        for _ in 0..n {
            let record = d.get_record()?;
            let key = Arc::<str>::from(d.get_str()?);
            let matched = d.get_bool()?;
            core.insert_restored(side, record, key, matched);
        }
    }
    let emitted = d.get_u64()?;
    d.finish()?;
    core.set_emitted(emitted);
    Ok(core)
}

/// Encode an approximate-phase kernel: per side the arrival-order tuple
/// column (record, key, gram ids ascending, the original probe order,
/// window count, matched-exactly flag), then the emission counters and
/// the cumulative probe funnel.
pub fn encode_ssh_core(core: &SshJoinCore) -> Vec<u8> {
    let mut e = Encoder::new();
    for side in Side::BOTH {
        let tuples = core.indexes()[side].tuples();
        e.put_u32(tuples.len() as u32);
        for t in tuples {
            e.put_record(&t.record);
            e.put_str(&t.key);
            e.put_u32(t.grams.len() as u32);
            for id in t.grams.gram_ids() {
                e.put_u32(id.as_u32());
            }
            for id in t.grams.probe_order() {
                e.put_u32(id.as_u32());
            }
            e.put_u64(t.grams.window_count() as u64);
            e.put_bool(t.matched_exactly);
        }
    }
    e.put_u64(core.emitted_exact());
    e.put_u64(core.emitted_approx());
    let funnel = core.funnel();
    e.put_u64(funnel.candidates_scanned);
    e.put_u64(funnel.candidates_after_length_filter);
    e.put_u64(funnel.candidates_verified);
    e.put_u64(funnel.prefix_postings_skipped);
    e.finish()
}

/// Decode an ssh-core section by replaying every insert in arrival order
/// into a fresh kernel built from `config` over `interner` (which must
/// already hold the restored table — gram ids in the payload index into
/// it).
pub fn decode_ssh_core(
    bytes: &[u8],
    config: &SwitchJoinConfig,
    interner: SharedInterner,
) -> Result<SshJoinCore> {
    let interner_len = interner.len() as u32;
    let mut d = Decoder::new(bytes, "SSH_CORE");
    let mut core = config.ssh_core_with(interner);
    for side in Side::BOTH {
        let n = d.get_u32()? as usize;
        for _ in 0..n {
            let record = d.get_record()?;
            let key = Arc::<str>::from(d.get_str()?);
            let gram_count = d.get_u32()? as usize;
            let mut grams = Vec::with_capacity(gram_count);
            for _ in 0..gram_count {
                let raw = d.get_u32()?;
                if raw >= interner_len {
                    return Err(LinkageError::snapshot(format!(
                        "SSH_CORE section: gram id {raw} is outside the restored \
                         interner ({interner_len} grams)"
                    )));
                }
                if let Some(&prev) = grams.last() {
                    if GramId::new(raw) <= prev {
                        return Err(LinkageError::snapshot(
                            "SSH_CORE section: gram ids are not strictly ascending",
                        ));
                    }
                }
                grams.push(GramId::new(raw));
            }
            let mut probe_order = Vec::with_capacity(gram_count);
            for _ in 0..gram_count {
                probe_order.push(GramId::new(d.get_u32()?));
            }
            let mut sorted_probe = probe_order.clone();
            sorted_probe.sort_unstable();
            if sorted_probe != grams {
                return Err(LinkageError::snapshot(
                    "SSH_CORE section: probe order is not a permutation of the gram ids",
                ));
            }
            let window_count = d.get_u64()? as usize;
            let matched_exactly = d.get_bool()?;
            core.insert_restored(
                side,
                SshStored {
                    record,
                    key,
                    grams: QGramSet::from_parts(grams, probe_order, window_count),
                    matched_exactly,
                },
            );
        }
    }
    let emitted_exact = d.get_u64()?;
    let emitted_approx = d.get_u64()?;
    let funnel = ProbeFunnel {
        candidates_scanned: d.get_u64()?,
        candidates_after_length_filter: d.get_u64()?,
        candidates_verified: d.get_u64()?,
        prefix_postings_skipped: d.get_u64()?,
    };
    d.finish()?;
    core.finish_restore(emitted_exact, emitted_approx, funnel);
    Ok(core)
}

/// Encode a buffered match-pair queue, oldest first.
pub fn encode_pairs<'a>(pairs: impl ExactSizeIterator<Item = &'a MatchPair>) -> Vec<u8> {
    let mut e = Encoder::new();
    e.put_u32(pairs.len() as u32);
    for pair in pairs {
        e.put_pair(pair);
    }
    e.finish()
}

/// Decode a match-pair queue section.
pub fn decode_pairs(bytes: &[u8]) -> Result<Vec<MatchPair>> {
    let mut d = Decoder::new(bytes, "PENDING");
    let n = d.get_u32()? as usize;
    let mut pairs = Vec::with_capacity(n);
    for _ in 0..n {
        pairs.push(d.get_pair()?);
    }
    d.finish()?;
    Ok(pairs)
}

/// Append a [`PerKind`] counter pair to an in-progress payload.
pub fn put_per_kind(e: &mut Encoder, kinds: PerKind) {
    e.put_u64(kinds.exact);
    e.put_u64(kinds.approximate);
}

/// Read back a [`PerKind`] counter pair.
pub fn get_per_kind(d: &mut Decoder<'_>) -> Result<PerKind> {
    Ok(PerKind {
        exact: d.get_u64()?,
        approximate: d.get_u64()?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use linkage_types::{MatchKind, PerSide, Record, SidedRecord, Value};
    use std::collections::VecDeque;

    fn rec(id: u64, key: &str) -> Record {
        Record::new(id, vec![Value::string(key)])
    }

    fn config() -> SwitchJoinConfig {
        SwitchJoinConfig::new(PerSide::new(0, 0))
    }

    fn run_exact(keys: &[(&str, Side)]) -> ExactJoinCore {
        let mut core = config().exact_core();
        let mut out = VecDeque::new();
        for (i, (key, side)) in keys.iter().enumerate() {
            let sided = SidedRecord::new(*side, rec(i as u64, key));
            core.process(sided, &mut out).unwrap();
        }
        core
    }

    #[test]
    fn exact_core_round_trips_through_the_codec() {
        let core = run_exact(&[
            ("santa cristina", Side::Left),
            ("santa cristina", Side::Right),
            ("genova nervi", Side::Left),
            ("torino centro", Side::Right),
        ]);
        let bytes = encode_exact_core(&core);
        let restored = decode_exact_core(&bytes, &config()).unwrap();
        assert_eq!(restored.emitted(), core.emitted());
        assert_eq!(restored.stored(), core.stored());
        for side in Side::BOTH {
            let (a, b) = (
                core.tables()[side].tuples(),
                restored.tables()[side].tuples(),
            );
            assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().zip(b) {
                assert_eq!(x.record, y.record);
                assert_eq!(x.key, y.key);
                assert_eq!(x.matched_exactly, y.matched_exactly);
            }
        }
    }

    #[test]
    fn ssh_core_round_trip_preserves_probe_order_and_future_output() {
        let cfg = config();
        let mut core = cfg.ssh_core();
        let mut out = VecDeque::new();
        let keys = [
            ("TAA BZ SANTA CRISTINA VALGARDENA", Side::Left),
            ("TAA BZ SANTA CRISTINx VALGARDENA", Side::Right),
            ("LIG GE GENOVA NERVI CAPOLUNGO", Side::Left),
            ("LIG GE GENOVA NERVI CAPOLUNGO", Side::Right),
        ];
        for (i, (key, side)) in keys.iter().enumerate() {
            let sided = SidedRecord::new(*side, rec(i as u64, key));
            core.process(sided, &mut out).unwrap();
        }

        let interner_bytes = encode_interner(core.interner());
        let core_bytes = encode_ssh_core(&core);

        let table = decode_interner(&interner_bytes).unwrap();
        let shared = SharedInterner::from_table(table);
        let mut restored = decode_ssh_core(&core_bytes, &cfg, shared).unwrap();

        assert_eq!(restored.emitted_exact(), core.emitted_exact());
        assert_eq!(restored.emitted_approx(), core.emitted_approx());
        assert_eq!(restored.funnel(), core.funnel());
        assert_eq!(restored.stored(), core.stored());
        for side in Side::BOTH {
            for (a, b) in core.indexes()[side]
                .tuples()
                .iter()
                .zip(restored.indexes()[side].tuples())
            {
                assert_eq!(a.grams.probe_order(), b.grams.probe_order());
                assert_eq!(a.grams.window_count(), b.grams.window_count());
                assert_eq!(a.matched_exactly, b.matched_exactly);
            }
        }

        // Future tuples produce identical matches through both cores.
        let next = SidedRecord::new(Side::Right, rec(9, "TAA BZ SANTA CRISTINA VALGARDENA"));
        let mut out_a = VecDeque::new();
        let mut out_b = VecDeque::new();
        core.process(next.clone(), &mut out_a).unwrap();
        restored.process(next, &mut out_b).unwrap();
        let a: Vec<_> = out_a.iter().map(|p| (p.id_pair(), p.kind)).collect();
        let b: Vec<_> = out_b.iter().map(|p| (p.id_pair(), p.kind)).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn corrupt_gram_id_is_a_typed_snapshot_error() {
        let cfg = config();
        let mut core = cfg.ssh_core();
        let mut out = VecDeque::new();
        core.process(
            SidedRecord::new(Side::Left, rec(0, "GENOVA NERVI")),
            &mut out,
        )
        .unwrap();
        let bytes = encode_ssh_core(&core);
        // An empty interner makes every gram id out of range.
        let shared = SharedInterner::new();
        let err = decode_ssh_core(&bytes, &cfg, shared).unwrap_err();
        assert!(matches!(err, LinkageError::Snapshot(_)), "{err}");
    }

    #[test]
    fn pairs_round_trip_in_order() {
        let pairs = [
            MatchPair::exact(rec(1, "a"), rec(2, "a")),
            MatchPair::approximate(rec(3, "b"), rec(4, "b2"), 0.83),
        ];
        let bytes = encode_pairs(pairs.iter());
        let back = decode_pairs(&bytes).unwrap();
        assert_eq!(back.len(), 2);
        for (a, b) in pairs.iter().zip(&back) {
            assert_eq!(a.id_pair(), b.id_pair());
            assert_eq!(a.kind, b.kind);
            assert_eq!(a.left, b.left);
            assert_eq!(a.right, b.right);
        }
        assert!(matches!(back[1].kind, MatchKind::Approximate { .. }));
    }
}
