//! Structure-of-arrays tuple batches for the batched probe kernel.
//!
//! [`PreparedBatch`] started life as a wire message of the sharded
//! executor; it lives here so the batched probe entry point
//! ([`SshJoinCore::probe_batch_into`]) can consume whole batches
//! directly — the executor re-exports it unchanged as part of its
//! protocol.
//!
//! [`SshJoinCore::probe_batch_into`]: crate::SshJoinCore::probe_batch_into

use std::sync::Arc;

use linkage_text::QGramSet;
use linkage_types::{ShardId, SidedRecord};

/// One epoch's input tuples with their routing work pre-done by the
/// coordinator, laid out as a structure of arrays.
///
/// In the approximate phase every shard receives every tuple (to probe
/// its slice of the resident state), so each key is normalised, tokenised
/// and **interned** once here — the gram sets are dense-id
/// [`QGramSet`]s every worker can index its flat postings with directly —
/// and `homes[i]` names the single shard that also stores tuple `i`.
#[derive(Debug, Default)]
pub struct PreparedBatch {
    /// The tuples, tagged with their input side, in stream order.
    pub sided: Vec<SidedRecord>,
    /// The normalised join key of each tuple.
    pub keys: Vec<Arc<str>>,
    /// The interned q-gram set of each key.
    pub grams: Vec<QGramSet>,
    /// The shard that stores each tuple.
    pub homes: Vec<ShardId>,
}

impl PreparedBatch {
    /// An empty batch with room for `capacity` tuples.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            sided: Vec::with_capacity(capacity),
            keys: Vec::with_capacity(capacity),
            grams: Vec::with_capacity(capacity),
            homes: Vec::with_capacity(capacity),
        }
    }

    /// Append one prepared tuple.
    pub fn push(&mut self, sided: SidedRecord, key: Arc<str>, grams: QGramSet, home: ShardId) {
        self.sided.push(sided);
        self.keys.push(key);
        self.grams.push(grams);
        self.homes.push(home);
    }

    /// Number of tuples in the batch.
    pub fn len(&self) -> usize {
        self.sided.len()
    }

    /// Whether the batch holds no tuples.
    pub fn is_empty(&self) -> bool {
        self.sided.is_empty()
    }
}
