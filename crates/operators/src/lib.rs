//! # linkage-operators
//!
//! The pipelined physical operators of the adaptive record-linkage
//! pipeline (paper §2):
//!
//! * [`Operator`] / [`OperatorState`] — the `OPEN`/`NEXT`/`CLOSE` iterator
//!   protocol every operator follows, with state-machine enforcement and
//!   bounded batch pulls;
//! * [`Scan`] and [`InterleavedScan`] — leaf operators turning
//!   [`linkage_types::RecordStream`]s into validated tuple flows; the
//!   interleaved variant merges both join inputs into one sided stream
//!   under an [`linkage_types::InterleavePolicy`];
//! * [`SymmetricHashJoin`] — the pipelined exact join (§2.1): probe the
//!   opposite hash table, emit, insert;
//! * [`SshJoin`] — the approximate similarity join (§2.2): an incremental
//!   inverted q-gram index per side with Jaccard-threshold matching;
//! * [`SwitchJoin`] — the adaptive operator (§3.3): starts exact, and on
//!   demand hands its hash-table state over to the approximate kernel
//!   mid-stream, recovering missed matches without emitting duplicates
//!   (per-tuple matched-exactly flags);
//! * [`oracle`] — quadratic nested-loop reference joins for tests and
//!   benchmarks;
//! * [`mod@reference`] — the retained string-keyed probe kernel (the
//!   pre-interning [`SshJoin`] layout), kept as the independently
//!   implemented twin the interned fast path is property-tested against.
//!
//! The control loop that decides *when* to switch lives in `linkage-core`;
//! this crate only provides the machinery.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod exact;
pub mod iterator;
pub mod oracle;
pub mod reference;
pub mod scan;
pub mod snapshot;
pub mod ssh;
pub mod state;
pub mod switch;

pub use batch::PreparedBatch;
pub use exact::{ExactJoinCore, SymmetricHashJoin};
pub use iterator::{Operator, OperatorState};
pub use reference::{ReferenceSshCore, ReferenceStored};
pub use scan::{InterleavedScan, Scan};
pub use ssh::{GramIndex, ProbeFunnel, SshJoin, SshJoinCore, SshStored};
pub use state::{KeyTable, StoredTuple};
pub use switch::{JoinPhase, PerKind, RestoredCore, SwitchJoin, SwitchJoinConfig, SwitchRestore};
