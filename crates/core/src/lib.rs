//! # linkage-core
//!
//! The adaptivity layer of the record-linkage pipeline: the
//! monitor → assessor → actuator control loop of paper §3.2 wired around
//! the switchable join operator of `linkage-operators`.
//!
//! * [`Monitor`] watches the running join and, on a fixed cadence,
//!   packages its counters into a statistical [`Observation`] — result
//!   size is modelled as `O ~ bin(trials, p)` under the clean-data
//!   foreign-key scenario;
//! * [`Assessor`] applies `linkage_stats`' binomial outlier test
//!   (`σ ≤ θ_out`) with minimum-evidence and consecutive-alarm guards;
//! * the actuator inside [`AdaptiveJoin`] reacts to a trigger by invoking
//!   the exact → approximate state handover
//!   ([`linkage_operators::SwitchJoin::switch_to_approximate`], §3.3)
//!   mid-stream, after which recovered and newly found approximate
//!   matches flow out of the same operator.
//!
//! [`AdaptiveJoin`] is itself a pipelined operator, so the whole adaptive
//! pipeline composes like any other query plan.  See
//! `examples/quickstart.rs` for an end-to-end run.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adaptive;
pub mod aggregate;
pub mod assessor;
pub mod monitor;

pub use adaptive::{
    AdaptiveControlState, AdaptiveJoin, AdaptiveReport, ControllerConfig, SwitchEvent, SwitchPolicy,
};
pub use aggregate::{GlobalControlState, GlobalController};
pub use assessor::{Assessment, Assessor, AssessorConfig};
pub use monitor::{Monitor, MonitorConfig, Observation};
