//! Epoch-granular global control for the sharded parallel join.
//!
//! The serial [`crate::AdaptiveJoin`] runs its monitor → assessor loop
//! after every consumed tuple.  The sharded executor in `linkage-exec`
//! cannot: workers process whole batches between barriers, so the
//! controller only sees **aggregated** counters at epoch boundaries — the
//! router's consumed counts plus the deduplicated global match count
//! merged from every shard.  [`GlobalController`] adapts the same
//! [`Monitor`]/[`Assessor`] pair to that cadence: it assesses once per
//! *crossed* checkpoint (`check_every` consumed child tuples), whether or
//! not the epoch boundary lands exactly on the checkpoint, so the switch
//! decision is global, consistent across shards, and statistically the
//! same test the serial controller runs.

use linkage_types::PerSide;

use crate::adaptive::ControllerConfig;
use crate::assessor::{Assessment, Assessor};
use crate::monitor::Monitor;

/// The aggregated monitor → assessor loop driven at epoch boundaries.
#[derive(Debug, Clone)]
pub struct GlobalController {
    monitor: Monitor,
    assessor: Assessor,
    last_checkpoint: u64,
}

impl GlobalController {
    /// Build from the same configuration the serial controller takes.
    pub fn new(config: ControllerConfig) -> Self {
        Self {
            monitor: Monitor::new(config.monitor),
            assessor: Assessor::new(config.assessor),
            last_checkpoint: 0,
        }
    }

    /// Whether observing at `consumed_right` child tuples would cross a new
    /// checkpoint (and therefore run the outlier test).
    pub fn checkpoint_due(&self, consumed_right: u64) -> bool {
        consumed_right / self.monitor.config().check_every > self.last_checkpoint
    }

    /// Feed the aggregated counters at an epoch boundary.
    ///
    /// Returns `None` when no checkpoint was crossed since the previous
    /// call; otherwise runs one assessment over the *current* totals.  A
    /// long epoch can cross several checkpoints at once — it still yields a
    /// single assessment, because the intermediate counter values are gone;
    /// the hysteresis streak then counts epochs rather than checkpoints,
    /// which only makes the trigger more conservative.
    pub fn observe_epoch(
        &mut self,
        consumed: PerSide<u64>,
        distinct_matches: u64,
    ) -> Option<Assessment> {
        if !self.checkpoint_due(consumed.right) {
            return None;
        }
        self.last_checkpoint = consumed.right / self.monitor.config().check_every;
        let observation = self.monitor.observe(consumed, distinct_matches);
        Some(self.assessor.assess(&observation))
    }

    /// How many assessments have been run.
    pub fn assessments(&self) -> u64 {
        self.monitor.assessments()
    }

    /// The control-loop counters replay cannot re-derive, for the
    /// snapshot layer.
    pub fn control_state(&self) -> GlobalControlState {
        GlobalControlState {
            assessments: self.monitor.assessments(),
            last_checked: self.monitor.last_checked(),
            streak: self.assessor.streak(),
            last_checkpoint: self.last_checkpoint,
        }
    }

    /// Restore the control-loop counters from a snapshot, so a resumed
    /// run takes exactly the checkpoints (and carries exactly the alarm
    /// streak) the interrupted run would have.
    pub fn restore_control_state(&mut self, state: GlobalControlState) {
        self.monitor.restore(state.assessments, state.last_checked);
        self.assessor.restore_streak(state.streak);
        self.last_checkpoint = state.last_checkpoint;
    }
}

/// Snapshot of a [`GlobalController`]'s mutable counters (its
/// configuration is re-derived from the pipeline configuration on
/// restore).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GlobalControlState {
    /// Observations taken so far.
    pub assessments: u64,
    /// Child count at the last fired monitor checkpoint.
    pub last_checked: u64,
    /// Consecutive-alarm streak.
    pub streak: u32,
    /// Index of the last crossed epoch checkpoint.
    pub last_checkpoint: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn controller(reference: u64, check_every: u64) -> GlobalController {
        let mut config = ControllerConfig::new(reference);
        config.monitor = config.monitor.with_check_every(check_every);
        GlobalController::new(config)
    }

    #[test]
    fn assesses_only_when_a_checkpoint_is_crossed() {
        let mut c = controller(100, 16);
        assert!(c.observe_epoch(PerSide::new(10, 10), 5).is_none());
        assert!(c.observe_epoch(PerSide::new(15, 15), 8).is_none());
        // 17 > 16: the checkpoint is crossed even though the boundary does
        // not land exactly on a multiple of the cadence.
        assert!(c.observe_epoch(PerSide::new(17, 17), 9).is_some());
        assert_eq!(c.assessments(), 1);
        // Same checkpoint: no re-assessment.
        assert!(c.observe_epoch(PerSide::new(20, 20), 11).is_none());
        assert!(c.observe_epoch(PerSide::new(33, 33), 18).is_some());
    }

    #[test]
    fn one_epoch_crossing_many_checkpoints_assesses_once() {
        let mut c = controller(1000, 16);
        assert!(c.observe_epoch(PerSide::new(100, 100), 10).is_some());
        assert_eq!(c.assessments(), 1);
        assert!(!c.checkpoint_due(100));
        assert!(c.checkpoint_due(112));
    }

    #[test]
    fn healthy_counts_stay_nominal_and_collapse_triggers() {
        let mut c = controller(200, 16);
        // Half the parents scanned, matches right at expectation: nominal.
        let first = c.observe_epoch(PerSide::new(100, 16), 8).unwrap();
        assert!(matches!(first, Assessment::Nominal { .. }));

        // Matches collapse: two consecutive outlier checkpoints trigger.
        let second = c.observe_epoch(PerSide::new(150, 64), 10).unwrap();
        assert!(matches!(second, Assessment::Alarm { .. }));
        let third = c.observe_epoch(PerSide::new(180, 96), 10).unwrap();
        assert!(third.is_trigger());
    }
}
