//! The monitor: turning join progress into a statistical observation.
//!
//! The paper's scenario (§3.2) is a parent–child (foreign-key) linkage: in
//! clean data every child tuple matches exactly one parent.  While the
//! interleaved scan runs, a child tuple consumed at a point where a
//! fraction `p` of the parent table has been scanned finds its parent with
//! probability `p`, so the result size after consuming `c` child tuples is
//! modelled as `O ~ bin(c, p)` with `p = parents_seen / |parents|`.
//!
//! The monitor packages the operator's counters into that
//! `(trials, p, observed)` triple; the assessor applies the outlier test.

use linkage_types::{defaults, PerSide};

/// Monitor configuration.
///
/// `#[non_exhaustive]`: construct via [`MonitorConfig::new`] (or
/// [`Default`], which uses a placeholder reference size of 1 that callers
/// are expected to override with the actual catalog statistic).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub struct MonitorConfig {
    /// Declared size of the parent (left/reference) relation — the paper's
    /// `|R|`, known from catalog statistics rather than the stream itself.
    pub reference_size: u64,
    /// Assess once every this many consumed child tuples.
    pub check_every: u64,
}

impl Default for MonitorConfig {
    fn default() -> Self {
        Self::new(1)
    }
}

impl MonitorConfig {
    /// Build with the given declared parent size and the paper's check
    /// cadence ([`defaults::CHECK_EVERY`] consumed child tuples).
    pub fn new(reference_size: u64) -> Self {
        assert!(
            reference_size > 0,
            "declared reference size must be positive"
        );
        Self {
            reference_size,
            check_every: defaults::CHECK_EVERY,
        }
    }

    /// Override the check cadence.
    #[must_use]
    pub fn with_check_every(mut self, check_every: u64) -> Self {
        assert!(check_every > 0, "check cadence must be positive");
        self.check_every = check_every;
        self
    }
}

/// One statistical observation of join progress.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Observation {
    /// Number of Bernoulli trials: child tuples consumed.
    pub trials: u64,
    /// Per-trial success probability under the clean-data model.
    pub p: f64,
    /// Observed number of successes: distinct match pairs emitted.
    pub observed: u64,
}

/// The monitor itself.
///
/// The model: the join is *symmetric*, so the pair `(parent, child)` is
/// discovered as soon as **both** tuples have arrived.  With `c` children
/// consumed and a fraction `l/N` of the parent table scanned, each
/// consumed child's parent has been seen with probability `l/N`
/// independently (children reference parents uniformly), giving
/// `O ~ bin(c, l/N)` on clean data — the paper's `bin(n, p(n))`.
///
/// One checkpoint fires per distinct child count: the control loop runs
/// after every consumed tuple (including parent tuples, which leave the
/// child count unchanged), and re-assessing the same observation would
/// let a single unlucky dip defeat the assessor's consecutive-alarm
/// hysteresis.
#[derive(Debug, Clone, Copy)]
pub struct Monitor {
    config: MonitorConfig,
    assessments: u64,
    last_checked: u64,
}

impl Monitor {
    /// Build from a configuration.
    pub fn new(config: MonitorConfig) -> Self {
        Self {
            config,
            assessments: 0,
            last_checked: 0,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &MonitorConfig {
        &self.config
    }

    /// Whether an assessment is due after having consumed `consumed_right`
    /// child tuples.  Each checkpoint fires at most once.
    pub fn due(&self, consumed_right: u64) -> bool {
        consumed_right > 0
            && consumed_right.is_multiple_of(self.config.check_every)
            && consumed_right != self.last_checked
    }

    /// Package the operator counters into an observation and consume the
    /// checkpoint.
    pub fn observe(&mut self, consumed: PerSide<u64>, matches: u64) -> Observation {
        self.assessments += 1;
        self.last_checked = consumed.right;
        let p = (consumed.left as f64 / self.config.reference_size as f64).clamp(0.0, 1.0);
        Observation {
            trials: consumed.right,
            p,
            observed: matches,
        }
    }

    /// How many observations have been taken.
    pub fn assessments(&self) -> u64 {
        self.assessments
    }

    /// The child count at which the last checkpoint fired (0 if none).
    pub fn last_checked(&self) -> u64 {
        self.last_checked
    }

    /// Restore the checkpoint bookkeeping from a snapshot, so a resumed
    /// run neither re-fires a checkpoint the interrupted run already
    /// consumed nor skips one it had not reached.
    pub fn restore(&mut self, assessments: u64, last_checked: u64) {
        self.assessments = assessments;
        self.last_checked = last_checked;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn due_follows_cadence() {
        let m = Monitor::new(MonitorConfig::new(100).with_check_every(8));
        assert!(!m.due(0));
        assert!(!m.due(7));
        assert!(m.due(8));
        assert!(!m.due(9));
        assert!(m.due(16));
    }

    #[test]
    fn observation_uses_declared_reference_size() {
        let mut m = Monitor::new(MonitorConfig::new(200));
        let obs = m.observe(PerSide::new(50, 40), 35);
        assert_eq!(obs.trials, 40);
        assert!((obs.p - 0.25).abs() < 1e-12);
        assert_eq!(obs.observed, 35);
        assert_eq!(m.assessments(), 1);
    }

    #[test]
    fn each_checkpoint_fires_at_most_once() {
        let mut m = Monitor::new(MonitorConfig::new(100).with_check_every(8));
        assert!(m.due(8));
        m.observe(PerSide::new(9, 8), 1);
        // A parent tuple arrives: child count unchanged — no re-assessment.
        assert!(!m.due(8));
        assert!(m.due(16));
    }

    #[test]
    fn probability_is_clamped_when_scan_exceeds_declaration() {
        let mut m = Monitor::new(MonitorConfig::new(10));
        let obs = m.observe(PerSide::new(25, 5), 5);
        assert_eq!(obs.p, 1.0);
    }

    #[test]
    #[should_panic(expected = "reference size")]
    fn zero_reference_size_rejected() {
        MonitorConfig::new(0);
    }
}
