//! The adaptive join: monitor → assessor → actuator wired around a
//! [`SwitchJoin`].
//!
//! [`AdaptiveJoin`] is itself a pipelined [`Operator`]: callers pull match
//! pairs from it exactly as from any other join.  Internally, after every
//! consumed input tuple the control loop runs:
//!
//! 1. **Monitor** — package the operator counters into a `(trials, p,
//!    observed)` triple when an assessment is due (paper §3.2);
//! 2. **Assessor** — apply the binomial outlier test with hysteresis;
//! 3. **Actuator** — on a trigger, invoke
//!    [`SwitchJoin::switch_to_approximate`], performing the §3.3 state
//!    handover mid-stream; the recovered matches simply appear in the
//!    output stream.
//!
//! The loop only runs while the join is in its exact phase — after the
//! switch there is nothing left to decide.

use std::time::{Duration, Instant};

use linkage_operators::{JoinPhase, Operator, OperatorState, PerKind, SwitchJoin};
use linkage_types::{LinkageError, MatchPair, PerSide, Result, SidedRecord};

use crate::assessor::{Assessor, AssessorConfig};
use crate::monitor::{Monitor, MonitorConfig};

/// When the actuator performs the exact → approximate switch.
///
/// Shared by the serial [`AdaptiveJoin`] and the sharded executor, so the
/// same policy drives both engines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SwitchPolicy {
    /// The paper's behaviour: the monitor → assessor loop decides.
    #[default]
    Adaptive,
    /// Never switch — the join stays exact (the non-adaptive baseline).
    Never,
    /// Switch unconditionally once this many input tuples were consumed,
    /// bypassing the assessor (tests, experiments; `ForceAt(0)` runs the
    /// approximate join from the first tuple).
    ForceAt(u64),
}

/// Everything the controller needs to know.
///
/// `#[non_exhaustive]`: construct via [`ControllerConfig::new`] (or
/// [`Default`]) and refine with the `with_*` builders.
#[derive(Debug, Clone, Default)]
#[non_exhaustive]
pub struct ControllerConfig {
    /// Monitor settings (declared reference size, cadence).
    pub monitor: MonitorConfig,
    /// Assessor settings (threshold, hysteresis).
    pub assessor: AssessorConfig,
    /// When the actuator switches.
    pub policy: SwitchPolicy,
}

impl ControllerConfig {
    /// Build with the given declared parent-relation size, default
    /// assessor settings and the adaptive switch policy.
    pub fn new(reference_size: u64) -> Self {
        Self {
            monitor: MonitorConfig::new(reference_size),
            assessor: AssessorConfig::default(),
            policy: SwitchPolicy::default(),
        }
    }

    /// Override the monitor settings.
    #[must_use]
    pub fn with_monitor(mut self, monitor: MonitorConfig) -> Self {
        self.monitor = monitor;
        self
    }

    /// Override the assessor settings.
    #[must_use]
    pub fn with_assessor(mut self, assessor: AssessorConfig) -> Self {
        self.assessor = assessor;
        self
    }

    /// Override the switch policy.
    #[must_use]
    pub fn with_policy(mut self, policy: SwitchPolicy) -> Self {
        self.policy = policy;
        self
    }
}

/// A record of the switch decision, for reports.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SwitchEvent {
    /// Total input tuples consumed when the switch happened.
    pub after_tuples: u64,
    /// The σ value that completed the alarm streak.
    pub sigma: f64,
    /// Matches recovered from resident state during the handover.
    pub recovered: u64,
}

/// Summary of an adaptive join run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaptiveReport {
    /// Phase the join ended in.
    pub phase: JoinPhase,
    /// Input tuples consumed per side.
    pub consumed: PerSide<u64>,
    /// Distinct pairs emitted, by kind.
    pub emitted: PerKind,
    /// The switch, if it happened.
    pub switch: Option<SwitchEvent>,
    /// Wall-clock duration of the §3.3 handover (state migration plus
    /// recovery probing), if a switch happened.
    pub switch_latency: Option<Duration>,
}

/// Snapshot of an [`AdaptiveJoin`]'s controller and presentation state —
/// everything outside the wrapped [`SwitchJoin`] that replay cannot
/// re-derive.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaptiveControlState {
    /// Monitor observations taken so far.
    pub monitor_assessments: u64,
    /// Child count at the last fired monitor checkpoint.
    pub monitor_last_checked: u64,
    /// Consecutive-alarm streak.
    pub assessor_streak: u32,
    /// The switch decision, if it happened.
    pub switch: Option<SwitchEvent>,
    /// Wall-clock duration of the handover, if it ran.
    pub switch_latency: Option<Duration>,
    /// Pre-switch pairs buffered at the handover and not yet pulled.
    pub undrained_pre_switch: u64,
    /// Whether the previous pull returned a pre-switch pair whose
    /// accounting is still deferred.
    pub pre_switch_in_flight: bool,
}

/// The self-tuning join operator.
pub struct AdaptiveJoin<I> {
    inner: SwitchJoin<I>,
    monitor: Monitor,
    assessor: Assessor,
    policy: SwitchPolicy,
    switch: Option<SwitchEvent>,
    switch_latency: Option<Duration>,
    /// Pairs that were buffered *before* the handover and not yet pulled.
    /// While nonzero, [`Self::switch_event`] stays `None`, so streaming
    /// consumers see every pre-switch pair before the switch notification.
    undrained_pre_switch: usize,
    /// Whether the previous pull returned a pre-switch pair.  The
    /// decrement is deferred to the *next* call, so the switch does not
    /// become visible in the middle of the call that returns the last
    /// pre-switch pair.
    pre_switch_in_flight: bool,
}

impl<I: Operator<Item = SidedRecord>> AdaptiveJoin<I> {
    /// Wrap a [`SwitchJoin`] with a controller.
    pub fn new(inner: SwitchJoin<I>, config: ControllerConfig) -> Self {
        Self {
            inner,
            monitor: Monitor::new(config.monitor),
            assessor: Assessor::new(config.assessor),
            policy: config.policy,
            switch: None,
            switch_latency: None,
            undrained_pre_switch: 0,
            pre_switch_in_flight: false,
        }
    }

    /// The wrapped operator's current phase.
    pub fn phase(&self) -> JoinPhase {
        self.inner.phase()
    }

    /// The switch decision, once it is *visible*: pairs that were already
    /// buffered when the handover ran are pulled first, so a consumer
    /// polling this between pulls sees every pre-switch pair before the
    /// event.  [`Self::report`] carries the raw decision regardless.
    pub fn switch_event(&self) -> Option<SwitchEvent> {
        if self.undrained_pre_switch > 0 {
            None
        } else {
            self.switch
        }
    }

    /// Wall-clock duration of the handover, if it ran.
    pub fn switch_latency(&self) -> Option<Duration> {
        self.switch_latency
    }

    /// Summarise the run so far.
    pub fn report(&self) -> AdaptiveReport {
        AdaptiveReport {
            phase: self.inner.phase(),
            consumed: self.inner.consumed(),
            emitted: self.inner.emitted(),
            switch: self.switch,
            switch_latency: self.switch_latency,
        }
    }

    /// The monitor driving the control loop.
    pub fn monitor(&self) -> &Monitor {
        &self.monitor
    }

    /// The assessor driving the control loop.
    pub fn assessor(&self) -> &Assessor {
        &self.assessor
    }

    /// The switch policy in force.
    pub fn policy(&self) -> SwitchPolicy {
        self.policy
    }

    /// Read access to the wrapped [`SwitchJoin`] (snapshot encoding).
    pub fn inner(&self) -> &SwitchJoin<I> {
        &self.inner
    }

    /// Mutable access to the wrapped [`SwitchJoin`] (snapshot restore
    /// installs the decoded kernel through
    /// [`SwitchJoin::restore`](linkage_operators::SwitchJoin::restore)).
    pub fn inner_mut(&mut self) -> &mut SwitchJoin<I> {
        &mut self.inner
    }

    /// The controller and presentation state replay cannot re-derive,
    /// for the snapshot layer.
    pub fn control_state(&self) -> AdaptiveControlState {
        AdaptiveControlState {
            monitor_assessments: self.monitor.assessments(),
            monitor_last_checked: self.monitor.last_checked(),
            assessor_streak: self.assessor.streak(),
            switch: self.switch,
            switch_latency: self.switch_latency,
            undrained_pre_switch: self.undrained_pre_switch as u64,
            pre_switch_in_flight: self.pre_switch_in_flight,
        }
    }

    /// Restore the controller and presentation state from a snapshot.
    ///
    /// Together with [`SwitchJoin::restore`] on [`Self::inner_mut`] this
    /// makes a resumed join's remaining output — including the timing of
    /// the switch decision and the visibility of the switch event —
    /// identical to the interrupted run's.
    pub fn restore_control_state(&mut self, state: AdaptiveControlState) {
        self.monitor
            .restore(state.monitor_assessments, state.monitor_last_checked);
        self.assessor.restore_streak(state.assessor_streak);
        self.switch = state.switch;
        self.switch_latency = state.switch_latency;
        self.undrained_pre_switch = state.undrained_pre_switch as usize;
        self.pre_switch_in_flight = state.pre_switch_in_flight;
    }

    /// Perform the timed handover and record the switch event.
    fn perform_switch(&mut self, sigma: f64) -> Result<()> {
        let pre_switch_buffered = self.inner.buffered();
        let start = Instant::now();
        let recovered = self.inner.switch_to_approximate()?;
        self.undrained_pre_switch = pre_switch_buffered;
        self.switch_latency = Some(start.elapsed());
        self.switch = Some(SwitchEvent {
            after_tuples: self.inner.total_consumed(),
            sigma,
            recovered,
        });
        Ok(())
    }

    /// Run the control loop after one consumed tuple.
    fn control_step(&mut self) -> Result<()> {
        if self.inner.phase() != JoinPhase::Exact {
            return Ok(());
        }
        match self.policy {
            SwitchPolicy::Never => Ok(()),
            SwitchPolicy::ForceAt(after) => {
                if self.inner.total_consumed() >= after {
                    self.perform_switch(0.0)?;
                }
                Ok(())
            }
            SwitchPolicy::Adaptive => {
                let consumed = self.inner.consumed();
                if !self.monitor.due(consumed.right) {
                    return Ok(());
                }
                let observation = self.monitor.observe(consumed, self.inner.emitted().total());
                let assessment = self.assessor.assess(&observation);
                if let crate::assessor::Assessment::Trigger { sigma } = assessment {
                    self.perform_switch(sigma)?;
                }
                Ok(())
            }
        }
    }

    /// Consume input tuples — running the per-tuple control loop after
    /// each — until `available` total tuples have been consumed, without
    /// popping any buffered match pair.
    ///
    /// This is the incremental-session entry point: a caller feeding the
    /// input in batches advances the join exactly to the end of the fed
    /// prefix, then drains the pairs buffered so far.  The output is
    /// bit-identical to a single uninterrupted run because emission
    /// counters and switch decisions update at produce-time (inside
    /// [`SwitchJoin::advance`]), never at pop-time — the pop schedule
    /// cannot perturb them.
    ///
    /// The input must actually hold `available` tuples: an earlier end
    /// of input is a typed [`LinkageError::Execution`].
    pub fn advance_to(&mut self, available: u64) -> Result<()> {
        self.inner.state().check_next(self.name())?;
        while self.inner.total_consumed() < available {
            if !self.inner.advance()? {
                return Err(LinkageError::execution(format!(
                    "session input ended at {} consumed tuples but {available} were promised",
                    self.inner.total_consumed()
                )));
            }
            self.control_step()?;
        }
        Ok(())
    }

    /// Match pairs produced and buffered but not yet popped.
    pub fn buffered(&self) -> usize {
        self.inner.buffered()
    }
}

impl<I: Operator<Item = SidedRecord>> Operator for AdaptiveJoin<I> {
    type Item = MatchPair;

    fn name(&self) -> &'static str {
        "adaptive-join"
    }

    fn state(&self) -> OperatorState {
        self.inner.state()
    }

    fn open(&mut self) -> Result<()> {
        self.inner.open()?;
        // `ForceAt(0)` means "approximate from the first tuple": perform
        // the (empty) handover before anything is consumed, so the run is
        // byte-for-byte a pure SSH join.
        if self.policy == SwitchPolicy::ForceAt(0) && self.inner.phase() == JoinPhase::Exact {
            self.perform_switch(0.0)?;
        }
        Ok(())
    }

    fn next(&mut self) -> Result<Option<MatchPair>> {
        // Enforce the protocol here too: `pop` bypasses the inner
        // operator's own state check, and buffered pairs must not leak
        // out of a closed operator.
        self.inner.state().check_next(self.name())?;
        // The pair returned by the previous call has been consumed by now;
        // settle its deferred pre-switch accounting.
        if self.pre_switch_in_flight {
            self.pre_switch_in_flight = false;
            self.undrained_pre_switch = self.undrained_pre_switch.saturating_sub(1);
        }
        loop {
            if let Some(pair) = self.inner.pop() {
                // The queue is FIFO: the first pops after a switch are
                // exactly the pairs that were buffered before it.
                if self.undrained_pre_switch > 0 {
                    self.pre_switch_in_flight = true;
                }
                return Ok(Some(pair));
            }
            if !self.inner.advance()? {
                return Ok(None);
            }
            self.control_step()?;
        }
    }

    fn close(&mut self) -> Result<()> {
        self.inner.close()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use linkage_operators::{InterleavedScan, SwitchJoinConfig};
    use linkage_types::{Field, Record, Schema, Value, VecStream};

    use linkage_datagen::SplitMix64;

    /// Parent keys: distinct 31-character pseudo-random location strings
    /// (hash-derived words so unrelated keys share essentially no q-grams).
    /// The controlled substitution-only dirt below is why this test builds
    /// its own index-paired dataset instead of using `linkage_datagen`'s
    /// random-parent generator.
    fn parent_key(i: usize) -> String {
        let i = i as u64;
        format!(
            "LOC {} {}",
            SplitMix64::word_of(i * 2 + 1, 12),
            SplitMix64::word_of(i * 2 + 2, 14)
        )
    }

    fn relation_stream(keys: Vec<String>) -> VecStream {
        let records = keys
            .iter()
            .enumerate()
            .map(|(i, k)| Record::new(i as u64, vec![Value::string(k)]))
            .collect();
        VecStream::new(Schema::of(vec![Field::string("k")]), records)
    }

    /// A parent/child pair where children past `dirty_from` have one key
    /// character replaced, so the exact join stops finding matches there.
    fn dataset(n: usize, dirty_from: usize) -> (VecStream, VecStream) {
        let parents: Vec<String> = (0..n).map(parent_key).collect();
        let children: Vec<String> = (0..n)
            .map(|i| {
                let mut key = parent_key(i);
                if i >= dirty_from {
                    // One substituted character inside the first word: the
                    // pair stays well above θ_sim = 0.8 but exact equality
                    // is destroyed.
                    key.replace_range(8..9, "0");
                }
                key
            })
            .collect();
        (relation_stream(parents), relation_stream(children))
    }

    fn adaptive(
        n: usize,
        dirty_from: usize,
    ) -> AdaptiveJoin<InterleavedScan<VecStream, VecStream>> {
        let (parents, children) = dataset(n, dirty_from);
        let scan = InterleavedScan::alternating(parents, children);
        let join = SwitchJoin::new(scan, SwitchJoinConfig::new(PerSide::new(0, 0)));
        AdaptiveJoin::new(join, ControllerConfig::new(n as u64))
    }

    #[test]
    fn clean_data_never_switches() {
        let mut join = adaptive(200, 200);
        let pairs = join.run_to_end().unwrap();
        assert_eq!(pairs.len(), 200);
        assert_eq!(join.phase(), JoinPhase::Exact);
        assert!(join.switch_event().is_none());
    }

    #[test]
    fn dirty_tail_triggers_a_switch_and_recovers_matches() {
        let mut join = adaptive(300, 150);
        let pairs = join.run_to_end().unwrap();

        let event = join.switch_event().expect("the controller must switch");
        assert!(event.after_tuples > 300, "switch happens after dirt starts");
        assert!(event.sigma <= 0.01);

        // Every parent-child pair is found: clean ones exactly, dirty ones
        // approximately (recovered or post-switch).
        assert_eq!(pairs.len(), 300);
        let report = join.report();
        assert_eq!(report.emitted.total(), 300);
        assert!(
            report.emitted.approximate >= 100,
            "dirty pairs matched approximately"
        );

        // No duplicates in the combined stream.
        let mut seen = std::collections::HashSet::new();
        for p in &pairs {
            assert!(seen.insert(p.id_pair()), "duplicate {:?}", p.id_pair());
        }
    }

    #[test]
    fn report_reflects_progress() {
        let mut join = adaptive(64, 64);
        join.open().unwrap();
        let _ = join.next().unwrap();
        let report = join.report();
        assert!(report.consumed.left + report.consumed.right >= 2);
        assert_eq!(report.phase, JoinPhase::Exact);
        assert!(report.switch.is_none());
    }
}
