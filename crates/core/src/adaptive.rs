//! The adaptive join: monitor → assessor → actuator wired around a
//! [`SwitchJoin`].
//!
//! [`AdaptiveJoin`] is itself a pipelined [`Operator`]: callers pull match
//! pairs from it exactly as from any other join.  Internally, after every
//! consumed input tuple the control loop runs:
//!
//! 1. **Monitor** — package the operator counters into a `(trials, p,
//!    observed)` triple when an assessment is due (paper §3.2);
//! 2. **Assessor** — apply the binomial outlier test with hysteresis;
//! 3. **Actuator** — on a trigger, invoke
//!    [`SwitchJoin::switch_to_approximate`], performing the §3.3 state
//!    handover mid-stream; the recovered matches simply appear in the
//!    output stream.
//!
//! The loop only runs while the join is in its exact phase — after the
//! switch there is nothing left to decide.

use linkage_operators::{JoinPhase, Operator, OperatorState, PerKind, SwitchJoin};
use linkage_types::{MatchPair, PerSide, Result, SidedRecord};

use crate::assessor::{Assessor, AssessorConfig};
use crate::monitor::{Monitor, MonitorConfig};

/// Everything the controller needs to know.
#[derive(Debug, Clone)]
pub struct ControllerConfig {
    /// Monitor settings (declared reference size, cadence).
    pub monitor: MonitorConfig,
    /// Assessor settings (threshold, hysteresis).
    pub assessor: AssessorConfig,
}

impl ControllerConfig {
    /// Build with the given declared parent-relation size and default
    /// assessor settings.
    pub fn new(reference_size: u64) -> Self {
        Self {
            monitor: MonitorConfig::new(reference_size),
            assessor: AssessorConfig::default(),
        }
    }
}

/// A record of the switch decision, for reports.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SwitchEvent {
    /// Total input tuples consumed when the switch happened.
    pub after_tuples: u64,
    /// The σ value that completed the alarm streak.
    pub sigma: f64,
    /// Matches recovered from resident state during the handover.
    pub recovered: u64,
}

/// Summary of an adaptive join run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaptiveReport {
    /// Phase the join ended in.
    pub phase: JoinPhase,
    /// Input tuples consumed per side.
    pub consumed: PerSide<u64>,
    /// Distinct pairs emitted, by kind.
    pub emitted: PerKind,
    /// The switch, if it happened.
    pub switch: Option<SwitchEvent>,
}

/// The self-tuning join operator.
pub struct AdaptiveJoin<I> {
    inner: SwitchJoin<I>,
    monitor: Monitor,
    assessor: Assessor,
    switch: Option<SwitchEvent>,
}

impl<I: Operator<Item = SidedRecord>> AdaptiveJoin<I> {
    /// Wrap a [`SwitchJoin`] with a controller.
    pub fn new(inner: SwitchJoin<I>, config: ControllerConfig) -> Self {
        Self {
            inner,
            monitor: Monitor::new(config.monitor),
            assessor: Assessor::new(config.assessor),
            switch: None,
        }
    }

    /// The wrapped operator's current phase.
    pub fn phase(&self) -> JoinPhase {
        self.inner.phase()
    }

    /// The switch decision, if one was made.
    pub fn switch_event(&self) -> Option<SwitchEvent> {
        self.switch
    }

    /// Summarise the run so far.
    pub fn report(&self) -> AdaptiveReport {
        AdaptiveReport {
            phase: self.inner.phase(),
            consumed: self.inner.consumed(),
            emitted: self.inner.emitted(),
            switch: self.switch,
        }
    }

    /// Run the control loop after one consumed tuple.
    fn control_step(&mut self) -> Result<()> {
        if self.inner.phase() != JoinPhase::Exact {
            return Ok(());
        }
        let consumed = self.inner.consumed();
        if !self.monitor.due(consumed.right) {
            return Ok(());
        }
        let observation = self.monitor.observe(consumed, self.inner.emitted().total());
        let assessment = self.assessor.assess(&observation);
        if let crate::assessor::Assessment::Trigger { sigma } = assessment {
            let recovered = self.inner.switch_to_approximate()?;
            self.switch = Some(SwitchEvent {
                after_tuples: self.inner.total_consumed(),
                sigma,
                recovered,
            });
        }
        Ok(())
    }
}

impl<I: Operator<Item = SidedRecord>> Operator for AdaptiveJoin<I> {
    type Item = MatchPair;

    fn name(&self) -> &'static str {
        "adaptive-join"
    }

    fn state(&self) -> OperatorState {
        self.inner.state()
    }

    fn open(&mut self) -> Result<()> {
        self.inner.open()
    }

    fn next(&mut self) -> Result<Option<MatchPair>> {
        // Enforce the protocol here too: `pop` bypasses the inner
        // operator's own state check, and buffered pairs must not leak
        // out of a closed operator.
        self.inner.state().check_next(self.name())?;
        loop {
            if let Some(pair) = self.inner.pop() {
                return Ok(Some(pair));
            }
            if !self.inner.advance()? {
                return Ok(None);
            }
            self.control_step()?;
        }
    }

    fn close(&mut self) -> Result<()> {
        self.inner.close()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use linkage_operators::{InterleavedScan, SwitchJoinConfig};
    use linkage_types::{Field, Record, Schema, Value, VecStream};

    use linkage_datagen::SplitMix64;

    /// Parent keys: distinct 31-character pseudo-random location strings
    /// (hash-derived words so unrelated keys share essentially no q-grams).
    /// The controlled substitution-only dirt below is why this test builds
    /// its own index-paired dataset instead of using `linkage_datagen`'s
    /// random-parent generator.
    fn parent_key(i: usize) -> String {
        let i = i as u64;
        format!(
            "LOC {} {}",
            SplitMix64::word_of(i * 2 + 1, 12),
            SplitMix64::word_of(i * 2 + 2, 14)
        )
    }

    fn relation_stream(keys: Vec<String>) -> VecStream {
        let records = keys
            .iter()
            .enumerate()
            .map(|(i, k)| Record::new(i as u64, vec![Value::string(k)]))
            .collect();
        VecStream::new(Schema::of(vec![Field::string("k")]), records)
    }

    /// A parent/child pair where children past `dirty_from` have one key
    /// character replaced, so the exact join stops finding matches there.
    fn dataset(n: usize, dirty_from: usize) -> (VecStream, VecStream) {
        let parents: Vec<String> = (0..n).map(parent_key).collect();
        let children: Vec<String> = (0..n)
            .map(|i| {
                let mut key = parent_key(i);
                if i >= dirty_from {
                    // One substituted character inside the first word: the
                    // pair stays well above θ_sim = 0.8 but exact equality
                    // is destroyed.
                    key.replace_range(8..9, "0");
                }
                key
            })
            .collect();
        (relation_stream(parents), relation_stream(children))
    }

    fn adaptive(
        n: usize,
        dirty_from: usize,
    ) -> AdaptiveJoin<InterleavedScan<VecStream, VecStream>> {
        let (parents, children) = dataset(n, dirty_from);
        let scan = InterleavedScan::alternating(parents, children);
        let join = SwitchJoin::new(scan, SwitchJoinConfig::new(PerSide::new(0, 0)));
        AdaptiveJoin::new(join, ControllerConfig::new(n as u64))
    }

    #[test]
    fn clean_data_never_switches() {
        let mut join = adaptive(200, 200);
        let pairs = join.run_to_end().unwrap();
        assert_eq!(pairs.len(), 200);
        assert_eq!(join.phase(), JoinPhase::Exact);
        assert!(join.switch_event().is_none());
    }

    #[test]
    fn dirty_tail_triggers_a_switch_and_recovers_matches() {
        let mut join = adaptive(300, 150);
        let pairs = join.run_to_end().unwrap();

        let event = join.switch_event().expect("the controller must switch");
        assert!(event.after_tuples > 300, "switch happens after dirt starts");
        assert!(event.sigma <= 0.01);

        // Every parent-child pair is found: clean ones exactly, dirty ones
        // approximately (recovered or post-switch).
        assert_eq!(pairs.len(), 300);
        let report = join.report();
        assert_eq!(report.emitted.total(), 300);
        assert!(
            report.emitted.approximate >= 100,
            "dirty pairs matched approximately"
        );

        // No duplicates in the combined stream.
        let mut seen = std::collections::HashSet::new();
        for p in &pairs {
            assert!(seen.insert(p.id_pair()), "duplicate {:?}", p.id_pair());
        }
    }

    #[test]
    fn report_reflects_progress() {
        let mut join = adaptive(64, 64);
        join.open().unwrap();
        let _ = join.next().unwrap();
        let report = join.report();
        assert!(report.consumed.left + report.consumed.right >= 2);
        assert_eq!(report.phase, JoinPhase::Exact);
        assert!(report.switch.is_none());
    }
}
