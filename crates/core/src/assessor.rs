//! The assessor: deciding whether an observation signals dirty data.
//!
//! Wraps [`linkage_stats::BinomialOutlierDetector`] (the paper's
//! `σ(n) ≤ θ_out` predicate, §3.2) with two practical guards:
//!
//! * a **minimum trial count**, so the test is not run on a handful of
//!   tuples where the binomial tail is meaninglessly wide;
//! * a **consecutive-alarm requirement** (hysteresis), so one unlucky
//!   window does not trigger an irreversible operator switch.

use linkage_stats::BinomialOutlierDetector;
use linkage_types::defaults;

use crate::monitor::Observation;

/// Assessor configuration.
///
/// `#[non_exhaustive]`: construct via [`Default`] and refine with the
/// `with_*` builders.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub struct AssessorConfig {
    /// Significance threshold `θ_out` of the outlier test.
    pub theta_out: f64,
    /// Observations with fewer trials than this are ignored.
    pub min_trials: u64,
    /// Number of consecutive outlier verdicts required to trigger.
    pub consecutive_alarms: u32,
}

impl Default for AssessorConfig {
    fn default() -> Self {
        Self {
            theta_out: defaults::THETA_OUT,
            min_trials: defaults::MIN_TRIALS,
            consecutive_alarms: defaults::CONSECUTIVE_ALARMS,
        }
    }
}

impl AssessorConfig {
    /// Override the outlier significance threshold `θ_out`.
    #[must_use]
    pub fn with_theta_out(mut self, theta_out: f64) -> Self {
        self.theta_out = theta_out;
        self
    }

    /// Override the minimum trial count.
    #[must_use]
    pub fn with_min_trials(mut self, min_trials: u64) -> Self {
        self.min_trials = min_trials;
        self
    }

    /// Override the consecutive-alarm (hysteresis) requirement.
    #[must_use]
    pub fn with_consecutive_alarms(mut self, consecutive_alarms: u32) -> Self {
        self.consecutive_alarms = consecutive_alarms;
        self
    }
}

/// Outcome of assessing one observation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Assessment {
    /// Too few trials to say anything.
    Insufficient,
    /// Compatible with the clean-data model; any alarm streak is reset.
    Nominal {
        /// The computed tail probability.
        sigma: f64,
    },
    /// An outlier, but the required streak is not yet complete.
    Alarm {
        /// The computed tail probability.
        sigma: f64,
        /// Current consecutive-alarm count.
        streak: u32,
    },
    /// The streak is complete: the actuator should switch operators now.
    Trigger {
        /// The computed tail probability at the triggering observation.
        sigma: f64,
    },
}

impl Assessment {
    /// Whether this assessment completes the alarm streak.
    pub fn is_trigger(&self) -> bool {
        matches!(self, Assessment::Trigger { .. })
    }
}

/// The assessor itself.
#[derive(Debug, Clone, Copy)]
pub struct Assessor {
    config: AssessorConfig,
    detector: BinomialOutlierDetector,
    streak: u32,
}

impl Assessor {
    /// Build from a configuration.
    pub fn new(config: AssessorConfig) -> Self {
        Self {
            config,
            detector: BinomialOutlierDetector::new(config.theta_out),
            streak: 0,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &AssessorConfig {
        &self.config
    }

    /// Current consecutive-alarm streak.
    pub fn streak(&self) -> u32 {
        self.streak
    }

    /// Restore the alarm streak from a snapshot, so hysteresis continues
    /// exactly where the interrupted run left off.
    pub fn restore_streak(&mut self, streak: u32) {
        self.streak = streak;
    }

    /// Assess one observation, updating the alarm streak.
    pub fn assess(&mut self, obs: &Observation) -> Assessment {
        if obs.trials < self.config.min_trials {
            return Assessment::Insufficient;
        }
        let verdict = self.detector.assess(obs.trials, obs.p, obs.observed);
        if verdict.is_outlier() {
            self.streak += 1;
            if self.streak >= self.config.consecutive_alarms {
                Assessment::Trigger {
                    sigma: verdict.sigma(),
                }
            } else {
                Assessment::Alarm {
                    sigma: verdict.sigma(),
                    streak: self.streak,
                }
            }
        } else {
            self.streak = 0;
            Assessment::Nominal {
                sigma: verdict.sigma(),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(trials: u64, p: f64, observed: u64) -> Observation {
        Observation {
            trials,
            p,
            observed,
        }
    }

    #[test]
    fn insufficient_below_min_trials() {
        let mut a = Assessor::new(AssessorConfig::default());
        assert_eq!(a.assess(&obs(5, 0.5, 0)), Assessment::Insufficient);
        assert_eq!(a.streak(), 0);
    }

    #[test]
    fn nominal_observation_resets_streak() {
        let mut a = Assessor::new(AssessorConfig {
            consecutive_alarms: 3,
            ..AssessorConfig::default()
        });
        assert!(matches!(
            a.assess(&obs(100, 0.5, 20)),
            Assessment::Alarm { streak: 1, .. }
        ));
        assert!(matches!(
            a.assess(&obs(100, 0.5, 50)),
            Assessment::Nominal { .. }
        ));
        assert_eq!(a.streak(), 0);
        assert!(matches!(
            a.assess(&obs(100, 0.5, 20)),
            Assessment::Alarm { streak: 1, .. }
        ));
    }

    #[test]
    fn trigger_after_consecutive_alarms() {
        let mut a = Assessor::new(AssessorConfig {
            consecutive_alarms: 2,
            ..AssessorConfig::default()
        });
        let first = a.assess(&obs(100, 0.5, 20));
        assert!(matches!(first, Assessment::Alarm { streak: 1, .. }));
        let second = a.assess(&obs(120, 0.5, 25));
        assert!(second.is_trigger());
    }

    #[test]
    fn single_alarm_config_triggers_immediately() {
        let mut a = Assessor::new(AssessorConfig {
            consecutive_alarms: 1,
            ..AssessorConfig::default()
        });
        assert!(a.assess(&obs(100, 0.5, 10)).is_trigger());
    }

    #[test]
    fn sigma_is_reported() {
        let mut a = Assessor::new(AssessorConfig {
            consecutive_alarms: 1,
            ..AssessorConfig::default()
        });
        match a.assess(&obs(100, 0.5, 10)) {
            Assessment::Trigger { sigma } => assert!(sigma < 1e-9),
            other => panic!("expected trigger, got {other:?}"),
        }
    }
}
