//! Relational schemas.

use std::fmt;
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use crate::error::{LinkageError, Result};
use crate::value::Value;

/// The declared type of a field.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DataType {
    /// UTF-8 string.
    String,
    /// 64-bit signed integer.
    Integer,
    /// 64-bit float.
    Float,
    /// Boolean.
    Boolean,
}

impl DataType {
    /// Whether `value` conforms to this type. NULL conforms to every type.
    pub fn accepts(&self, value: &Value) -> bool {
        matches!(
            (self, value),
            (_, Value::Null)
                | (DataType::String, Value::Str(_))
                | (DataType::Integer, Value::Int(_))
                | (DataType::Float, Value::Float(_))
                | (DataType::Float, Value::Int(_))
                | (DataType::Boolean, Value::Bool(_))
        )
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            DataType::String => "string",
            DataType::Integer => "integer",
            DataType::Float => "float",
            DataType::Boolean => "boolean",
        };
        write!(f, "{name}")
    }
}

/// A named, typed column of a relation.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Field {
    /// Column name, unique within a [`Schema`].
    pub name: String,
    /// Declared type.
    pub data_type: DataType,
}

impl Field {
    /// Build a field.
    pub fn new(name: impl Into<String>, data_type: DataType) -> Self {
        Self {
            name: name.into(),
            data_type,
        }
    }

    /// Shorthand for a string field.
    pub fn string(name: impl Into<String>) -> Self {
        Self::new(name, DataType::String)
    }

    /// Shorthand for an integer field.
    pub fn integer(name: impl Into<String>) -> Self {
        Self::new(name, DataType::Integer)
    }

    /// Shorthand for a float field.
    pub fn float(name: impl Into<String>) -> Self {
        Self::new(name, DataType::Float)
    }
}

/// An ordered collection of [`Field`]s describing a relation.
///
/// Schemas are cheap to clone (`Arc` internally) because every record stream,
/// operator and relation holds one.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Schema {
    fields: Arc<[Field]>,
}

impl Schema {
    /// Build a schema from fields, rejecting duplicate column names.
    pub fn new(fields: Vec<Field>) -> Result<Self> {
        for (i, f) in fields.iter().enumerate() {
            if fields[..i].iter().any(|g| g.name == f.name) {
                return Err(LinkageError::schema(format!(
                    "duplicate field name `{}`",
                    f.name
                )));
            }
        }
        Ok(Self {
            fields: fields.into(),
        })
    }

    /// Build a schema, panicking on duplicates. Intended for statically known
    /// schemas in tests and examples.
    pub fn of(fields: Vec<Field>) -> Self {
        Self::new(fields).expect("static schema must be valid")
    }

    /// The fields in declaration order.
    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// Whether the schema has no columns.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Index of the column called `name`.
    pub fn index_of(&self, name: &str) -> Result<usize> {
        self.fields
            .iter()
            .position(|f| f.name == name)
            .ok_or_else(|| LinkageError::schema(format!("unknown field `{name}`")))
    }

    /// The field called `name`.
    pub fn field(&self, name: &str) -> Result<&Field> {
        self.index_of(name).map(|i| &self.fields[i])
    }

    /// The field at position `index`.
    pub fn field_at(&self, index: usize) -> Result<&Field> {
        self.fields.get(index).ok_or_else(|| {
            LinkageError::schema(format!(
                "field index {index} out of bounds for schema of {} fields",
                self.fields.len()
            ))
        })
    }

    /// Validate that `values` conforms to this schema (arity + types).
    pub fn validate(&self, values: &[Value]) -> Result<()> {
        if values.len() != self.fields.len() {
            return Err(LinkageError::record(format!(
                "arity mismatch: schema has {} fields, record has {} values",
                self.fields.len(),
                values.len()
            )));
        }
        for (field, value) in self.fields.iter().zip(values) {
            if !field.data_type.accepts(value) {
                return Err(LinkageError::record(format!(
                    "field `{}` expects {}, found {}",
                    field.name,
                    field.data_type,
                    value.type_name()
                )));
            }
        }
        Ok(())
    }

    /// Concatenate two schemas, prefixing colliding names with `left_`/`right_`.
    ///
    /// Used to build the output schema of a join.
    pub fn join(&self, other: &Schema) -> Schema {
        let mut fields: Vec<Field> = Vec::with_capacity(self.len() + other.len());
        for f in self.fields() {
            let name = if other.index_of(&f.name).is_ok() {
                format!("left_{}", f.name)
            } else {
                f.name.clone()
            };
            fields.push(Field::new(name, f.data_type));
        }
        for f in other.fields() {
            let name = if self.index_of(&f.name).is_ok() {
                format!("right_{}", f.name)
            } else {
                f.name.clone()
            };
            fields.push(Field::new(name, f.data_type));
        }
        Schema {
            fields: fields.into(),
        }
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, field) in self.fields.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}: {}", field.name, field.data_type)?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn location_schema() -> Schema {
        Schema::of(vec![
            Field::integer("id"),
            Field::string("location"),
            Field::float("severity"),
        ])
    }

    #[test]
    fn rejects_duplicate_field_names() {
        let err = Schema::new(vec![Field::string("a"), Field::integer("a")]).unwrap_err();
        assert!(err.to_string().contains("duplicate field name"));
    }

    #[test]
    fn index_and_field_lookup() {
        let schema = location_schema();
        assert_eq!(schema.len(), 3);
        assert!(!schema.is_empty());
        assert_eq!(schema.index_of("location").unwrap(), 1);
        assert_eq!(schema.field("severity").unwrap().data_type, DataType::Float);
        assert!(schema.index_of("missing").is_err());
        assert!(schema.field_at(5).is_err());
        assert_eq!(schema.field_at(0).unwrap().name, "id");
    }

    #[test]
    fn validate_checks_arity_and_types() {
        let schema = location_schema();
        schema
            .validate(&[Value::Int(1), Value::string("ROMA"), Value::Float(0.3)])
            .unwrap();
        // NULL is accepted anywhere.
        schema
            .validate(&[Value::Null, Value::Null, Value::Null])
            .unwrap();
        // Integers widen to float columns.
        schema
            .validate(&[Value::Int(1), Value::string("ROMA"), Value::Int(2)])
            .unwrap();
        assert!(schema
            .validate(&[Value::Int(1), Value::string("ROMA")])
            .is_err());
        assert!(schema
            .validate(&[Value::string("x"), Value::string("ROMA"), Value::Float(0.0)])
            .is_err());
    }

    #[test]
    fn join_schema_renames_collisions() {
        let left = Schema::of(vec![Field::integer("id"), Field::string("location")]);
        let right = Schema::of(vec![Field::integer("id"), Field::string("name")]);
        let joined = left.join(&right);
        let names: Vec<&str> = joined.fields().iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["left_id", "location", "right_id", "name"]);
    }

    #[test]
    fn join_schema_without_collisions_keeps_names() {
        let left = Schema::of(vec![Field::string("a")]);
        let right = Schema::of(vec![Field::string("b")]);
        let joined = left.join(&right);
        let names: Vec<&str> = joined.fields().iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["a", "b"]);
    }

    #[test]
    fn data_type_accepts() {
        assert!(DataType::String.accepts(&Value::string("x")));
        assert!(!DataType::String.accepts(&Value::Int(1)));
        assert!(DataType::Float.accepts(&Value::Int(1)));
        assert!(DataType::Integer.accepts(&Value::Null));
        assert!(DataType::Boolean.accepts(&Value::Bool(true)));
        assert!(!DataType::Boolean.accepts(&Value::Float(1.0)));
    }

    #[test]
    fn display_formats() {
        let schema = Schema::of(vec![Field::integer("id"), Field::string("loc")]);
        assert_eq!(schema.to_string(), "(id: integer, loc: string)");
        assert_eq!(DataType::Float.to_string(), "float");
    }
}
