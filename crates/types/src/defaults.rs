//! The paper's default parameters, defined once for the whole workspace.
//!
//! Every crate that needs a default join parameter references these
//! constants instead of repeating the literal: the q-gram window width
//! used by `linkage-text`, the similarity and outlier thresholds used by
//! the operators and the controller, the monitor cadence, and the
//! epoch/channel sizing of the sharded executor.  Changing a paper
//! default is therefore a one-line, workspace-wide edit — and the
//! unified `linkage::api` pipeline configuration is guaranteed to agree
//! with the per-layer configs it constructs.

/// Q-gram window width `q` (paper §2.2: "typically, q = 3").
pub const Q: usize = 3;

/// Similarity threshold `θ_sim` of the approximate join, calibrated so
/// that one-edit variants of the generator's ~30-character keys match
/// while unrelated keys do not (paper §4.2).
pub const THETA_SIM: f64 = 0.8;

/// Significance threshold `θ_out` of the binomial outlier test (§3.2).
pub const THETA_OUT: f64 = 0.01;

/// Monitor cadence: assess once per this many consumed child tuples.
pub const CHECK_EVERY: u64 = 16;

/// Minimum Bernoulli trials before the outlier test is meaningful.
pub const MIN_TRIALS: u64 = 16;

/// Consecutive outlier verdicts required before the switch triggers
/// (the assessor's hysteresis guard).
pub const CONSECUTIVE_ALARMS: u32 = 2;

/// Input tuples pulled per epoch by the sharded executor's lock-step
/// protocol.
pub const EPOCH_BATCH_SIZE: usize = 64;

/// Bounded depth of each shard worker's command channel.
pub const CHANNEL_CAPACITY: usize = 2;
