//! Error type shared across the workspace.

use std::fmt;

/// Convenience alias for results produced by linkage components.
pub type Result<T> = std::result::Result<T, LinkageError>;

/// Errors produced anywhere in the linkage pipeline.
///
/// The variants are deliberately coarse: each one captures the *phase* in
/// which the problem occurred plus a human-readable message, which is enough
/// for the experiment harness and the examples to report failures usefully
/// without dragging a heavyweight error-handling dependency into every crate.
///
/// The enum is `#[non_exhaustive]`: future execution backends may add
/// variants, so downstream matches must carry a wildcard arm.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum LinkageError {
    /// A schema was malformed or a field lookup failed.
    Schema(String),
    /// A record did not conform to the schema it was paired with.
    Record(String),
    /// A value had the wrong type for the requested operation.
    Type {
        /// What the caller expected (e.g. `"string"`).
        expected: &'static str,
        /// What was actually found (e.g. `"integer"`).
        found: &'static str,
    },
    /// An operator was driven through an illegal iterator transition
    /// (e.g. `next()` before `open()`).
    OperatorState(String),
    /// The adaptive controller was asked to perform an illegal transition
    /// (e.g. switching outside a quiescent state).
    Adaptivity(String),
    /// Configuration was internally inconsistent (e.g. a negative threshold).
    Config(String),
    /// Data generation failed (e.g. an empty reference table).
    DataGen(String),
    /// An experiment could not be executed or reported.
    Experiment(String),
    /// The parallel execution layer failed (e.g. a worker shard died or a
    /// channel was severed mid-join).
    Execution(String),
    /// An I/O error, flattened to a string so the error stays `Clone + Eq`.
    Io(String),
    /// A snapshot file could not be written, or could not be read back
    /// (truncation, checksum mismatch, unsupported format version, or a
    /// payload that contradicts the pipeline it is being restored into).
    Snapshot(String),
    /// The server's bounded accept queue or session table is full; the
    /// request was rejected without being processed.  Retryable.
    Busy(String),
    /// Admitting (or growing) a session would exceed the server's global
    /// state-bytes budget and no idle session could be evicted to make
    /// room.  Retryable once load drains.
    OverBudget(String),
    /// A wire-protocol frame or payload was malformed (bad magic, unknown
    /// message kind, oversized frame, truncated or trailing payload).
    Protocol(String),
    /// The transport connection failed mid-exchange: the dial failed, the
    /// peer vanished, a deadline expired, or a frame was cut partway
    /// through.  Raised client-side only (never encoded on the wire) and
    /// always retryable — but a lost *reply* means the request may have
    /// been applied, so retries must resynchronise first.
    ConnectionLost(String),
    /// The request named a session id the server does not know (never
    /// opened, already closed, or lost to a restart that could not adopt
    /// it).  Not retryable against the same id; open a new session.
    UnknownSession(String),
    /// The session was quarantined after a fault — a worker panic poisoned
    /// its in-memory state, or its eviction files came back torn or
    /// corrupt.  Its durable remains are parked for inspection; `CLOSE`
    /// discards them.  Not retryable against the same id.
    Quarantined(String),
}

impl LinkageError {
    /// Build a [`LinkageError::Schema`] from anything displayable.
    pub fn schema(msg: impl fmt::Display) -> Self {
        Self::Schema(msg.to_string())
    }

    /// Build a [`LinkageError::Record`] from anything displayable.
    pub fn record(msg: impl fmt::Display) -> Self {
        Self::Record(msg.to_string())
    }

    /// Build a [`LinkageError::OperatorState`] from anything displayable.
    pub fn operator_state(msg: impl fmt::Display) -> Self {
        Self::OperatorState(msg.to_string())
    }

    /// Build a [`LinkageError::Adaptivity`] from anything displayable.
    pub fn adaptivity(msg: impl fmt::Display) -> Self {
        Self::Adaptivity(msg.to_string())
    }

    /// Build a [`LinkageError::Config`] from anything displayable.
    pub fn config(msg: impl fmt::Display) -> Self {
        Self::Config(msg.to_string())
    }

    /// Build a [`LinkageError::DataGen`] from anything displayable.
    pub fn datagen(msg: impl fmt::Display) -> Self {
        Self::DataGen(msg.to_string())
    }

    /// Build a [`LinkageError::Experiment`] from anything displayable.
    pub fn experiment(msg: impl fmt::Display) -> Self {
        Self::Experiment(msg.to_string())
    }

    /// Build a [`LinkageError::Execution`] from anything displayable.
    pub fn execution(msg: impl fmt::Display) -> Self {
        Self::Execution(msg.to_string())
    }

    /// Build a [`LinkageError::Snapshot`] from anything displayable.
    pub fn snapshot(msg: impl fmt::Display) -> Self {
        Self::Snapshot(msg.to_string())
    }

    /// Build a [`LinkageError::Busy`] from anything displayable.
    pub fn busy(msg: impl fmt::Display) -> Self {
        Self::Busy(msg.to_string())
    }

    /// Build a [`LinkageError::OverBudget`] from anything displayable.
    pub fn over_budget(msg: impl fmt::Display) -> Self {
        Self::OverBudget(msg.to_string())
    }

    /// Build a [`LinkageError::Protocol`] from anything displayable.
    pub fn protocol(msg: impl fmt::Display) -> Self {
        Self::Protocol(msg.to_string())
    }

    /// Build a [`LinkageError::ConnectionLost`] from anything displayable.
    pub fn connection_lost(msg: impl fmt::Display) -> Self {
        Self::ConnectionLost(msg.to_string())
    }

    /// Build a [`LinkageError::UnknownSession`] from anything displayable.
    pub fn unknown_session(msg: impl fmt::Display) -> Self {
        Self::UnknownSession(msg.to_string())
    }

    /// Build a [`LinkageError::Quarantined`] from anything displayable.
    pub fn quarantined(msg: impl fmt::Display) -> Self {
        Self::Quarantined(msg.to_string())
    }
}

impl fmt::Display for LinkageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Schema(m) => write!(f, "schema error: {m}"),
            Self::Record(m) => write!(f, "record error: {m}"),
            Self::Type { expected, found } => {
                write!(f, "type error: expected {expected}, found {found}")
            }
            Self::OperatorState(m) => write!(f, "operator state error: {m}"),
            Self::Adaptivity(m) => write!(f, "adaptivity error: {m}"),
            Self::Config(m) => write!(f, "configuration error: {m}"),
            Self::DataGen(m) => write!(f, "data generation error: {m}"),
            Self::Experiment(m) => write!(f, "experiment error: {m}"),
            Self::Execution(m) => write!(f, "execution error: {m}"),
            Self::Io(m) => write!(f, "io error: {m}"),
            Self::Snapshot(m) => write!(f, "snapshot error: {m}"),
            Self::Busy(m) => write!(f, "busy: {m}"),
            Self::OverBudget(m) => write!(f, "over budget: {m}"),
            Self::Protocol(m) => write!(f, "protocol error: {m}"),
            Self::ConnectionLost(m) => write!(f, "connection lost: {m}"),
            Self::UnknownSession(m) => write!(f, "unknown session: {m}"),
            Self::Quarantined(m) => write!(f, "quarantined: {m}"),
        }
    }
}

impl std::error::Error for LinkageError {}

impl From<std::io::Error> for LinkageError {
    fn from(value: std::io::Error) -> Self {
        Self::Io(value.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_phase_and_message() {
        let err = LinkageError::schema("missing field `location`");
        assert_eq!(err.to_string(), "schema error: missing field `location`");

        let err = LinkageError::Type {
            expected: "string",
            found: "integer",
        };
        assert_eq!(
            err.to_string(),
            "type error: expected string, found integer"
        );
    }

    #[test]
    fn constructors_map_to_expected_variants() {
        assert!(matches!(LinkageError::record("x"), LinkageError::Record(_)));
        assert!(matches!(
            LinkageError::operator_state("x"),
            LinkageError::OperatorState(_)
        ));
        assert!(matches!(
            LinkageError::adaptivity("x"),
            LinkageError::Adaptivity(_)
        ));
        assert!(matches!(LinkageError::config("x"), LinkageError::Config(_)));
        assert!(matches!(
            LinkageError::datagen("x"),
            LinkageError::DataGen(_)
        ));
        assert!(matches!(
            LinkageError::experiment("x"),
            LinkageError::Experiment(_)
        ));
        assert!(matches!(
            LinkageError::execution("x"),
            LinkageError::Execution(_)
        ));
        assert!(matches!(
            LinkageError::snapshot("x"),
            LinkageError::Snapshot(_)
        ));
        assert_eq!(
            LinkageError::snapshot("bad crc").to_string(),
            "snapshot error: bad crc"
        );
        assert!(matches!(LinkageError::busy("x"), LinkageError::Busy(_)));
        assert!(matches!(
            LinkageError::over_budget("x"),
            LinkageError::OverBudget(_)
        ));
        assert!(matches!(
            LinkageError::protocol("x"),
            LinkageError::Protocol(_)
        ));
        assert_eq!(
            LinkageError::busy("accept queue full").to_string(),
            "busy: accept queue full"
        );
        assert_eq!(
            LinkageError::over_budget("8 MiB > 4 MiB").to_string(),
            "over budget: 8 MiB > 4 MiB"
        );
        assert_eq!(
            LinkageError::protocol("bad frame").to_string(),
            "protocol error: bad frame"
        );
        assert!(matches!(
            LinkageError::connection_lost("x"),
            LinkageError::ConnectionLost(_)
        ));
        assert!(matches!(
            LinkageError::unknown_session("x"),
            LinkageError::UnknownSession(_)
        ));
        assert!(matches!(
            LinkageError::quarantined("x"),
            LinkageError::Quarantined(_)
        ));
        assert_eq!(
            LinkageError::connection_lost("peer reset").to_string(),
            "connection lost: peer reset"
        );
        assert_eq!(
            LinkageError::unknown_session("session 9").to_string(),
            "unknown session: session 9"
        );
        assert_eq!(
            LinkageError::quarantined("torn sidecar").to_string(),
            "quarantined: torn sidecar"
        );
    }

    #[test]
    fn io_errors_are_flattened() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let err: LinkageError = io.into();
        assert!(matches!(err, LinkageError::Io(_)));
        assert!(err.to_string().contains("gone"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(LinkageError::schema("a"), LinkageError::schema("a"));
        assert_ne!(LinkageError::schema("a"), LinkageError::schema("b"));
        assert_ne!(LinkageError::schema("a"), LinkageError::record("a"));
    }
}
