//! Pull-based record streams and the operator-facing stream contract.
//!
//! The operators in this workspace are *pipelined*: they consume tuples one
//! at a time from their inputs and can emit results before either input is
//! exhausted (paper §2.1).  [`RecordStream`] is the pull contract those
//! operators consume.  It follows the classic `OPEN`/`NEXT`/`CLOSE`
//! iterator lifecycle of the relational literature:
//!
//! * [`RecordStream::open`] prepares the source (no-op for in-memory
//!   sources, connection setup for future network sources);
//! * [`RecordStream::next_record`] / [`RecordStream::next_batch`] pull one
//!   tuple or up to a bounded batch of tuples;
//! * [`RecordStream::close`] releases resources; a closed stream yields no
//!   further records.
//!
//! The richer *operator* protocol — which adds state-machine enforcement
//! and fallible `next` — lives in `linkage-operators::iterator`; streams
//! stay infallible and lenient so that cheap in-memory sources do not pay
//! for book-keeping they do not need.
//!
//! Module layout:
//!
//! * [`batch`] — [`RecordBatch`], the unit handed around by the experiment
//!   harness and returned by batch pulls;
//! * [`mod@vec`] — [`VecStream`], the in-memory source used everywhere in
//!   tests and examples;
//! * [`interleave`] — [`InterleavedStream`] and [`InterleavePolicy`], which
//!   merge the two inputs of a symmetric join into one sided stream.

pub mod batch;
pub mod interleave;
pub mod vec;

pub use batch::RecordBatch;
pub use interleave::{InterleavePolicy, InterleavedStream};
pub use vec::VecStream;

use crate::record::Record;
use crate::schema::Schema;

/// A pull-based source of records with a known schema, following the
/// `OPEN`/`NEXT`/`CLOSE` lifecycle.
///
/// Lifecycle rules (deliberately lenient for in-memory sources):
///
/// * [`open`](Self::open) must be called before pulling; in-memory sources
///   accept pulls without it, but operators always call it.
/// * After [`close`](Self::close), [`next_record`](Self::next_record) must
///   return `None`.
/// * [`rewind`](Self::rewind) re-opens a replayable source from the start.
pub trait RecordStream {
    /// The schema every produced record conforms to.
    fn schema(&self) -> &Schema;

    /// Prepare the source for pulling.  Default: no-op.
    fn open(&mut self) {}

    /// Produce the next record, or `None` when exhausted or closed.
    fn next_record(&mut self) -> Option<Record>;

    /// Pull up to `max` records in one call.
    ///
    /// The default implementation loops over
    /// [`next_record`](Self::next_record); sources with cheaper bulk access
    /// (memory-mapped files, columnar pages) override it.  Returns fewer
    /// than `max` records only when the stream is exhausted.
    fn next_batch(&mut self, max: usize) -> Vec<Record> {
        let mut out = Vec::with_capacity(max.min(1024));
        while out.len() < max {
            match self.next_record() {
                Some(r) => out.push(r),
                None => break,
            }
        }
        out
    }

    /// Release resources.  After closing, pulls return `None`.  Default:
    /// no-op (in-memory sources hold nothing worth releasing — they still
    /// honour the "no records after close" rule via their own state).
    fn close(&mut self) {}

    /// A hint of how many records remain, if known.
    ///
    /// The adaptive monitor uses the *declared* expected size of the inputs
    /// (paper §3.2), not this hint, so returning `None` is always safe.
    fn size_hint(&self) -> Option<usize> {
        None
    }

    /// Reset the stream to its beginning, if the source supports it.
    ///
    /// Returns `false` when the source cannot be replayed (e.g. a network
    /// stream).  In-memory sources return `true` and are open again
    /// afterwards.
    fn rewind(&mut self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Field;
    use crate::value::Value;

    fn stream_of(keys: &[&str]) -> VecStream {
        let schema = Schema::of(vec![Field::string("k")]);
        let records = keys
            .iter()
            .enumerate()
            .map(|(i, k)| Record::new(i as u64, vec![Value::string(*k)]))
            .collect();
        VecStream::new(schema, records)
    }

    #[test]
    fn default_next_batch_pulls_up_to_max() {
        let mut s = stream_of(&["a", "b", "c", "d", "e"]);
        s.open();
        let first = s.next_batch(2);
        assert_eq!(first.len(), 2);
        assert_eq!(first[1].key_str(0).unwrap(), "b");
        let rest = s.next_batch(10);
        assert_eq!(rest.len(), 3);
        assert!(s.next_batch(4).is_empty());
    }

    #[test]
    fn next_batch_of_zero_is_empty_without_consuming() {
        let mut s = stream_of(&["a"]);
        assert!(s.next_batch(0).is_empty());
        assert_eq!(s.next_record().unwrap().key_str(0).unwrap(), "a");
    }

    #[test]
    fn lifecycle_open_pull_close() {
        let mut s = stream_of(&["a", "b"]);
        s.open();
        assert!(s.next_record().is_some());
        s.close();
        assert!(s.next_record().is_none(), "closed stream must yield None");
        assert!(s.next_batch(5).is_empty());
        // Rewinding re-opens a replayable source.
        assert!(s.rewind());
        assert_eq!(s.next_record().unwrap().key_str(0).unwrap(), "a");
    }
}
