//! Interleaving the two inputs of a symmetric join.

use serde::{Deserialize, Serialize};

use crate::record::{Record, SidedRecord};
use crate::schema::Schema;
use crate::side::Side;

use super::RecordStream;

/// The policy used to interleave the two inputs of a symmetric join.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum InterleavePolicy {
    /// Strict alternation left, right, left, right, … (the paper's
    /// "scanning each of the tables in turn, one tuple at a time").
    #[default]
    Alternate,
    /// Drain the left input completely, then the right.
    LeftFirst,
    /// Drain the right input completely, then the left.
    RightFirst,
    /// `k` tuples from the left, then `k` from the right, repeatedly.
    Blocks(usize),
}

/// Interleaves two [`RecordStream`]s into a single stream of [`SidedRecord`]s.
///
/// When one input is exhausted the other continues to be drained, so the join
/// always sees every tuple exactly once regardless of relative input sizes.
pub struct InterleavedStream<L, R> {
    left: L,
    right: R,
    policy: InterleavePolicy,
    /// Which side to try next under the alternating policies.
    next_side: Side,
    /// Tuples emitted from the current block (for `Blocks`).
    block_progress: usize,
    emitted: usize,
}

impl<L: RecordStream, R: RecordStream> InterleavedStream<L, R> {
    /// Build an interleaved stream with the given policy.
    pub fn new(left: L, right: R, policy: InterleavePolicy) -> Self {
        let next_side = match policy {
            InterleavePolicy::RightFirst => Side::Right,
            _ => Side::Left,
        };
        Self {
            left,
            right,
            policy,
            next_side,
            block_progress: 0,
            emitted: 0,
        }
    }

    /// Strictly alternating interleave (the default used by the paper).
    pub fn alternating(left: L, right: R) -> Self {
        Self::new(left, right, InterleavePolicy::Alternate)
    }

    /// Number of sided records emitted so far.
    pub fn emitted(&self) -> usize {
        self.emitted
    }

    /// Open both underlying streams.
    pub fn open(&mut self) {
        self.left.open();
        self.right.open();
    }

    /// Close both underlying streams; subsequent pulls return `None`.
    pub fn close(&mut self) {
        self.left.close();
        self.right.close();
    }

    fn pull(&mut self, side: Side) -> Option<Record> {
        match side {
            Side::Left => self.left.next_record(),
            Side::Right => self.right.next_record(),
        }
    }

    /// Produce the next sided record according to the interleave policy.
    pub fn next_sided(&mut self) -> Option<SidedRecord> {
        let first_choice = match self.policy {
            InterleavePolicy::Alternate => self.next_side,
            InterleavePolicy::LeftFirst => Side::Left,
            InterleavePolicy::RightFirst => Side::Right,
            InterleavePolicy::Blocks(_) => self.next_side,
        };

        let result = match self.pull(first_choice) {
            Some(record) => Some(SidedRecord::new(first_choice, record)),
            None => self
                .pull(first_choice.opposite())
                .map(|record| SidedRecord::new(first_choice.opposite(), record)),
        };

        if let Some(sided) = &result {
            self.emitted += 1;
            match self.policy {
                InterleavePolicy::Alternate => {
                    self.next_side = sided.side.opposite();
                }
                InterleavePolicy::Blocks(k) => {
                    let k = k.max(1);
                    if sided.side == self.next_side {
                        self.block_progress += 1;
                        if self.block_progress >= k {
                            self.block_progress = 0;
                            self.next_side = self.next_side.opposite();
                        }
                    } else {
                        // The preferred side is exhausted: stay on the other.
                        self.next_side = sided.side;
                        self.block_progress = 0;
                    }
                }
                InterleavePolicy::LeftFirst | InterleavePolicy::RightFirst => {}
            }
        }
        result
    }

    /// Pull up to `max` sided records in one call.
    pub fn next_sided_batch(&mut self, max: usize) -> Vec<SidedRecord> {
        let mut out = Vec::with_capacity(max.min(1024));
        while out.len() < max {
            match self.next_sided() {
                Some(s) => out.push(s),
                None => break,
            }
        }
        out
    }

    /// Schemas of the two inputs.
    pub fn schemas(&self) -> (&Schema, &Schema) {
        (self.left.schema(), self.right.schema())
    }

    /// Collect the entire stream into a vector (testing convenience).
    pub fn collect_all(mut self) -> Vec<SidedRecord> {
        let mut out = Vec::new();
        while let Some(s) = self.next_sided() {
            out.push(s);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::super::VecStream;
    use super::*;
    use crate::schema::Field;
    use crate::value::Value;

    fn schema() -> Schema {
        Schema::of(vec![Field::string("k")])
    }

    fn stream_of(keys: &[&str]) -> VecStream {
        let records = keys
            .iter()
            .enumerate()
            .map(|(i, k)| Record::new(i as u64, vec![Value::string(*k)]))
            .collect();
        VecStream::new(schema(), records)
    }

    fn sides(out: &[SidedRecord]) -> Vec<Side> {
        out.iter().map(|s| s.side).collect()
    }

    #[test]
    fn alternating_interleave_strictly_alternates() {
        let inter =
            InterleavedStream::alternating(stream_of(&["l1", "l2"]), stream_of(&["r1", "r2"]));
        let out = inter.collect_all();
        assert_eq!(
            sides(&out),
            vec![Side::Left, Side::Right, Side::Left, Side::Right]
        );
        assert_eq!(out[1].record.key_str(0).unwrap(), "r1");
    }

    #[test]
    fn alternating_interleave_drains_longer_side() {
        let inter =
            InterleavedStream::alternating(stream_of(&["l1"]), stream_of(&["r1", "r2", "r3"]));
        let out = inter.collect_all();
        assert_eq!(out.len(), 4);
        assert_eq!(
            sides(&out),
            vec![Side::Left, Side::Right, Side::Right, Side::Right]
        );
    }

    #[test]
    fn left_first_policy_drains_left_then_right() {
        let inter = InterleavedStream::new(
            stream_of(&["l1", "l2"]),
            stream_of(&["r1"]),
            InterleavePolicy::LeftFirst,
        );
        let out = inter.collect_all();
        assert_eq!(sides(&out), vec![Side::Left, Side::Left, Side::Right]);
    }

    #[test]
    fn right_first_policy_drains_right_then_left() {
        let inter = InterleavedStream::new(
            stream_of(&["l1"]),
            stream_of(&["r1", "r2"]),
            InterleavePolicy::RightFirst,
        );
        let out = inter.collect_all();
        assert_eq!(sides(&out), vec![Side::Right, Side::Right, Side::Left]);
    }

    #[test]
    fn block_policy_emits_blocks() {
        let inter = InterleavedStream::new(
            stream_of(&["l1", "l2", "l3", "l4"]),
            stream_of(&["r1", "r2", "r3", "r4"]),
            InterleavePolicy::Blocks(2),
        );
        let out = inter.collect_all();
        assert_eq!(
            sides(&out),
            vec![
                Side::Left,
                Side::Left,
                Side::Right,
                Side::Right,
                Side::Left,
                Side::Left,
                Side::Right,
                Side::Right
            ]
        );
    }

    #[test]
    fn block_policy_handles_exhausted_preferred_side() {
        let inter = InterleavedStream::new(
            stream_of(&["l1"]),
            stream_of(&["r1", "r2", "r3"]),
            InterleavePolicy::Blocks(2),
        );
        let out = inter.collect_all();
        assert_eq!(out.len(), 4);
        assert_eq!(out[0].side, Side::Left);
        assert!(out[1..].iter().all(|s| s.side == Side::Right));
    }

    #[test]
    fn emitted_counts_records() {
        let mut inter = InterleavedStream::alternating(stream_of(&["l1"]), stream_of(&["r1"]));
        assert_eq!(inter.emitted(), 0);
        inter.next_sided();
        inter.next_sided();
        assert_eq!(inter.emitted(), 2);
        assert!(inter.next_sided().is_none());
        assert_eq!(inter.emitted(), 2);
    }

    #[test]
    fn open_close_propagate_to_both_inputs() {
        let mut inter =
            InterleavedStream::alternating(stream_of(&["l1", "l2"]), stream_of(&["r1"]));
        inter.open();
        assert!(inter.next_sided().is_some());
        inter.close();
        assert!(inter.next_sided().is_none());
        assert_eq!(inter.emitted(), 1);
    }

    #[test]
    fn sided_batch_pull_is_bounded() {
        let mut inter = InterleavedStream::alternating(
            stream_of(&["l1", "l2", "l3"]),
            stream_of(&["r1", "r2", "r3"]),
        );
        let batch = inter.next_sided_batch(4);
        assert_eq!(batch.len(), 4);
        assert_eq!(
            sides(&batch),
            vec![Side::Left, Side::Right, Side::Left, Side::Right]
        );
        let rest = inter.next_sided_batch(100);
        assert_eq!(rest.len(), 2);
        assert!(inter.next_sided_batch(1).is_empty());
    }
}
