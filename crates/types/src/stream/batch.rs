//! Batches of records.

use serde::{Deserialize, Serialize};

use crate::record::Record;
use crate::relation::Relation;
use crate::schema::Schema;

/// A batch of records handed around by the experiment harness and returned
/// by [`super::RecordStream::next_batch`]-style bulk pulls.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RecordBatch {
    /// Schema of every record in the batch.
    pub schema: Schema,
    /// The records.
    pub records: Vec<Record>,
}

impl RecordBatch {
    /// Build a batch from a schema and records.
    pub fn new(schema: Schema, records: Vec<Record>) -> Self {
        Self { schema, records }
    }

    /// Build a batch from a relation.
    pub fn from_relation(relation: &Relation) -> Self {
        Self {
            schema: relation.schema().clone(),
            records: relation.records().to_vec(),
        }
    }

    /// Number of records in the batch.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the batch is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Field;
    use crate::value::Value;

    #[test]
    fn record_batch_from_relation() {
        let mut rel = Relation::empty("r", Schema::of(vec![Field::string("k")]));
        rel.push_values(vec![Value::string("a")]).unwrap();
        let batch = RecordBatch::from_relation(&rel);
        assert_eq!(batch.len(), 1);
        assert!(!batch.is_empty());
        assert_eq!(batch.schema, *rel.schema());
    }

    #[test]
    fn record_batch_new_wraps_parts() {
        let schema = Schema::of(vec![Field::string("k")]);
        let batch = RecordBatch::new(schema.clone(), vec![]);
        assert!(batch.is_empty());
        assert_eq!(batch.schema, schema);
    }
}
