//! The in-memory [`VecStream`] source.

use crate::record::Record;
use crate::relation::Relation;
use crate::schema::Schema;

use super::RecordStream;

/// An in-memory [`RecordStream`] over a vector of records.
#[derive(Debug, Clone)]
pub struct VecStream {
    schema: Schema,
    records: Vec<Record>,
    cursor: usize,
    closed: bool,
}

impl VecStream {
    /// Build a stream over explicit records.
    pub fn new(schema: Schema, records: Vec<Record>) -> Self {
        Self {
            schema,
            records,
            cursor: 0,
            closed: false,
        }
    }

    /// Build a stream over a relation's records.
    pub fn from_relation(relation: &Relation) -> Self {
        Self::new(relation.schema().clone(), relation.records().to_vec())
    }

    /// How many records have been consumed so far.
    pub fn consumed(&self) -> usize {
        self.cursor
    }

    /// Total number of records in the underlying vector.
    pub fn total(&self) -> usize {
        self.records.len()
    }
}

impl RecordStream for VecStream {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn open(&mut self) {
        self.closed = false;
    }

    fn next_record(&mut self) -> Option<Record> {
        if self.closed {
            return None;
        }
        let rec = self.records.get(self.cursor).cloned();
        if rec.is_some() {
            self.cursor += 1;
        }
        rec
    }

    fn close(&mut self) {
        self.closed = true;
    }

    fn size_hint(&self) -> Option<usize> {
        if self.closed {
            Some(0)
        } else {
            Some(self.records.len() - self.cursor)
        }
    }

    fn rewind(&mut self) -> bool {
        self.cursor = 0;
        self.closed = false;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Field;
    use crate::value::Value;

    fn stream_of(keys: &[&str]) -> VecStream {
        let records = keys
            .iter()
            .enumerate()
            .map(|(i, k)| Record::new(i as u64, vec![Value::string(*k)]))
            .collect();
        VecStream::new(Schema::of(vec![Field::string("k")]), records)
    }

    #[test]
    fn vec_stream_yields_in_order_and_rewinds() {
        let mut s = stream_of(&["a", "b", "c"]);
        assert_eq!(s.size_hint(), Some(3));
        assert_eq!(s.next_record().unwrap().key_str(0).unwrap(), "a");
        assert_eq!(s.consumed(), 1);
        assert_eq!(s.size_hint(), Some(2));
        assert!(s.rewind());
        assert_eq!(s.consumed(), 0);
        assert_eq!(s.next_record().unwrap().key_str(0).unwrap(), "a");
        assert_eq!(s.total(), 3);
    }

    #[test]
    fn vec_stream_exhausts() {
        let mut s = stream_of(&["a"]);
        assert!(s.next_record().is_some());
        assert!(s.next_record().is_none());
        assert!(s.next_record().is_none());
        assert_eq!(s.size_hint(), Some(0));
    }

    #[test]
    fn closed_stream_reports_empty_until_reopened() {
        let mut s = stream_of(&["a", "b"]);
        s.close();
        assert_eq!(s.size_hint(), Some(0));
        assert!(s.next_record().is_none());
        s.open();
        assert_eq!(s.next_record().unwrap().key_str(0).unwrap(), "a");
    }

    #[test]
    fn from_relation_copies_schema_and_rows() {
        let mut rel = Relation::empty("r", Schema::of(vec![Field::string("k")]));
        rel.push_values(vec![Value::string("x")]).unwrap();
        let mut s = VecStream::from_relation(&rel);
        assert_eq!(s.schema(), rel.schema());
        assert_eq!(s.next_record().unwrap().key_str(0).unwrap(), "x");
        assert!(s.next_record().is_none());
    }
}
