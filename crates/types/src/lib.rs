//! # linkage-types
//!
//! Foundational data model for the adaptive record-linkage workspace.
//!
//! The crate provides the vocabulary shared by every other crate in the
//! workspace:
//!
//! * [`Value`] — a dynamically typed cell value (string, integer, float,
//!   boolean or null);
//! * [`Schema`], [`Field`], [`DataType`] — relational schemas describing the
//!   shape of a record;
//! * [`Record`] — a single tuple, carrying a stable [`RecordId`] and the
//!   per-tuple bookkeeping used by the adaptive join (the *matched-exactly*
//!   flag of the paper's §3.3);
//! * [`Relation`] — an in-memory table (schema + records) with convenience
//!   constructors used by the data generator and the tests;
//! * [`RecordStream`] and friends — the pull-based tuple sources consumed by
//!   the pipelined operators;
//! * [`MatchPair`] / [`MatchKind`] — join results annotated with how the
//!   match was obtained (exact vs approximate) and the similarity score;
//! * [`snapshot`] — the versioned, checksummed columnar container every
//!   layer stores its durable state in (byte layout: `docs/format.md`).
//!
//! The crate is deliberately free of any join or statistics logic so that the
//! operator and control crates can be tested against a minimal, stable
//! surface.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod defaults;
pub mod error;
pub mod fault;
pub mod matchpair;
pub mod partition;
pub mod record;
pub mod relation;
pub mod schema;
pub mod side;
pub mod snapshot;
pub mod stream;
pub mod value;
pub mod wire;

pub use error::{LinkageError, Result};
pub use matchpair::{MatchKind, MatchPair, MatchSet};
pub use partition::{stable_hash, Partitioner, ShardId};
pub use record::{Record, RecordId, SidedRecord};
pub use relation::Relation;
pub use schema::{DataType, Field, Schema};
pub use side::{PerSide, Side};
pub use stream::{InterleavePolicy, InterleavedStream, RecordBatch, RecordStream, VecStream};
pub use value::Value;
