//! Dynamically typed cell values.

use std::cmp::Ordering;
use std::fmt;
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use crate::error::{LinkageError, Result};

/// A single cell value inside a [`crate::Record`].
///
/// String payloads are stored behind an [`Arc<str>`] because the symmetric
/// hash joins keep every scanned tuple resident in memory for the lifetime of
/// the join (paper §2.3); cloning a record must therefore not duplicate the
/// string heap data.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Value {
    /// SQL-style NULL.
    Null,
    /// Boolean.
    Bool(bool),
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// UTF-8 string (shared).
    Str(Arc<str>),
}

impl Value {
    /// Construct a string value from anything string-like.
    pub fn string(s: impl AsRef<str>) -> Self {
        Value::Str(Arc::from(s.as_ref()))
    }

    /// Human-readable name of the runtime type, used in error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "boolean",
            Value::Int(_) => "integer",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
        }
    }

    /// Whether this value is NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// View the value as a string slice.
    ///
    /// Join attributes in the linkage pipeline are always strings; operators
    /// call this and propagate a typed error when the schema lied.
    pub fn as_str(&self) -> Result<&str> {
        match self {
            Value::Str(s) => Ok(s),
            other => Err(LinkageError::Type {
                expected: "string",
                found: other.type_name(),
            }),
        }
    }

    /// View the value as an integer.
    pub fn as_int(&self) -> Result<i64> {
        match self {
            Value::Int(i) => Ok(*i),
            other => Err(LinkageError::Type {
                expected: "integer",
                found: other.type_name(),
            }),
        }
    }

    /// View the value as a float; integers are widened.
    pub fn as_float(&self) -> Result<f64> {
        match self {
            Value::Float(x) => Ok(*x),
            Value::Int(i) => Ok(*i as f64),
            other => Err(LinkageError::Type {
                expected: "float",
                found: other.type_name(),
            }),
        }
    }

    /// View the value as a boolean.
    pub fn as_bool(&self) -> Result<bool> {
        match self {
            Value::Bool(b) => Ok(*b),
            other => Err(LinkageError::Type {
                expected: "boolean",
                found: other.type_name(),
            }),
        }
    }

    /// The shared string payload, if this is a string value.
    pub fn as_shared_str(&self) -> Option<Arc<str>> {
        match self {
            Value::Str(s) => Some(Arc::clone(s)),
            _ => None,
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Value::Null, Value::Null) => true,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            (Value::Int(a), Value::Int(b)) => a == b,
            // Floats are compared by total order so that Value can be used as
            // a join key without NaN poisoning equality.
            (Value::Float(a), Value::Float(b)) => a.total_cmp(b) == Ordering::Equal,
            (Value::Str(a), Value::Str(b)) => a == b,
            _ => false,
        }
    }
}

impl Eq for Value {}

impl std::hash::Hash for Value {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        std::mem::discriminant(self).hash(state);
        match self {
            Value::Null => {}
            Value::Bool(b) => b.hash(state),
            Value::Int(i) => i.hash(state),
            Value::Float(x) => x.to_bits().hash(state),
            Value::Str(s) => s.hash(state),
        }
    }
}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        fn rank(v: &Value) -> u8 {
            match v {
                Value::Null => 0,
                Value::Bool(_) => 1,
                Value::Int(_) => 2,
                Value::Float(_) => 3,
                Value::Str(_) => 4,
            }
        }
        match (self, other) {
            (Value::Null, Value::Null) => Ordering::Equal,
            (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
            (Value::Int(a), Value::Int(b)) => a.cmp(b),
            (Value::Float(a), Value::Float(b)) => a.total_cmp(b),
            (Value::Str(a), Value::Str(b)) => a.cmp(b),
            (a, b) => rank(a).cmp(&rank(b)),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "{s}"),
        }
    }
}

impl From<&str> for Value {
    fn from(value: &str) -> Self {
        Value::string(value)
    }
}

impl From<String> for Value {
    fn from(value: String) -> Self {
        Value::Str(Arc::from(value.as_str()))
    }
}

impl From<i64> for Value {
    fn from(value: i64) -> Self {
        Value::Int(value)
    }
}

impl From<f64> for Value {
    fn from(value: f64) -> Self {
        Value::Float(value)
    }
}

impl From<bool> for Value {
    fn from(value: bool) -> Self {
        Value::Bool(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};

    fn hash_of(v: &Value) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn string_values_share_storage_on_clone() {
        let v = Value::string("TAA BZ SANTA CRISTINA VALGARDENA");
        let w = v.clone();
        match (&v, &w) {
            (Value::Str(a), Value::Str(b)) => assert!(Arc::ptr_eq(a, b)),
            _ => panic!("expected string values"),
        }
    }

    #[test]
    fn accessors_enforce_types() {
        let s = Value::string("abc");
        assert_eq!(s.as_str().unwrap(), "abc");
        assert!(s.as_int().is_err());
        assert!(s.as_bool().is_err());

        let i = Value::Int(7);
        assert_eq!(i.as_int().unwrap(), 7);
        assert_eq!(i.as_float().unwrap(), 7.0);
        assert!(i.as_str().is_err());

        let err = Value::Null.as_str().unwrap_err();
        assert_eq!(
            err,
            LinkageError::Type {
                expected: "string",
                found: "null"
            }
        );
    }

    #[test]
    fn float_equality_uses_total_order() {
        let nan_a = Value::Float(f64::NAN);
        let nan_b = Value::Float(f64::NAN);
        assert_eq!(nan_a, nan_b);
        assert_eq!(hash_of(&nan_a), hash_of(&nan_b));
        assert_ne!(Value::Float(0.0), Value::Float(-0.0));
    }

    #[test]
    fn equality_distinguishes_types() {
        assert_ne!(Value::Int(1), Value::Float(1.0));
        assert_ne!(Value::Bool(true), Value::Int(1));
        assert_ne!(Value::Null, Value::Bool(false));
    }

    #[test]
    fn ordering_is_total_and_groups_by_type() {
        let mut values = [
            Value::string("b"),
            Value::Int(10),
            Value::Null,
            Value::Float(2.5),
            Value::string("a"),
            Value::Bool(true),
        ];
        values.sort();
        assert_eq!(values[0], Value::Null);
        assert_eq!(values[1], Value::Bool(true));
        assert_eq!(values[2], Value::Int(10));
        assert_eq!(values[3], Value::Float(2.5));
        assert_eq!(values[4], Value::string("a"));
        assert_eq!(values[5], Value::string("b"));
    }

    #[test]
    fn display_round_trips_simple_values() {
        assert_eq!(Value::string("x y").to_string(), "x y");
        assert_eq!(Value::Int(-3).to_string(), "-3");
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::Bool(false).to_string(), "false");
    }

    #[test]
    fn conversions_from_primitives() {
        assert_eq!(Value::from("s"), Value::string("s"));
        assert_eq!(Value::from(String::from("s")), Value::string("s"));
        assert_eq!(Value::from(3i64), Value::Int(3));
        assert_eq!(Value::from(0.5f64), Value::Float(0.5));
        assert_eq!(Value::from(true), Value::Bool(true));
    }

    #[test]
    fn clone_round_trip_shares_string_payload() {
        // The serde round-trip test is parked until the offline serde shim is
        // replaced by the real crate (see vendor/README.md); cloning is the
        // operation the join hot path actually relies on.
        let v = Value::string("CAL CS ACRI");
        let back = v.clone();
        assert_eq!(v, back);
        match (&v, &back) {
            (Value::Str(a), Value::Str(b)) => assert!(Arc::ptr_eq(a, b)),
            _ => unreachable!(),
        }
    }
}
