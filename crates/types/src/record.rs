//! Records (tuples) and record identities.

use std::fmt;
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use crate::error::Result;
use crate::schema::Schema;
use crate::side::Side;
use crate::value::Value;

/// A stable identifier for a record.
///
/// Identifiers are assigned by the data source (generator, CSV loader, …) and
/// are unique **within one input side**; the pair `(Side, RecordId)` is
/// globally unique during a join.  The adaptive join uses record ids to track
/// the *matched-exactly* flag of paper §3.3 and to avoid emitting duplicate
/// match pairs after an operator switch.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct RecordId(pub u64);

impl RecordId {
    /// The numeric value.
    pub fn as_u64(self) -> u64 {
        self.0
    }
}

impl fmt::Display for RecordId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

impl From<u64> for RecordId {
    fn from(value: u64) -> Self {
        RecordId(value)
    }
}

/// A single tuple.
///
/// The record owns its values (strings are shared via [`Value::Str`]'s `Arc`)
/// and is cheap to clone.  It intentionally does *not* hold a reference to
/// its [`Schema`]: operators validate records against the stream schema once
/// at ingestion and thereafter index fields positionally.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Record {
    /// Source-assigned identifier.
    pub id: RecordId,
    /// Field values, positionally aligned with the source schema.
    pub values: Arc<[Value]>,
}

impl Record {
    /// Build a record from an id and values.
    pub fn new(id: impl Into<RecordId>, values: Vec<Value>) -> Self {
        Self {
            id: id.into(),
            values: values.into(),
        }
    }

    /// Build and validate a record against `schema` in one go.
    pub fn validated(id: impl Into<RecordId>, values: Vec<Value>, schema: &Schema) -> Result<Self> {
        schema.validate(&values)?;
        Ok(Self::new(id, values))
    }

    /// Number of fields.
    pub fn arity(&self) -> usize {
        self.values.len()
    }

    /// Value at position `index`, or `Value::Null` when out of bounds.
    ///
    /// Out-of-bounds access returns NULL (rather than panicking) because the
    /// join operators combine records from two schemas and padding with NULL
    /// is the conventional relational behaviour.
    pub fn value(&self, index: usize) -> &Value {
        static NULL: Value = Value::Null;
        self.values.get(index).unwrap_or(&NULL)
    }

    /// The join key at column `key_index`, viewed as a string.
    pub fn key_str(&self, key_index: usize) -> Result<&str> {
        self.value(key_index).as_str()
    }

    /// A copy of this record with `value` replacing position `index`.
    ///
    /// Used by the variant injector in the data generator.
    #[must_use]
    pub fn with_value(&self, index: usize, value: Value) -> Record {
        let mut values: Vec<Value> = self.values.to_vec();
        if index < values.len() {
            values[index] = value;
        }
        Record {
            id: self.id,
            values: values.into(),
        }
    }
}

impl fmt::Display for Record {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[", self.id)?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, "]")
    }
}

/// A record tagged with the input side it was scanned from.
///
/// This is the unit that flows through the symmetric join: the interleaved
/// scan announces which input produced the tuple so the join knows which hash
/// table to insert into and which to probe.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SidedRecord {
    /// Which input the record came from.
    pub side: Side,
    /// The record itself.
    pub record: Record,
}

impl SidedRecord {
    /// Build a sided record.
    pub fn new(side: Side, record: Record) -> Self {
        Self { side, record }
    }

    /// Globally unique key for this record during a join.
    pub fn global_id(&self) -> (Side, RecordId) {
        (self.side, self.record.id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Field, Schema};

    fn schema() -> Schema {
        Schema::of(vec![Field::integer("id"), Field::string("location")])
    }

    #[test]
    fn record_ids_display_and_convert() {
        let id: RecordId = 42u64.into();
        assert_eq!(id.as_u64(), 42);
        assert_eq!(id.to_string(), "#42");
    }

    #[test]
    fn validated_rejects_bad_records() {
        let schema = schema();
        let ok = Record::validated(1u64, vec![Value::Int(1), Value::string("ROMA")], &schema);
        assert!(ok.is_ok());
        let bad = Record::validated(
            2u64,
            vec![Value::string("x"), Value::string("ROMA")],
            &schema,
        );
        assert!(bad.is_err());
        let short = Record::validated(3u64, vec![Value::Int(1)], &schema);
        assert!(short.is_err());
    }

    #[test]
    fn value_access_pads_with_null() {
        let r = Record::new(1u64, vec![Value::Int(1), Value::string("ROMA")]);
        assert_eq!(r.arity(), 2);
        assert_eq!(r.value(1), &Value::string("ROMA"));
        assert_eq!(r.value(9), &Value::Null);
        assert_eq!(r.key_str(1).unwrap(), "ROMA");
        assert!(r.key_str(0).is_err());
    }

    #[test]
    fn with_value_replaces_in_copy_only() {
        let r = Record::new(1u64, vec![Value::Int(1), Value::string("ROMA")]);
        let v = r.with_value(1, Value::string("ROMx"));
        assert_eq!(r.key_str(1).unwrap(), "ROMA");
        assert_eq!(v.key_str(1).unwrap(), "ROMx");
        assert_eq!(v.id, r.id);
        // Out-of-bounds replacement is a no-op.
        let same = r.with_value(7, Value::Int(0));
        assert_eq!(same, r);
    }

    #[test]
    fn records_clone_cheaply_and_compare() {
        let r = Record::new(5u64, vec![Value::string("A"), Value::string("B")]);
        let s = r.clone();
        assert_eq!(r, s);
        assert!(Arc::ptr_eq(&r.values, &s.values));
    }

    #[test]
    fn sided_record_global_id() {
        let r = Record::new(7u64, vec![Value::string("A")]);
        let sided = SidedRecord::new(Side::Right, r);
        assert_eq!(sided.global_id(), (Side::Right, RecordId(7)));
    }

    #[test]
    fn display_is_compact() {
        let r = Record::new(3u64, vec![Value::Int(9), Value::string("PIE TO TORINO")]);
        assert_eq!(r.to_string(), "#3[9, PIE TO TORINO]");
    }
}
