//! Length-prefixed frame layer of the `linkage-server` line protocol.
//!
//! This module owns the transport-independent half of the wire format:
//! the frame envelope, the message-kind and error-code registries, and
//! the payload codecs for the types defined in this crate
//! ([`SidedRecord`], [`LinkageError`]).  Payload codecs for facade
//! types (`PipelineConfig`, `MatchEvent`) live in the `linkage-server`
//! crate, which can see them; both reuse the [`crate::snapshot`] encoder and
//! decoder primitives so every wire integer is little-endian and every
//! string is a length-prefixed UTF-8 `str`, exactly as on disk.
//!
//! The normative byte-level specification is `docs/server.md`; a test
//! parses the constants below out of that document and compares them to
//! this module, so the spec cannot silently drift.
//!
//! # Frame envelope
//!
//! ```text
//! offset 0   body length   u32 LE   = 1 + payload length
//! offset 4   message kind  u8       (see [`msg`])
//! offset 5   payload       body length - 1 bytes
//! ```
//!
//! A frame body is capped at [`MAX_FRAME_BYTES`]; readers reject larger
//! declared lengths *before* allocating, so a corrupt or hostile peer
//! cannot force an unbounded allocation.

use std::io::{Read, Write};

use crate::error::{LinkageError, Result};
use crate::record::SidedRecord;
use crate::side::Side;
use crate::snapshot::{Decoder, Encoder};

/// Protocol version, carried in every `OPEN` request.  A server accepts
/// exactly its own version; a mismatch is a typed `BAD_REQUEST`.
pub const WIRE_VERSION: u32 = 1;

/// Maximum frame *body* (kind byte + payload) a reader will accept.
/// Large enough for a generous `FEED` batch, small enough to bound the
/// allocation a declared length can force.
pub const MAX_FRAME_BYTES: u32 = 16 * 1024 * 1024;

/// Message kinds — the `u8` discriminant at offset 4 of every frame.
///
/// Requests occupy `1..=7`, responses `129..=134` plus the error frame
/// at `255`; the disjoint ranges make a captured byte stream
/// self-describing about direction.
pub mod msg {
    /// Request: create a session (`PipelineConfig` + fingerprint).
    pub const OPEN: u8 = 1;
    /// Request: append a batch of sided records to a session's input.
    pub const FEED: u8 = 2;
    /// Request: drain up to `max` ready match events.
    pub const POLL: u8 = 3;
    /// Request: declare the session's input complete (end of stream).
    pub const FIN: u8 = 4;
    /// Request: discard a session and free its state.
    pub const CLOSE: u8 = 5;
    /// Request: server-wide counters.
    pub const STATS: u8 = 6;
    /// Request: drain, snapshot unfinished sessions, and exit.
    pub const SHUTDOWN: u8 = 7;

    /// Response to [`OPEN`]: the assigned session id.
    pub const OPENED: u8 = 129;
    /// Response to [`FEED`]/[`FIN`]: per-session byte accounting.
    pub const FED: u8 = 130;
    /// Response to [`POLL`]: a batch of match events.
    pub const EVENTS: u8 = 131;
    /// Response to [`CLOSE`]: the session is gone.
    pub const CLOSED: u8 = 132;
    /// Response to [`STATS`]: server-wide counters.
    pub const STATS_REPLY: u8 = 133;
    /// Response to [`SHUTDOWN`]: acknowledged, server is exiting.
    pub const BYE: u8 = 134;
    /// Response to anything: a typed error (`u32` code + message).
    pub const ERR: u8 = 255;

    /// Human-readable name of a message kind (diagnostics).
    pub fn name(kind: u8) -> &'static str {
        match kind {
            OPEN => "OPEN",
            FEED => "FEED",
            POLL => "POLL",
            FIN => "FIN",
            CLOSE => "CLOSE",
            STATS => "STATS",
            SHUTDOWN => "SHUTDOWN",
            OPENED => "OPENED",
            FED => "FED",
            EVENTS => "EVENTS",
            CLOSED => "CLOSED",
            STATS_REPLY => "STATS_REPLY",
            BYE => "BYE",
            ERR => "ERR",
            _ => "UNKNOWN",
        }
    }
}

/// Error codes — the `u32` at offset 0 of an [`msg::ERR`] payload.
pub mod code {
    /// Malformed request: bad frame, unknown kind, version mismatch,
    /// fingerprint mismatch, or an undecodable payload.
    pub const BAD_REQUEST: u32 = 1;
    /// The accept queue or session table is full.  Retryable.
    pub const BUSY: u32 = 2;
    /// Admission would exceed the state-bytes budget and nothing idle
    /// could be evicted.  Retryable once load drains.
    pub const OVER_BUDGET: u32 = 3;
    /// The named session does not exist (never opened, or closed).
    pub const NO_SUCH_SESSION: u32 = 4;
    /// The server is shutting down and accepts no new work.
    pub const SHUTTING_DOWN: u32 = 5;
    /// An internal pipeline error; the message carries the detail.
    pub const INTERNAL: u32 = 6;
    /// The session was quarantined after a fault (worker panic, torn or
    /// corrupt eviction files).  `CLOSE` discards its remains.
    pub const QUARANTINED: u32 = 7;
}

/// Write one frame: `u32` body length, kind byte, payload.
///
/// Does not flush — callers batch frames and flush per request.
pub fn write_frame(w: &mut impl Write, kind: u8, payload: &[u8]) -> Result<()> {
    let body = payload.len() as u64 + 1;
    if body > MAX_FRAME_BYTES as u64 {
        return Err(LinkageError::protocol(format!(
            "outgoing {} frame body of {body} bytes exceeds the {MAX_FRAME_BYTES}-byte cap",
            msg::name(kind)
        )));
    }
    w.write_all(&(body as u32).to_le_bytes())?;
    w.write_all(&[kind])?;
    w.write_all(payload)?;
    Ok(())
}

/// Read one frame, returning its kind byte and payload.
///
/// A peer that closes the connection cleanly *between* frames yields a
/// [`LinkageError::Io`]; a close *inside* a frame, a zero-length body or
/// a body above [`MAX_FRAME_BYTES`] yield [`LinkageError::Protocol`].
pub fn read_frame(r: &mut impl Read) -> Result<(u8, Vec<u8>)> {
    let mut len = [0u8; 4];
    r.read_exact(&mut len)?;
    let body = u32::from_le_bytes(len);
    if body == 0 {
        return Err(LinkageError::protocol("zero-length frame body"));
    }
    if body > MAX_FRAME_BYTES {
        return Err(LinkageError::protocol(format!(
            "declared frame body of {body} bytes exceeds the {MAX_FRAME_BYTES}-byte cap"
        )));
    }
    let mut kind = [0u8; 1];
    r.read_exact(&mut kind)
        .map_err(|e| LinkageError::protocol(format!("connection closed inside a frame: {e}")))?;
    let mut payload = vec![0u8; body as usize - 1];
    r.read_exact(&mut payload)
        .map_err(|e| LinkageError::protocol(format!("connection closed inside a frame: {e}")))?;
    Ok((kind[0], payload))
}

/// Append a sided record to a payload: `u8` side (0 = left, 1 = right)
/// followed by the record in the snapshot `record` layout.
pub fn put_sided_record(enc: &mut Encoder, rec: &SidedRecord) {
    enc.put_u8(match rec.side {
        Side::Left => 0,
        Side::Right => 1,
    });
    enc.put_record(&rec.record);
}

/// Decode a sided record written by [`put_sided_record`].
pub fn get_sided_record(dec: &mut Decoder<'_>) -> Result<SidedRecord> {
    let side = match dec.get_u8()? {
        0 => Side::Left,
        1 => Side::Right,
        other => {
            return Err(LinkageError::protocol(format!(
                "invalid side byte {other} in sided record"
            )))
        }
    };
    Ok(SidedRecord::new(side, dec.get_record()?))
}

/// The wire error code a server reports for this error.
pub fn error_code(err: &LinkageError) -> u32 {
    match err {
        LinkageError::Busy(_) => code::BUSY,
        LinkageError::OverBudget(_) => code::OVER_BUDGET,
        // A bad configuration is the client's request being wrong, not
        // the server failing — both surface as BAD_REQUEST.
        LinkageError::Protocol(_) | LinkageError::Config(_) => code::BAD_REQUEST,
        LinkageError::UnknownSession(_) => code::NO_SUCH_SESSION,
        LinkageError::Quarantined(_) => code::QUARANTINED,
        _ => code::INTERNAL,
    }
}

/// Encode an [`msg::ERR`] payload: `u32` code + message string.
pub fn encode_error(code: u32, message: &str) -> Vec<u8> {
    let mut enc = Encoder::new();
    enc.put_u32(code);
    enc.put_str(message);
    enc.finish()
}

/// Decode an [`msg::ERR`] payload back into the typed error the code
/// stands for, so a client surfaces the same variant the server raised.
pub fn decode_error(payload: &[u8]) -> LinkageError {
    let mut dec = Decoder::new(payload, "ERR");
    let decoded = (|| -> Result<LinkageError> {
        let code = dec.get_u32()?;
        let message = dec.get_str()?.to_string();
        dec.finish()?;
        Ok(match code {
            code::BUSY => LinkageError::busy(message),
            code::OVER_BUDGET => LinkageError::over_budget(message),
            code::BAD_REQUEST => LinkageError::protocol(message),
            code::NO_SUCH_SESSION => LinkageError::unknown_session(message),
            code::SHUTTING_DOWN => LinkageError::busy(format!("shutting down: {message}")),
            code::QUARANTINED => LinkageError::quarantined(message),
            _ => LinkageError::execution(message),
        })
    })();
    decoded.unwrap_or_else(|e| LinkageError::protocol(format!("undecodable ERR payload: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::Record;
    use crate::value::Value;

    #[test]
    fn frames_round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, msg::OPEN, b"hello").unwrap();
        write_frame(&mut buf, msg::POLL, b"").unwrap();
        let mut cursor = &buf[..];
        let (kind, payload) = read_frame(&mut cursor).unwrap();
        assert_eq!((kind, payload.as_slice()), (msg::OPEN, &b"hello"[..]));
        let (kind, payload) = read_frame(&mut cursor).unwrap();
        assert_eq!((kind, payload.as_slice()), (msg::POLL, &b""[..]));
        assert!(cursor.is_empty());
    }

    #[test]
    fn clean_eof_between_frames_is_io_inside_is_protocol() {
        let empty: &[u8] = &[];
        assert!(matches!(
            read_frame(&mut { empty }),
            Err(LinkageError::Io(_))
        ));
        let mut buf = Vec::new();
        write_frame(&mut buf, msg::FEED, b"abcdef").unwrap();
        let truncated = &buf[..buf.len() - 2];
        assert!(matches!(
            read_frame(&mut { truncated }),
            Err(LinkageError::Protocol(_))
        ));
    }

    #[test]
    fn oversized_and_empty_bodies_are_rejected() {
        let mut buf = (MAX_FRAME_BYTES + 1).to_le_bytes().to_vec();
        buf.push(msg::FEED);
        assert!(matches!(
            read_frame(&mut buf.as_slice()),
            Err(LinkageError::Protocol(_))
        ));
        let zero = 0u32.to_le_bytes();
        assert!(matches!(
            read_frame(&mut zero.as_slice()),
            Err(LinkageError::Protocol(_))
        ));
    }

    #[test]
    fn sided_records_round_trip() {
        let rec = SidedRecord::new(
            Side::Right,
            Record::new(7, vec![Value::string("ann arbor"), Value::Int(3)]),
        );
        let mut enc = Encoder::new();
        put_sided_record(&mut enc, &rec);
        let bytes = enc.finish();
        let mut dec = Decoder::new(&bytes, "test");
        let back = get_sided_record(&mut dec).unwrap();
        dec.finish().unwrap();
        assert_eq!(back, rec);
    }

    #[test]
    fn errors_round_trip_through_their_codes() {
        for (err, expected_code) in [
            (LinkageError::busy("queue full"), code::BUSY),
            (LinkageError::over_budget("too big"), code::OVER_BUDGET),
            (LinkageError::protocol("bad kind"), code::BAD_REQUEST),
            (LinkageError::execution("worker died"), code::INTERNAL),
            (
                LinkageError::unknown_session("session 9"),
                code::NO_SUCH_SESSION,
            ),
            (LinkageError::quarantined("torn pair"), code::QUARANTINED),
        ] {
            assert_eq!(error_code(&err), expected_code);
        }
        let payload = encode_error(code::BUSY, "queue full");
        assert_eq!(decode_error(&payload), LinkageError::busy("queue full"));
        let payload = encode_error(code::OVER_BUDGET, "x");
        assert_eq!(decode_error(&payload), LinkageError::over_budget("x"));
        let payload = encode_error(code::NO_SUCH_SESSION, "session 9");
        assert_eq!(
            decode_error(&payload),
            LinkageError::unknown_session("session 9")
        );
        let payload = encode_error(code::QUARANTINED, "torn pair");
        assert_eq!(
            decode_error(&payload),
            LinkageError::quarantined("torn pair")
        );
        assert!(matches!(decode_error(b"\x01"), LinkageError::Protocol(_)));
    }

    #[test]
    fn message_kind_names_are_stable() {
        assert_eq!(msg::name(msg::OPEN), "OPEN");
        assert_eq!(msg::name(msg::ERR), "ERR");
        assert_eq!(msg::name(42), "UNKNOWN");
    }
}
