//! The versioned columnar snapshot container.
//!
//! This module defines the *container* half of the pipeline's durability
//! story: a hand-rolled, little-endian, sectioned file format in which
//! every higher layer (interner, join cores, controller counters, the
//! facade's stream state) stores its state as one or more checksummed
//! **sections**.  The byte-level layout is specified in
//! [`docs/format.md`](https://example.invalid/format) — kept in lockstep
//! with this file; `docs/format.md` names [`FORMAT_VERSION`] and a test
//! parses the spec against the constant.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! offset 0   magic            8 bytes  = b"LNKSNAP\0"
//! offset 8   format version   u32
//! offset 12  section count    u32      = n
//! offset 16  section table    n × 24 bytes:
//!              kind   u32   (base kind | shard index << 16)
//!              offset u64   (absolute, from file start)
//!              len    u64   (payload bytes)
//!              crc    u32   (CRC-32/ISO-HDLC of the payload)
//! then       section payloads, contiguous, in table order
//! ```
//!
//! The file length must equal header + table + payload bytes exactly —
//! a short read *and* trailing garbage are both typed
//! [`LinkageError::Snapshot`] errors, never panics.  Section payloads
//! are encoded with [`Encoder`] and decoded with [`Decoder`], a small
//! fixed-width column vocabulary (u8/u32/u64, f64 as IEEE-754 bits,
//! length-prefixed UTF-8) shared by every section so the format spec
//! stays enumerable.

use std::fmt;
use std::path::Path;
use std::sync::Arc;

use crate::error::{LinkageError, Result};
use crate::matchpair::{MatchKind, MatchPair};
use crate::record::Record;
use crate::value::Value;

/// The 8-byte magic prefix of every snapshot file.
pub const MAGIC: [u8; 8] = *b"LNKSNAP\0";

/// The container format version this build writes and the only version
/// it reads.  Bump on **any** change to the byte layout of the header,
/// the section table, or a section payload, and update `docs/format.md`
/// in the same commit (a test parses the spec's version against this
/// constant).
pub const FORMAT_VERSION: u32 = 1;

/// Bytes per section-table entry: kind `u32` + offset `u64` + len `u64`
/// + crc `u32`.
pub const TABLE_ENTRY_BYTES: usize = 24;

/// Base section kinds (the low 16 bits of a section-table `kind`).
///
/// Shard-scoped sections store the shard index in the **high** 16 bits
/// (see [`shard_kind`]); singleton sections use the base kind verbatim.
pub mod kind {
    /// Engine identity, configuration fingerprint and global counters.
    pub const META: u16 = 1;
    /// Facade-level stream state (stashed pair, switch-event delivery).
    pub const STREAM: u16 = 2;
    /// The gram interner: text blob, offsets, document frequencies.
    pub const INTERNER: u16 = 3;
    /// Monitor / assessor / global-controller counters.
    pub const CONTROLLER: u16 = 4;
    /// Match pairs produced but not yet pulled by the consumer.
    pub const PENDING: u16 = 5;
    /// One exact-phase join core (shard-scoped; serial runs use shard 0).
    pub const EXACT_CORE: u16 = 6;
    /// One approximate-phase join core (shard-scoped; serial = shard 0).
    pub const SSH_CORE: u16 = 7;
    /// Per-shard executor counters (stored tuples, probes, emissions).
    pub const SHARD: u16 = 8;

    /// Human-readable name of a base kind, for error messages.
    pub fn name(base: u16) -> &'static str {
        match base {
            META => "META",
            STREAM => "STREAM",
            INTERNER => "INTERNER",
            CONTROLLER => "CONTROLLER",
            PENDING => "PENDING",
            EXACT_CORE => "EXACT_CORE",
            SSH_CORE => "SSH_CORE",
            SHARD => "SHARD",
            _ => "UNKNOWN",
        }
    }
}

/// Compose a shard-scoped section kind: base kind in the low 16 bits,
/// shard index in the high 16.
pub fn shard_kind(base: u16, shard: u16) -> u32 {
    u32::from(base) | (u32::from(shard) << 16)
}

/// Split a section-table kind into `(base kind, shard index)`.
pub fn split_kind(kind: u32) -> (u16, u16) {
    ((kind & 0xFFFF) as u16, (kind >> 16) as u16)
}

/// CRC-32/ISO-HDLC (the zlib/PNG polynomial, reflected `0xEDB88320`) of
/// `bytes`, computed with a compile-time 256-entry table.
pub fn crc32(bytes: &[u8]) -> u32 {
    const TABLE: [u32; 256] = {
        let mut table = [0u32; 256];
        let mut i = 0;
        while i < 256 {
            let mut c = i as u32;
            let mut k = 0;
            while k < 8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
                k += 1;
            }
            table[i] = c;
            i += 1;
        }
        table
    };
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = TABLE[((crc ^ u32::from(b)) & 0xFF) as usize] ^ (crc >> 8);
    }
    crc ^ 0xFFFF_FFFF
}

fn err(msg: impl fmt::Display) -> LinkageError {
    LinkageError::snapshot(msg)
}

/// Append-only little-endian section-payload writer.
///
/// The encoder's method set *is* the format's column vocabulary: every
/// field a section payload contains is one of these primitives, so
/// `docs/format.md` can describe payloads as sequences of them.
#[derive(Debug, Default)]
pub struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    /// A fresh, empty payload.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a `u32`, little-endian.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `u64`, little-endian.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append an `f64` as its IEEE-754 bit pattern (`u64`, little-endian)
    /// — NaN payloads and signed zeros round-trip bit-exactly.
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Append a `bool` as one byte (0 or 1).
    pub fn put_bool(&mut self, v: bool) {
        self.put_u8(u8::from(v));
    }

    /// Append raw bytes prefixed by their `u32` length.
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.put_u32(u32::try_from(v.len()).expect("snapshot field exceeds u32::MAX bytes"));
        self.buf.extend_from_slice(v);
    }

    /// Append UTF-8 text prefixed by its `u32` byte length.
    pub fn put_str(&mut self, v: &str) {
        self.put_bytes(v.as_bytes());
    }

    /// Append `Some(u64)` as `1` + value, `None` as `0`.
    pub fn put_opt_u64(&mut self, v: Option<u64>) {
        match v {
            Some(x) => {
                self.put_u8(1);
                self.put_u64(x);
            }
            None => self.put_u8(0),
        }
    }

    /// Append one [`Value`]: a tag byte (0 = Null, 1 = Bool, 2 = Int,
    /// 3 = Float, 4 = Str) followed by the variant payload.
    pub fn put_value(&mut self, v: &Value) {
        match v {
            Value::Null => self.put_u8(0),
            Value::Bool(b) => {
                self.put_u8(1);
                self.put_bool(*b);
            }
            Value::Int(i) => {
                self.put_u8(2);
                self.put_u64(*i as u64);
            }
            Value::Float(x) => {
                self.put_u8(3);
                self.put_f64(*x);
            }
            Value::Str(s) => {
                self.put_u8(4);
                self.put_str(s);
            }
        }
    }

    /// Append one [`Record`]: id `u64`, arity `u32`, then each value.
    pub fn put_record(&mut self, r: &Record) {
        self.put_u64(r.id.as_u64());
        self.put_u32(r.values.len() as u32);
        for v in r.values.iter() {
            self.put_value(v);
        }
    }

    /// Append one [`MatchPair`]: left record, right record, kind tag
    /// (0 = Exact, 1 = Approximate + similarity bits).
    pub fn put_pair(&mut self, p: &MatchPair) {
        self.put_record(&p.left);
        self.put_record(&p.right);
        match p.kind {
            MatchKind::Exact => self.put_u8(0),
            MatchKind::Approximate { similarity } => {
                self.put_u8(1);
                self.put_f64(similarity);
            }
        }
    }

    /// Finish, yielding the payload bytes.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }
}

/// Bounds-checked little-endian section-payload reader; every failure is
/// a typed [`LinkageError::Snapshot`], never a panic.
#[derive(Debug)]
pub struct Decoder<'a> {
    bytes: &'a [u8],
    pos: usize,
    /// Names the section in error messages.
    section: &'static str,
}

impl<'a> Decoder<'a> {
    /// Decode `bytes`, naming `section` in any error produced.
    pub fn new(bytes: &'a [u8], section: &'static str) -> Self {
        Self {
            bytes,
            pos: 0,
            section,
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        let end = self
            .pos
            .checked_add(n)
            .ok_or_else(|| err(format!("{} section: field length overflows", self.section)))?;
        if end > self.bytes.len() {
            return Err(err(format!(
                "{} section truncated: need {} bytes at offset {}, have {}",
                self.section,
                n,
                self.pos,
                self.bytes.len() - self.pos
            )));
        }
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    /// Read one byte.
    pub fn get_u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    /// Read a little-endian `u32`.
    pub fn get_u32(&mut self) -> Result<u32> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Read a little-endian `u64`.
    pub fn get_u64(&mut self) -> Result<u64> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Read an `f64` stored as its bit pattern.
    pub fn get_f64(&mut self) -> Result<f64> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Read a `bool` byte; values other than 0/1 are format errors.
    pub fn get_bool(&mut self) -> Result<bool> {
        match self.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(err(format!(
                "{} section: invalid bool byte {other}",
                self.section
            ))),
        }
    }

    /// Read `u32`-length-prefixed raw bytes.
    pub fn get_bytes(&mut self) -> Result<&'a [u8]> {
        let len = self.get_u32()? as usize;
        self.take(len)
    }

    /// Read `u32`-length-prefixed UTF-8 text.
    pub fn get_str(&mut self) -> Result<&'a str> {
        std::str::from_utf8(self.get_bytes()?)
            .map_err(|e| err(format!("{} section: invalid UTF-8: {e}", self.section)))
    }

    /// Read an optional `u64` (presence byte + value).
    pub fn get_opt_u64(&mut self) -> Result<Option<u64>> {
        Ok(if self.get_bool()? {
            Some(self.get_u64()?)
        } else {
            None
        })
    }

    /// Read one [`Value`] (see [`Encoder::put_value`] for the tags).
    pub fn get_value(&mut self) -> Result<Value> {
        Ok(match self.get_u8()? {
            0 => Value::Null,
            1 => Value::Bool(self.get_bool()?),
            2 => Value::Int(self.get_u64()? as i64),
            3 => Value::Float(self.get_f64()?),
            4 => Value::Str(Arc::from(self.get_str()?)),
            tag => {
                return Err(err(format!(
                    "{} section: unknown value tag {tag}",
                    self.section
                )))
            }
        })
    }

    /// Read one [`Record`].
    pub fn get_record(&mut self) -> Result<Record> {
        let id = self.get_u64()?;
        let arity = self.get_u32()? as usize;
        let mut values = Vec::with_capacity(arity.min(1024));
        for _ in 0..arity {
            values.push(self.get_value()?);
        }
        Ok(Record::new(id, values))
    }

    /// Read one [`MatchPair`].
    pub fn get_pair(&mut self) -> Result<MatchPair> {
        let left = self.get_record()?;
        let right = self.get_record()?;
        Ok(match self.get_u8()? {
            0 => MatchPair::exact(left, right),
            1 => {
                let similarity = self.get_f64()?;
                MatchPair::approximate(left, right, similarity)
            }
            tag => {
                return Err(err(format!(
                    "{} section: unknown match-kind tag {tag}",
                    self.section
                )))
            }
        })
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    /// Assert the payload was consumed exactly — trailing bytes mean the
    /// writer and reader disagree about the section layout.
    pub fn finish(self) -> Result<()> {
        if self.pos == self.bytes.len() {
            Ok(())
        } else {
            Err(err(format!(
                "{} section: {} trailing bytes after the last field",
                self.section,
                self.bytes.len() - self.pos
            )))
        }
    }
}

/// Accumulates sections and serialises the container.
#[derive(Debug, Default)]
pub struct SnapshotBuilder {
    sections: Vec<(u32, Vec<u8>)>,
}

impl SnapshotBuilder {
    /// An empty snapshot.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a section (kinds may repeat only across distinct shard
    /// scopes; see [`shard_kind`]).
    pub fn push_section(&mut self, kind: u32, payload: Vec<u8>) {
        self.sections.push((kind, payload));
    }

    /// Serialise the container: header, section table, payloads.
    pub fn to_bytes(&self) -> Vec<u8> {
        let table_end = 16 + self.sections.len() * TABLE_ENTRY_BYTES;
        let total: usize = table_end + self.sections.iter().map(|(_, p)| p.len()).sum::<usize>();
        let mut out = Vec::with_capacity(total);
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        out.extend_from_slice(&(self.sections.len() as u32).to_le_bytes());
        let mut offset = table_end as u64;
        for (kind, payload) in &self.sections {
            out.extend_from_slice(&kind.to_le_bytes());
            out.extend_from_slice(&offset.to_le_bytes());
            out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
            out.extend_from_slice(&crc32(payload).to_le_bytes());
            offset += payload.len() as u64;
        }
        for (_, payload) in &self.sections {
            out.extend_from_slice(payload);
        }
        out
    }

    /// Serialise and write the container to `path` (atomically: a
    /// temporary sibling file is written first, then renamed over the
    /// target, so a crash mid-write never leaves a half snapshot under
    /// the final name).
    ///
    /// Failpoints (`--features fault`): `snapshot.write` cuts the
    /// temporary file at the armed byte offset, simulating a crash
    /// mid-write before the rename commits.
    pub fn write_to(&self, path: impl AsRef<Path>) -> Result<()> {
        let path = path.as_ref();
        let tmp = path.with_extension("tmp-snapshot");
        let bytes = self.to_bytes();
        if let Some(cut) = crate::fault::fires("snapshot.write") {
            let cut = (cut as usize).min(bytes.len());
            std::fs::write(&tmp, &bytes[..cut])?;
            return Err(crate::fault::injected("snapshot.write"));
        }
        std::fs::write(&tmp, bytes)?;
        std::fs::rename(&tmp, path)?;
        Ok(())
    }
}

/// A parsed, checksum-verified snapshot container.
#[derive(Debug)]
pub struct SnapshotFile {
    sections: Vec<(u32, Vec<u8>)>,
}

impl SnapshotFile {
    /// Parse and verify a container: magic, version, table bounds, exact
    /// file length, and every section's CRC.  All failures are typed
    /// [`LinkageError::Snapshot`] errors.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self> {
        if bytes.len() < 16 {
            return Err(err(format!(
                "file too short for a header: {} bytes, need 16",
                bytes.len()
            )));
        }
        if bytes[..8] != MAGIC {
            return Err(err("bad magic: not a linkage snapshot file"));
        }
        let version = u32::from_le_bytes([bytes[8], bytes[9], bytes[10], bytes[11]]);
        if version != FORMAT_VERSION {
            return Err(err(format!(
                "unsupported format version {version} (this build reads version {FORMAT_VERSION})"
            )));
        }
        let count = u32::from_le_bytes([bytes[12], bytes[13], bytes[14], bytes[15]]) as usize;
        let table_end =
            16usize
                .checked_add(count.checked_mul(TABLE_ENTRY_BYTES).ok_or_else(|| {
                    err(format!("section count {count} overflows the table size"))
                })?)
                .ok_or_else(|| err(format!("section count {count} overflows the table size")))?;
        if bytes.len() < table_end {
            return Err(err(format!(
                "file truncated inside the section table: {} bytes, table ends at {table_end}",
                bytes.len()
            )));
        }
        let mut sections = Vec::with_capacity(count);
        let mut expected_offset = table_end as u64;
        for i in 0..count {
            let e = &bytes[16 + i * TABLE_ENTRY_BYTES..16 + (i + 1) * TABLE_ENTRY_BYTES];
            let kind = u32::from_le_bytes([e[0], e[1], e[2], e[3]]);
            let offset = u64::from_le_bytes([e[4], e[5], e[6], e[7], e[8], e[9], e[10], e[11]]);
            let len = u64::from_le_bytes([e[12], e[13], e[14], e[15], e[16], e[17], e[18], e[19]]);
            let crc = u32::from_le_bytes([e[20], e[21], e[22], e[23]]);
            let (base, shard) = split_kind(kind);
            let label = || format!("{}[shard {shard}]", kind::name(base));
            if offset != expected_offset {
                return Err(err(format!(
                    "section {} at offset {offset}, expected {expected_offset}: payloads must be \
                     contiguous in table order",
                    label()
                )));
            }
            let end = offset.checked_add(len).filter(|&e| e <= bytes.len() as u64);
            let Some(end) = end else {
                return Err(err(format!(
                    "file truncated: section {} claims bytes {offset}..{} but the file has {}",
                    label(),
                    offset.saturating_add(len),
                    bytes.len()
                )));
            };
            let payload = &bytes[offset as usize..end as usize];
            let actual = crc32(payload);
            if actual != crc {
                return Err(err(format!(
                    "checksum mismatch in section {}: stored {crc:#010x}, computed {actual:#010x}",
                    label()
                )));
            }
            sections.push((kind, payload.to_vec()));
            expected_offset = end;
        }
        if expected_offset != bytes.len() as u64 {
            return Err(err(format!(
                "{} trailing bytes after the last section",
                bytes.len() as u64 - expected_offset
            )));
        }
        Ok(Self { sections })
    }

    /// Read and verify a container from `path`.
    pub fn read_from(path: impl AsRef<Path>) -> Result<Self> {
        Self::from_bytes(&std::fs::read(path)?)
    }

    /// The payload of the section with exactly this `kind`, if present.
    pub fn try_section(&self, kind: u32) -> Option<&[u8]> {
        self.sections
            .iter()
            .find(|(k, _)| *k == kind)
            .map(|(_, p)| p.as_slice())
    }

    /// The payload of the section with exactly this `kind`; a typed
    /// error naming the kind when absent.
    pub fn section(&self, kind: u32) -> Result<&[u8]> {
        self.try_section(kind).ok_or_else(|| {
            let (base, shard) = split_kind(kind);
            err(format!(
                "missing {}[shard {shard}] section",
                kind::name(base)
            ))
        })
    }

    /// Every section whose **base** kind matches, as `(shard, payload)`
    /// pairs sorted by shard index.
    pub fn sections_with_base(&self, base: u16) -> Vec<(u16, &[u8])> {
        let mut found: Vec<(u16, &[u8])> = self
            .sections
            .iter()
            .filter(|(k, _)| split_kind(*k).0 == base)
            .map(|(k, p)| (split_kind(*k).1, p.as_slice()))
            .collect();
        found.sort_by_key(|(shard, _)| *shard);
        found
    }

    /// All sections in table order, as `(kind, payload)` pairs.
    pub fn sections(&self) -> impl Iterator<Item = (u32, &[u8])> {
        self.sections.iter().map(|(k, p)| (*k, p.as_slice()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // The canonical CRC-32/ISO-HDLC check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn container_round_trips_sections_in_order() {
        let mut b = SnapshotBuilder::new();
        b.push_section(shard_kind(kind::META, 0), vec![1, 2, 3]);
        b.push_section(shard_kind(kind::EXACT_CORE, 2), vec![]);
        b.push_section(shard_kind(kind::EXACT_CORE, 1), vec![9; 100]);
        let file = SnapshotFile::from_bytes(&b.to_bytes()).unwrap();
        assert_eq!(file.section(u32::from(kind::META)).unwrap(), &[1, 2, 3]);
        let shards = file.sections_with_base(kind::EXACT_CORE);
        assert_eq!(shards.len(), 2);
        assert_eq!(shards[0].0, 1, "sorted by shard index");
        assert_eq!(shards[1].0, 2);
        assert!(file.try_section(u32::from(kind::PENDING)).is_none());
        assert!(matches!(
            file.section(u32::from(kind::PENDING)),
            Err(LinkageError::Snapshot(m)) if m.contains("PENDING")
        ));
    }

    #[test]
    fn corrupted_containers_fail_typed_never_panic() {
        let mut b = SnapshotBuilder::new();
        b.push_section(u32::from(kind::META), vec![7; 32]);
        let good = b.to_bytes();

        // Truncation at every possible length parses or fails cleanly.
        for cut in 0..good.len() {
            match SnapshotFile::from_bytes(&good[..cut]) {
                Err(LinkageError::Snapshot(_)) => {}
                other => panic!("truncation at {cut} must be a snapshot error, got {other:?}"),
            }
        }

        // A flipped payload bit is a checksum mismatch.
        let mut bad = good.clone();
        let last = bad.len() - 1;
        bad[last] ^= 1;
        assert!(matches!(
            SnapshotFile::from_bytes(&bad),
            Err(LinkageError::Snapshot(m)) if m.contains("checksum")
        ));

        // A foreign version is refused by number.
        let mut versioned = good.clone();
        versioned[8..12].copy_from_slice(&(FORMAT_VERSION + 1).to_le_bytes());
        assert!(matches!(
            SnapshotFile::from_bytes(&versioned),
            Err(LinkageError::Snapshot(m)) if m.contains("version")
        ));

        // Wrong magic is not a snapshot at all.
        let mut unmagic = good.clone();
        unmagic[0] = b'X';
        assert!(matches!(
            SnapshotFile::from_bytes(&unmagic),
            Err(LinkageError::Snapshot(m)) if m.contains("magic")
        ));

        // Trailing garbage is rejected too.
        let mut long = good;
        long.push(0);
        assert!(matches!(
            SnapshotFile::from_bytes(&long),
            Err(LinkageError::Snapshot(m)) if m.contains("trailing")
        ));
    }

    #[test]
    fn encoder_decoder_round_trip_all_primitives() {
        let mut e = Encoder::new();
        e.put_u8(250);
        e.put_u32(0xDEAD_BEEF);
        e.put_u64(u64::MAX);
        e.put_f64(f64::from_bits(0x7FF8_0000_0000_1234)); // NaN payload
        e.put_bool(true);
        e.put_str("q-gram ⌐¶");
        e.put_opt_u64(Some(42));
        e.put_opt_u64(None);
        e.put_value(&Value::Int(-5));
        e.put_value(&Value::Null);
        let record = Record::new(9u64, vec![Value::string("LOC"), Value::Float(-0.0)]);
        e.put_record(&record);
        e.put_pair(&MatchPair::approximate(
            record.clone(),
            record.clone(),
            0.875,
        ));
        let bytes = e.finish();

        let mut d = Decoder::new(&bytes, "TEST");
        assert_eq!(d.get_u8().unwrap(), 250);
        assert_eq!(d.get_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(d.get_u64().unwrap(), u64::MAX);
        assert_eq!(d.get_f64().unwrap().to_bits(), 0x7FF8_0000_0000_1234);
        assert!(d.get_bool().unwrap());
        assert_eq!(d.get_str().unwrap(), "q-gram ⌐¶");
        assert_eq!(d.get_opt_u64().unwrap(), Some(42));
        assert_eq!(d.get_opt_u64().unwrap(), None);
        assert_eq!(d.get_value().unwrap(), Value::Int(-5));
        assert_eq!(d.get_value().unwrap(), Value::Null);
        let back = d.get_record().unwrap();
        assert_eq!(back, record);
        let pair = d.get_pair().unwrap();
        assert_eq!(pair.id_pair(), (record.id, record.id));
        assert_eq!(pair.kind.similarity(), 0.875);
        d.finish().unwrap();
    }

    #[test]
    fn decoder_rejects_truncation_and_bad_tags() {
        let mut d = Decoder::new(&[1, 2], "T");
        assert!(matches!(
            d.get_u32(),
            Err(LinkageError::Snapshot(m)) if m.contains("truncated")
        ));
        let mut d = Decoder::new(&[9], "T");
        assert!(matches!(d.get_value(), Err(LinkageError::Snapshot(m)) if m.contains("tag")));
        let mut d = Decoder::new(&[7], "T");
        assert!(matches!(d.get_bool(), Err(LinkageError::Snapshot(m)) if m.contains("bool")));
        let d = Decoder::new(&[0, 0], "T");
        assert!(matches!(d.finish(), Err(LinkageError::Snapshot(m)) if m.contains("trailing")));
    }

    #[test]
    fn shard_kind_packing_round_trips() {
        let k = shard_kind(kind::SSH_CORE, 513);
        assert_eq!(split_kind(k), (kind::SSH_CORE, 513));
        assert_eq!(split_kind(u32::from(kind::META)), (kind::META, 0));
    }

    #[test]
    fn write_to_is_atomic_and_readable_back() {
        let dir = std::env::temp_dir().join("linkage-snapshot-container-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.snap");
        let mut b = SnapshotBuilder::new();
        b.push_section(u32::from(kind::META), vec![4, 5, 6]);
        b.write_to(&path).unwrap();
        let file = SnapshotFile::read_from(&path).unwrap();
        assert_eq!(file.section(u32::from(kind::META)).unwrap(), &[4, 5, 6]);
        assert!(!path.with_extension("tmp-snapshot").exists());
        std::fs::remove_dir_all(&dir).ok();
    }
}
