//! In-memory relations (tables).

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::error::{LinkageError, Result};
use crate::record::{Record, RecordId};
use crate::schema::Schema;
use crate::value::Value;

/// An in-memory table: a [`Schema`] plus an ordered collection of records.
///
/// Relations are the hand-off format between the data generator and the join
/// pipeline; the pipeline itself never materialises intermediate relations —
/// it streams records through [`crate::stream::RecordStream`]s.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Relation {
    name: String,
    schema: Schema,
    records: Vec<Record>,
}

impl Relation {
    /// Create an empty relation.
    pub fn empty(name: impl Into<String>, schema: Schema) -> Self {
        Self {
            name: name.into(),
            schema,
            records: Vec::new(),
        }
    }

    /// Create a relation from pre-built records, validating each one.
    pub fn new(name: impl Into<String>, schema: Schema, records: Vec<Record>) -> Result<Self> {
        let mut rel = Self::empty(name, schema);
        for r in records {
            rel.push_record(r)?;
        }
        Ok(rel)
    }

    /// The relation name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The relation schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The records in insertion order.
    pub fn records(&self) -> &[Record] {
        &self.records
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the relation holds no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Append a validated record.
    pub fn push_record(&mut self, record: Record) -> Result<()> {
        self.schema.validate(&record.values)?;
        self.records.push(record);
        Ok(())
    }

    /// Append a row of values, assigning the next sequential [`RecordId`].
    pub fn push_values(&mut self, values: Vec<Value>) -> Result<RecordId> {
        let id = RecordId(self.records.len() as u64);
        self.push_record(Record::new(id, values))?;
        Ok(id)
    }

    /// Look up a record by id (linear scan; relations are small and this is
    /// only used in tests and reporting).
    pub fn record_by_id(&self, id: RecordId) -> Option<&Record> {
        self.records.iter().find(|r| r.id == id)
    }

    /// Index of the named column.
    pub fn column_index(&self, name: &str) -> Result<usize> {
        self.schema.index_of(name)
    }

    /// Iterator over the string values of one column.
    ///
    /// Errors if the column is not a string column; NULLs are skipped.
    pub fn column_strings<'a>(&'a self, name: &str) -> Result<Vec<&'a str>> {
        let idx = self.column_index(name)?;
        match self.schema.field_at(idx)?.data_type {
            crate::schema::DataType::String => {}
            other => {
                return Err(LinkageError::schema(format!(
                    "column `{name}` is {other}, expected string"
                )))
            }
        }
        Ok(self
            .records
            .iter()
            .filter_map(|r| r.value(idx).as_str().ok())
            .collect())
    }

    /// A copy of this relation restricted to the first `n` records.
    #[must_use]
    pub fn head(&self, n: usize) -> Relation {
        Relation {
            name: self.name.clone(),
            schema: self.schema.clone(),
            records: self.records.iter().take(n).cloned().collect(),
        }
    }

    /// Consume the relation, returning its records.
    pub fn into_records(self) -> Vec<Record> {
        self.records
    }
}

impl fmt::Display for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}{} [{} rows]",
            self.name,
            self.schema,
            self.records.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Field;

    fn schema() -> Schema {
        Schema::of(vec![Field::integer("id"), Field::string("location")])
    }

    fn sample() -> Relation {
        let mut rel = Relation::empty("atlas", schema());
        rel.push_values(vec![Value::Int(0), Value::string("LAZ RM ROMA")])
            .unwrap();
        rel.push_values(vec![Value::Int(1), Value::string("PIE TO TORINO")])
            .unwrap();
        rel.push_values(vec![Value::Int(2), Value::string("LIG GE GENOVA")])
            .unwrap();
        rel
    }

    #[test]
    fn push_values_assigns_sequential_ids() {
        let rel = sample();
        assert_eq!(rel.len(), 3);
        assert!(!rel.is_empty());
        let ids: Vec<u64> = rel.records().iter().map(|r| r.id.as_u64()).collect();
        assert_eq!(ids, vec![0, 1, 2]);
    }

    #[test]
    fn push_record_validates() {
        let mut rel = Relation::empty("atlas", schema());
        let bad = Record::new(0u64, vec![Value::string("x"), Value::string("y")]);
        assert!(rel.push_record(bad).is_err());
        assert!(rel.is_empty());
    }

    #[test]
    fn new_validates_all_records() {
        let good = vec![
            Record::new(0u64, vec![Value::Int(0), Value::string("A")]),
            Record::new(1u64, vec![Value::Int(1), Value::string("B")]),
        ];
        assert!(Relation::new("r", schema(), good).is_ok());

        let bad = vec![Record::new(0u64, vec![Value::Int(0)])];
        assert!(Relation::new("r", schema(), bad).is_err());
    }

    #[test]
    fn record_by_id_finds_records() {
        let rel = sample();
        assert_eq!(
            rel.record_by_id(RecordId(1)).unwrap().key_str(1).unwrap(),
            "PIE TO TORINO"
        );
        assert!(rel.record_by_id(RecordId(99)).is_none());
    }

    #[test]
    fn column_strings_returns_string_columns_only() {
        let rel = sample();
        let locs = rel.column_strings("location").unwrap();
        assert_eq!(locs, vec!["LAZ RM ROMA", "PIE TO TORINO", "LIG GE GENOVA"]);
        assert!(rel.column_strings("id").is_err());
        assert!(rel.column_strings("nope").is_err());
    }

    #[test]
    fn head_truncates_without_mutating() {
        let rel = sample();
        let h = rel.head(2);
        assert_eq!(h.len(), 2);
        assert_eq!(rel.len(), 3);
        assert_eq!(h.name(), "atlas");
        let all = rel.head(100);
        assert_eq!(all.len(), 3);
    }

    #[test]
    fn display_mentions_name_schema_and_size() {
        let rel = sample();
        let s = rel.to_string();
        assert!(s.contains("atlas"));
        assert!(s.contains("3 rows"));
    }

    #[test]
    fn into_records_preserves_order() {
        let rel = sample();
        let records = rel.into_records();
        assert_eq!(records.len(), 3);
        assert_eq!(records[2].key_str(1).unwrap(), "LIG GE GENOVA");
    }
}
