//! Deterministic failpoint registry (the `fault` feature).
//!
//! Durability and network code is littered with moments where a crash is
//! catastrophic unless the protocol around it is right: between the two
//! eviction files, halfway through an fsync, in the middle of a reply frame.
//! This module lets tests *schedule* those moments exactly: a named **site**
//! is armed with a [`Trigger`], and the production code asks [`fires`] at the
//! matching point.  When the trigger matches, the code simulates the failure
//! (a torn write, a severed connection, a panic) at a byte-exact, reproducible
//! position.
//!
//! Without `--features fault` every function here is an inert inline stub —
//! [`fires`] constant-folds to `None` — so production builds carry no
//! registry, no locking, and no branch cost beyond a trivially dead `if`.
//!
//! Sites are plain strings; the registry is process-global, so test binaries
//! that arm failpoints must serialise themselves (a `static Mutex<()>` guard)
//! and call [`reset`] between scenarios.
//!
//! The error returned for an injected failure is a [`LinkageError::Io`]
//! carrying a recognisable prefix rather than a dedicated enum variant: the
//! public error surface must not change shape with a test-only feature flag.
//! Use [`is_injected`] to distinguish a simulated crash (leave torn state on
//! disk, exactly like a real crash would) from a genuine error (clean up).

use crate::error::LinkageError;

/// When an armed failpoint fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Trigger {
    /// Fire exactly once, on the `n`-th call to [`fires`] (1-based).
    Nth(u64),
    /// Fire on every `k`-th call (`k`, `2k`, `3k`, …).
    EveryKth(u64),
    /// Fire on each call independently with probability `permille`/1000,
    /// driven by a private xorshift stream seeded with `seed` — the same
    /// seed always yields the same firing pattern.
    Probability {
        /// Firing probability in thousandths (10 = 1%).
        permille: u32,
        /// Seed for the site's deterministic random stream.
        seed: u64,
    },
    /// Fire on every call.
    Always,
}

/// Message prefix carried by every injected-fault error.
pub const INJECTED_PREFIX: &str = "injected fault at failpoint ";

/// Build the error a site raises when its failpoint fires.
pub fn injected(site: &str) -> LinkageError {
    LinkageError::Io(format!("{INJECTED_PREFIX}`{site}`"))
}

#[cfg(feature = "fault")]
mod registry {
    use std::collections::HashMap;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Mutex, MutexGuard, OnceLock};

    use super::Trigger;
    use crate::error::LinkageError;

    struct Site {
        trigger: Trigger,
        arg: u64,
        calls: u64,
        hits: u64,
        rng: u64,
    }

    static SITES: OnceLock<Mutex<HashMap<String, Site>>> = OnceLock::new();
    /// Fast-path gate: [`super::fires`] is called on hot durability paths,
    /// so skip the mutex entirely while nothing is armed.
    static ARMED: AtomicUsize = AtomicUsize::new(0);

    fn sites() -> MutexGuard<'static, HashMap<String, Site>> {
        SITES
            .get_or_init(|| Mutex::new(HashMap::new()))
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    fn xorshift(mut x: u64) -> u64 {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        x
    }

    pub fn arm_with(site: &str, trigger: Trigger, arg: u64) {
        // xorshift has a single absorbing state at 0; remap only that seed.
        let seed = match trigger {
            Trigger::Probability { seed: 0, .. } => 0x9E37_79B9_7F4A_7C15,
            Trigger::Probability { seed, .. } => seed,
            _ => 1,
        };
        let mut map = sites();
        map.insert(
            site.to_string(),
            Site {
                trigger,
                arg,
                calls: 0,
                hits: 0,
                rng: seed,
            },
        );
        ARMED.store(map.len(), Ordering::SeqCst);
    }

    pub fn disarm(site: &str) {
        let mut map = sites();
        map.remove(site);
        ARMED.store(map.len(), Ordering::SeqCst);
    }

    pub fn reset() {
        let mut map = sites();
        map.clear();
        ARMED.store(0, Ordering::SeqCst);
    }

    pub fn fires(site: &str) -> Option<u64> {
        if ARMED.load(Ordering::SeqCst) == 0 {
            return None;
        }
        let mut map = sites();
        let entry = map.get_mut(site)?;
        entry.calls += 1;
        let hit = match entry.trigger {
            Trigger::Nth(n) => entry.hits == 0 && entry.calls == n,
            Trigger::EveryKth(k) => k > 0 && entry.calls % k == 0,
            Trigger::Probability { permille, .. } => {
                entry.rng = xorshift(entry.rng);
                entry.rng % 1000 < u64::from(permille)
            }
            Trigger::Always => true,
        };
        if hit {
            entry.hits += 1;
            Some(entry.arg)
        } else {
            None
        }
    }

    pub fn hits(site: &str) -> u64 {
        sites().get(site).map_or(0, |s| s.hits)
    }

    pub fn is_injected(err: &LinkageError) -> bool {
        matches!(err, LinkageError::Io(m) if m.starts_with(super::INJECTED_PREFIX))
    }
}

#[cfg(feature = "fault")]
pub use active::*;

/// Registry front-end compiled in with `--features fault`.
#[cfg(feature = "fault")]
mod active {
    use super::{registry, Trigger};
    use crate::error::LinkageError;

    /// Arm `site` with `trigger` (argument 0).  Re-arming replaces the
    /// previous trigger and resets the site's call counter.
    pub fn arm(site: &str, trigger: Trigger) {
        registry::arm_with(site, trigger, 0);
    }

    /// Arm `site` with `trigger` and a site-specific argument that [`fires`]
    /// hands back on a hit — typically a byte offset at which to cut a write.
    pub fn arm_with(site: &str, trigger: Trigger, arg: u64) {
        registry::arm_with(site, trigger, arg);
    }

    /// Remove the trigger on `site`, if any.
    pub fn disarm(site: &str) {
        registry::disarm(site);
    }

    /// Disarm every site and zero all counters.
    pub fn reset() {
        registry::reset();
    }

    /// Called by production code at a failpoint.  Counts the call and
    /// returns `Some(arg)` when the armed trigger matches, `None` otherwise
    /// (including when the site is not armed at all).
    pub fn fires(site: &str) -> Option<u64> {
        registry::fires(site)
    }

    /// How many times `site` has fired since it was armed.
    pub fn hits(site: &str) -> u64 {
        registry::hits(site)
    }

    /// Whether `err` was raised by a failpoint rather than a real failure.
    pub fn is_injected(err: &LinkageError) -> bool {
        registry::is_injected(err)
    }
}

#[cfg(not(feature = "fault"))]
pub use inert::*;

/// Inert stubs compiled without the `fault` feature: no registry exists and
/// no failpoint can ever fire.
#[cfg(not(feature = "fault"))]
mod inert {
    use super::Trigger;
    use crate::error::LinkageError;

    /// No-op without `--features fault`.
    #[inline(always)]
    pub fn arm(_site: &str, _trigger: Trigger) {}

    /// No-op without `--features fault`.
    #[inline(always)]
    pub fn arm_with(_site: &str, _trigger: Trigger, _arg: u64) {}

    /// No-op without `--features fault`.
    #[inline(always)]
    pub fn disarm(_site: &str) {}

    /// No-op without `--features fault`.
    #[inline(always)]
    pub fn reset() {}

    /// Always `None` without `--features fault`; the surrounding failure
    /// branch is dead code the optimiser removes.
    #[inline(always)]
    pub fn fires(_site: &str) -> Option<u64> {
        None
    }

    /// Always 0 without `--features fault`.
    #[inline(always)]
    pub fn hits(_site: &str) -> u64 {
        0
    }

    /// Always `false` without `--features fault`: nothing can be injected,
    /// so every error is a real one and cleanup paths always run.
    #[inline(always)]
    pub fn is_injected(_err: &LinkageError) -> bool {
        false
    }
}

#[cfg(all(test, feature = "fault"))]
mod tests {
    use std::sync::Mutex;

    use super::*;

    /// The registry is process-global; serialise the tests that touch it.
    static GUARD: Mutex<()> = Mutex::new(());

    fn exclusive() -> std::sync::MutexGuard<'static, ()> {
        GUARD.lock().unwrap_or_else(|p| p.into_inner())
    }

    #[test]
    fn nth_fires_exactly_once_on_the_nth_call() {
        let _g = exclusive();
        reset();
        arm_with("t.nth", Trigger::Nth(3), 77);
        assert_eq!(fires("t.nth"), None);
        assert_eq!(fires("t.nth"), None);
        assert_eq!(fires("t.nth"), Some(77));
        assert_eq!(fires("t.nth"), None);
        assert_eq!(hits("t.nth"), 1);
        reset();
    }

    #[test]
    fn every_kth_fires_periodically() {
        let _g = exclusive();
        reset();
        arm("t.kth", Trigger::EveryKth(2));
        let pattern: Vec<bool> = (0..6).map(|_| fires("t.kth").is_some()).collect();
        assert_eq!(pattern, vec![false, true, false, true, false, true]);
        assert_eq!(hits("t.kth"), 3);
        reset();
    }

    #[test]
    fn probability_is_deterministic_for_a_fixed_seed() {
        let _g = exclusive();
        reset();
        let sample = |seed: u64| -> Vec<bool> {
            arm(
                "t.prob",
                Trigger::Probability {
                    permille: 250,
                    seed,
                },
            );
            (0..64).map(|_| fires("t.prob").is_some()).collect()
        };
        let a = sample(42);
        let b = sample(42);
        let c = sample(43);
        assert_eq!(a, b);
        assert_ne!(a, c);
        let rate = a.iter().filter(|hit| **hit).count();
        assert!(rate > 0 && rate < 40, "250‰ over 64 draws hit {rate} times");
        reset();
    }

    #[test]
    fn unarmed_sites_never_fire_and_disarm_clears() {
        let _g = exclusive();
        reset();
        assert_eq!(fires("t.unarmed"), None);
        arm("t.once", Trigger::Always);
        assert!(fires("t.once").is_some());
        disarm("t.once");
        assert_eq!(fires("t.once"), None);
        assert_eq!(hits("t.once"), 0);
        reset();
    }

    #[test]
    fn injected_errors_are_recognisable() {
        let err = injected("evict.snap");
        assert!(is_injected(&err));
        assert_eq!(
            err.to_string(),
            "io error: injected fault at failpoint `evict.snap`"
        );
        assert!(!is_injected(&LinkageError::Io("disk on fire".into())));
        assert!(!is_injected(&LinkageError::protocol(
            "injected fault at failpoint `x`"
        )));
    }
}
