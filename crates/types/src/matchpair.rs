//! Join results: match pairs and match sets.

use std::collections::HashSet;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::record::{Record, RecordId};

/// How a pair of records was matched.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum MatchKind {
    /// The join attribute values were identical (exact join).
    Exact,
    /// The join attribute values were similar above the configured threshold
    /// (approximate join); carries the similarity score in `[0, 1]`.
    Approximate {
        /// Similarity of the two join attribute values.
        similarity: f64,
    },
}

impl MatchKind {
    /// Whether this is an exact match.
    pub fn is_exact(&self) -> bool {
        matches!(self, MatchKind::Exact)
    }

    /// Whether this is an approximate match.
    pub fn is_approximate(&self) -> bool {
        matches!(self, MatchKind::Approximate { .. })
    }

    /// The similarity score: 1.0 for exact matches.
    pub fn similarity(&self) -> f64 {
        match self {
            MatchKind::Exact => 1.0,
            MatchKind::Approximate { similarity } => *similarity,
        }
    }
}

impl fmt::Display for MatchKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MatchKind::Exact => write!(f, "exact"),
            MatchKind::Approximate { similarity } => write!(f, "approx({similarity:.3})"),
        }
    }
}

/// One joined pair: a left record, a right record, and how they matched.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MatchPair {
    /// The record from the left input.
    pub left: Record,
    /// The record from the right input.
    pub right: Record,
    /// How the pair was matched.
    pub kind: MatchKind,
}

impl MatchPair {
    /// Build an exact match pair.
    pub fn exact(left: Record, right: Record) -> Self {
        Self {
            left,
            right,
            kind: MatchKind::Exact,
        }
    }

    /// Build an approximate match pair with the given similarity.
    pub fn approximate(left: Record, right: Record, similarity: f64) -> Self {
        Self {
            left,
            right,
            kind: MatchKind::Approximate { similarity },
        }
    }

    /// The `(left id, right id)` key identifying this pair.
    pub fn id_pair(&self) -> (RecordId, RecordId) {
        (self.left.id, self.right.id)
    }
}

impl fmt::Display for MatchPair {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ⋈ {} [{}]", self.left.id, self.right.id, self.kind)
    }
}

/// A deduplicating accumulator of match pairs.
///
/// The adaptive join can, after an operator switch, legitimately rediscover a
/// pair it has already emitted (e.g. the exact operator found `(l, r)` and a
/// later approximate probe of a variant finds it again).  `MatchSet`
/// deduplicates on `(left id, right id)` so result-size accounting — the
/// monitor's `O_t` — never double counts.
#[derive(Debug, Default, Clone)]
pub struct MatchSet {
    pairs: Vec<MatchPair>,
    seen: HashSet<(RecordId, RecordId)>,
    exact_count: usize,
    approximate_count: usize,
}

impl MatchSet {
    /// Create an empty match set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert a pair; returns `true` if it was new.
    ///
    /// The *first* discovery of a pair determines its recorded [`MatchKind`].
    pub fn insert(&mut self, pair: MatchPair) -> bool {
        if self.seen.insert(pair.id_pair()) {
            match pair.kind {
                MatchKind::Exact => self.exact_count += 1,
                MatchKind::Approximate { .. } => self.approximate_count += 1,
            }
            self.pairs.push(pair);
            true
        } else {
            false
        }
    }

    /// Whether the pair `(left, right)` has already been recorded.
    pub fn contains(&self, left: RecordId, right: RecordId) -> bool {
        self.seen.contains(&(left, right))
    }

    /// Total number of distinct pairs.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// Whether no pairs have been recorded.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Number of pairs first discovered by an exact match.
    pub fn exact_count(&self) -> usize {
        self.exact_count
    }

    /// Number of pairs first discovered by an approximate match.
    pub fn approximate_count(&self) -> usize {
        self.approximate_count
    }

    /// The recorded pairs, in discovery order.
    pub fn pairs(&self) -> &[MatchPair] {
        &self.pairs
    }

    /// Consume the set, returning the pairs in discovery order.
    pub fn into_pairs(self) -> Vec<MatchPair> {
        self.pairs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    fn rec(id: u64, key: &str) -> Record {
        Record::new(id, vec![Value::string(key)])
    }

    #[test]
    fn match_kind_accessors() {
        assert!(MatchKind::Exact.is_exact());
        assert!(!MatchKind::Exact.is_approximate());
        assert_eq!(MatchKind::Exact.similarity(), 1.0);
        let approx = MatchKind::Approximate { similarity: 0.9 };
        assert!(approx.is_approximate());
        assert_eq!(approx.similarity(), 0.9);
        assert_eq!(approx.to_string(), "approx(0.900)");
        assert_eq!(MatchKind::Exact.to_string(), "exact");
    }

    #[test]
    fn pair_constructors_and_display() {
        let p = MatchPair::exact(rec(1, "a"), rec(2, "a"));
        assert_eq!(p.id_pair(), (RecordId(1), RecordId(2)));
        assert!(p.kind.is_exact());
        let q = MatchPair::approximate(rec(1, "a"), rec(2, "ab"), 0.5);
        assert!(q.kind.is_approximate());
        assert!(q.to_string().contains("#1"));
        assert!(q.to_string().contains("approx"));
    }

    #[test]
    fn match_set_deduplicates_on_id_pair() {
        let mut set = MatchSet::new();
        assert!(set.insert(MatchPair::exact(rec(1, "a"), rec(2, "a"))));
        assert!(!set.insert(MatchPair::approximate(rec(1, "a"), rec(2, "a"), 0.8)));
        assert_eq!(set.len(), 1);
        assert_eq!(set.exact_count(), 1);
        assert_eq!(set.approximate_count(), 0);
        assert!(set.contains(RecordId(1), RecordId(2)));
        assert!(!set.contains(RecordId(2), RecordId(1)));
    }

    #[test]
    fn match_set_counts_by_kind_of_first_discovery() {
        let mut set = MatchSet::new();
        set.insert(MatchPair::approximate(rec(1, "a"), rec(2, "ab"), 0.9));
        set.insert(MatchPair::exact(rec(3, "c"), rec(4, "c")));
        set.insert(MatchPair::exact(rec(3, "c"), rec(5, "c")));
        assert_eq!(set.len(), 3);
        assert_eq!(set.exact_count(), 2);
        assert_eq!(set.approximate_count(), 1);
    }

    #[test]
    fn match_set_preserves_discovery_order() {
        let mut set = MatchSet::new();
        set.insert(MatchPair::exact(rec(1, "a"), rec(10, "a")));
        set.insert(MatchPair::exact(rec(2, "b"), rec(20, "b")));
        let ids: Vec<_> = set.pairs().iter().map(MatchPair::id_pair).collect();
        assert_eq!(
            ids,
            vec![(RecordId(1), RecordId(10)), (RecordId(2), RecordId(20))]
        );
        let into = set.into_pairs();
        assert_eq!(into.len(), 2);
    }

    #[test]
    fn empty_set() {
        let set = MatchSet::new();
        assert!(set.is_empty());
        assert_eq!(set.len(), 0);
        assert_eq!(set.exact_count(), 0);
        assert_eq!(set.approximate_count(), 0);
    }

    #[test]
    fn asymmetric_pairs_are_distinct() {
        // (1, 2) and (2, 1) are different pairs: ids live in different inputs.
        let mut set = MatchSet::new();
        assert!(set.insert(MatchPair::exact(rec(1, "a"), rec(2, "a"))));
        assert!(set.insert(MatchPair::exact(rec(2, "a"), rec(1, "a"))));
        assert_eq!(set.len(), 2);
    }
}
