//! Which input of a symmetric binary operator a tuple came from.

use std::fmt;
use std::ops::{Index, IndexMut};

use serde::{Deserialize, Serialize};

/// The two inputs of a symmetric join.
///
/// The paper names them "left" and "right"; in the parent–child scenario the
/// parent (reference) table is conventionally the **left** input and the
/// child (fact) table the **right** input, but nothing in the operators
/// depends on that convention.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Side {
    /// The left input.
    Left,
    /// The right input.
    Right,
}

impl Side {
    /// Both sides, in `[Left, Right]` order.
    pub const BOTH: [Side; 2] = [Side::Left, Side::Right];

    /// The other side.
    #[must_use]
    pub fn opposite(self) -> Side {
        match self {
            Side::Left => Side::Right,
            Side::Right => Side::Left,
        }
    }

    /// Dense index (Left = 0, Right = 1), for use with [`PerSide`].
    pub fn index(self) -> usize {
        match self {
            Side::Left => 0,
            Side::Right => 1,
        }
    }
}

impl fmt::Display for Side {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Side::Left => write!(f, "left"),
            Side::Right => write!(f, "right"),
        }
    }
}

/// A pair of values indexed by [`Side`].
///
/// Symmetric operators keep almost all of their state twice — one hash table
/// per input, one sliding window per input, one perturbation history per
/// input.  `PerSide` makes that duplication explicit and impossible to get
/// out of sync.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PerSide<T> {
    /// Value associated with the left input.
    pub left: T,
    /// Value associated with the right input.
    pub right: T,
}

impl<T> PerSide<T> {
    /// Build from explicit left/right values.
    pub fn new(left: T, right: T) -> Self {
        Self { left, right }
    }

    /// Build both sides from a constructor function.
    pub fn from_fn(mut f: impl FnMut(Side) -> T) -> Self {
        Self {
            left: f(Side::Left),
            right: f(Side::Right),
        }
    }

    /// Immutable access by side.
    pub fn get(&self, side: Side) -> &T {
        match side {
            Side::Left => &self.left,
            Side::Right => &self.right,
        }
    }

    /// Mutable access by side.
    pub fn get_mut(&mut self, side: Side) -> &mut T {
        match side {
            Side::Left => &mut self.left,
            Side::Right => &mut self.right,
        }
    }

    /// Apply a function to both sides, producing a new `PerSide`.
    pub fn map<U>(&self, mut f: impl FnMut(&T) -> U) -> PerSide<U> {
        PerSide {
            left: f(&self.left),
            right: f(&self.right),
        }
    }

    /// Iterate `(side, value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (Side, &T)> {
        [(Side::Left, &self.left), (Side::Right, &self.right)].into_iter()
    }

    /// Mutable access to both sides at once, `(own, opposite)` relative to
    /// `side`.  Symmetric joins probe one table while inserting into the
    /// other; this is the borrow-splitting hook that makes that possible
    /// without interior mutability.
    pub fn own_and_opposite_mut(&mut self, side: Side) -> (&mut T, &mut T) {
        match side {
            Side::Left => (&mut self.left, &mut self.right),
            Side::Right => (&mut self.right, &mut self.left),
        }
    }
}

impl<T> Index<Side> for PerSide<T> {
    type Output = T;
    fn index(&self, side: Side) -> &T {
        self.get(side)
    }
}

impl<T> IndexMut<Side> for PerSide<T> {
    fn index_mut(&mut self, side: Side) -> &mut T {
        self.get_mut(side)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opposite_is_an_involution() {
        for side in Side::BOTH {
            assert_eq!(side.opposite().opposite(), side);
            assert_ne!(side.opposite(), side);
        }
    }

    #[test]
    fn indices_are_dense() {
        assert_eq!(Side::Left.index(), 0);
        assert_eq!(Side::Right.index(), 1);
    }

    #[test]
    fn display_names() {
        assert_eq!(Side::Left.to_string(), "left");
        assert_eq!(Side::Right.to_string(), "right");
    }

    #[test]
    fn per_side_access_and_mutation() {
        let mut counts = PerSide::new(0u32, 10u32);
        counts[Side::Left] += 5;
        *counts.get_mut(Side::Right) += 1;
        assert_eq!(counts[Side::Left], 5);
        assert_eq!(counts[Side::Right], 11);
        assert_eq!(*counts.get(Side::Left), 5);
    }

    #[test]
    fn per_side_from_fn_and_map() {
        let sizes = PerSide::from_fn(|s| if s == Side::Left { 100 } else { 200 });
        assert_eq!(sizes.left, 100);
        assert_eq!(sizes.right, 200);
        let doubled = sizes.map(|v| v * 2);
        assert_eq!(doubled, PerSide::new(200, 400));
    }

    #[test]
    fn per_side_iter_order() {
        let p = PerSide::new('a', 'b');
        let collected: Vec<_> = p.iter().collect();
        assert_eq!(collected, vec![(Side::Left, &'a'), (Side::Right, &'b')]);
    }

    #[test]
    fn own_and_opposite_mut_splits_borrows() {
        let mut p = PerSide::new(vec![1], vec![2]);
        let (own, opp) = p.own_and_opposite_mut(Side::Right);
        own.push(3);
        opp.push(4);
        assert_eq!(p.left, vec![1, 4]);
        assert_eq!(p.right, vec![2, 3]);
    }

    #[test]
    fn per_side_default() {
        let d: PerSide<u64> = PerSide::default();
        assert_eq!(d.left, 0);
        assert_eq!(d.right, 0);
    }
}
