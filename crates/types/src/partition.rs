//! Hash partitioning vocabulary for the sharded execution layer.
//!
//! The parallel join in `linkage-exec` splits its input across worker
//! shards.  The routing decision must be **stable** — the same key must
//! map to the same shard on every run and on every machine, or sharded
//! results would stop being reproducible — so the partitioner hashes with
//! FNV-1a rather than the process-seeded [`std::collections::HashMap`]
//! hasher.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Identifier of one worker shard, dense in `0..shard_count`.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct ShardId(pub usize);

impl ShardId {
    /// The numeric value.
    pub fn as_usize(self) -> usize {
        self.0
    }
}

impl fmt::Display for ShardId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "shard{}", self.0)
    }
}

/// Stable 64-bit FNV-1a hash of a byte string.
///
/// Deterministic across runs, processes and platforms — the property the
/// sharded join's reproducibility rests on.
pub fn stable_hash(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = OFFSET;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(PRIME);
    }
    hash
}

/// Maps join keys to shards by stable hash.
///
/// Keys that compare equal (after the join's normalisation, which the
/// caller applies before routing) always land on the same shard, which is
/// what lets each shard run an independent exact hash join over its
/// partition without ever missing an equal-key pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Partitioner {
    shards: usize,
}

impl Partitioner {
    /// Build a partitioner over `shards` shards.
    ///
    /// # Panics
    /// Panics when `shards` is zero: a join with no workers cannot route.
    pub fn new(shards: usize) -> Self {
        assert!(shards > 0, "partitioner requires at least one shard");
        Self { shards }
    }

    /// Number of shards routed to.
    pub fn shard_count(&self) -> usize {
        self.shards
    }

    /// The shard responsible for `key`.
    pub fn shard_of(&self, key: &str) -> ShardId {
        ShardId((stable_hash(key.as_bytes()) % self.shards as u64) as usize)
    }

    /// Iterate every shard id, in order.
    pub fn shard_ids(&self) -> impl Iterator<Item = ShardId> {
        (0..self.shards).map(ShardId)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stable_hash_matches_reference_vectors() {
        // Classic FNV-1a test vectors.
        assert_eq!(stable_hash(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(stable_hash(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(stable_hash(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn equal_keys_route_to_equal_shards() {
        let p = Partitioner::new(4);
        for key in ["", "ROMA", "LOC ABCDEFGHIJKL MNOPQRSTUVWXYZ"] {
            let owned: String = key.chars().collect();
            assert_eq!(p.shard_of(key), p.shard_of(&owned));
            assert!(p.shard_of(key).as_usize() < 4);
        }
    }

    #[test]
    fn single_shard_routes_everything_to_zero() {
        let p = Partitioner::new(1);
        assert_eq!(p.shard_of("anything"), ShardId(0));
        assert_eq!(p.shard_count(), 1);
    }

    #[test]
    fn routing_spreads_distinct_keys() {
        let p = Partitioner::new(4);
        let mut hits = [0usize; 4];
        for i in 0..400 {
            hits[p.shard_of(&format!("key-{i}")).as_usize()] += 1;
        }
        for (shard, &count) in hits.iter().enumerate() {
            assert!(count > 40, "shard {shard} got only {count}/400 keys");
        }
    }

    #[test]
    fn shard_ids_enumerate_in_order() {
        let p = Partitioner::new(3);
        let ids: Vec<usize> = p.shard_ids().map(ShardId::as_usize).collect();
        assert_eq!(ids, vec![0, 1, 2]);
        assert_eq!(ShardId(2).to_string(), "shard2");
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_rejected() {
        Partitioner::new(0);
    }
}
