//! Pull-based record streams.
//!
//! The operators in this workspace are *pipelined*: they consume tuples one
//! at a time from their inputs and can emit results before either input is
//! exhausted (paper §2.1).  [`RecordStream`] is the minimal pull interface
//! those operators require; it deliberately mirrors an iterator rather than
//! the full `OPEN/NEXT/CLOSE` protocol, which lives in
//! `linkage-operators::iterator` where operator state matters.

use serde::{Deserialize, Serialize};

use crate::record::{Record, SidedRecord};
use crate::relation::Relation;
use crate::schema::Schema;
use crate::side::Side;

/// A pull-based source of records with a known schema.
pub trait RecordStream {
    /// The schema every produced record conforms to.
    fn schema(&self) -> &Schema;

    /// Produce the next record, or `None` when exhausted.
    fn next_record(&mut self) -> Option<Record>;

    /// A hint of how many records remain, if known.
    ///
    /// The adaptive monitor uses the *declared* expected size of the inputs
    /// (paper §3.2), not this hint, so returning `None` is always safe.
    fn size_hint(&self) -> Option<usize> {
        None
    }

    /// Reset the stream to its beginning, if the source supports it.
    ///
    /// Returns `false` when the source cannot be replayed (e.g. a network
    /// stream).  In-memory sources return `true`.
    fn rewind(&mut self) -> bool {
        false
    }
}

/// A batch of records handed around by the experiment harness.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RecordBatch {
    /// Schema of every record in the batch.
    pub schema: Schema,
    /// The records.
    pub records: Vec<Record>,
}

impl RecordBatch {
    /// Build a batch from a relation.
    pub fn from_relation(relation: &Relation) -> Self {
        Self {
            schema: relation.schema().clone(),
            records: relation.records().to_vec(),
        }
    }

    /// Number of records in the batch.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the batch is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

/// An in-memory [`RecordStream`] over a vector of records.
#[derive(Debug, Clone)]
pub struct VecStream {
    schema: Schema,
    records: Vec<Record>,
    cursor: usize,
}

impl VecStream {
    /// Build a stream over explicit records.
    pub fn new(schema: Schema, records: Vec<Record>) -> Self {
        Self {
            schema,
            records,
            cursor: 0,
        }
    }

    /// Build a stream over a relation's records.
    pub fn from_relation(relation: &Relation) -> Self {
        Self::new(relation.schema().clone(), relation.records().to_vec())
    }

    /// How many records have been consumed so far.
    pub fn consumed(&self) -> usize {
        self.cursor
    }

    /// Total number of records in the underlying vector.
    pub fn total(&self) -> usize {
        self.records.len()
    }
}

impl RecordStream for VecStream {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next_record(&mut self) -> Option<Record> {
        let rec = self.records.get(self.cursor).cloned();
        if rec.is_some() {
            self.cursor += 1;
        }
        rec
    }

    fn size_hint(&self) -> Option<usize> {
        Some(self.records.len() - self.cursor)
    }

    fn rewind(&mut self) -> bool {
        self.cursor = 0;
        true
    }
}

/// The policy used to interleave the two inputs of a symmetric join.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum InterleavePolicy {
    /// Strict alternation left, right, left, right, … (the paper's
    /// "scanning each of the tables in turn, one tuple at a time").
    #[default]
    Alternate,
    /// Drain the left input completely, then the right.
    LeftFirst,
    /// Drain the right input completely, then the left.
    RightFirst,
    /// `k` tuples from the left, then `k` from the right, repeatedly.
    Blocks(usize),
}

/// Interleaves two [`RecordStream`]s into a single stream of [`SidedRecord`]s.
///
/// When one input is exhausted the other continues to be drained, so the join
/// always sees every tuple exactly once regardless of relative input sizes.
pub struct InterleavedStream<L, R> {
    left: L,
    right: R,
    policy: InterleavePolicy,
    /// Which side to try next under the alternating policies.
    next_side: Side,
    /// Tuples emitted from the current block (for `Blocks`).
    block_progress: usize,
    emitted: usize,
}

impl<L: RecordStream, R: RecordStream> InterleavedStream<L, R> {
    /// Build an interleaved stream with the given policy.
    pub fn new(left: L, right: R, policy: InterleavePolicy) -> Self {
        let next_side = match policy {
            InterleavePolicy::RightFirst => Side::Right,
            _ => Side::Left,
        };
        Self {
            left,
            right,
            policy,
            next_side,
            block_progress: 0,
            emitted: 0,
        }
    }

    /// Strictly alternating interleave (the default used by the paper).
    pub fn alternating(left: L, right: R) -> Self {
        Self::new(left, right, InterleavePolicy::Alternate)
    }

    /// Number of sided records emitted so far.
    pub fn emitted(&self) -> usize {
        self.emitted
    }

    fn pull(&mut self, side: Side) -> Option<Record> {
        match side {
            Side::Left => self.left.next_record(),
            Side::Right => self.right.next_record(),
        }
    }

    /// Produce the next sided record according to the interleave policy.
    pub fn next_sided(&mut self) -> Option<SidedRecord> {
        let first_choice = match self.policy {
            InterleavePolicy::Alternate => self.next_side,
            InterleavePolicy::LeftFirst => Side::Left,
            InterleavePolicy::RightFirst => Side::Right,
            InterleavePolicy::Blocks(_) => self.next_side,
        };

        let result = match self.pull(first_choice) {
            Some(record) => Some(SidedRecord::new(first_choice, record)),
            None => self
                .pull(first_choice.opposite())
                .map(|record| SidedRecord::new(first_choice.opposite(), record)),
        };

        if let Some(sided) = &result {
            self.emitted += 1;
            match self.policy {
                InterleavePolicy::Alternate => {
                    self.next_side = sided.side.opposite();
                }
                InterleavePolicy::Blocks(k) => {
                    let k = k.max(1);
                    if sided.side == self.next_side {
                        self.block_progress += 1;
                        if self.block_progress >= k {
                            self.block_progress = 0;
                            self.next_side = self.next_side.opposite();
                        }
                    } else {
                        // The preferred side is exhausted: stay on the other.
                        self.next_side = sided.side;
                        self.block_progress = 0;
                    }
                }
                InterleavePolicy::LeftFirst | InterleavePolicy::RightFirst => {}
            }
        }
        result
    }

    /// Schemas of the two inputs.
    pub fn schemas(&self) -> (&Schema, &Schema) {
        (self.left.schema(), self.right.schema())
    }

    /// Collect the entire stream into a vector (testing convenience).
    pub fn collect_all(mut self) -> Vec<SidedRecord> {
        let mut out = Vec::new();
        while let Some(s) = self.next_sided() {
            out.push(s);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Field;
    use crate::value::Value;

    fn schema() -> Schema {
        Schema::of(vec![Field::string("k")])
    }

    fn stream_of(keys: &[&str]) -> VecStream {
        let records = keys
            .iter()
            .enumerate()
            .map(|(i, k)| Record::new(i as u64, vec![Value::string(*k)]))
            .collect();
        VecStream::new(schema(), records)
    }

    fn sides(out: &[SidedRecord]) -> Vec<Side> {
        out.iter().map(|s| s.side).collect()
    }

    #[test]
    fn vec_stream_yields_in_order_and_rewinds() {
        let mut s = stream_of(&["a", "b", "c"]);
        assert_eq!(s.size_hint(), Some(3));
        assert_eq!(s.next_record().unwrap().key_str(0).unwrap(), "a");
        assert_eq!(s.consumed(), 1);
        assert_eq!(s.size_hint(), Some(2));
        assert!(s.rewind());
        assert_eq!(s.consumed(), 0);
        assert_eq!(s.next_record().unwrap().key_str(0).unwrap(), "a");
        assert_eq!(s.total(), 3);
    }

    #[test]
    fn vec_stream_exhausts() {
        let mut s = stream_of(&["a"]);
        assert!(s.next_record().is_some());
        assert!(s.next_record().is_none());
        assert!(s.next_record().is_none());
        assert_eq!(s.size_hint(), Some(0));
    }

    #[test]
    fn alternating_interleave_strictly_alternates() {
        let inter = InterleavedStream::alternating(stream_of(&["l1", "l2"]), stream_of(&["r1", "r2"]));
        let out = inter.collect_all();
        assert_eq!(
            sides(&out),
            vec![Side::Left, Side::Right, Side::Left, Side::Right]
        );
        assert_eq!(out[1].record.key_str(0).unwrap(), "r1");
    }

    #[test]
    fn alternating_interleave_drains_longer_side() {
        let inter =
            InterleavedStream::alternating(stream_of(&["l1"]), stream_of(&["r1", "r2", "r3"]));
        let out = inter.collect_all();
        assert_eq!(out.len(), 4);
        assert_eq!(
            sides(&out),
            vec![Side::Left, Side::Right, Side::Right, Side::Right]
        );
    }

    #[test]
    fn left_first_policy_drains_left_then_right() {
        let inter = InterleavedStream::new(
            stream_of(&["l1", "l2"]),
            stream_of(&["r1"]),
            InterleavePolicy::LeftFirst,
        );
        let out = inter.collect_all();
        assert_eq!(sides(&out), vec![Side::Left, Side::Left, Side::Right]);
    }

    #[test]
    fn right_first_policy_drains_right_then_left() {
        let inter = InterleavedStream::new(
            stream_of(&["l1"]),
            stream_of(&["r1", "r2"]),
            InterleavePolicy::RightFirst,
        );
        let out = inter.collect_all();
        assert_eq!(sides(&out), vec![Side::Right, Side::Right, Side::Left]);
    }

    #[test]
    fn block_policy_emits_blocks() {
        let inter = InterleavedStream::new(
            stream_of(&["l1", "l2", "l3", "l4"]),
            stream_of(&["r1", "r2", "r3", "r4"]),
            InterleavePolicy::Blocks(2),
        );
        let out = inter.collect_all();
        assert_eq!(
            sides(&out),
            vec![
                Side::Left,
                Side::Left,
                Side::Right,
                Side::Right,
                Side::Left,
                Side::Left,
                Side::Right,
                Side::Right
            ]
        );
    }

    #[test]
    fn block_policy_handles_exhausted_preferred_side() {
        let inter = InterleavedStream::new(
            stream_of(&["l1"]),
            stream_of(&["r1", "r2", "r3"]),
            InterleavePolicy::Blocks(2),
        );
        let out = inter.collect_all();
        assert_eq!(out.len(), 4);
        assert_eq!(out[0].side, Side::Left);
        assert!(out[1..].iter().all(|s| s.side == Side::Right));
    }

    #[test]
    fn emitted_counts_records() {
        let mut inter =
            InterleavedStream::alternating(stream_of(&["l1"]), stream_of(&["r1"]));
        assert_eq!(inter.emitted(), 0);
        inter.next_sided();
        inter.next_sided();
        assert_eq!(inter.emitted(), 2);
        assert!(inter.next_sided().is_none());
        assert_eq!(inter.emitted(), 2);
    }

    #[test]
    fn record_batch_from_relation() {
        let mut rel = Relation::empty("r", schema());
        rel.push_values(vec![Value::string("a")]).unwrap();
        let batch = RecordBatch::from_relation(&rel);
        assert_eq!(batch.len(), 1);
        assert!(!batch.is_empty());
        assert_eq!(batch.schema, *rel.schema());
    }
}
