//! Chaos suite: deterministic fault injection against the server and the
//! session manager (`--features fault`).
//!
//! Every scenario drives a fault-injected run to completion and holds it
//! to the same bar as a healthy one: the drained event stream must be
//! **bit-identical** to a solo (in-process, fault-free) run of the same
//! config over the same feed sequence, and no injected fault may ever
//! surface as a panic, a duplicated batch, or a lost batch.

#![cfg(feature = "fault")]

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};

use linkage::api::{Pipeline, PipelineConfig};
use linkage::types::fault::{self, Trigger};
use linkage::types::{LinkageError, PerSide, Side, SidedRecord};
use linkage_datagen::{generate, DatagenConfig, GeneratedData};
use linkage_server::proto::{wire_event, WireEvent};
use linkage_server::session::record_bytes;
use linkage_server::{LinkageServer, RetryClient, RetryPolicy, ServerConfig, SessionManager};

/// The fault registry is process-global: scenarios must not overlap.
/// Each test takes this guard first and resets the registry on entry, so
/// a panicked predecessor cannot leak armed sites into it.
static SERIAL: Mutex<()> = Mutex::new(());

fn serial() -> MutexGuard<'static, ()> {
    let guard = SERIAL.lock().unwrap_or_else(|p| p.into_inner());
    fault::reset();
    guard
}

fn scratch_dir(tag: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "linkage-chaos-{tag}-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn session_config(reference: u64) -> PipelineConfig {
    let mut config = PipelineConfig::default();
    config.keys = PerSide::new(GeneratedData::KEY_COLUMN, GeneratedData::KEY_COLUMN);
    config.reference_size = Some(reference);
    config
}

fn feed_sequence(data: &GeneratedData) -> Vec<SidedRecord> {
    data.parents
        .records()
        .iter()
        .map(|r| SidedRecord::new(Side::Left, r.clone()))
        .chain(
            data.children
                .records()
                .iter()
                .map(|r| SidedRecord::new(Side::Right, r.clone())),
        )
        .collect()
}

fn solo_events(config: &PipelineConfig, sequence: &[SidedRecord]) -> Vec<WireEvent> {
    let (pipeline, input) = Pipeline::builder()
        .config(config.clone())
        .session()
        .unwrap();
    let stream = pipeline.run().unwrap();
    for record in sequence {
        input.push_sided(record.clone()).unwrap();
    }
    input.finish();
    stream
        .map(|event| wire_event(&event.unwrap()))
        .collect::<Vec<_>>()
}

/// Feed `records` into a manager-held session, mirroring the server's
/// checkout / feed / checkin request shape.
fn manager_feed(manager: &mut SessionManager, id: u64, records: &[SidedRecord]) {
    let delta: u64 = records.iter().map(record_bytes).sum();
    manager.reserve_bytes(delta).unwrap();
    let mut session = manager.checkout(id).unwrap();
    session.feed(records.to_vec()).unwrap();
    manager.checkin(session, delta as i64);
}

/// `FIN` + drain a manager-held session to its `Finished` event.
fn manager_drain(manager: &mut SessionManager, id: u64) -> Vec<WireEvent> {
    let mut session = manager.checkout(id).unwrap();
    session.fin();
    let mut events = Vec::new();
    let mut released = 0u64;
    loop {
        let (batch, freed) = session.poll(256).unwrap();
        released += freed;
        let finished = batch.iter().any(|e| matches!(e, WireEvent::Finished(_)));
        events.extend(batch);
        if finished {
            break;
        }
    }
    manager.checkin(session, -(released as i64));
    events
}

/// Open + feed the full sequence, unfinished and idle — ready to evict.
fn loaded_manager(
    dir: &Path,
    config: &PipelineConfig,
    sequence: &[SidedRecord],
) -> (SessionManager, u64) {
    let mut manager = SessionManager::new(8, u64::MAX, dir.to_path_buf()).unwrap();
    let id = manager.open(config.clone(), config.fingerprint()).unwrap();
    manager_feed(&mut manager, id, sequence);
    (manager, id)
}

/// No stray temporaries may survive a recovery sweep.
fn assert_no_tmp(dir: &Path) {
    for entry in std::fs::read_dir(dir).unwrap() {
        let name = entry.unwrap().file_name();
        let name = name.to_string_lossy().to_string();
        assert!(
            !name.ends_with(".tmp") && !name.ends_with(".tmp-snapshot"),
            "temporary {name} survived the recovery sweep"
        );
    }
}

/// Cut offsets to sweep for a file of `len` bytes: exhaustive for small
/// files, boundaries + stride for large ones (always including 0, the
/// full length, and both edges).
fn cut_offsets(len: u64) -> Vec<u64> {
    if len <= 160 {
        return (0..=len).collect();
    }
    let mut cuts: Vec<u64> = (0..32).collect();
    let stride = ((len - 64) / 96).max(1);
    let mut x = 32;
    while x < len - 32 {
        cuts.push(x);
        x += stride;
    }
    cuts.extend(len - 32..=len);
    cuts
}

/// A crash cut at **every** (strided) byte offset of every eviction
/// write: the failed eviction must keep the in-memory session usable, a
/// restart over the debris must quarantine — never adopt, never panic —
/// and a rebuilt session must still produce the solo event stream.
#[test]
fn eviction_torn_at_any_offset_is_quarantined_and_the_stream_survives() {
    let _guard = serial();
    let data = generate(&DatagenConfig::mid_stream_dirty(40, 3)).unwrap();
    let config = session_config(data.parents.len() as u64);
    let sequence = feed_sequence(&data);
    let expected = solo_events(&config, &sequence);

    // Learn the three file sizes from one clean eviction.
    let probe_dir = scratch_dir("cut-probe");
    let (mut manager, id) = loaded_manager(&probe_dir, &config, &sequence);
    assert_eq!(manager.evict_all().unwrap(), 1);
    let file_len = |suffix: &str| {
        std::fs::metadata(probe_dir.join(format!("session-{id}.{suffix}")))
            .unwrap()
            .len()
    };
    let sites = [
        ("evict.snap", file_len("snap")),
        ("evict.feed", file_len("feed")),
        ("evict.manifest", file_len("evict")),
    ];
    drop(manager);

    for (site, len) in sites {
        for (i, cut) in cut_offsets(len).into_iter().enumerate() {
            let dir = scratch_dir("cut");
            let (mut manager, id) = loaded_manager(&dir, &config, &sequence);
            fault::arm_with(site, Trigger::Nth(1), cut);
            let err = manager.evict_all().unwrap_err();
            assert!(
                fault::is_injected(&err),
                "{site} cut {cut}: expected the injected error, got {err}"
            );
            assert_eq!(fault::hits(site), 1, "{site} must fire exactly once");
            fault::reset();

            // The failed eviction kept the session live and usable.
            assert_eq!(manager.stats().evicted_sessions, 0);

            // "Crash": drop the manager on the torn debris and restart.
            drop(manager);
            let mut manager = SessionManager::new(8, u64::MAX, dir.clone()).unwrap();
            assert_no_tmp(&dir);
            assert!(
                manager.recovery().adopted.is_empty(),
                "{site} cut {cut}: an uncommitted eviction must never be adopted"
            );
            match manager.checkout(id) {
                Err(LinkageError::Quarantined(_)) | Err(LinkageError::UnknownSession(_)) => {}
                other => panic!("{site} cut {cut}: expected quarantine, got {other:?}"),
            }
            if !manager.recovery().quarantined.is_empty() {
                manager.close(id).unwrap();
            }

            // Sampled: the client-side story — rebuild from scratch on
            // the recovered server and compare bit-for-bit.
            if i % 16 == 0 {
                let fresh = manager.open(config.clone(), config.fingerprint()).unwrap();
                manager_feed(&mut manager, fresh, &sequence);
                let got = manager_drain(&mut manager, fresh);
                assert_eq!(got, expected, "{site} cut {cut}: rebuilt stream diverged");
            }
        }
    }

    // A failed fsync barrier is a failed (uncommitted) eviction too.
    let dir = scratch_dir("fsync");
    let (mut manager, id) = loaded_manager(&dir, &config, &sequence);
    fault::arm("evict.fsync", Trigger::Nth(1));
    let err = manager.evict_all().unwrap_err();
    assert!(fault::is_injected(&err));
    fault::reset();
    drop(manager);
    let manager = SessionManager::new(8, u64::MAX, dir).unwrap();
    assert!(manager.recovery().adopted.is_empty());
    assert_eq!(manager.recovery().quarantined.len(), 1);
    let _ = id;
}

/// The positive control for the sweep above: a *clean* eviction commits,
/// a restart adopts it, and the rehydrated session finishes the stream
/// bit-identically — including when the eviction cut the run before the
/// §3.3 exact→approximate switch, so the switch happens post-restart.
#[test]
fn clean_eviction_is_adopted_after_restart_and_resumes_across_the_switch() {
    let _guard = serial();
    let data = generate(&DatagenConfig::mid_stream_dirty(200, 11)).unwrap();
    let config = session_config(data.parents.len() as u64);
    let sequence = feed_sequence(&data);
    let expected = solo_events(&config, &sequence);
    assert!(
        expected.iter().any(|e| matches!(e, WireEvent::Switched(_))),
        "the workload must exercise the mid-stream switch"
    );

    let dir = scratch_dir("adopt");
    let half = sequence.len() / 2;
    let mut manager = SessionManager::new(8, u64::MAX, dir.to_path_buf()).unwrap();
    let id = manager.open(config.clone(), config.fingerprint()).unwrap();
    manager_feed(&mut manager, id, &sequence[..half]);
    assert_eq!(manager.evict_all().unwrap(), 1);
    drop(manager);

    let mut manager = SessionManager::new(8, u64::MAX, dir.clone()).unwrap();
    assert_eq!(manager.recovery().adopted, vec![id]);
    assert!(manager.recovery().quarantined.is_empty());
    manager_feed(&mut manager, id, &sequence[half..]);
    assert_eq!(manager.stats().rehydrations, 1);
    let got = manager_drain(&mut manager, id);
    assert_eq!(got, expected);
    // Rehydration consumed the trio; nothing is left on disk.
    assert_eq!(std::fs::read_dir(&dir).unwrap().count(), 0);
}

/// Run one full RetryClient workload against `server` and return the
/// drained event stream.
fn retry_workload(
    addr: &str,
    config: &PipelineConfig,
    sequence: &[SidedRecord],
) -> (Vec<WireEvent>, RetryClient) {
    let mut policy = RetryPolicy::default();
    policy.backoff_base = std::time::Duration::from_micros(200);
    policy.backoff_max = std::time::Duration::from_millis(10);
    let mut client = RetryClient::connect(addr, policy);
    let handle = client.open(config).unwrap();
    let mut got = Vec::new();
    for batch in sequence.chunks(32) {
        client.feed(handle, batch).unwrap();
        got.extend(client.poll(handle, 64).unwrap());
    }
    got.extend(client.drain(handle, 128).unwrap());
    client.close(handle).unwrap();
    (got, client)
}

fn start_server(tag: &str, mutate: impl FnOnce(&mut ServerConfig)) -> LinkageServer {
    let mut config = ServerConfig::default();
    config.evict_dir = Some(scratch_dir(tag));
    mutate(&mut config);
    LinkageServer::start(config).unwrap()
}

/// Sever the connection at **every** request boundary, one run per
/// boundary: the Nth request the server ever reads is dropped on the
/// floor (read, then severed, never handled).  The RetryClient must
/// resynchronise and the stream must come out bit-identical every time.
#[test]
fn a_connection_dropped_at_every_request_boundary_is_invisible() {
    let _guard = serial();
    let data = generate(&DatagenConfig::mid_stream_dirty(120, 23)).unwrap();
    let config = session_config(data.parents.len() as u64);
    let sequence = feed_sequence(&data);
    let expected = solo_events(&config, &sequence);

    let mut n = 1u64;
    loop {
        fault::arm("server.drop.recv", Trigger::Nth(n));
        let server = start_server("drop-recv", |_| {});
        let (got, client) = retry_workload(&server.addr().to_string(), &config, &sequence);
        let hits = fault::hits("server.drop.recv");
        fault::reset();
        assert_eq!(got, expected, "drop.recv at request {n}: stream diverged");
        if hits == 0 {
            // The workload has fewer than n requests: the sweep covered
            // every boundary.
            assert!(n > 5, "the sweep must have covered a real workload");
            server.shutdown().unwrap();
            break;
        }
        assert!(client.reconnects() >= 2, "a drop must force a redial");
        server.shutdown().unwrap();
        n += 1;
    }
}

/// Cut the *reply* frame instead: the request was fully applied
/// server-side but the client saw `cut` bytes of the answer.  This is
/// the half-open case idempotent FEED resume exists for — a replayed
/// FEED must not double-insert.  Swept across every request boundary for
/// three cut depths: nothing, a torn header, and the full reply (applied
/// and answered, then severed).
#[test]
fn a_reply_cut_after_the_request_applied_does_not_double_feed() {
    let _guard = serial();
    let data = generate(&DatagenConfig::mid_stream_dirty(120, 23)).unwrap();
    let config = session_config(data.parents.len() as u64);
    let sequence = feed_sequence(&data);
    let expected = solo_events(&config, &sequence);

    for cut in [0u64, 3, u64::MAX] {
        let mut n = 1u64;
        loop {
            fault::arm_with("server.drop.reply", Trigger::Nth(n), cut);
            let server = start_server("drop-reply", |_| {});
            let (got, _client) = retry_workload(&server.addr().to_string(), &config, &sequence);
            let hits = fault::hits("server.drop.reply");
            fault::reset();
            assert_eq!(
                got, expected,
                "drop.reply at request {n} cut {cut}: stream diverged"
            );
            server.shutdown().unwrap();
            if hits == 0 {
                assert!(n > 5, "the sweep must have covered a real workload");
                break;
            }
            n += 1;
        }
    }
}

/// A worker panic mid-`FEED` must not kill the server: the session is
/// quarantined with a typed error, the worker survives to serve the next
/// request, and the RetryClient heals by rebuilding the session from its
/// journal — the caller still sees the exact solo stream.
#[test]
fn a_poisoned_session_is_quarantined_and_the_client_heals_around_it() {
    let _guard = serial();
    let data = generate(&DatagenConfig::mid_stream_dirty(120, 23)).unwrap();
    let config = session_config(data.parents.len() as u64);
    let sequence = feed_sequence(&data);
    let expected = solo_events(&config, &sequence);

    fault::arm("session.panic", Trigger::Nth(1));
    let server = start_server("panic", |_| {});
    let (got, mut client) = retry_workload(&server.addr().to_string(), &config, &sequence);
    assert_eq!(fault::hits("session.panic"), 1);
    fault::reset();

    assert_eq!(got, expected);
    assert!(client.heals() >= 1, "the poisoned session must have healed");
    let stats = {
        let mut probe = linkage_server::Client::connect(server.addr()).unwrap();
        probe.stats().unwrap()
    };
    assert!(stats.worker_panics >= 1);
    assert_eq!(
        stats.quarantined_sessions, 0,
        "healing closes the quarantined remains"
    );
    // The server is still fully serviceable after the panic.
    let (again, _) = retry_workload(&server.addr().to_string(), &config, &sequence);
    assert_eq!(again, expected);
    let _ = &mut client;
    server.shutdown().unwrap();
}

/// The capstone: several interleaved sessions on one fault-injected
/// server — random connection drops *and* budget-pressure evictions at
/// once — each drained stream bit-identical to its solo run.
#[test]
fn interleaved_sessions_under_random_drops_and_eviction_pressure_stay_exact() {
    let _guard = serial();
    let workloads: Vec<(PipelineConfig, Vec<SidedRecord>, Vec<WireEvent>)> = [11u64, 23, 31]
        .into_iter()
        .map(|seed| {
            let data = generate(&DatagenConfig::mid_stream_dirty(100, seed)).unwrap();
            let config = session_config(data.parents.len() as u64);
            let sequence = feed_sequence(&data);
            let expected = solo_events(&config, &sequence);
            (config, sequence, expected)
        })
        .collect();

    // Budget sized to hold roughly one and a half sessions: feeding in
    // round-robin keeps evicting whichever sessions sit idle.
    let one: u64 = workloads[0].1.iter().map(record_bytes).sum();
    let server = start_server("capstone", |c| c.budget_bytes = one + one / 2);
    fault::arm_with(
        "server.drop.recv",
        Trigger::Probability {
            permille: 30,
            seed: 7,
        },
        0,
    );

    let mut policy = RetryPolicy::default();
    policy.backoff_base = std::time::Duration::from_micros(200);
    policy.backoff_max = std::time::Duration::from_millis(10);
    let mut client = RetryClient::connect(server.addr().to_string(), policy);
    let handles: Vec<u64> = workloads
        .iter()
        .map(|(config, _, _)| client.open(config).unwrap())
        .collect();

    let chunks = 8;
    let mut got: Vec<Vec<WireEvent>> = vec![Vec::new(); workloads.len()];
    for step in 0..chunks {
        for (k, (_, sequence, _)) in workloads.iter().enumerate() {
            let lo = sequence.len() * step / chunks;
            let hi = sequence.len() * (step + 1) / chunks;
            client.feed(handles[k], &sequence[lo..hi]).unwrap();
            got[k].extend(client.poll(handles[k], 48).unwrap());
        }
    }
    for (k, _) in workloads.iter().enumerate() {
        got[k].extend(client.drain(handles[k], 128).unwrap());
        client.close(handles[k]).unwrap();
    }
    let drops = fault::hits("server.drop.recv");
    fault::reset();

    for (k, (_, _, expected)) in workloads.iter().enumerate() {
        assert_eq!(&got[k], expected, "session {k} diverged under chaos");
    }
    assert!(drops >= 1, "the probability trigger must have fired");
    let stats = {
        let mut probe = linkage_server::Client::connect(server.addr()).unwrap();
        probe.stats().unwrap()
    };
    assert!(
        stats.evictions >= 1,
        "the budget must have forced evictions"
    );
    server.shutdown().unwrap();
}
