//! End-to-end tests of the linkage server: protocol round trips,
//! admission control, eviction/rehydration transparency, and graceful
//! shutdown with no session lost mid-`FEED`.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use linkage::api::{Pipeline, PipelineConfig};
use linkage::types::{LinkageError, PerSide, Side, SidedRecord};
use linkage_datagen::{generate, DatagenConfig, GeneratedData};
use linkage_server::proto::wire_event;
use linkage_server::proto::WireEvent;
use linkage_server::{
    Client, LinkageServer, RetryClient, RetryPolicy, ServerConfig, SessionManager,
};

/// A fresh scratch directory per call (no `Date::now` games — pid plus
/// a counter is unique enough inside one test process).
fn scratch_dir(tag: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "linkage-server-test-{tag}-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// The session declaration every test uses: datagen's key column, an
/// explicit reference size (sessions cannot infer one).
fn session_config(reference: u64) -> PipelineConfig {
    let mut config = PipelineConfig::default();
    config.keys = PerSide::new(GeneratedData::KEY_COLUMN, GeneratedData::KEY_COLUMN);
    config.reference_size = Some(reference);
    config
}

/// The deterministic feed order used throughout: every parent, then the
/// children in stream order (the symmetric join accepts any interleave;
/// what matters is that server runs and solo runs see the same one).
fn feed_sequence(data: &GeneratedData) -> Vec<SidedRecord> {
    data.parents
        .records()
        .iter()
        .map(|r| SidedRecord::new(Side::Left, r.clone()))
        .chain(
            data.children
                .records()
                .iter()
                .map(|r| SidedRecord::new(Side::Right, r.clone())),
        )
        .collect()
}

/// Ground truth: run the same config over the same feed sequence as a
/// direct in-process session (no server) and collect every event.
fn solo_events(config: &PipelineConfig, sequence: &[SidedRecord]) -> Vec<WireEvent> {
    let (pipeline, input) = Pipeline::builder()
        .config(config.clone())
        .session()
        .unwrap();
    let stream = pipeline.run().unwrap();
    for record in sequence {
        input.push_sided(record.clone()).unwrap();
    }
    input.finish();
    stream
        .map(|event| wire_event(&event.unwrap()))
        .collect::<Vec<_>>()
}

fn start_server(tag: &str, mutate: impl FnOnce(&mut ServerConfig)) -> LinkageServer {
    let mut config = ServerConfig::default();
    config.evict_dir = Some(scratch_dir(tag));
    mutate(&mut config);
    LinkageServer::start(config).unwrap()
}

#[test]
fn server_round_trip_is_bit_identical_to_a_direct_session() {
    let data = generate(&DatagenConfig::mid_stream_dirty(200, 11)).unwrap();
    let config = session_config(data.parents.len() as u64);
    let sequence = feed_sequence(&data);
    let expected = solo_events(&config, &sequence);
    assert!(
        expected.iter().any(|e| matches!(e, WireEvent::Switched(_))),
        "the workload must exercise the mid-stream switch"
    );

    let server = start_server("roundtrip", |_| {});
    let mut client = Client::connect(server.addr()).unwrap();
    let session = client.open(&config).unwrap();

    let mut got = Vec::new();
    for batch in sequence.chunks(64) {
        client.feed(session, batch).unwrap();
        // Interleave polling with feeding: only ready events may come
        // back, and they must be a prefix of the solo sequence.
        got.extend(client.poll(session, 32).unwrap());
    }
    got.extend(client.drain(session, 128).unwrap());
    client.close(session).unwrap();

    assert_eq!(got, expected);

    let stats = client.stats().unwrap();
    assert_eq!(stats.opened, 1);
    assert_eq!(stats.finished, 1);
    assert_eq!(stats.closed, 1);
    assert_eq!(stats.live_sessions, 0);
    assert_eq!(stats.state_bytes, 0, "a drained session frees its bytes");
    assert_eq!(server.shutdown().unwrap(), 0);
}

#[test]
fn eviction_and_rehydration_are_transparent_to_the_client() {
    let data = generate(&DatagenConfig::mid_stream_dirty(120, 23)).unwrap();
    let config = session_config(data.parents.len() as u64);
    let sequence = feed_sequence(&data);
    let expected = solo_events(&config, &sequence);

    // Budget sized so two part-fed sessions fit but a third feed forces
    // the LRU one to disk.
    let bytes: u64 = sequence
        .iter()
        .map(linkage_server::session::record_bytes)
        .sum();
    let server = start_server("evict", |c| c.budget_bytes = bytes + bytes / 2);

    let mut client = Client::connect(server.addr()).unwrap();
    let victim = client.open(&config).unwrap();
    let hog = client.open(&config).unwrap();
    client.feed(victim, &sequence).unwrap();
    // Feeding the hog the same volume overflows the budget; the victim
    // is the LRU idle session and gets evicted.
    client.feed(hog, &sequence).unwrap();
    let stats = client.stats().unwrap();
    assert_eq!(stats.evictions, 1, "the victim must have been evicted");
    assert_eq!(stats.evicted_sessions, 1);

    // Draining the victim transparently rehydrates it, and the event
    // sequence is exactly what an uninterrupted run yields.
    let got = client.drain(victim, 256).unwrap();
    assert_eq!(got, expected);
    let stats = client.stats().unwrap();
    assert_eq!(stats.rehydrations, 1);

    client.close(victim).unwrap();
    client.close(hog).unwrap();
    server.shutdown().unwrap();
}

#[test]
fn closing_an_evicted_session_deletes_its_files() {
    let data = generate(&DatagenConfig::mid_stream_dirty(60, 5)).unwrap();
    let config = session_config(data.parents.len() as u64);
    let sequence = feed_sequence(&data);
    let bytes: u64 = sequence
        .iter()
        .map(linkage_server::session::record_bytes)
        .sum();

    let dir = scratch_dir("close-evicted");
    let server = start_server("unused", |c| {
        c.evict_dir = Some(dir.clone());
        c.budget_bytes = bytes + bytes / 2;
    });
    let mut client = Client::connect(server.addr()).unwrap();
    let victim = client.open(&config).unwrap();
    let hog = client.open(&config).unwrap();
    client.feed(victim, &sequence).unwrap();
    client.feed(hog, &sequence).unwrap();
    assert_eq!(client.stats().unwrap().evicted_sessions, 1);
    assert!(std::fs::read_dir(&dir).unwrap().count() >= 2);

    client.close(victim).unwrap();
    assert_eq!(std::fs::read_dir(&dir).unwrap().count(), 0);
    assert_eq!(client.stats().unwrap().evicted_sessions, 0);
    client.close(hog).unwrap();
    server.shutdown().unwrap();
}

#[test]
fn graceful_shutdown_loses_no_session_mid_feed() {
    let data = generate(&DatagenConfig::mid_stream_dirty(300, 31)).unwrap();
    let config = session_config(data.parents.len() as u64);
    let sequence = feed_sequence(&data);
    let expected = solo_events(&config, &sequence);

    let dir = scratch_dir("graceful");
    let server = start_server("unused", |c| c.evict_dir = Some(dir.clone()));
    let addr = server.addr();
    let mut client = Client::connect(addr).unwrap();
    let session = client.open(&config).unwrap();

    // Feed in small batches from another thread while the main thread
    // shuts the server down.  Each `FEED` is atomic — it is either fully
    // applied and acked, or rejected/cut whole — so the ack count is
    // exactly the persisted prefix.
    let feeder_sequence = sequence.clone();
    let feeder = std::thread::spawn(move || {
        let mut accepted = 0u64;
        for batch in feeder_sequence.chunks(8) {
            match client.feed(session, batch) {
                Ok(ack) => accepted = ack.accepted,
                Err(_) => break, // connection cut by shutdown
            }
        }
        accepted
    });
    let persisted = server.shutdown().unwrap();
    let accepted = feeder.join().unwrap() as usize;
    assert_eq!(persisted, 1, "the in-flight session must be persisted");
    assert!(accepted <= sequence.len());

    // A new process pointed at the same eviction directory adopts the
    // session; feeding the un-acked remainder and draining yields the
    // full solo event sequence — nothing was lost, nothing duplicated.
    let server = start_server("unused", |c| c.evict_dir = Some(dir));
    let mut client = Client::connect(server.addr()).unwrap();
    client.feed(session, &sequence[accepted..]).unwrap();
    let got = client.drain(session, 256).unwrap();
    assert_eq!(got, expected);
    client.close(session).unwrap();
    server.shutdown().unwrap();
}

#[test]
fn open_rejects_bad_configs_and_unknown_sessions_with_typed_errors() {
    let server = start_server("typed-errors", |_| {});
    let mut client = Client::connect(server.addr()).unwrap();

    // A config that fails validation server-side (no reference size)
    // comes back as the BAD_REQUEST family, message intact.
    let config = PipelineConfig::default();
    match client.open(&config) {
        Err(LinkageError::Protocol(m)) => assert!(m.contains("reference_size")),
        other => panic!("expected a protocol error, got {other:?}"),
    }

    // Unknown session ids are typed `UnknownSession` errors (carried as
    // the NO_SUCH_SESSION wire code), not hangs.
    match client.poll(999, 16) {
        Err(LinkageError::UnknownSession(m)) => assert!(m.contains("does not exist")),
        other => panic!("expected an unknown-session error, got {other:?}"),
    }
    server.shutdown().unwrap();
}

#[test]
fn manager_rejects_busy_and_over_budget_with_typed_errors() {
    let data = generate(&DatagenConfig::mid_stream_dirty(40, 3)).unwrap();
    let config = session_config(data.parents.len() as u64);
    let dir = scratch_dir("manager");
    let mut manager = SessionManager::new(2, 4096, dir).unwrap();

    let a = manager.open(config.clone(), config.fingerprint()).unwrap();
    let b = manager.open(config.clone(), config.fingerprint()).unwrap();

    // Both sessions checked out: nothing is idle, so admission of a
    // third is Busy, not an eviction.
    let sa = manager.checkout(a).unwrap();
    let sb = manager.checkout(b).unwrap();
    match manager.open(config.clone(), config.fingerprint()) {
        Err(LinkageError::Busy(_)) => {}
        other => panic!("expected Busy, got {other:?}"),
    }

    // Nothing is idle, so a reservation beyond the budget is OverBudget.
    match manager.reserve_bytes(1 << 20) {
        Err(LinkageError::OverBudget(_)) => {}
        other => panic!("expected OverBudget, got {other:?}"),
    }

    // A checked-out session blocks concurrent checkout (Busy) until it
    // is checked back in.
    match manager.checkout(a) {
        Err(LinkageError::Busy(_)) => {}
        other => panic!("expected Busy, got {other:?}"),
    }
    manager.checkin(sa, 0);
    manager.checkin(sb, 0);
    assert!(manager.checkout(a).is_ok());

    let stats = manager.stats();
    assert!(stats.rejected_busy >= 2);
    assert!(stats.rejected_over_budget >= 1);
}

#[test]
fn retry_client_round_trip_is_bit_identical_on_a_healthy_server() {
    let data = generate(&DatagenConfig::mid_stream_dirty(150, 17)).unwrap();
    let config = session_config(data.parents.len() as u64);
    let sequence = feed_sequence(&data);
    let expected = solo_events(&config, &sequence);

    let server = start_server("retry-happy", |_| {});
    let mut client = RetryClient::connect(server.addr().to_string(), RetryPolicy::default());
    let handle = client.open(&config).unwrap();
    let mut got = Vec::new();
    for batch in sequence.chunks(64) {
        client.feed(handle, batch).unwrap();
        got.extend(client.poll(handle, 32).unwrap());
    }
    got.extend(client.drain(handle, 128).unwrap());
    client.close(handle).unwrap();

    assert_eq!(got, expected);
    assert_eq!(
        client.reconnects(),
        1,
        "one dial, no faults to recover from"
    );
    assert_eq!(client.heals(), 0);
    server.shutdown().unwrap();
}

#[test]
fn a_connection_that_stalls_mid_request_trips_the_server_deadline() {
    use std::io::{Read, Write};
    use std::time::Duration;

    let server = start_server("deadline", |c| {
        c.request_deadline = Duration::from_millis(200);
    });
    let mut raw = std::net::TcpStream::connect(server.addr()).unwrap();
    // Half a frame: a length prefix promising bytes that never arrive.
    raw.write_all(&8u32.to_le_bytes()).unwrap();
    raw.write_all(&[1u8]).unwrap();
    raw.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    let mut buf = [0u8; 16];
    // The server must sever the stalled connection instead of pinning a
    // worker forever: the read observes EOF or a reset, never a reply.
    match raw.read(&mut buf) {
        Ok(0) | Err(_) => {}
        Ok(n) => panic!("expected the connection to be severed, read {n} bytes"),
    }
    // And the worker is free again: a fresh connection is served.
    let mut client = Client::connect(server.addr()).unwrap();
    assert!(client.stats().is_ok());
    server.shutdown().unwrap();
}

#[cfg(unix)]
#[test]
fn sigterm_latches_into_graceful_shutdown() {
    extern "C" {
        fn raise(signum: i32) -> i32;
    }
    const SIGTERM: i32 = 15;

    let server = start_server("sigterm", |c| c.handle_sigterm = true);
    // SAFETY: raising SIGTERM at ourselves; the server installed a
    // handler that latches a flag, so the process does not die.
    unsafe {
        raise(SIGTERM);
    }
    // `wait` observes the latch, drains and returns instead of blocking.
    assert_eq!(server.wait().unwrap(), 0);
    linkage_server::server::sig::reset();
}
