//! Recovery-sweep tests: single-byte corruption of the eviction files,
//! uncommitted pairs, orphaned temporaries, and mixed-up pairs.  None of
//! this needs fault injection — the files are damaged directly on disk —
//! so the suite runs in the default (tier-1) configuration.
//!
//! The contract under test: a [`SessionManager`] pointed at an eviction
//! directory containing damaged bytes must **never panic and never
//! silently adopt** them.  Every defect becomes a typed quarantine with
//! a reason, `CLOSE` discards the remains, and the server stays fully
//! serviceable.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use linkage::api::PipelineConfig;
use linkage::types::snapshot::{crc32, Encoder, SnapshotBuilder};
use linkage::types::{LinkageError, PerSide, Side, SidedRecord};
use linkage_datagen::{generate, DatagenConfig, GeneratedData};
use linkage_server::session::{record_bytes, MANIFEST_KIND};
use linkage_server::SessionManager;

fn scratch_dir(tag: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "linkage-recovery-{tag}-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn session_config(reference: u64) -> PipelineConfig {
    let mut config = PipelineConfig::default();
    config.keys = PerSide::new(GeneratedData::KEY_COLUMN, GeneratedData::KEY_COLUMN);
    config.reference_size = Some(reference);
    config
}

fn feed_sequence(data: &GeneratedData) -> Vec<SidedRecord> {
    data.parents
        .records()
        .iter()
        .map(|r| SidedRecord::new(Side::Left, r.clone()))
        .chain(
            data.children
                .records()
                .iter()
                .map(|r| SidedRecord::new(Side::Right, r.clone())),
        )
        .collect()
}

/// One cleanly evicted session's on-disk trio, captured as bytes so
/// tests can re-rig a directory into the pristine state at will.
struct Trio {
    id: u64,
    snap: Vec<u8>,
    feed: Vec<u8>,
    manifest: Vec<u8>,
}

impl Trio {
    /// Evict one part-fed session and read its three files back.
    fn capture(config: &PipelineConfig, sequence: &[SidedRecord]) -> Self {
        let dir = scratch_dir("trio");
        let mut manager = SessionManager::new(8, u64::MAX, dir.clone()).unwrap();
        let id = manager.open(config.clone(), config.fingerprint()).unwrap();
        let delta: u64 = sequence.iter().map(record_bytes).sum();
        let mut session = manager.checkout(id).unwrap();
        session.feed(sequence.to_vec()).unwrap();
        manager.checkin(session, delta as i64);
        assert_eq!(manager.evict_all().unwrap(), 1);
        let read =
            |suffix: &str| std::fs::read(dir.join(format!("session-{id}.{suffix}"))).unwrap();
        Self {
            id,
            snap: read("snap"),
            feed: read("feed"),
            manifest: read("evict"),
        }
    }

    /// Write the trio into `dir` (pristine unless a mutator damaged the
    /// byte vectors first), wiping any previous quarantine.
    fn rig(&self, dir: &Path, snap: &[u8], feed: &[u8], manifest: &[u8]) {
        let _ = std::fs::remove_dir_all(dir.join("quarantine"));
        std::fs::write(dir.join(format!("session-{}.snap", self.id)), snap).unwrap();
        std::fs::write(dir.join(format!("session-{}.feed", self.id)), feed).unwrap();
        std::fs::write(dir.join(format!("session-{}.evict", self.id)), manifest).unwrap();
    }
}

/// Byte offsets to corrupt: every byte for small files, boundaries plus
/// a stride for large ones.
fn corrupt_offsets(len: usize) -> Vec<usize> {
    if len <= 2048 {
        return (0..len).collect();
    }
    let mut v: Vec<usize> = (0..64).collect();
    let stride = ((len - 128) / 512).max(1);
    let mut x = 64;
    while x < len - 64 {
        v.push(x);
        x += stride;
    }
    v.extend(len - 64..len);
    v
}

/// Flip one byte of the manifest, the sidecar (every offset) or the
/// snapshot (strided): the sweep must quarantine the session with a
/// typed reason — never adopt it, never panic — and `checkout` must
/// answer with a typed [`LinkageError::Quarantined`].
#[test]
fn single_byte_corruption_at_any_offset_is_quarantined_never_adopted() {
    let data = generate(&DatagenConfig::mid_stream_dirty(40, 3)).unwrap();
    let config = session_config(data.parents.len() as u64);
    let sequence = feed_sequence(&data);
    let trio = Trio::capture(&config, &sequence);
    let dir = scratch_dir("flip");

    let files: [(&str, &[u8]); 3] = [
        ("manifest", &trio.manifest),
        ("feed", &trio.feed),
        ("snap", &trio.snap),
    ];
    for (which, pristine) in files {
        for offset in corrupt_offsets(pristine.len()) {
            let mut damaged = pristine.to_vec();
            damaged[offset] ^= 0xA5;
            match which {
                "manifest" => trio.rig(&dir, &trio.snap, &trio.feed, &damaged),
                "feed" => trio.rig(&dir, &trio.snap, &damaged, &trio.manifest),
                _ => trio.rig(&dir, &damaged, &trio.feed, &trio.manifest),
            }
            let mut manager = SessionManager::new(8, u64::MAX, dir.clone()).unwrap();
            assert!(
                manager.recovery().adopted.is_empty(),
                "{which} byte {offset}: corrupt files were adopted"
            );
            assert_eq!(
                manager.recovery().quarantined.len(),
                1,
                "{which} byte {offset}: expected one quarantined session"
            );
            let (qid, reason) = &manager.recovery().quarantined[0];
            assert_eq!(*qid, trio.id);
            assert!(!reason.is_empty());
            match manager.checkout(trio.id) {
                Err(LinkageError::Quarantined(m)) => assert!(m.contains("quarantined")),
                other => panic!("{which} byte {offset}: expected Quarantined, got {other:?}"),
            }
            let stats = manager.stats();
            assert_eq!(stats.quarantined_sessions, 1);
            assert_eq!(stats.evicted_sessions, 0);
        }
    }
}

/// The positive control: an unmodified trio is adopted.
#[test]
fn a_pristine_trio_is_adopted() {
    let data = generate(&DatagenConfig::mid_stream_dirty(40, 3)).unwrap();
    let config = session_config(data.parents.len() as u64);
    let sequence = feed_sequence(&data);
    let trio = Trio::capture(&config, &sequence);
    let dir = scratch_dir("pristine");
    trio.rig(&dir, &trio.snap, &trio.feed, &trio.manifest);
    let manager = SessionManager::new(8, u64::MAX, dir).unwrap();
    assert_eq!(manager.recovery().adopted, vec![trio.id]);
    assert!(manager.recovery().quarantined.is_empty());
}

/// A data pair without its manifest was never committed: quarantined
/// with a reason that says so.
#[test]
fn a_pair_without_a_manifest_is_an_uncommitted_eviction() {
    let data = generate(&DatagenConfig::mid_stream_dirty(40, 3)).unwrap();
    let config = session_config(data.parents.len() as u64);
    let sequence = feed_sequence(&data);
    let trio = Trio::capture(&config, &sequence);
    let dir = scratch_dir("no-manifest");
    trio.rig(&dir, &trio.snap, &trio.feed, &trio.manifest);
    std::fs::remove_file(dir.join(format!("session-{}.evict", trio.id))).unwrap();

    let manager = SessionManager::new(8, u64::MAX, dir.clone()).unwrap();
    assert!(manager.recovery().adopted.is_empty());
    let (qid, reason) = &manager.recovery().quarantined[0];
    assert_eq!(*qid, trio.id);
    assert!(
        reason.contains("never committed"),
        "reason must name the missing commit, got: {reason}"
    );
    // The remains were parked, not deleted: forensics stay possible.
    let qdir = dir.join("quarantine");
    assert!(qdir.join(format!("session-{}.snap", trio.id)).exists());
    assert!(qdir.join(format!("session-{}.feed", trio.id)).exists());
}

/// Orphaned temporaries (a crash mid-write under the old two-file scheme
/// or a torn manifest commit) are swept away and counted.
#[test]
fn orphaned_temporaries_are_swept_and_counted() {
    let data = generate(&DatagenConfig::mid_stream_dirty(40, 3)).unwrap();
    let config = session_config(data.parents.len() as u64);
    let sequence = feed_sequence(&data);
    let trio = Trio::capture(&config, &sequence);
    let dir = scratch_dir("tmp-sweep");
    trio.rig(&dir, &trio.snap, &trio.feed, &trio.manifest);
    std::fs::write(dir.join(format!("session-{}.evict.tmp", trio.id)), b"torn").unwrap();
    std::fs::write(dir.join("session-9.tmp-snapshot"), b"torn").unwrap();

    let manager = SessionManager::new(8, u64::MAX, dir.clone()).unwrap();
    assert_eq!(manager.recovery().removed_tmp_files, 2);
    assert_eq!(manager.recovery().adopted, vec![trio.id]);
    assert!(!dir.join(format!("session-{}.evict.tmp", trio.id)).exists());
    assert!(!dir.join("session-9.tmp-snapshot").exists());
}

/// `CLOSE` on a quarantined session frees the slot *and* deletes the
/// parked remains; afterwards the id is simply unknown.
#[test]
fn close_discards_a_quarantined_session_and_its_parked_files() {
    let data = generate(&DatagenConfig::mid_stream_dirty(40, 3)).unwrap();
    let config = session_config(data.parents.len() as u64);
    let sequence = feed_sequence(&data);
    let trio = Trio::capture(&config, &sequence);
    let dir = scratch_dir("close-quarantined");
    let mut damaged = trio.feed.clone();
    let mid = damaged.len() / 2;
    damaged[mid] ^= 0xFF;
    trio.rig(&dir, &trio.snap, &damaged, &trio.manifest);

    let mut manager = SessionManager::new(8, u64::MAX, dir.clone()).unwrap();
    assert_eq!(manager.recovery().quarantined.len(), 1);
    manager.close(trio.id).unwrap();
    let qdir = dir.join("quarantine");
    for suffix in ["snap", "feed", "evict"] {
        assert!(
            !qdir.join(format!("session-{}.{suffix}", trio.id)).exists(),
            "CLOSE must delete the parked {suffix} file"
        );
    }
    match manager.checkout(trio.id) {
        Err(LinkageError::UnknownSession(_)) => {}
        other => panic!("expected UnknownSession after CLOSE, got {other:?}"),
    }
    assert_eq!(manager.stats().quarantined_sessions, 0);
}

/// A mixed-up pair — session A's snapshot next to session B's sidecar,
/// under a manifest whose lengths and CRCs are all *correct* — passes
/// the sweep (the commit record is self-consistent) but must fail
/// rehydration with a typed error naming both files, then quarantine.
#[test]
fn a_mixed_eviction_pair_fails_rehydration_with_a_typed_cross_check() {
    let data_a = generate(&DatagenConfig::mid_stream_dirty(40, 3)).unwrap();
    let config_a = session_config(data_a.parents.len() as u64);
    let trio_a = Trio::capture(&config_a, &feed_sequence(&data_a));
    let data_b = generate(&DatagenConfig::mid_stream_dirty(60, 5)).unwrap();
    let config_b = session_config(data_b.parents.len() as u64);
    let trio_b = Trio::capture(&config_b, &feed_sequence(&data_b));

    // Franken-pair under a fresh id: A's snapshot, B's sidecar, and a
    // manifest whose length/CRC claims both files genuinely satisfy.
    let id = 9u64;
    let dir = scratch_dir("mixed");
    let mut m = Encoder::new();
    m.put_u64(id);
    m.put_u32(config_b.fingerprint());
    m.put_u64(trio_a.snap.len() as u64);
    m.put_u32(crc32(&trio_a.snap));
    m.put_u64(trio_b.feed.len() as u64);
    m.put_u32(crc32(&trio_b.feed));
    let mut commit = SnapshotBuilder::new();
    commit.push_section(MANIFEST_KIND, m.finish());
    std::fs::write(dir.join(format!("session-{id}.snap")), &trio_a.snap).unwrap();
    std::fs::write(dir.join(format!("session-{id}.feed")), &trio_b.feed).unwrap();
    std::fs::write(dir.join(format!("session-{id}.evict")), commit.to_bytes()).unwrap();

    let mut manager = SessionManager::new(8, u64::MAX, dir.clone()).unwrap();
    assert_eq!(
        manager.recovery().adopted,
        vec![id],
        "a self-consistent manifest passes the sweep"
    );
    match manager.checkout(id) {
        Err(LinkageError::Quarantined(message)) => {
            assert!(message.contains("eviction pair mismatch"), "got: {message}");
            assert!(
                message.contains(&format!("session-{id}.snap"))
                    && message.contains(&format!("session-{id}.feed")),
                "the error must name both files, got: {message}"
            );
        }
        other => panic!("expected the cross-check to fail checkout, got {other:?}"),
    }
    let stats = manager.stats();
    assert_eq!(stats.quarantined_sessions, 1);
    assert_eq!(stats.evicted_sessions, 0);
}
