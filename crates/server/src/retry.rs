//! A self-healing client: retries, reconnects and session rebuilds on
//! top of the plain [`Client`].
//!
//! The [`RetryClient`] owns everything a caller would otherwise
//! hand-roll around a flaky network and a crash-prone server:
//!
//! * **Backoff** — `BUSY` / `OVER_BUDGET` rejections retry with
//!   exponential backoff and bounded, deterministically seeded jitter.
//! * **Reconnect + idempotent FEED resume** — on
//!   [`LinkageError::ConnectionLost`] the client redials and, because a
//!   lost *reply* means the request may or may not have applied, first
//!   sends an **empty** `FEED` (always legal, changes nothing) whose
//!   `FED` reply carries the session's accepted total.  The retry then
//!   sends only `&records[accepted..]`, so a replayed request can never
//!   double-insert.
//! * **Heal** — on [`LinkageError::UnknownSession`] /
//!   [`LinkageError::Quarantined`] (the server restarted without the
//!   session, or quarantined it after a panic or torn eviction files)
//!   the client discards the server-side remains with a best-effort
//!   `CLOSE`, opens a fresh session with the same config, and replays
//!   its journal — the full record sequence it has ever fed.  The match
//!   stream is deterministic (PR 7's bit-identical resume contract is
//!   the same property), so the rebuilt session re-yields every event;
//!   the client discards the prefix it already delivered and the caller
//!   observes one uninterrupted, exactly-once event stream.
//!
//! The journal makes healing possible and costs memory proportional to
//! the fed records; it is dropped when the session closes.  Callers that
//! cannot afford it should use [`Client`] and handle faults themselves.

use std::collections::HashMap;
use std::time::Duration;

use linkage::api::PipelineConfig;
use linkage::types::{LinkageError, Result, SidedRecord};

use crate::client::{Client, FeedAck};
use crate::proto::WireEvent;

/// Retry/backoff tuning for a [`RetryClient`].
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct RetryPolicy {
    /// Give up after this many failed protocol actions for one call.
    pub max_attempts: u32,
    /// First backoff sleep; doubles per consecutive failure.
    pub backoff_base: Duration,
    /// Backoff ceiling (before jitter).
    pub backoff_max: Duration,
    /// Per-exchange socket deadline applied to every connection.
    pub request_deadline: Duration,
    /// Seed of the deterministic jitter stream (jitter adds up to half
    /// of the current backoff step).
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 8,
            backoff_base: Duration::from_millis(2),
            backoff_max: Duration::from_millis(200),
            request_deadline: Duration::from_secs(10),
            jitter_seed: 0x5EED,
        }
    }
}

/// Client-side state of one logical session, enough to rebuild it on a
/// server that has forgotten or poisoned it.
#[derive(Debug)]
struct Tracked {
    config: PipelineConfig,
    /// Server-side id of the current incarnation (valid when `opened`).
    server_id: u64,
    /// Whether a server-side incarnation currently exists.
    opened: bool,
    /// Records the server has confirmed accepted (journal prefix).
    acked: u64,
    /// Whether `FIN` has been acknowledged for the current incarnation.
    fin_acked: bool,
    /// A reply was lost mid-`FEED`: query the accepted total (empty
    /// `FEED`) before sending any more records.
    needs_resync: bool,
    /// Every record ever fed, in order — the replay source for heals.
    journal: Vec<SidedRecord>,
    /// The caller declared the input complete.
    fin: bool,
    /// Events already handed to the caller.
    delivered: u64,
    /// Events to silently discard after a heal (the rebuilt session
    /// re-yields the full stream; the first `skip` are re-deliveries).
    skip: u64,
    /// The caller has seen the `Finished` event.
    done: bool,
}

/// How a failed protocol action should be handled.
enum Recovery {
    /// Redial; resynchronise the accepted total before feeding more.
    Reconnect,
    /// Sleep (backoff + jitter) and retry.
    Backoff,
    /// The server-side session is gone or poisoned: rebuild it.
    Heal,
    /// Not recoverable by retrying.
    Fatal,
}

fn recovery_for(e: &LinkageError) -> Recovery {
    match e {
        LinkageError::ConnectionLost(_) => Recovery::Reconnect,
        LinkageError::Busy(_) | LinkageError::OverBudget(_) => Recovery::Backoff,
        LinkageError::UnknownSession(_) | LinkageError::Quarantined(_) => Recovery::Heal,
        _ => Recovery::Fatal,
    }
}

/// A self-healing connection to a [`LinkageServer`](crate::LinkageServer);
/// see the [module docs](self) for the recovery contract.
///
/// Handles returned by [`open`](Self::open) are client-local and stable
/// across heals (the server-side id may change; the handle never does).
#[derive(Debug)]
pub struct RetryClient {
    addr: String,
    policy: RetryPolicy,
    conn: Option<Client>,
    sessions: HashMap<u64, Tracked>,
    next_handle: u64,
    jitter: u64,
    reconnects: u64,
    heals: u64,
}

impl RetryClient {
    /// Create a client for `addr`.  No I/O happens here; the first
    /// request dials (and redials whenever the connection is lost).
    pub fn connect(addr: impl Into<String>, policy: RetryPolicy) -> Self {
        let jitter = if policy.jitter_seed == 0 {
            0x9E37_79B9_7F4A_7C15
        } else {
            policy.jitter_seed
        };
        Self {
            addr: addr.into(),
            policy,
            conn: None,
            sessions: HashMap::new(),
            next_handle: 1,
            jitter,
            reconnects: 0,
            heals: 0,
        }
    }

    /// Times a connection was (re)established.
    pub fn reconnects(&self) -> u64 {
        self.reconnects
    }

    /// Times a session was rebuilt from its journal.
    pub fn heals(&self) -> u64 {
        self.heals
    }

    fn dial(&mut self) -> Result<()> {
        let mut client = Client::connect(self.addr.as_str())
            .map_err(|e| LinkageError::connection_lost(format!("dial {}: {e}", self.addr)))?;
        client
            .set_deadline(Some(self.policy.request_deadline))
            .map_err(|e| LinkageError::connection_lost(e.to_string()))?;
        self.conn = Some(client);
        self.reconnects += 1;
        Ok(())
    }

    fn backoff(&mut self, consecutive_failures: u32) {
        let base = self.policy.backoff_base.as_nanos() as u64;
        let step = base
            .saturating_mul(1u64 << consecutive_failures.min(16))
            .min(self.policy.backoff_max.as_nanos() as u64);
        self.jitter ^= self.jitter << 13;
        self.jitter ^= self.jitter >> 7;
        self.jitter ^= self.jitter << 17;
        let jitter = if step == 0 {
            0
        } else {
            self.jitter % (step / 2 + 1)
        };
        std::thread::sleep(Duration::from_nanos(step + jitter));
    }

    fn tracked(&self, handle: u64) -> Result<&Tracked> {
        self.sessions
            .get(&handle)
            .ok_or_else(|| LinkageError::protocol(format!("unknown RetryClient handle {handle}")))
    }

    /// Mark `handle` for a rebuild and best-effort discard the old
    /// server-side incarnation (freeing quarantined remains).
    fn mark_for_heal(&mut self, handle: u64) {
        let Some(t) = self.sessions.get_mut(&handle) else {
            return;
        };
        let old_id = t.server_id;
        let was_opened = t.opened;
        t.opened = false;
        t.acked = 0;
        t.fin_acked = false;
        t.needs_resync = false;
        t.skip = t.delivered;
        self.heals += 1;
        if was_opened {
            if let Some(conn) = self.conn.as_mut() {
                if let Err(LinkageError::ConnectionLost(_)) = conn.close(old_id) {
                    self.conn = None;
                }
            }
        }
    }

    /// Drive `handle` to a synchronised state: connected, opened, the
    /// accepted total known, the whole journal fed, and `FIN` re-sent if
    /// the caller declared it.  One protocol action per iteration;
    /// every action either makes progress or consumes one failure from
    /// the attempt budget.
    fn sync(&mut self, handle: u64) -> Result<FeedAck> {
        enum Action {
            Open(Box<PipelineConfig>),
            Resync(u64),
            Feed(u64, Vec<SidedRecord>),
            Fin(u64),
            Done,
        }

        let mut failures = 0u32;
        let mut last_ack: Option<FeedAck> = None;
        let mut last_err = LinkageError::execution("retry: no attempt ran");
        loop {
            if failures >= self.policy.max_attempts.max(1) {
                return Err(last_err);
            }
            if self.conn.is_none() {
                if let Err(e) = self.dial() {
                    last_err = e;
                    failures += 1;
                    self.backoff(failures);
                    continue;
                }
            }
            let action = {
                let t = self.tracked(handle)?;
                if !t.opened {
                    Action::Open(Box::new(t.config.clone()))
                } else if t.needs_resync {
                    Action::Resync(t.server_id)
                } else if t.acked < t.journal.len() as u64 {
                    Action::Feed(t.server_id, t.journal[t.acked as usize..].to_vec())
                } else if t.fin && !t.fin_acked {
                    Action::Fin(t.server_id)
                } else {
                    Action::Done
                }
            };
            let Some(conn) = self.conn.as_mut() else {
                continue;
            };
            let outcome: Result<()> = match action {
                Action::Done => {
                    let t = self.tracked(handle)?;
                    return Ok(last_ack.unwrap_or(FeedAck {
                        accepted: t.acked,
                        state_bytes: 0,
                    }));
                }
                Action::Open(config) => match conn.open(&config) {
                    Ok(server_id) => {
                        let t = self.sessions.get_mut(&handle).ok_or_else(|| {
                            LinkageError::protocol(format!("unknown RetryClient handle {handle}"))
                        })?;
                        t.server_id = server_id;
                        t.opened = true;
                        Ok(())
                    }
                    Err(e) => Err(e),
                },
                Action::Resync(server_id) => match conn.feed(server_id, &[]) {
                    Ok(ack) => {
                        let t = self.sessions.get_mut(&handle).ok_or_else(|| {
                            LinkageError::protocol(format!("unknown RetryClient handle {handle}"))
                        })?;
                        t.acked = ack.accepted;
                        t.needs_resync = false;
                        last_ack = Some(ack);
                        Ok(())
                    }
                    Err(e) => Err(e),
                },
                Action::Feed(server_id, chunk) => {
                    let sent = chunk.len() as u64;
                    match conn.feed(server_id, &chunk) {
                        Ok(ack) => {
                            let t = self.sessions.get_mut(&handle).ok_or_else(|| {
                                LinkageError::protocol(format!(
                                    "unknown RetryClient handle {handle}"
                                ))
                            })?;
                            if ack.accepted < t.acked + sent {
                                return Err(LinkageError::protocol(format!(
                                    "server acked {} records after a feed of {sent} on top \
                                     of {} — a batch was lost server-side",
                                    ack.accepted, t.acked
                                )));
                            }
                            t.acked = ack.accepted;
                            last_ack = Some(ack);
                            Ok(())
                        }
                        Err(e) => Err(e),
                    }
                }
                Action::Fin(server_id) => match conn.finish(server_id) {
                    Ok(ack) => {
                        let t = self.sessions.get_mut(&handle).ok_or_else(|| {
                            LinkageError::protocol(format!("unknown RetryClient handle {handle}"))
                        })?;
                        t.fin_acked = true;
                        last_ack = Some(ack);
                        Ok(())
                    }
                    Err(e) => Err(e),
                },
            };
            if let Err(e) = outcome {
                failures += 1;
                match recovery_for(&e) {
                    Recovery::Reconnect => {
                        self.conn = None;
                        // The lost reply may have carried an ack: learn
                        // the true accepted total before feeding more.
                        if let Some(t) = self.sessions.get_mut(&handle) {
                            if t.opened {
                                t.needs_resync = true;
                            }
                        }
                    }
                    Recovery::Backoff => self.backoff(failures),
                    Recovery::Heal => self.mark_for_heal(handle),
                    Recovery::Fatal => return Err(e),
                }
                last_err = e;
            }
        }
    }

    /// Open a logical session running `config`; returns a client-local
    /// handle that stays valid across reconnects and heals.
    pub fn open(&mut self, config: &PipelineConfig) -> Result<u64> {
        let handle = self.next_handle;
        self.next_handle += 1;
        self.sessions.insert(
            handle,
            Tracked {
                config: config.clone(),
                server_id: 0,
                opened: false,
                acked: 0,
                fin_acked: false,
                needs_resync: false,
                journal: Vec::new(),
                fin: false,
                delivered: 0,
                skip: 0,
                done: false,
            },
        );
        match self.sync(handle) {
            Ok(_) => Ok(handle),
            Err(e) => {
                self.sessions.remove(&handle);
                Err(e)
            }
        }
    }

    /// Feed a batch of records, retrying/resuming as needed.  The ack's
    /// `accepted` counts this client's journal, exactly-once.
    pub fn feed(&mut self, handle: u64, records: &[SidedRecord]) -> Result<FeedAck> {
        let t = self.sessions.get_mut(&handle).ok_or_else(|| {
            LinkageError::protocol(format!("unknown RetryClient handle {handle}"))
        })?;
        if t.fin && !records.is_empty() {
            return Err(LinkageError::protocol(
                "FEED after FIN: the session input is complete",
            ));
        }
        t.journal.extend_from_slice(records);
        self.sync(handle)
    }

    /// Declare the input complete (idempotent; re-sent after heals).
    pub fn finish(&mut self, handle: u64) -> Result<FeedAck> {
        let t = self.sessions.get_mut(&handle).ok_or_else(|| {
            LinkageError::protocol(format!("unknown RetryClient handle {handle}"))
        })?;
        t.fin = true;
        self.sync(handle)
    }

    /// Fetch up to `max` new events.  After a heal the rebuilt session
    /// re-yields the full stream; the already-delivered prefix is
    /// discarded here, so the caller never sees a duplicate.
    pub fn poll(&mut self, handle: u64, max: u32) -> Result<Vec<WireEvent>> {
        let mut failures = 0u32;
        let mut last_err = LinkageError::execution("retry: no attempt ran");
        loop {
            if failures >= self.policy.max_attempts.max(1) {
                return Err(last_err);
            }
            // A poll is only sound against a synchronised session (all
            // journal records fed, FIN re-sent after any heal).
            self.sync(handle)?;
            if self.tracked(handle)?.done {
                return Ok(Vec::new());
            }
            let (server_id, skip) = {
                let t = self.tracked(handle)?;
                (t.server_id, t.skip)
            };
            let want = skip.saturating_add(u64::from(max)).min(u32::MAX as u64) as u32;
            let Some(conn) = self.conn.as_mut() else {
                continue;
            };
            match conn.poll(server_id, want) {
                Ok(events) => {
                    let t = self.sessions.get_mut(&handle).ok_or_else(|| {
                        LinkageError::protocol(format!("unknown RetryClient handle {handle}"))
                    })?;
                    let skipped = (t.skip as usize).min(events.len());
                    t.skip -= skipped as u64;
                    let fresh: Vec<WireEvent> = events[skipped..].to_vec();
                    t.delivered += fresh.len() as u64;
                    if fresh.iter().any(|e| matches!(e, WireEvent::Finished(_))) {
                        t.done = true;
                    }
                    if fresh.is_empty() && skipped > 0 {
                        // The whole batch was re-delivery; keep burning
                        // the skip prefix before returning to the caller.
                        continue;
                    }
                    return Ok(fresh);
                }
                Err(e) => {
                    failures += 1;
                    match recovery_for(&e) {
                        Recovery::Reconnect => {
                            // The lost reply may have consumed events
                            // server-side; the only sound recovery is a
                            // full rebuild, replaying from the journal
                            // and skipping what was already delivered.
                            self.conn = None;
                            self.mark_for_heal(handle);
                        }
                        Recovery::Backoff => self.backoff(failures),
                        Recovery::Heal => self.mark_for_heal(handle),
                        Recovery::Fatal => return Err(e),
                    }
                    last_err = e;
                }
            }
        }
    }

    /// [`finish`](Self::finish) then [`poll`](Self::poll) until the
    /// `Finished` event arrives; returns every *new* event in order
    /// (`Finished` last), exactly-once across any number of faults.
    pub fn drain(&mut self, handle: u64, batch: u32) -> Result<Vec<WireEvent>> {
        self.finish(handle)?;
        let mut events = Vec::new();
        loop {
            let polled = self.poll(handle, batch.max(1))?;
            if self.tracked(handle)?.done {
                events.extend(polled);
                return Ok(events);
            }
            if polled.is_empty() {
                return Err(LinkageError::protocol(format!(
                    "session handle {handle} stopped yielding events before Finished — \
                     was it already drained?"
                )));
            }
            events.extend(polled);
        }
    }

    /// Close the logical session and drop its journal.  Succeeds even
    /// if the server already lost the session (there is nothing left to
    /// close) — but not on `Busy`-style contention, which retries.
    pub fn close(&mut self, handle: u64) -> Result<()> {
        let Some(t) = self.sessions.remove(&handle) else {
            return Err(LinkageError::protocol(format!(
                "unknown RetryClient handle {handle}"
            )));
        };
        if !t.opened {
            return Ok(());
        }
        let server_id = t.server_id;
        let mut failures = 0u32;
        let mut last_err = LinkageError::execution("retry: no attempt ran");
        loop {
            if failures >= self.policy.max_attempts.max(1) {
                return Err(last_err);
            }
            if self.conn.is_none() {
                if let Err(e) = self.dial() {
                    last_err = e;
                    failures += 1;
                    self.backoff(failures);
                    continue;
                }
            }
            let Some(conn) = self.conn.as_mut() else {
                continue;
            };
            match conn.close(server_id) {
                Ok(())
                | Err(LinkageError::UnknownSession(_))
                | Err(LinkageError::Quarantined(_)) => return Ok(()),
                Err(e) => {
                    failures += 1;
                    match recovery_for(&e) {
                        Recovery::Reconnect => self.conn = None,
                        Recovery::Backoff => self.backoff(failures),
                        // Heal handled above; anything else is fatal.
                        Recovery::Heal | Recovery::Fatal => return Err(e),
                    }
                    last_err = e;
                }
            }
        }
    }
}
