//! Sessions and the [`SessionManager`]: per-session byte accounting, a
//! global state-bytes budget, LRU eviction of idle sessions to disk and
//! transparent rehydration.
//!
//! A **session** wraps an incrementally fed [`Pipeline`] (serial or
//! sharded — the manager only sees the boxed engine behind a
//! [`MatchStream`]) plus the feed log the pipeline has been given so
//! far.  The log is what makes eviction possible: the engine state goes
//! to disk via [`MatchStream::snapshot`] (PR 7's bit-identical-resume
//! contract), and the log goes to a sidecar file so rehydration can
//! rebuild the session input, replay the log into it, and let
//! [`Pipeline::resume`] fast-forward past the consumed prefix.  The
//! rehydrated stream then yields exactly the events the evicted session
//! had not yet delivered.
//!
//! Admission control: the manager enforces a live-session cap and a
//! global state-bytes budget.  Both are relieved by evicting the least
//! recently used *idle* session (not checked out by a worker, not yet
//! finished); when nothing can be evicted the request is rejected with
//! a typed [`LinkageError::Busy`] / [`LinkageError::OverBudget`].

use std::collections::HashMap;
use std::path::{Path, PathBuf};

use linkage::api::{MatchEvent, MatchStream, Pipeline, PipelineConfig, SessionInput};
use linkage::types::snapshot::{Decoder, Encoder, SnapshotBuilder, SnapshotFile};
use linkage::types::wire::{get_sided_record, put_sided_record};
use linkage::types::{LinkageError, Result, SidedRecord};

use crate::proto::{wire_event, WireEvent};

/// Section kind of the eviction sidecar's metadata payload (config,
/// fingerprint, input-finished flag, pushed count).  Outside the
/// snapshot container's own `1..=8` registry on purpose: the sidecar is
/// a separate file reusing the same container format.
pub const FEED_META_KIND: u32 = 64;

/// Section kind of the eviction sidecar's feed log (the full sequence
/// of records ever pushed into the session, in push order).
pub const FEED_LOG_KIND: u32 = 65;

/// Estimated resident bytes of one fed record: values plus per-record
/// bookkeeping.  The currency of the admission budget — deliberately an
/// estimate; the budget bounds magnitude, not exact allocation.
pub fn record_bytes(record: &SidedRecord) -> u64 {
    let values: usize = record
        .record
        .values
        .iter()
        .map(|v| match v {
            linkage::types::Value::Str(s) => s.len() + 16,
            _ => 16,
        })
        .sum();
    32 + values as u64
}

/// One live linkage session.
pub struct Session {
    id: u64,
    config: PipelineConfig,
    fingerprint: u32,
    stream: MatchStream,
    input: SessionInput,
    /// Every record ever pushed, in push order — retained until the
    /// session finishes so eviction can persist it for resume.
    log: Vec<SidedRecord>,
    log_bytes: u64,
    /// `FIN` received: the input is complete.
    fin: bool,
    /// The `Finished` event was delivered; the session is drained.
    done: bool,
    /// `done` has been folded into the manager's `finished` counter.
    done_counted: bool,
    last_touch: u64,
}

impl std::fmt::Debug for Session {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Session")
            .field("id", &self.id)
            .field("fingerprint", &self.fingerprint)
            .field("fed", &self.input.pushed())
            .field("fin", &self.fin)
            .field("done", &self.done)
            .finish_non_exhaustive()
    }
}

impl Session {
    fn build(id: u64, config: PipelineConfig, fingerprint: u32) -> Result<Self> {
        let (pipeline, input) = Pipeline::builder().config(config.clone()).session()?;
        let stream = pipeline.run()?;
        Ok(Self {
            id,
            config,
            fingerprint,
            stream,
            input,
            log: Vec::new(),
            log_bytes: 0,
            fin: false,
            done: false,
            done_counted: false,
            last_touch: 0,
        })
    }

    /// This session's id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The configuration fingerprint declared at `OPEN`.
    pub fn fingerprint(&self) -> u32 {
        self.fingerprint
    }

    /// Estimated resident bytes this session holds against the budget.
    pub fn state_bytes(&self) -> u64 {
        self.log_bytes
    }

    /// Total records fed so far.
    pub fn fed(&self) -> u64 {
        self.input.pushed()
    }

    /// Whether the input was declared complete.
    pub fn is_fin(&self) -> bool {
        self.fin
    }

    /// Whether the final `Finished` event was delivered.
    pub fn is_done(&self) -> bool {
        self.done
    }

    /// True exactly once, the first time this is called after the
    /// session finished — so the manager's `finished` counter counts
    /// sessions, not check-ins.
    fn freshly_done(&mut self) -> bool {
        if self.done && !self.done_counted {
            self.done_counted = true;
            true
        } else {
            false
        }
    }

    /// Append a batch of records to the session's input and advance the
    /// engine over the newly available prefix.  Returns the bytes the
    /// batch added to the session's accounting.
    pub fn feed(&mut self, records: Vec<SidedRecord>) -> Result<u64> {
        if self.fin {
            return Err(LinkageError::protocol(
                "FEED after FIN: the session input is complete",
            ));
        }
        let mut added = 0u64;
        for record in records {
            added += record_bytes(&record);
            self.input.push_sided(record.clone())?;
            self.log.push(record);
        }
        self.log_bytes += added;
        self.stream.advance(self.input.pushed())?;
        Ok(added)
    }

    /// Declare the input complete.  The remaining events (through
    /// `Finished`) become drainable via [`Self::poll`].
    pub fn fin(&mut self) {
        if !self.fin {
            self.input.finish();
            self.fin = true;
        }
    }

    /// Drain up to `max` ready events.  Before `FIN` only events that
    /// need no further input are returned; after `FIN` the stream drains
    /// to its `Finished` event, which frees the feed log.  Returns the
    /// events plus the bytes released (nonzero only when the session
    /// finishes).
    pub fn poll(&mut self, max: usize) -> Result<(Vec<WireEvent>, u64)> {
        let mut events = Vec::new();
        let mut released = 0u64;
        while events.len() < max && !self.done {
            let next = if self.fin {
                self.stream.next()
            } else {
                match self.stream.next_ready() {
                    Some(event) => Some(event),
                    None => break,
                }
            };
            match next {
                Some(Ok(event)) => {
                    if matches!(event, MatchEvent::Finished(_)) {
                        self.done = true;
                        released = self.log_bytes;
                        self.log_bytes = 0;
                        self.log = Vec::new();
                    }
                    events.push(wire_event(&event));
                }
                Some(Err(e)) => return Err(e),
                None => break,
            }
        }
        Ok((events, released))
    }

    /// Persist this session to `snap_path` (engine + stream, via
    /// [`MatchStream::snapshot`]) and `feed_path` (config + feed log
    /// sidecar), consuming it.  Only unfinished sessions are evictable.
    pub fn evict_to(mut self, snap_path: &Path, feed_path: &Path) -> Result<()> {
        if self.done {
            return Err(LinkageError::snapshot(
                "a finished session has nothing to evict",
            ));
        }
        self.stream.snapshot(snap_path)?;
        let mut builder = SnapshotBuilder::new();
        let mut meta = Encoder::new();
        crate::proto::encode_config(&mut meta, &self.config);
        meta.put_u32(self.fingerprint);
        meta.put_bool(self.fin);
        meta.put_u64(self.input.pushed());
        builder.push_section(FEED_META_KIND, meta.finish());
        let mut log = Encoder::new();
        log.put_u32(self.log.len() as u32);
        for record in &self.log {
            put_sided_record(&mut log, record);
        }
        builder.push_section(FEED_LOG_KIND, log.finish());
        if let Err(e) = builder.write_to(feed_path) {
            // Never leave a half-pair behind: the snapshot without its
            // sidecar (or vice versa) is unusable.
            let _ = std::fs::remove_file(snap_path);
            return Err(e);
        }
        Ok(())
    }

    /// Rebuild a session from the files written by [`Self::evict_to`]:
    /// re-declare the pipeline from the sidecar's config, replay the
    /// feed log into a fresh session input, and let [`Pipeline::resume`]
    /// fast-forward the engine past the consumed prefix.  The files are
    /// removed on success.
    pub fn rehydrate(id: u64, snap_path: &Path, feed_path: &Path) -> Result<Self> {
        let sidecar = SnapshotFile::read_from(feed_path)?;
        let mut meta = Decoder::new(sidecar.section(FEED_META_KIND)?, "FEED_META");
        let config = crate::proto::decode_config(&mut meta)?;
        let fingerprint = meta.get_u32()?;
        let fin = meta.get_bool()?;
        let pushed = meta.get_u64()?;
        meta.finish()?;
        let mut log_dec = Decoder::new(sidecar.section(FEED_LOG_KIND)?, "FEED_LOG");
        let count = log_dec.get_u32()? as usize;
        let mut log = Vec::with_capacity(count);
        for _ in 0..count {
            log.push(get_sided_record(&mut log_dec)?);
        }
        log_dec.finish()?;
        if pushed != log.len() as u64 {
            return Err(LinkageError::snapshot(format!(
                "feed sidecar of session {id} claims {pushed} pushed records but logs {}",
                log.len()
            )));
        }

        let (pipeline, input) = Pipeline::builder().config(config.clone()).session()?;
        let mut log_bytes = 0u64;
        for record in &log {
            log_bytes += record_bytes(record);
            input.push_sided(record.clone())?;
        }
        if fin {
            input.finish();
        }
        let stream = pipeline.resume(snap_path)?;
        std::fs::remove_file(snap_path)?;
        std::fs::remove_file(feed_path)?;
        Ok(Self {
            id,
            config,
            fingerprint,
            stream,
            input,
            log,
            log_bytes,
            fin,
            done: false,
            done_counted: false,
            last_touch: 0,
        })
    }
}

/// A session's slot in the manager's table.
enum Slot {
    /// In memory, idle.
    Live(Box<Session>),
    /// Checked out by a worker processing a request.
    Taken,
    /// On disk under the eviction directory.
    Evicted,
}

/// Counters the `STATS` request reports (plus the budget configuration,
/// so a client can see the admission envelope it is playing against).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
#[non_exhaustive]
pub struct ServerStats {
    /// Sessions currently in memory (idle or checked out).
    pub live_sessions: u64,
    /// Sessions currently evicted to disk.
    pub evicted_sessions: u64,
    /// Sessions ever opened.
    pub opened: u64,
    /// Sessions that delivered their `Finished` event.
    pub finished: u64,
    /// Sessions explicitly closed.
    pub closed: u64,
    /// Idle sessions evicted to disk (lifetime count).
    pub evictions: u64,
    /// Evicted sessions rehydrated on access (lifetime count).
    pub rehydrations: u64,
    /// Requests rejected with `BUSY`.
    pub rejected_busy: u64,
    /// Requests rejected with `OVER_BUDGET`.
    pub rejected_over_budget: u64,
    /// Estimated resident session bytes right now.
    pub state_bytes: u64,
    /// The configured state-bytes budget.
    pub budget_bytes: u64,
    /// The configured live-session cap.
    pub max_sessions: u64,
}

impl ServerStats {
    /// Encode as the `STATS` reply payload (twelve `u64`s, field
    /// order).
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Encoder::new();
        for v in [
            self.live_sessions,
            self.evicted_sessions,
            self.opened,
            self.finished,
            self.closed,
            self.evictions,
            self.rehydrations,
            self.rejected_busy,
            self.rejected_over_budget,
            self.state_bytes,
            self.budget_bytes,
            self.max_sessions,
        ] {
            e.put_u64(v);
        }
        e.finish()
    }

    /// Decode a `STATS` reply payload.
    pub fn decode(payload: &[u8]) -> Result<Self> {
        let mut d = Decoder::new(payload, "STATS");
        let stats = Self {
            live_sessions: d.get_u64()?,
            evicted_sessions: d.get_u64()?,
            opened: d.get_u64()?,
            finished: d.get_u64()?,
            closed: d.get_u64()?,
            evictions: d.get_u64()?,
            rehydrations: d.get_u64()?,
            rejected_busy: d.get_u64()?,
            rejected_over_budget: d.get_u64()?,
            state_bytes: d.get_u64()?,
            budget_bytes: d.get_u64()?,
            max_sessions: d.get_u64()?,
        };
        d.finish()?;
        Ok(stats)
    }
}

/// The session table: slots, accounting, admission and eviction.
///
/// One instance lives behind a mutex in the server; workers check
/// sessions *out* for the duration of a request (so feeding one session
/// never blocks requests on another) and check them back in with the
/// accounting delta.
pub struct SessionManager {
    slots: HashMap<u64, Slot>,
    next_id: u64,
    clock: u64,
    state_bytes: u64,
    max_sessions: usize,
    budget_bytes: u64,
    evict_dir: PathBuf,
    stats: ServerStats,
}

impl SessionManager {
    /// An empty table with the given admission envelope.  Scans
    /// `evict_dir` for sessions a previous process left behind (graceful
    /// shutdown persists unfinished sessions there) and registers them
    /// as evicted, so they rehydrate transparently on first touch.
    pub fn new(max_sessions: usize, budget_bytes: u64, evict_dir: PathBuf) -> Result<Self> {
        std::fs::create_dir_all(&evict_dir)?;
        let mut slots = HashMap::new();
        let mut next_id = 1;
        let mut evicted = 0;
        for entry in std::fs::read_dir(&evict_dir)? {
            let name = entry?.file_name();
            let name = name.to_string_lossy();
            if let Some(id) = name
                .strip_prefix("session-")
                .and_then(|s| s.strip_suffix(".snap"))
                .and_then(|s| s.parse::<u64>().ok())
            {
                slots.insert(id, Slot::Evicted);
                next_id = next_id.max(id + 1);
                evicted += 1;
            }
        }
        let mut manager = Self {
            slots,
            next_id,
            clock: 0,
            state_bytes: 0,
            max_sessions: max_sessions.max(1),
            budget_bytes,
            evict_dir,
            stats: ServerStats::default(),
        };
        manager.stats.evicted_sessions = evicted;
        Ok(manager)
    }

    fn snap_path(&self, id: u64) -> PathBuf {
        self.evict_dir.join(format!("session-{id}.snap"))
    }

    fn feed_path(&self, id: u64) -> PathBuf {
        self.evict_dir.join(format!("session-{id}.feed"))
    }

    fn tick(&mut self) -> u64 {
        self.clock += 1;
        self.clock
    }

    fn live_count(&self) -> usize {
        self.slots
            .iter()
            .filter(|(_, s)| matches!(s, Slot::Live(_) | Slot::Taken))
            .count()
    }

    /// The least recently used idle (live, unfinished) session, if any.
    fn lru_idle(&self) -> Option<u64> {
        self.slots
            .iter()
            .filter_map(|(id, slot)| match slot {
                Slot::Live(s) if !s.is_done() => Some((*id, s.last_touch)),
                _ => None,
            })
            .min_by_key(|(_, touch)| *touch)
            .map(|(id, _)| id)
    }

    /// Evict the LRU idle session to disk.  `Ok(false)` when nothing is
    /// evictable.
    fn evict_one(&mut self) -> Result<bool> {
        let Some(id) = self.lru_idle() else {
            return Ok(false);
        };
        let Some(Slot::Live(session)) = self.slots.remove(&id) else {
            unreachable!("lru_idle returned a non-live slot");
        };
        let bytes = session.state_bytes();
        session.evict_to(&self.snap_path(id), &self.feed_path(id))?;
        self.slots.insert(id, Slot::Evicted);
        self.state_bytes = self.state_bytes.saturating_sub(bytes);
        self.stats.evictions += 1;
        self.stats.evicted_sessions += 1;
        self.stats.live_sessions = self.stats.live_sessions.saturating_sub(1);
        Ok(true)
    }

    /// Make room for `incoming` more bytes, evicting idle sessions LRU
    /// first; typed [`LinkageError::OverBudget`] when the budget cannot
    /// be met.
    pub fn reserve_bytes(&mut self, incoming: u64) -> Result<()> {
        while self.state_bytes + incoming > self.budget_bytes {
            if !self.evict_one()? {
                self.stats.rejected_over_budget += 1;
                return Err(LinkageError::over_budget(format!(
                    "{incoming} incoming bytes would exceed the {} byte budget \
                     ({} resident, nothing idle to evict)",
                    self.budget_bytes, self.state_bytes
                )));
            }
        }
        Ok(())
    }

    /// Admit a new session.  Typed [`LinkageError::Busy`] when the live
    /// cap is reached and nothing idle can be evicted.
    pub fn open(&mut self, config: PipelineConfig, fingerprint: u32) -> Result<u64> {
        let declared = config.fingerprint();
        if declared != fingerprint {
            return Err(LinkageError::protocol(format!(
                "config fingerprint mismatch: client sent {fingerprint:#010x}, decoded \
                 config fingerprints as {declared:#010x} — client and server disagree \
                 about the config codec"
            )));
        }
        while self.live_count() >= self.max_sessions {
            if !self.evict_one()? {
                self.stats.rejected_busy += 1;
                return Err(LinkageError::busy(format!(
                    "session table full ({} live, cap {})",
                    self.live_count(),
                    self.max_sessions
                )));
            }
        }
        let id = self.next_id;
        self.next_id += 1;
        let mut session = Session::build(id, config, fingerprint)?;
        session.last_touch = self.tick();
        self.slots.insert(id, Slot::Live(Box::new(session)));
        self.stats.opened += 1;
        self.stats.live_sessions += 1;
        Ok(id)
    }

    /// Check a session out for the duration of a request, rehydrating it
    /// from disk if it was evicted.  While checked out, other requests
    /// for the same session are rejected `Busy`.
    pub fn checkout(&mut self, id: u64) -> Result<Box<Session>> {
        match self.slots.get(&id) {
            None => Err(LinkageError::protocol(format!("no such session: {id}"))),
            Some(Slot::Taken) => {
                self.stats.rejected_busy += 1;
                Err(LinkageError::busy(format!(
                    "session {id} is processing another request"
                )))
            }
            Some(Slot::Evicted) => {
                let session = Session::rehydrate(id, &self.snap_path(id), &self.feed_path(id))?;
                let bytes = session.state_bytes();
                self.stats.evicted_sessions = self.stats.evicted_sessions.saturating_sub(1);
                self.stats.rehydrations += 1;
                self.stats.live_sessions += 1;
                self.slots.insert(id, Slot::Taken);
                // The rehydrated bytes count against the budget again;
                // evict others if the table meanwhile filled up.
                self.state_bytes += bytes;
                while self.state_bytes > self.budget_bytes && self.evict_one()? {}
                Ok(Box::new(session))
            }
            Some(Slot::Live(_)) => {
                let Some(Slot::Live(mut session)) = self.slots.insert(id, Slot::Taken) else {
                    unreachable!("slot changed under the lock");
                };
                session.last_touch = self.tick();
                Ok(session)
            }
        }
    }

    /// Return a checked-out session, folding `delta` bytes into the
    /// accounting (positive after a feed, negative after a finish).
    pub fn checkin(&mut self, mut session: Box<Session>, delta: i64) {
        let id = session.id();
        session.last_touch = self.tick();
        if session.freshly_done() {
            self.stats.finished += 1;
        }
        self.state_bytes = if delta >= 0 {
            self.state_bytes + delta as u64
        } else {
            self.state_bytes.saturating_sub((-delta) as u64)
        };
        self.slots.insert(id, Slot::Live(session));
    }

    /// Drop a checked-out session that errored mid-request: its engine
    /// state is unusable, so the slot is released rather than checked
    /// back in.
    pub fn discard(&mut self, session: Box<Session>) {
        let bytes = session.state_bytes();
        self.slots.remove(&session.id());
        self.state_bytes = self.state_bytes.saturating_sub(bytes);
        self.stats.closed += 1;
        self.stats.live_sessions = self.stats.live_sessions.saturating_sub(1);
    }

    /// The `CLOSE` request: drop the session wherever it lives.  An
    /// evicted session is closed by deleting its files — no pointless
    /// rehydration.
    pub fn close(&mut self, id: u64) -> Result<()> {
        match self.slots.get(&id) {
            None => Err(LinkageError::protocol(format!("no such session: {id}"))),
            Some(Slot::Taken) => {
                self.stats.rejected_busy += 1;
                Err(LinkageError::busy(format!(
                    "session {id} is processing another request"
                )))
            }
            Some(Slot::Evicted) => {
                self.slots.remove(&id);
                std::fs::remove_file(self.snap_path(id))?;
                std::fs::remove_file(self.feed_path(id))?;
                self.stats.closed += 1;
                self.stats.evicted_sessions = self.stats.evicted_sessions.saturating_sub(1);
                Ok(())
            }
            Some(Slot::Live(_)) => {
                let Some(Slot::Live(session)) = self.slots.remove(&id) else {
                    unreachable!("slot changed under the lock");
                };
                self.state_bytes = self.state_bytes.saturating_sub(session.state_bytes());
                self.stats.closed += 1;
                self.stats.live_sessions = self.stats.live_sessions.saturating_sub(1);
                Ok(())
            }
        }
    }

    /// Count a `Busy` rejection raised outside the manager (accept
    /// queue, shutdown gate).
    pub fn count_busy(&mut self) {
        self.stats.rejected_busy += 1;
    }

    /// Snapshot every live unfinished session to the eviction directory
    /// (graceful shutdown).  Returns how many were persisted.
    pub fn evict_all(&mut self) -> Result<usize> {
        let mut persisted = 0;
        while self.lru_idle().is_some() {
            self.evict_one()?;
            persisted += 1;
        }
        Ok(persisted)
    }

    /// The current counters.
    pub fn stats(&self) -> ServerStats {
        let mut stats = self.stats.clone();
        stats.state_bytes = self.state_bytes;
        stats.budget_bytes = self.budget_bytes;
        stats.max_sessions = self.max_sessions as u64;
        stats
    }
}
