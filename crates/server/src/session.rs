//! Sessions and the [`SessionManager`]: per-session byte accounting, a
//! global state-bytes budget, LRU eviction of idle sessions to disk and
//! transparent rehydration.
//!
//! A **session** wraps an incrementally fed [`Pipeline`] (serial or
//! sharded — the manager only sees the boxed engine behind a
//! [`MatchStream`]) plus the feed log the pipeline has been given so
//! far.  The log is what makes eviction possible: the engine state goes
//! to disk via [`MatchStream::snapshot`] (PR 7's bit-identical-resume
//! contract), and the log goes to a sidecar file so rehydration can
//! rebuild the session input, replay the log into it, and let
//! [`Pipeline::resume`] fast-forward past the consumed prefix.  The
//! rehydrated stream then yields exactly the events the evicted session
//! had not yet delivered.
//!
//! Admission control: the manager enforces a live-session cap and a
//! global state-bytes budget.  Both are relieved by evicting the least
//! recently used *idle* session (not checked out by a worker, not yet
//! finished); when nothing can be evicted the request is rejected with
//! a typed [`LinkageError::Busy`] / [`LinkageError::OverBudget`].

use std::collections::HashMap;
use std::path::{Path, PathBuf};

use linkage::api::{MatchEvent, MatchStream, Pipeline, PipelineConfig, SessionInput};
use linkage::types::fault;
use linkage::types::snapshot::{crc32, Decoder, Encoder, SnapshotBuilder, SnapshotFile};
use linkage::types::wire::{get_sided_record, put_sided_record};
use linkage::types::{LinkageError, Result, SidedRecord};

use crate::proto::{wire_event, WireEvent};

/// Section kind of the eviction sidecar's metadata payload (config,
/// fingerprint, input-finished flag, pushed count).  Outside the
/// snapshot container's own `1..=8` registry on purpose: the sidecar is
/// a separate file reusing the same container format.
pub const FEED_META_KIND: u32 = 64;

/// Section kind of the eviction sidecar's feed log (the full sequence
/// of records ever pushed into the session, in push order).
pub const FEED_LOG_KIND: u32 = 65;

/// Section kind of the eviction manifest payload: session id, config
/// fingerprint, then length + CRC-32 of the `.snap` and `.feed` files.
/// The manifest is the *commit record* of an eviction — a pair without
/// a matching manifest was never committed and is quarantined, never
/// adopted.
pub const MANIFEST_KIND: u32 = 66;

/// Section kind of the binding section embedded in an evicted `.snap`
/// container: session id + config fingerprint.  Cross-checked against
/// the sidecar at rehydrate time so a mixed-up pair (files from two
/// different evictions under one id) is a typed error naming both
/// files, not a garbled decode.
pub const EVICT_BIND_KIND: u32 = 67;

/// Write `bytes` to `path` and fsync, honoring two failpoints: `site`
/// tears the write at the armed byte offset, and `evict.fsync` fails
/// the durability barrier after a complete write.  An injected tear
/// leaves the partial file on disk — exactly the state a real crash at
/// that byte would leave.
fn write_evict_file(path: &Path, bytes: &[u8], site: &str) -> Result<()> {
    use std::io::Write as _;
    if let Some(cut) = fault::fires(site) {
        let cut = (cut as usize).min(bytes.len());
        let mut file = std::fs::File::create(path)?;
        file.write_all(&bytes[..cut])?;
        let _ = file.sync_all();
        return Err(fault::injected(site));
    }
    let mut file = std::fs::File::create(path)?;
    file.write_all(bytes)?;
    if fault::fires("evict.fsync").is_some() {
        return Err(fault::injected("evict.fsync"));
    }
    file.sync_all()?;
    Ok(())
}

/// Estimated resident bytes of one fed record: values plus per-record
/// bookkeeping.  The currency of the admission budget — deliberately an
/// estimate; the budget bounds magnitude, not exact allocation.
pub fn record_bytes(record: &SidedRecord) -> u64 {
    let values: usize = record
        .record
        .values
        .iter()
        .map(|v| match v {
            linkage::types::Value::Str(s) => s.len() + 16,
            _ => 16,
        })
        .sum();
    32 + values as u64
}

/// One live linkage session.
pub struct Session {
    id: u64,
    config: PipelineConfig,
    fingerprint: u32,
    stream: MatchStream,
    input: SessionInput,
    /// Every record ever pushed, in push order — retained until the
    /// session finishes so eviction can persist it for resume.
    log: Vec<SidedRecord>,
    log_bytes: u64,
    /// `FIN` received: the input is complete.
    fin: bool,
    /// The `Finished` event was delivered; the session is drained.
    done: bool,
    /// `done` has been folded into the manager's `finished` counter.
    done_counted: bool,
    last_touch: u64,
}

impl std::fmt::Debug for Session {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Session")
            .field("id", &self.id)
            .field("fingerprint", &self.fingerprint)
            .field("fed", &self.input.pushed())
            .field("fin", &self.fin)
            .field("done", &self.done)
            .finish_non_exhaustive()
    }
}

impl Session {
    fn build(id: u64, config: PipelineConfig, fingerprint: u32) -> Result<Self> {
        let (pipeline, input) = Pipeline::builder().config(config.clone()).session()?;
        let stream = pipeline.run()?;
        Ok(Self {
            id,
            config,
            fingerprint,
            stream,
            input,
            log: Vec::new(),
            log_bytes: 0,
            fin: false,
            done: false,
            done_counted: false,
            last_touch: 0,
        })
    }

    /// This session's id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The configuration fingerprint declared at `OPEN`.
    pub fn fingerprint(&self) -> u32 {
        self.fingerprint
    }

    /// Estimated resident bytes this session holds against the budget.
    pub fn state_bytes(&self) -> u64 {
        self.log_bytes
    }

    /// Total records fed so far.
    pub fn fed(&self) -> u64 {
        self.input.pushed()
    }

    /// Whether the input was declared complete.
    pub fn is_fin(&self) -> bool {
        self.fin
    }

    /// Whether the final `Finished` event was delivered.
    pub fn is_done(&self) -> bool {
        self.done
    }

    /// True exactly once, the first time this is called after the
    /// session finished — so the manager's `finished` counter counts
    /// sessions, not check-ins.
    fn freshly_done(&mut self) -> bool {
        if self.done && !self.done_counted {
            self.done_counted = true;
            true
        } else {
            false
        }
    }

    /// Append a batch of records to the session's input and advance the
    /// engine over the newly available prefix.  Returns the bytes the
    /// batch added to the session's accounting.
    ///
    /// An *empty* batch is always legal — even after `FIN` — and changes
    /// nothing: its `FED` reply carries the accepted total, which is how
    /// a client that lost a reply resynchronises before resending
    /// (`docs/server.md`, "Idempotent FEED resume").
    pub fn feed(&mut self, records: Vec<SidedRecord>) -> Result<u64> {
        if fault::fires("session.panic").is_some() {
            panic!("injected panic at failpoint `session.panic`");
        }
        if records.is_empty() {
            return Ok(0);
        }
        if self.fin {
            return Err(LinkageError::protocol(
                "FEED after FIN: the session input is complete",
            ));
        }
        let mut added = 0u64;
        for record in records {
            added += record_bytes(&record);
            self.input.push_sided(record.clone())?;
            self.log.push(record);
        }
        self.log_bytes += added;
        self.stream.advance(self.input.pushed())?;
        Ok(added)
    }

    /// Declare the input complete.  The remaining events (through
    /// `Finished`) become drainable via [`Self::poll`].
    pub fn fin(&mut self) {
        if !self.fin {
            self.input.finish();
            self.fin = true;
        }
    }

    /// Drain up to `max` ready events.  Before `FIN` only events that
    /// need no further input are returned; after `FIN` the stream drains
    /// to its `Finished` event, which frees the feed log.  Returns the
    /// events plus the bytes released (nonzero only when the session
    /// finishes).
    pub fn poll(&mut self, max: usize) -> Result<(Vec<WireEvent>, u64)> {
        let mut events = Vec::new();
        let mut released = 0u64;
        while events.len() < max && !self.done {
            let next = if self.fin {
                self.stream.next()
            } else {
                match self.stream.next_ready() {
                    Some(event) => Some(event),
                    None => break,
                }
            };
            match next {
                Some(Ok(event)) => {
                    if matches!(event, MatchEvent::Finished(_)) {
                        self.done = true;
                        released = self.log_bytes;
                        self.log_bytes = 0;
                        self.log = Vec::new();
                    }
                    events.push(wire_event(&event));
                }
                Some(Err(e)) => return Err(e),
                None => break,
            }
        }
        Ok((events, released))
    }

    /// Persist this session under the atomic eviction commit protocol.
    /// Only unfinished sessions are evictable.
    ///
    /// The protocol: write the `.snap` (engine + stream state, plus an
    /// [`EVICT_BIND_KIND`] section naming this session) and `.feed`
    /// (config + feed log sidecar) files under their final names, fsync
    /// both, then commit by writing a [`MANIFEST_KIND`] manifest —
    /// carrying both files' lengths and CRCs — to a temp sibling and
    /// renaming it into place.  The rename is the single commit point:
    /// a crash anywhere earlier leaves data files without a manifest,
    /// which the startup recovery sweep quarantines instead of adopting.
    ///
    /// Failpoints (`--features fault`): `evict.snap`, `evict.feed` and
    /// `evict.manifest` tear the respective write at the armed byte
    /// offset; `evict.fsync` fails the durability barrier.
    ///
    /// On success the session object is unchanged (the caller decides
    /// whether to drop it); on error the caller keeps a fully usable
    /// in-memory session.
    pub fn evict_to(
        &mut self,
        snap_path: &Path,
        feed_path: &Path,
        manifest_path: &Path,
    ) -> Result<()> {
        if self.done {
            return Err(LinkageError::snapshot(
                "a finished session has nothing to evict",
            ));
        }
        let mut snap = self.stream.snapshot_builder()?;
        let mut bind = Encoder::new();
        bind.put_u64(self.id);
        bind.put_u32(self.fingerprint);
        snap.push_section(EVICT_BIND_KIND, bind.finish());
        let snap_bytes = snap.to_bytes();
        write_evict_file(snap_path, &snap_bytes, "evict.snap")?;

        let mut builder = SnapshotBuilder::new();
        let mut meta = Encoder::new();
        crate::proto::encode_config(&mut meta, &self.config);
        meta.put_u32(self.fingerprint);
        meta.put_bool(self.fin);
        meta.put_u64(self.input.pushed());
        builder.push_section(FEED_META_KIND, meta.finish());
        let mut log = Encoder::new();
        log.put_u32(self.log.len() as u32);
        for record in &self.log {
            put_sided_record(&mut log, record);
        }
        builder.push_section(FEED_LOG_KIND, log.finish());
        let feed_bytes = builder.to_bytes();
        write_evict_file(feed_path, &feed_bytes, "evict.feed")?;

        let mut manifest = Encoder::new();
        manifest.put_u64(self.id);
        manifest.put_u32(self.fingerprint);
        manifest.put_u64(snap_bytes.len() as u64);
        manifest.put_u32(crc32(&snap_bytes));
        manifest.put_u64(feed_bytes.len() as u64);
        manifest.put_u32(crc32(&feed_bytes));
        let mut commit = SnapshotBuilder::new();
        commit.push_section(MANIFEST_KIND, manifest.finish());
        let tmp = manifest_path.with_extension("evict.tmp");
        write_evict_file(&tmp, &commit.to_bytes(), "evict.manifest")?;
        std::fs::rename(&tmp, manifest_path)?;
        Ok(())
    }

    /// Rebuild a session from the files written by [`Self::evict_to`]:
    /// re-declare the pipeline from the sidecar's config, replay the
    /// feed log into a fresh session input, and let [`Pipeline::resume`]
    /// fast-forward the engine past the consumed prefix.  The manifest
    /// is deleted first (un-committing the pair), then the data files,
    /// on success.
    ///
    /// The snapshot's [`EVICT_BIND_KIND`] section is cross-checked
    /// against the sidecar's declared id and fingerprint; a mismatched
    /// pair is a typed [`LinkageError::Snapshot`] naming both files.
    pub fn rehydrate(
        id: u64,
        snap_path: &Path,
        feed_path: &Path,
        manifest_path: &Path,
    ) -> Result<Self> {
        let sidecar = SnapshotFile::read_from(feed_path)?;
        let mut meta = Decoder::new(sidecar.section(FEED_META_KIND)?, "FEED_META");
        let config = crate::proto::decode_config(&mut meta)?;
        let fingerprint = meta.get_u32()?;
        let fin = meta.get_bool()?;
        let pushed = meta.get_u64()?;
        meta.finish()?;

        let snap_file = SnapshotFile::read_from(snap_path)?;
        let mut bind = Decoder::new(snap_file.section(EVICT_BIND_KIND)?, "EVICT_BIND");
        let bind_id = bind.get_u64()?;
        let bind_fp = bind.get_u32()?;
        bind.finish()?;
        if bind_id != id || bind_fp != fingerprint {
            return Err(LinkageError::snapshot(format!(
                "eviction pair mismatch for session {id}: snapshot {} is bound to \
                 session {bind_id} with fingerprint {bind_fp:#010x}, but sidecar {} \
                 declares fingerprint {fingerprint:#010x} — the files are not from \
                 the same eviction",
                snap_path.display(),
                feed_path.display()
            )));
        }
        let mut log_dec = Decoder::new(sidecar.section(FEED_LOG_KIND)?, "FEED_LOG");
        let count = log_dec.get_u32()? as usize;
        let mut log = Vec::with_capacity(count);
        for _ in 0..count {
            log.push(get_sided_record(&mut log_dec)?);
        }
        log_dec.finish()?;
        if pushed != log.len() as u64 {
            return Err(LinkageError::snapshot(format!(
                "feed sidecar of session {id} claims {pushed} pushed records but logs {}",
                log.len()
            )));
        }

        let (pipeline, input) = Pipeline::builder().config(config.clone()).session()?;
        let mut log_bytes = 0u64;
        for record in &log {
            log_bytes += record_bytes(record);
            input.push_sided(record.clone())?;
        }
        if fin {
            input.finish();
        }
        let stream = pipeline.resume(snap_path)?;
        // Un-commit before removing the data: a crash between these
        // removes leaves an uncommitted remainder the recovery sweep
        // quarantines, never a committed pair with a file missing.
        std::fs::remove_file(manifest_path)?;
        std::fs::remove_file(snap_path)?;
        std::fs::remove_file(feed_path)?;
        Ok(Self {
            id,
            config,
            fingerprint,
            stream,
            input,
            log,
            log_bytes,
            fin,
            done: false,
            done_counted: false,
            last_touch: 0,
        })
    }
}

/// A session's slot in the manager's table.
enum Slot {
    /// In memory, idle.
    Live(Box<Session>),
    /// Checked out by a worker processing a request.
    Taken,
    /// On disk under the eviction directory.
    Evicted,
    /// Poisoned: a worker panicked mid-request, or the on-disk eviction
    /// files came back torn/corrupt.  Any surviving files are parked
    /// under `quarantine/`; every request except `CLOSE` gets a typed
    /// [`LinkageError::Quarantined`], and `CLOSE` discards the remains.
    Quarantined {
        /// Why the session was quarantined (for the error message).
        reason: String,
    },
}

/// What the startup recovery sweep found in the eviction directory.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
#[non_exhaustive]
pub struct RecoveryReport {
    /// Sessions adopted as evicted: a committed manifest whose length
    /// and CRC claims both data files satisfy.
    pub adopted: Vec<u64>,
    /// Sessions quarantined, with the reason: torn or corrupt bytes, a
    /// missing file, or a pair whose eviction never committed.
    pub quarantined: Vec<(u64, String)>,
    /// Orphaned temporary files (`*.tmp`, `*.tmp-snapshot`) deleted.
    pub removed_tmp_files: u64,
}

/// Counters the `STATS` request reports (plus the budget configuration,
/// so a client can see the admission envelope it is playing against).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
#[non_exhaustive]
pub struct ServerStats {
    /// Sessions currently in memory (idle or checked out).
    pub live_sessions: u64,
    /// Sessions currently evicted to disk.
    pub evicted_sessions: u64,
    /// Sessions ever opened.
    pub opened: u64,
    /// Sessions that delivered their `Finished` event.
    pub finished: u64,
    /// Sessions explicitly closed.
    pub closed: u64,
    /// Idle sessions evicted to disk (lifetime count).
    pub evictions: u64,
    /// Evicted sessions rehydrated on access (lifetime count).
    pub rehydrations: u64,
    /// Requests rejected with `BUSY`.
    pub rejected_busy: u64,
    /// Requests rejected with `OVER_BUDGET`.
    pub rejected_over_budget: u64,
    /// Estimated resident session bytes right now.
    pub state_bytes: u64,
    /// The configured state-bytes budget.
    pub budget_bytes: u64,
    /// The configured live-session cap.
    pub max_sessions: u64,
    /// Sessions currently quarantined (poisoned by a panic or by torn
    /// or corrupt eviction files), awaiting `CLOSE`.
    pub quarantined_sessions: u64,
    /// Worker panics caught at the request boundary (lifetime count).
    /// Each one quarantined a session instead of killing the worker.
    pub worker_panics: u64,
}

impl ServerStats {
    /// Encode as the `STATS` reply payload (fourteen `u64`s, field
    /// order).
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Encoder::new();
        for v in [
            self.live_sessions,
            self.evicted_sessions,
            self.opened,
            self.finished,
            self.closed,
            self.evictions,
            self.rehydrations,
            self.rejected_busy,
            self.rejected_over_budget,
            self.state_bytes,
            self.budget_bytes,
            self.max_sessions,
            self.quarantined_sessions,
            self.worker_panics,
        ] {
            e.put_u64(v);
        }
        e.finish()
    }

    /// Decode a `STATS` reply payload.
    pub fn decode(payload: &[u8]) -> Result<Self> {
        let mut d = Decoder::new(payload, "STATS");
        let stats = Self {
            live_sessions: d.get_u64()?,
            evicted_sessions: d.get_u64()?,
            opened: d.get_u64()?,
            finished: d.get_u64()?,
            closed: d.get_u64()?,
            evictions: d.get_u64()?,
            rehydrations: d.get_u64()?,
            rejected_busy: d.get_u64()?,
            rejected_over_budget: d.get_u64()?,
            state_bytes: d.get_u64()?,
            budget_bytes: d.get_u64()?,
            max_sessions: d.get_u64()?,
            quarantined_sessions: d.get_u64()?,
            worker_panics: d.get_u64()?,
        };
        d.finish()?;
        Ok(stats)
    }
}

/// The session table: slots, accounting, admission and eviction.
///
/// One instance lives behind a mutex in the server; workers check
/// sessions *out* for the duration of a request (so feeding one session
/// never blocks requests on another) and check them back in with the
/// accounting delta.
pub struct SessionManager {
    slots: HashMap<u64, Slot>,
    next_id: u64,
    clock: u64,
    state_bytes: u64,
    max_sessions: usize,
    budget_bytes: u64,
    evict_dir: PathBuf,
    stats: ServerStats,
    recovery: RecoveryReport,
}

/// Check a session's eviction against its manifest: the manifest must
/// parse, name this id, and both data files must match its declared
/// length and CRC.  Any shortfall is the quarantine reason.
fn verify_evicted(dir: &Path, id: u64) -> std::result::Result<(), String> {
    let manifest_path = dir.join(format!("session-{id}.evict"));
    if !manifest_path.exists() {
        return Err("no manifest: the eviction never committed".to_string());
    }
    let manifest =
        SnapshotFile::read_from(&manifest_path).map_err(|e| format!("manifest unreadable: {e}"))?;
    let section = manifest
        .section(MANIFEST_KIND)
        .map_err(|e| format!("manifest: {e}"))?;
    let mut d = Decoder::new(section, "EVICT_MANIFEST");
    let decoded = (|| -> Result<(u64, u64, u32, u64, u32)> {
        let m_id = d.get_u64()?;
        let _fingerprint = d.get_u32()?;
        let snap_len = d.get_u64()?;
        let snap_crc = d.get_u32()?;
        let feed_len = d.get_u64()?;
        let feed_crc = d.get_u32()?;
        Ok((m_id, snap_len, snap_crc, feed_len, feed_crc))
    })();
    let (m_id, snap_len, snap_crc, feed_len, feed_crc) =
        decoded.map_err(|e| format!("manifest undecodable: {e}"))?;
    if m_id != id {
        return Err(format!(
            "manifest names session {m_id} but the files are named session {id}"
        ));
    }
    for (name, want_len, want_crc) in [("snap", snap_len, snap_crc), ("feed", feed_len, feed_crc)] {
        let path = dir.join(format!("session-{id}.{name}"));
        let bytes =
            std::fs::read(&path).map_err(|e| format!("{} unreadable: {e}", path.display()))?;
        if bytes.len() as u64 != want_len {
            return Err(format!(
                "{} is {} bytes, manifest committed {want_len}",
                path.display(),
                bytes.len()
            ));
        }
        let got_crc = crc32(&bytes);
        if got_crc != want_crc {
            return Err(format!(
                "{} CRC {got_crc:#010x} does not match the committed {want_crc:#010x}",
                path.display()
            ));
        }
    }
    Ok(())
}

/// Park whatever remains of a session's eviction files under
/// `quarantine/` (best-effort: quarantining must never raise on top of
/// the fault that triggered it).
fn park_in_quarantine(dir: &Path, id: u64) {
    let qdir = dir.join("quarantine");
    let _ = std::fs::create_dir_all(&qdir);
    for suffix in ["snap", "feed", "evict"] {
        let name = format!("session-{id}.{suffix}");
        let path = dir.join(&name);
        if path.exists() {
            let _ = std::fs::rename(&path, qdir.join(&name));
        }
    }
}

impl SessionManager {
    /// An empty table with the given admission envelope, after a
    /// recovery sweep of `evict_dir`.
    ///
    /// The sweep deletes orphaned temporaries, then groups the
    /// remaining `session-<id>.{snap,feed,evict}` files by id: an id
    /// whose manifest commits both data files (length + CRC) is adopted
    /// as an evicted session and rehydrates transparently on first
    /// touch; anything else — torn or corrupt bytes, a missing file, a
    /// pair whose eviction never committed — is quarantined with a
    /// typed reason, never adopted, and never a panic.  The findings
    /// are available via [`Self::recovery`].
    pub fn new(max_sessions: usize, budget_bytes: u64, evict_dir: PathBuf) -> Result<Self> {
        std::fs::create_dir_all(&evict_dir)?;
        let mut report = RecoveryReport::default();
        let mut ids = std::collections::BTreeSet::new();
        for entry in std::fs::read_dir(&evict_dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if name.ends_with(".tmp") || name.ends_with(".tmp-snapshot") {
                let _ = std::fs::remove_file(entry.path());
                report.removed_tmp_files += 1;
                continue;
            }
            if let Some(rest) = name.strip_prefix("session-") {
                for suffix in [".snap", ".feed", ".evict"] {
                    if let Some(id) = rest
                        .strip_suffix(suffix)
                        .and_then(|s| s.parse::<u64>().ok())
                    {
                        ids.insert(id);
                    }
                }
            }
        }
        let mut slots = HashMap::new();
        let mut next_id = 1;
        for id in ids {
            next_id = next_id.max(id + 1);
            match verify_evicted(&evict_dir, id) {
                Ok(()) => {
                    slots.insert(id, Slot::Evicted);
                    report.adopted.push(id);
                }
                Err(reason) => {
                    park_in_quarantine(&evict_dir, id);
                    slots.insert(
                        id,
                        Slot::Quarantined {
                            reason: reason.clone(),
                        },
                    );
                    report.quarantined.push((id, reason));
                }
            }
        }
        let mut manager = Self {
            slots,
            next_id,
            clock: 0,
            state_bytes: 0,
            max_sessions: max_sessions.max(1),
            budget_bytes,
            evict_dir,
            stats: ServerStats::default(),
            recovery: report,
        };
        manager.stats.evicted_sessions = manager.recovery.adopted.len() as u64;
        manager.stats.quarantined_sessions = manager.recovery.quarantined.len() as u64;
        Ok(manager)
    }

    /// What the startup recovery sweep found.
    pub fn recovery(&self) -> &RecoveryReport {
        &self.recovery
    }

    fn snap_path(&self, id: u64) -> PathBuf {
        self.evict_dir.join(format!("session-{id}.snap"))
    }

    fn feed_path(&self, id: u64) -> PathBuf {
        self.evict_dir.join(format!("session-{id}.feed"))
    }

    fn manifest_path(&self, id: u64) -> PathBuf {
        self.evict_dir.join(format!("session-{id}.evict"))
    }

    fn tick(&mut self) -> u64 {
        self.clock += 1;
        self.clock
    }

    fn live_count(&self) -> usize {
        self.slots
            .iter()
            .filter(|(_, s)| matches!(s, Slot::Live(_) | Slot::Taken))
            .count()
    }

    /// The least recently used idle (live, unfinished) session, if any.
    fn lru_idle(&self) -> Option<u64> {
        self.slots
            .iter()
            .filter_map(|(id, slot)| match slot {
                Slot::Live(s) if !s.is_done() => Some((*id, s.last_touch)),
                _ => None,
            })
            .min_by_key(|(_, touch)| *touch)
            .map(|(id, _)| id)
    }

    /// Evict the LRU idle session to disk.  `Ok(false)` when nothing is
    /// evictable.
    ///
    /// On error the session is put back live and fully usable — an
    /// eviction failure loses nothing.  A *real* error also cleans up
    /// whatever partial files the attempt left (an uncommitted pair is
    /// garbage); an injected fault deliberately leaves them, because it
    /// is simulating a crash and the next startup's recovery sweep is
    /// what gets tested against that debris.
    fn evict_one(&mut self) -> Result<bool> {
        let Some(id) = self.lru_idle() else {
            return Ok(false);
        };
        let Some(Slot::Live(mut session)) = self.slots.remove(&id) else {
            return Err(LinkageError::execution(format!(
                "session table corrupted: lru candidate {id} is not live"
            )));
        };
        let (snap, feed, manifest) = (
            self.snap_path(id),
            self.feed_path(id),
            self.manifest_path(id),
        );
        match session.evict_to(&snap, &feed, &manifest) {
            Ok(()) => {
                let bytes = session.state_bytes();
                self.slots.insert(id, Slot::Evicted);
                self.state_bytes = self.state_bytes.saturating_sub(bytes);
                self.stats.evictions += 1;
                self.stats.evicted_sessions += 1;
                self.stats.live_sessions = self.stats.live_sessions.saturating_sub(1);
                Ok(true)
            }
            Err(e) => {
                if !fault::is_injected(&e) {
                    for path in [
                        &snap,
                        &feed,
                        &manifest,
                        &manifest.with_extension("evict.tmp"),
                    ] {
                        let _ = std::fs::remove_file(path);
                    }
                }
                self.slots.insert(id, Slot::Live(session));
                Err(e)
            }
        }
    }

    /// Make room for `incoming` more bytes, evicting idle sessions LRU
    /// first; typed [`LinkageError::OverBudget`] when the budget cannot
    /// be met.
    pub fn reserve_bytes(&mut self, incoming: u64) -> Result<()> {
        while self.state_bytes + incoming > self.budget_bytes {
            if !self.evict_one()? {
                self.stats.rejected_over_budget += 1;
                return Err(LinkageError::over_budget(format!(
                    "{incoming} incoming bytes would exceed the {} byte budget \
                     ({} resident, nothing idle to evict)",
                    self.budget_bytes, self.state_bytes
                )));
            }
        }
        Ok(())
    }

    /// Admit a new session.  Typed [`LinkageError::Busy`] when the live
    /// cap is reached and nothing idle can be evicted.
    pub fn open(&mut self, config: PipelineConfig, fingerprint: u32) -> Result<u64> {
        let declared = config.fingerprint();
        if declared != fingerprint {
            return Err(LinkageError::protocol(format!(
                "config fingerprint mismatch: client sent {fingerprint:#010x}, decoded \
                 config fingerprints as {declared:#010x} — client and server disagree \
                 about the config codec"
            )));
        }
        while self.live_count() >= self.max_sessions {
            if !self.evict_one()? {
                self.stats.rejected_busy += 1;
                return Err(LinkageError::busy(format!(
                    "session table full ({} live, cap {})",
                    self.live_count(),
                    self.max_sessions
                )));
            }
        }
        let id = self.next_id;
        self.next_id += 1;
        let mut session = Session::build(id, config, fingerprint)?;
        session.last_touch = self.tick();
        self.slots.insert(id, Slot::Live(Box::new(session)));
        self.stats.opened += 1;
        self.stats.live_sessions += 1;
        Ok(id)
    }

    /// Check a session out for the duration of a request, rehydrating it
    /// from disk if it was evicted.  While checked out, other requests
    /// for the same session are rejected `Busy`.
    pub fn checkout(&mut self, id: u64) -> Result<Box<Session>> {
        match self.slots.get(&id) {
            None => Err(LinkageError::unknown_session(format!(
                "session {id} does not exist (never opened, closed, or lost)"
            ))),
            Some(Slot::Quarantined { reason }) => Err(LinkageError::quarantined(format!(
                "session {id} is quarantined: {reason}"
            ))),
            Some(Slot::Taken) => {
                self.stats.rejected_busy += 1;
                Err(LinkageError::busy(format!(
                    "session {id} is processing another request"
                )))
            }
            Some(Slot::Evicted) => {
                let rehydrated = Session::rehydrate(
                    id,
                    &self.snap_path(id),
                    &self.feed_path(id),
                    &self.manifest_path(id),
                );
                let session = match rehydrated {
                    Ok(session) => session,
                    Err(e) => {
                        // The pair is unusable (it verified at sweep
                        // time, so this is new damage or an injected
                        // fault).  Leaving the slot Evicted would retry
                        // the same broken bytes forever; quarantine it.
                        let reason = e.to_string();
                        park_in_quarantine(&self.evict_dir, id);
                        self.slots.insert(
                            id,
                            Slot::Quarantined {
                                reason: reason.clone(),
                            },
                        );
                        self.stats.evicted_sessions = self.stats.evicted_sessions.saturating_sub(1);
                        self.stats.quarantined_sessions += 1;
                        return Err(LinkageError::quarantined(format!(
                            "session {id} failed rehydration and was quarantined: {reason}"
                        )));
                    }
                };
                let bytes = session.state_bytes();
                self.stats.evicted_sessions = self.stats.evicted_sessions.saturating_sub(1);
                self.stats.rehydrations += 1;
                self.stats.live_sessions += 1;
                self.slots.insert(id, Slot::Taken);
                // The rehydrated bytes count against the budget again;
                // evict others if the table meanwhile filled up.
                self.state_bytes += bytes;
                while self.state_bytes > self.budget_bytes && self.evict_one()? {}
                Ok(Box::new(session))
            }
            Some(Slot::Live(_)) => match self.slots.insert(id, Slot::Taken) {
                Some(Slot::Live(mut session)) => {
                    session.last_touch = self.tick();
                    Ok(session)
                }
                _ => Err(LinkageError::execution(format!(
                    "session table corrupted: slot {id} changed under the lock"
                ))),
            },
        }
    }

    /// Return a checked-out session, folding `delta` bytes into the
    /// accounting (positive after a feed, negative after a finish).
    pub fn checkin(&mut self, mut session: Box<Session>, delta: i64) {
        let id = session.id();
        session.last_touch = self.tick();
        if session.freshly_done() {
            self.stats.finished += 1;
        }
        self.state_bytes = if delta >= 0 {
            self.state_bytes + delta as u64
        } else {
            self.state_bytes.saturating_sub((-delta) as u64)
        };
        self.slots.insert(id, Slot::Live(session));
    }

    /// Drop a checked-out session that errored mid-request: its engine
    /// state is unusable, so the slot is released rather than checked
    /// back in.
    pub fn discard(&mut self, session: Box<Session>) {
        let bytes = session.state_bytes();
        self.slots.remove(&session.id());
        self.state_bytes = self.state_bytes.saturating_sub(bytes);
        self.stats.closed += 1;
        self.stats.live_sessions = self.stats.live_sessions.saturating_sub(1);
    }

    /// The `CLOSE` request: drop the session wherever it lives.  An
    /// evicted session is closed by deleting its files — no pointless
    /// rehydration.
    pub fn close(&mut self, id: u64) -> Result<()> {
        match self.slots.get(&id) {
            None => Err(LinkageError::unknown_session(format!(
                "session {id} does not exist (never opened, closed, or lost)"
            ))),
            Some(Slot::Taken) => {
                self.stats.rejected_busy += 1;
                Err(LinkageError::busy(format!(
                    "session {id} is processing another request"
                )))
            }
            Some(Slot::Quarantined { .. }) => {
                // CLOSE is how a client discards a quarantined session:
                // delete its parked remains (best-effort — a poisoned
                // in-memory session has none) and free the slot.
                self.slots.remove(&id);
                let qdir = self.evict_dir.join("quarantine");
                for suffix in ["snap", "feed", "evict"] {
                    let _ = std::fs::remove_file(qdir.join(format!("session-{id}.{suffix}")));
                }
                self.stats.closed += 1;
                self.stats.quarantined_sessions = self.stats.quarantined_sessions.saturating_sub(1);
                Ok(())
            }
            Some(Slot::Evicted) => {
                self.slots.remove(&id);
                // Manifest first: a crash mid-close leaves uncommitted
                // leftovers the next sweep quarantines, not a committed
                // pair with a file missing.
                std::fs::remove_file(self.manifest_path(id))?;
                std::fs::remove_file(self.snap_path(id))?;
                std::fs::remove_file(self.feed_path(id))?;
                self.stats.closed += 1;
                self.stats.evicted_sessions = self.stats.evicted_sessions.saturating_sub(1);
                Ok(())
            }
            Some(Slot::Live(_)) => {
                let Some(Slot::Live(session)) = self.slots.remove(&id) else {
                    return Err(LinkageError::execution(format!(
                        "session table corrupted: slot {id} changed under the lock"
                    )));
                };
                self.state_bytes = self.state_bytes.saturating_sub(session.state_bytes());
                self.stats.closed += 1;
                self.stats.live_sessions = self.stats.live_sessions.saturating_sub(1);
                Ok(())
            }
        }
    }

    /// Count a `Busy` rejection raised outside the manager (accept
    /// queue, shutdown gate).
    pub fn count_busy(&mut self) {
        self.stats.rejected_busy += 1;
    }

    /// Count a worker panic that escaped the request boundary (the
    /// connection died with it; the worker itself was respawned).
    pub fn count_worker_panic(&mut self) {
        self.stats.worker_panics += 1;
    }

    /// A worker panicked while holding session `id` checked out: the
    /// `Box<Session>` died with the unwound stack, so the in-memory
    /// state is gone.  Convert the `Taken` slot into a quarantined one
    /// (no files — there is nothing durable to park) and release the
    /// session's bytes, which unwound with it.
    pub fn quarantine_poisoned(
        &mut self,
        id: u64,
        prior_bytes: u64,
        reason: impl std::fmt::Display,
    ) {
        self.slots.insert(
            id,
            Slot::Quarantined {
                reason: reason.to_string(),
            },
        );
        self.state_bytes = self.state_bytes.saturating_sub(prior_bytes);
        self.stats.live_sessions = self.stats.live_sessions.saturating_sub(1);
        self.stats.quarantined_sessions += 1;
        self.stats.worker_panics += 1;
    }

    /// Snapshot every live unfinished session to the eviction directory
    /// (graceful shutdown).  Returns how many were persisted.
    pub fn evict_all(&mut self) -> Result<usize> {
        let mut persisted = 0;
        while self.lru_idle().is_some() {
            self.evict_one()?;
            persisted += 1;
        }
        Ok(persisted)
    }

    /// The current counters.
    pub fn stats(&self) -> ServerStats {
        let mut stats = self.stats.clone();
        stats.state_bytes = self.state_bytes;
        stats.budget_bytes = self.budget_bytes;
        stats.max_sessions = self.max_sessions as u64;
        stats
    }
}
