//! # linkage-server
//!
//! A multi-session linkage join **service**: one long-running process
//! multiplexing many concurrent linkage sessions over a bounded worker
//! pool, speaking a hand-rolled length-prefixed line protocol over TCP.
//!
//! The paper's pipeline (conf_edbt_LenguMFGM09) is a streaming operator
//! that adapts *mid-run*; this crate makes the runs themselves
//! long-lived.  A client `OPEN`s a session by shipping a serialized
//! [`PipelineConfig`](linkage::api::PipelineConfig), `FEED`s record
//! batches, `POLL`s back match events (including the mid-stream
//! `Switched` notification and the final `Finished` report), and
//! `CLOSE`s when done — with the server free to **evict** idle sessions
//! to disk under memory pressure and transparently rehydrate them on the
//! next request.  Bit-identity of the resumed match stream is the
//! correctness contract, inherited from the snapshot format of PR 7.
//!
//! * [`server`] — [`LinkageServer`]: acceptor, bounded accept queue,
//!   worker pool, graceful shutdown (SIGTERM / [`Drop`]);
//! * [`session`] — [`SessionManager`]: admission control (live-session
//!   cap + state-bytes budget with typed `Busy` / `OverBudget`
//!   rejections) and LRU eviction/rehydration;
//! * [`proto`] — the wire codec for configs, events and reports, on top
//!   of the frame layer in `linkage-types::wire`;
//! * [`client`] — a small blocking [`Client`] used by the tests, the
//!   example and the bench driver;
//! * [`retry`] — [`RetryClient`]: a self-healing wrapper that retries
//!   with backoff, resumes interrupted `FEED`s idempotently, and
//!   rebuilds lost or quarantined sessions from a client-side journal.
//!
//! The protocol is specified byte-for-byte in `docs/server.md`.
//!
//! ```no_run
//! use linkage::api::PipelineConfig;
//! use linkage_server::{Client, LinkageServer, ServerConfig};
//!
//! let server = LinkageServer::start(ServerConfig::default())?;
//! let mut client = Client::connect(server.addr())?;
//!
//! let mut config = PipelineConfig::default();
//! config.reference_size = Some(1000);
//! let session = client.open(&config)?;
//! // ... client.feed(session, batch)?, client.poll(session, 128)?, ...
//! client.close(session)?;
//! server.shutdown()?;
//! # Ok::<(), linkage::types::LinkageError>(())
//! ```

#![warn(missing_docs)]

pub mod client;
pub mod proto;
pub mod retry;
pub mod server;
pub mod session;

pub use client::Client;
pub use retry::{RetryClient, RetryPolicy};
pub use server::{LinkageServer, ServerConfig};
pub use session::{RecoveryReport, ServerStats, Session, SessionManager};
