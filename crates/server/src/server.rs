//! The service: acceptor, bounded accept queue, worker pool, request
//! dispatch and graceful shutdown.
//!
//! Threading model: one **acceptor** thread owns the (non-blocking)
//! listener and pushes accepted connections into a bounded queue; when
//! the queue is full the connection is refused on the spot with a typed
//! `BUSY` error frame — that, not an unbounded backlog, is the admission
//! contract.  A fixed pool of **worker** threads pulls connections and
//! serves each one frame-by-frame.  Sessions are *checked out* of the
//! shared [`SessionManager`] for the duration of a request, so feeding
//! one session never serialises against polling another; only the table
//! bookkeeping itself is under the lock.
//!
//! Graceful shutdown (the `SHUTDOWN` message, [`LinkageServer::shutdown`],
//! [`Drop`], or — when enabled — SIGTERM) stops the acceptor, lets every
//! in-flight request complete, then persists all unfinished sessions to
//! the eviction directory exactly as idle eviction would.  A restarted
//! server pointed at the same directory adopts them transparently: no
//! session is lost mid-`FEED`.

use std::io::Write as _;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, TrySendError};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Duration;

use linkage::types::fault;
use linkage::types::snapshot::{Decoder, Encoder};
use linkage::types::{LinkageError, Result};

use crate::proto::{
    code, decode_config, encode_error, error_code, get_sided_record, msg, put_event, read_frame,
    write_frame, WIRE_VERSION,
};
use crate::session::{record_bytes, SessionManager};

/// SIGTERM latching, libc-crate-free: the handler just stores into a
/// process-wide flag the server loops poll.
pub mod sig {
    use std::sync::atomic::{AtomicBool, Ordering};

    static TERM: AtomicBool = AtomicBool::new(false);

    /// Whether SIGTERM was received since the last [`reset`].
    pub fn termination_requested() -> bool {
        TERM.load(Ordering::Relaxed)
    }

    /// Clear the latch (tests raise SIGTERM at themselves and must not
    /// poison later servers in the same process).
    pub fn reset() {
        TERM.store(false, Ordering::Relaxed);
    }

    extern "C" fn on_term(_signum: i32) {
        TERM.store(true, Ordering::Relaxed);
    }

    #[cfg(unix)]
    pub(crate) fn install() {
        extern "C" {
            fn signal(signum: i32, handler: usize) -> usize;
        }
        const SIGTERM: i32 = 15;
        // SAFETY: registers an async-signal-safe handler (a single
        // relaxed atomic store) for SIGTERM via the C `signal` entry
        // point; both arguments are valid for the platform contract.
        unsafe {
            signal(SIGTERM, on_term as *const () as usize);
        }
    }

    #[cfg(not(unix))]
    pub(crate) fn install() {
        // No SIGTERM to speak of; `shutdown()` / `Drop` still drain.
        let _ = on_term;
    }
}

static EVICT_DIR_SEQ: AtomicU64 = AtomicU64::new(0);

/// Configuration of a [`LinkageServer`].
///
/// `#[non_exhaustive]` like [`PipelineConfig`](linkage::api::PipelineConfig):
/// start from [`Default`] and mutate fields.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct ServerConfig {
    /// Bind address; port `0` picks a free port (see
    /// [`LinkageServer::addr`]).
    pub addr: String,
    /// Worker threads serving connections (minimum 1).
    pub workers: usize,
    /// Live (in-memory) session cap; admission beyond it evicts the LRU
    /// idle session or rejects `BUSY`.
    pub max_sessions: usize,
    /// Accepted-but-unserved connection cap; beyond it connections are
    /// refused with a `BUSY` error frame.
    pub accept_queue: usize,
    /// Global budget for resident session state bytes; feeds beyond it
    /// evict idle sessions or reject `OVER_BUDGET`.
    pub budget_bytes: u64,
    /// Where evicted sessions live.  `None` picks a fresh directory
    /// under the system temp dir; point it somewhere stable to adopt
    /// sessions persisted by a previous process.
    pub evict_dir: Option<PathBuf>,
    /// How long idle loops sleep between checks (accept polling, worker
    /// shutdown checks).
    pub poll_interval: Duration,
    /// Per-request deadline: once a frame starts arriving, the read of
    /// that frame — and the write of its reply — must complete within
    /// this long, or the connection is dropped.  Bounds how long a
    /// stalled or malicious peer can pin a worker.
    pub request_deadline: Duration,
    /// Latch SIGTERM into graceful shutdown.  Defaults to off so that
    /// embedding processes (and test binaries, where one test raising
    /// SIGTERM at itself must not drain every other test's server) opt
    /// in deliberately; the bundled example and any daemon `main` should
    /// set it.
    pub handle_sigterm: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            max_sessions: 8,
            accept_queue: 16,
            budget_bytes: 64 * 1024 * 1024,
            evict_dir: None,
            poll_interval: Duration::from_millis(2),
            request_deadline: Duration::from_secs(10),
            handle_sigterm: false,
        }
    }
}

/// State shared by the acceptor, the workers and the handle.
struct Shared {
    manager: Mutex<SessionManager>,
    shutting_down: AtomicBool,
    handle_sigterm: bool,
    request_deadline: Duration,
}

impl Shared {
    fn is_shutting_down(&self) -> bool {
        self.shutting_down.load(Ordering::Relaxed)
            || (self.handle_sigterm && sig::termination_requested())
    }

    fn manager(&self) -> MutexGuard<'_, SessionManager> {
        match self.manager.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// A running linkage service; see the [crate docs](crate) for the
/// protocol it speaks.
///
/// Dropping the handle performs the same graceful shutdown as
/// [`shutdown`](Self::shutdown) (minus the persisted-session count).
pub struct LinkageServer {
    addr: SocketAddr,
    shared: Arc<Shared>,
    threads: Vec<std::thread::JoinHandle<()>>,
}

impl LinkageServer {
    /// Bind, spawn the acceptor and worker pool, and return the handle.
    pub fn start(config: ServerConfig) -> Result<Self> {
        if config.handle_sigterm {
            sig::install();
        }
        let listener = TcpListener::bind(config.addr.as_str())?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let evict_dir = config.evict_dir.clone().unwrap_or_else(|| {
            std::env::temp_dir().join(format!(
                "linkage-server-{}-{}",
                std::process::id(),
                EVICT_DIR_SEQ.fetch_add(1, Ordering::Relaxed)
            ))
        });
        let manager = SessionManager::new(config.max_sessions, config.budget_bytes, evict_dir)?;
        let shared = Arc::new(Shared {
            manager: Mutex::new(manager),
            shutting_down: AtomicBool::new(false),
            handle_sigterm: config.handle_sigterm,
            request_deadline: config.request_deadline.max(Duration::from_millis(1)),
        });

        let (tx, rx) = sync_channel::<TcpStream>(config.accept_queue.max(1));
        let rx = Arc::new(Mutex::new(rx));
        let poll = config.poll_interval;
        let mut threads = Vec::new();

        let acceptor_shared = Arc::clone(&shared);
        threads.push(
            std::thread::Builder::new()
                .name("linkage-acceptor".to_string())
                .spawn(move || accept_loop(&acceptor_shared, &listener, &tx, poll))?,
        );
        for i in 0..config.workers.max(1) {
            let worker_shared = Arc::clone(&shared);
            let worker_rx = Arc::clone(&rx);
            threads.push(
                std::thread::Builder::new()
                    .name(format!("linkage-worker-{i}"))
                    .spawn(move || worker_loop(&worker_shared, &worker_rx, poll))?,
            );
        }
        Ok(Self {
            addr,
            shared,
            threads,
        })
    }

    /// The bound address (resolves port `0`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The counters a `STATS` request would report, read directly.
    pub fn stats(&self) -> crate::session::ServerStats {
        self.shared.manager().stats()
    }

    /// Block until shutdown is requested — by SIGTERM (when enabled) or
    /// a client `SHUTDOWN` message — then drain and persist like
    /// [`shutdown`](Self::shutdown).  A daemon `main` is
    /// `LinkageServer::start(config)?.wait()`.
    pub fn wait(mut self) -> Result<usize> {
        while !self.shared.is_shutting_down() {
            std::thread::sleep(Duration::from_millis(20));
        }
        self.stop()
    }

    /// Graceful shutdown: stop accepting, let in-flight requests
    /// complete, persist every unfinished session to the eviction
    /// directory.  Returns how many sessions were persisted.
    pub fn shutdown(mut self) -> Result<usize> {
        self.stop()
    }

    fn stop(&mut self) -> Result<usize> {
        self.shared.shutting_down.store(true, Ordering::Relaxed);
        for thread in self.threads.drain(..) {
            let _ = thread.join();
        }
        // Workers are gone, so every slot is idle: persist the rest.
        self.shared.manager().evict_all()
    }
}

impl Drop for LinkageServer {
    fn drop(&mut self) {
        if !self.threads.is_empty() {
            let _ = self.stop();
        }
    }
}

/// Accept connections until shutdown; refuse with a `BUSY` error frame
/// when the queue is full.
fn accept_loop(
    shared: &Shared,
    listener: &TcpListener,
    tx: &std::sync::mpsc::SyncSender<TcpStream>,
    poll: Duration,
) {
    while !shared.is_shutting_down() {
        match listener.accept() {
            Ok((stream, _)) => match tx.try_send(stream) {
                Ok(()) => {}
                Err(TrySendError::Full(mut stream))
                | Err(TrySendError::Disconnected(mut stream)) => {
                    shared.manager().count_busy();
                    let payload =
                        encode_error(code::BUSY, "accept queue full — retry after a backoff");
                    let _ = write_frame(&mut stream, msg::ERR, &payload);
                    let _ = stream.flush();
                }
            },
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => std::thread::sleep(poll),
            Err(_) => std::thread::sleep(poll),
        }
    }
    // Dropping `tx` unblocks workers waiting in `recv`.
}

/// Pull connections off the queue and serve each to completion.
fn worker_loop(shared: &Shared, rx: &Arc<Mutex<Receiver<TcpStream>>>, poll: Duration) {
    loop {
        let stream = {
            let guard = match rx.lock() {
                Ok(guard) => guard,
                Err(poisoned) => poisoned.into_inner(),
            };
            guard.recv()
        };
        match stream {
            Ok(stream) => {
                // Request-boundary panics are caught inside
                // `handle_request` (they quarantine the session); a
                // panic escaping to here came from outside a request.
                // Either way the worker must survive: catch it, drop
                // the connection, and pull the next one — an in-place
                // respawn.
                let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    serve_connection(shared, &stream, poll);
                }));
                if outcome.is_err() {
                    shared.manager().count_worker_panic();
                }
            }
            Err(_) => return, // acceptor gone: shutdown
        }
    }
}

fn is_timeout(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
    )
}

/// Serve one connection frame-by-frame until the peer hangs up or
/// shutdown is requested.
///
/// Between frames the worker waits with a short-timeout `peek` (which
/// consumes nothing, so a frame arriving mid-timeout is never torn) and
/// checks the shutdown flag; once a frame has started arriving it is
/// read blocking, processed, and answered — an in-flight request always
/// completes, which is what makes shutdown lossless.
fn serve_connection(shared: &Shared, mut stream: &TcpStream, poll: Duration) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_write_timeout(Some(shared.request_deadline));
    loop {
        let _ = stream.set_read_timeout(Some(poll.max(Duration::from_millis(1))));
        let mut probe = [0u8; 1];
        match stream.peek(&mut probe) {
            Ok(0) => return, // EOF: peer closed
            // A frame is waiting but has not been read: during shutdown
            // it is not in-flight yet, so cut the connection — the
            // client sees no ack and knows the batch did not apply.
            Ok(_) if shared.is_shutting_down() => return,
            Ok(_) => {}
            Err(e) if is_timeout(&e) => {
                if shared.is_shutting_down() {
                    return;
                }
                continue;
            }
            Err(_) => return,
        }
        // Per-request deadline: a peer that starts a frame and then
        // stalls (or never reads its reply) releases the worker after
        // the deadline instead of pinning it forever.
        let _ = stream.set_read_timeout(Some(shared.request_deadline));
        let (kind, payload) = match read_frame(&mut stream) {
            Ok(frame) => frame,
            Err(_) => return, // torn, oversized or overdue frame: drop the peer
        };
        if fault::fires("server.drop.recv").is_some() {
            // Simulate the connection dying after the request was read
            // but before it was handled: the client never learns
            // whether the request applied.  (Here, it did not.)
            let _ = stream.shutdown(Shutdown::Both);
            return;
        }
        let (reply_kind, reply_payload) = match handle_request(shared, kind, &payload) {
            Ok(reply) => reply,
            Err(e) => (msg::ERR, encode_error(error_code(&e), &e.to_string())),
        };
        if let Some(cut) = fault::fires("server.drop.reply") {
            // Simulate the connection dying mid-reply, at the armed
            // byte offset of the framed reply: the request *was*
            // applied, but the client sees a torn frame.  This is the
            // case idempotent FEED resume exists for.
            let mut framed = Vec::new();
            let _ = write_frame(&mut framed, reply_kind, &reply_payload);
            let cut = (cut as usize).min(framed.len());
            let _ = stream.write_all(&framed[..cut]);
            let _ = stream.flush();
            let _ = stream.shutdown(Shutdown::Both);
            return;
        }
        if write_frame(&mut stream, reply_kind, &reply_payload).is_err() || stream.flush().is_err()
        {
            return;
        }
        if kind == msg::SHUTDOWN {
            return;
        }
    }
}

/// Render a caught panic payload for the quarantine reason.
fn panic_message(panic: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Dispatch one request frame to a reply frame.  Every error becomes an
/// `ERR` frame with a typed code (the caller encodes it).
fn handle_request(shared: &Shared, kind: u8, payload: &[u8]) -> Result<(u8, Vec<u8>)> {
    match kind {
        msg::OPEN => {
            if shared.is_shutting_down() {
                shared.manager().count_busy();
                return Ok((
                    msg::ERR,
                    encode_error(code::SHUTTING_DOWN, "shutting down: no new sessions"),
                ));
            }
            let mut d = Decoder::new(payload, "OPEN");
            let version = d.get_u32()?;
            if version != WIRE_VERSION {
                return Err(LinkageError::protocol(format!(
                    "wire version mismatch: client speaks {version}, server speaks {WIRE_VERSION}"
                )));
            }
            let config = decode_config(&mut d)?;
            let fingerprint = d.get_u32()?;
            d.finish()?;
            let id = shared.manager().open(config, fingerprint)?;
            let mut e = Encoder::new();
            e.put_u64(id);
            Ok((msg::OPENED, e.finish()))
        }
        msg::FEED => {
            let mut d = Decoder::new(payload, "FEED");
            let id = d.get_u64()?;
            let count = d.get_u32()? as usize;
            let mut records = Vec::with_capacity(count.min(u16::MAX as usize));
            for _ in 0..count {
                records.push(get_sided_record(&mut d)?);
            }
            d.finish()?;
            let incoming: u64 = records.iter().map(record_bytes).sum();
            let mut session = {
                let mut manager = shared.manager();
                let session = manager.checkout(id)?;
                // Reserve after checkout: a checked-out session is not
                // evictable, so the reservation can never evict the very
                // session it is feeding.
                if let Err(e) = manager.reserve_bytes(incoming) {
                    manager.checkin(session, 0);
                    return Err(e);
                }
                session
            };
            let prior = session.state_bytes();
            // The request boundary: a panic inside the engine must not
            // kill the worker.  The session Box unwinds with the stack,
            // so on panic the slot (left `Taken` by checkout) becomes a
            // quarantined tombstone and the client gets a typed error.
            let outcome = catch_unwind(AssertUnwindSafe(move || {
                let result = session.feed(records);
                (session, result)
            }));
            let mut manager = shared.manager();
            match outcome {
                Ok((session, Ok(added))) => {
                    let accepted = session.fed();
                    manager.checkin(session, added as i64);
                    let mut e = Encoder::new();
                    e.put_u64(accepted);
                    e.put_u64(manager.stats().state_bytes);
                    Ok((msg::FED, e.finish()))
                }
                Ok((session, Err(e))) => {
                    manager.discard(session);
                    Err(e)
                }
                Err(panic) => {
                    let reason = panic_message(panic.as_ref());
                    manager.quarantine_poisoned(
                        id,
                        prior,
                        format!("panicked during FEED: {reason}"),
                    );
                    Err(LinkageError::quarantined(format!(
                        "session {id} was poisoned by a panic during FEED and quarantined: \
                         {reason}"
                    )))
                }
            }
        }
        msg::POLL => {
            let mut d = Decoder::new(payload, "POLL");
            let id = d.get_u64()?;
            let max = d.get_u32()? as usize;
            d.finish()?;
            let session = shared.manager().checkout(id)?;
            let prior = session.state_bytes();
            let outcome = catch_unwind(AssertUnwindSafe(move || {
                let mut session = session;
                let result = session.poll(max);
                (session, result)
            }));
            let mut manager = shared.manager();
            match outcome {
                Ok((session, Ok((events, released)))) => {
                    manager.checkin(session, -(released as i64));
                    let mut e = Encoder::new();
                    e.put_u32(events.len() as u32);
                    for event in &events {
                        put_event(&mut e, event);
                    }
                    Ok((msg::EVENTS, e.finish()))
                }
                Ok((session, Err(e))) => {
                    manager.discard(session);
                    Err(e)
                }
                Err(panic) => {
                    let reason = panic_message(panic.as_ref());
                    manager.quarantine_poisoned(
                        id,
                        prior,
                        format!("panicked during POLL: {reason}"),
                    );
                    Err(LinkageError::quarantined(format!(
                        "session {id} was poisoned by a panic during POLL and quarantined: \
                         {reason}"
                    )))
                }
            }
        }
        msg::FIN => {
            let mut d = Decoder::new(payload, "FIN");
            let id = d.get_u64()?;
            d.finish()?;
            let mut session = shared.manager().checkout(id)?;
            session.fin();
            let accepted = session.fed();
            let mut manager = shared.manager();
            manager.checkin(session, 0);
            let mut e = Encoder::new();
            e.put_u64(accepted);
            e.put_u64(manager.stats().state_bytes);
            Ok((msg::FED, e.finish()))
        }
        msg::CLOSE => {
            let mut d = Decoder::new(payload, "CLOSE");
            let id = d.get_u64()?;
            d.finish()?;
            shared.manager().close(id)?;
            Ok((msg::CLOSED, Vec::new()))
        }
        msg::STATS => {
            let stats = shared.manager().stats();
            Ok((msg::STATS_REPLY, stats.encode()))
        }
        msg::SHUTDOWN => {
            shared.shutting_down.store(true, Ordering::Relaxed);
            Ok((msg::BYE, Vec::new()))
        }
        other => Err(LinkageError::protocol(format!(
            "unknown request kind {other} ({})",
            msg::name(other)
        ))),
    }
}
