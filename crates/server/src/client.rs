//! A small blocking client for the linkage line protocol, used by the
//! tests, the bundled example and the bench driver.
//!
//! One [`Client`] wraps one TCP connection and issues strictly
//! request/reply exchanges; `ERR` frames come back as the typed
//! [`LinkageError`] they encode (`Busy`, `OverBudget`, `Protocol`, …),
//! so callers can implement backoff against admission control with a
//! plain `match`.

use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use linkage::api::PipelineConfig;
use linkage::types::snapshot::{Decoder, Encoder};
use linkage::types::{LinkageError, Result, SidedRecord};

use crate::proto::{
    decode_error, encode_config, get_event, msg, put_sided_record, read_frame, write_frame,
    WireEvent, WIRE_VERSION,
};
use crate::session::ServerStats;

/// A server's answer to `FEED` and `FIN`: how much it now holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FeedAck {
    /// Total records the session has accepted so far.
    pub accepted: u64,
    /// The server's resident session bytes after the request.
    pub state_bytes: u64,
}

/// A blocking connection to a [`LinkageServer`](crate::LinkageServer).
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connect to a server.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Self { stream })
    }

    /// Bound how long a single request/reply exchange may block on the
    /// socket.  `None` removes the bound.  An expired deadline surfaces
    /// as [`LinkageError::ConnectionLost`], like any other transport
    /// failure.
    pub fn set_deadline(&mut self, deadline: Option<Duration>) -> Result<()> {
        self.stream.set_read_timeout(deadline)?;
        self.stream.set_write_timeout(deadline)?;
        Ok(())
    }

    /// Fold a transport-layer failure into [`LinkageError::ConnectionLost`].
    ///
    /// Everything I/O-shaped — the peer vanishing, a deadline expiring, a
    /// reply frame cut partway — means the connection is unusable and the
    /// exchange outcome unknown; `ConnectionLost` is what retry layers key
    /// on.  The one exception is the outgoing frame-cap check, which fails
    /// before any byte moves: that stays [`LinkageError::Protocol`],
    /// because it is a caller bug no reconnect will fix.
    fn lost(e: LinkageError) -> LinkageError {
        match e {
            LinkageError::Protocol(m) if m.starts_with("outgoing") => LinkageError::Protocol(m),
            LinkageError::Io(m) | LinkageError::Protocol(m) => LinkageError::ConnectionLost(m),
            other => other,
        }
    }

    /// One request/reply exchange; `ERR` replies become their typed
    /// error, a reply of the wrong kind is a protocol error.
    fn request(&mut self, kind: u8, payload: &[u8], expect: u8) -> Result<Vec<u8>> {
        write_frame(&mut self.stream, kind, payload).map_err(Self::lost)?;
        let (reply_kind, reply) = read_frame(&mut self.stream).map_err(Self::lost)?;
        if reply_kind == msg::ERR {
            return Err(decode_error(&reply));
        }
        if reply_kind != expect {
            return Err(LinkageError::protocol(format!(
                "expected a {} reply to {}, got {}",
                msg::name(expect),
                msg::name(kind),
                msg::name(reply_kind)
            )));
        }
        Ok(reply)
    }

    fn feed_ack(payload: &[u8], section: &'static str) -> Result<FeedAck> {
        let mut d = Decoder::new(payload, section);
        let ack = FeedAck {
            accepted: d.get_u64()?,
            state_bytes: d.get_u64()?,
        };
        d.finish()?;
        Ok(ack)
    }

    /// Open a session running `config`; the config is shipped on the
    /// wire together with its fingerprint, which the server re-derives
    /// from what it decoded — codec drift fails loudly at `OPEN`, not as
    /// silently different join output.
    pub fn open(&mut self, config: &PipelineConfig) -> Result<u64> {
        let mut e = Encoder::new();
        e.put_u32(WIRE_VERSION);
        encode_config(&mut e, config);
        e.put_u32(config.fingerprint());
        let reply = self.request(msg::OPEN, &e.finish(), msg::OPENED)?;
        let mut d = Decoder::new(&reply, "OPENED");
        let id = d.get_u64()?;
        d.finish()?;
        Ok(id)
    }

    /// Feed a batch of records into a session.
    pub fn feed(&mut self, session: u64, records: &[SidedRecord]) -> Result<FeedAck> {
        let mut e = Encoder::new();
        e.put_u64(session);
        e.put_u32(records.len() as u32);
        for record in records {
            put_sided_record(&mut e, record);
        }
        let reply = self.request(msg::FEED, &e.finish(), msg::FED)?;
        Self::feed_ack(&reply, "FED")
    }

    /// Declare a session's input complete; subsequent [`poll`](Self::poll)
    /// calls drain through the final `Finished` event.
    pub fn finish(&mut self, session: u64) -> Result<FeedAck> {
        let mut e = Encoder::new();
        e.put_u64(session);
        let reply = self.request(msg::FIN, &e.finish(), msg::FED)?;
        Self::feed_ack(&reply, "FED")
    }

    /// Fetch up to `max` ready events from a session.
    pub fn poll(&mut self, session: u64, max: u32) -> Result<Vec<WireEvent>> {
        let mut e = Encoder::new();
        e.put_u64(session);
        e.put_u32(max);
        let reply = self.request(msg::POLL, &e.finish(), msg::EVENTS)?;
        let mut d = Decoder::new(&reply, "EVENTS");
        let count = d.get_u32()? as usize;
        let mut events = Vec::with_capacity(count);
        for _ in 0..count {
            events.push(get_event(&mut d)?);
        }
        d.finish()?;
        Ok(events)
    }

    /// [`finish`](Self::finish) then [`poll`](Self::poll) in a loop
    /// until the `Finished` event arrives; returns every drained event
    /// in order (`Finished` last).
    pub fn drain(&mut self, session: u64, batch: u32) -> Result<Vec<WireEvent>> {
        self.finish(session)?;
        let mut events = Vec::new();
        loop {
            let polled = self.poll(session, batch.max(1))?;
            if polled.is_empty() {
                return Err(LinkageError::protocol(format!(
                    "session {session} stopped yielding events before Finished — \
                     was it already drained?"
                )));
            }
            let finished = polled.iter().any(|e| matches!(e, WireEvent::Finished(_)));
            events.extend(polled);
            if finished {
                return Ok(events);
            }
        }
    }

    /// Close a session, releasing its state (live or evicted).
    pub fn close(&mut self, session: u64) -> Result<()> {
        let mut e = Encoder::new();
        e.put_u64(session);
        let reply = self.request(msg::CLOSE, &e.finish(), msg::CLOSED)?;
        if !reply.is_empty() {
            return Err(LinkageError::protocol("CLOSED reply carries a payload"));
        }
        Ok(())
    }

    /// Fetch the server's counters.
    pub fn stats(&mut self) -> Result<ServerStats> {
        let reply = self.request(msg::STATS, &[], msg::STATS_REPLY)?;
        ServerStats::decode(&reply)
    }

    /// Ask the server to shut down gracefully (drain in-flight requests,
    /// persist unfinished sessions).  The server answers `BYE` and then
    /// closes this connection.
    pub fn shutdown_server(&mut self) -> Result<()> {
        let reply = self.request(msg::SHUTDOWN, &[], msg::BYE)?;
        if !reply.is_empty() {
            return Err(LinkageError::protocol("BYE reply carries a payload"));
        }
        Ok(())
    }
}
