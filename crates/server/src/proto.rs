//! Payload codecs for the facade types the wire layer cannot see.
//!
//! `linkage_types::wire` owns the frame envelope plus the codecs for
//! types defined in `linkage-types`; this module adds the two payloads
//! that need the facade crate: the [`PipelineConfig`] carried by `OPEN`
//! and the [`WireEvent`] stream carried by `EVENTS`.  Byte layouts are
//! specified normatively in `docs/server.md`.

use linkage::api::{
    ExecutionMode, InterleavePolicy, JoinPhase, MatchEvent, PipelineConfig, QGramCoefficient,
    RunReport, SwitchEvent, SwitchPolicy,
};
use linkage::types::snapshot::{Decoder, Encoder};
use linkage::types::{LinkageError, MatchPair, PerSide, Result};

/// Re-exported so callers (client, tests, bench) need only this crate.
pub use linkage::types::wire::{
    code, decode_error, encode_error, error_code, get_sided_record, msg, put_sided_record,
    read_frame, write_frame, MAX_FRAME_BYTES, WIRE_VERSION,
};

/// Encode a [`PipelineConfig`] field by field.
///
/// Every field is written, in declaration order; the `OPEN` fingerprint
/// re-computed server-side over the *decoded* config catches any codec
/// drift as a typed mismatch rather than a silently different session.
pub fn encode_config(enc: &mut Encoder, config: &PipelineConfig) {
    enc.put_u64(config.keys.left as u64);
    enc.put_u64(config.keys.right as u64);
    enc.put_u64(config.qgram.q as u64);
    enc.put_bool(config.qgram.pad);
    enc.put_u32(config.qgram.pad_begin as u32);
    enc.put_u32(config.qgram.pad_end as u32);
    enc.put_bool(config.qgram.normalize.uppercase);
    enc.put_bool(config.qgram.normalize.collapse_whitespace);
    enc.put_bool(config.qgram.normalize.strip_punctuation);
    enc.put_u8(match config.similarity {
        QGramCoefficient::Jaccard => 0,
        QGramCoefficient::Dice => 1,
        QGramCoefficient::Cosine => 2,
        QGramCoefficient::Overlap => 3,
    });
    enc.put_f64(config.theta_sim);
    enc.put_f64(config.theta_out);
    enc.put_u64(config.check_every);
    enc.put_u64(config.min_trials);
    enc.put_u32(config.consecutive_alarms);
    enc.put_opt_u64(config.reference_size);
    match config.switch_policy {
        SwitchPolicy::Adaptive => enc.put_u8(0),
        SwitchPolicy::Never => enc.put_u8(1),
        SwitchPolicy::ForceAt(after) => {
            enc.put_u8(2);
            enc.put_u64(after);
        }
    }
    match config.execution {
        ExecutionMode::Serial => enc.put_u8(0),
        ExecutionMode::Sharded { shards } => {
            enc.put_u8(1);
            enc.put_u64(shards as u64);
        }
        // `ExecutionMode` is `#[non_exhaustive]`: a mode this codec does
        // not know cannot be expressed on the wire.
        other => unreachable!("unencodable execution mode {other:?}"),
    }
    enc.put_u64(config.batch_size as u64);
    enc.put_u64(config.channel_capacity as u64);
    match config.interleave {
        InterleavePolicy::Alternate => enc.put_u8(0),
        InterleavePolicy::LeftFirst => enc.put_u8(1),
        InterleavePolicy::RightFirst => enc.put_u8(2),
        InterleavePolicy::Blocks(n) => {
            enc.put_u8(3);
            enc.put_u64(n as u64);
        }
    }
}

fn get_char(dec: &mut Decoder<'_>, what: &str) -> Result<char> {
    let raw = dec.get_u32()?;
    char::from_u32(raw)
        .ok_or_else(|| LinkageError::protocol(format!("{what}: {raw:#x} is not a scalar value")))
}

/// Decode a [`PipelineConfig`] written by [`encode_config`].
pub fn decode_config(dec: &mut Decoder<'_>) -> Result<PipelineConfig> {
    let mut config = PipelineConfig::default();
    config.keys = PerSide::new(dec.get_u64()? as usize, dec.get_u64()? as usize);
    config.qgram.q = dec.get_u64()? as usize;
    config.qgram.pad = dec.get_bool()?;
    config.qgram.pad_begin = get_char(dec, "qgram pad_begin")?;
    config.qgram.pad_end = get_char(dec, "qgram pad_end")?;
    config.qgram.normalize.uppercase = dec.get_bool()?;
    config.qgram.normalize.collapse_whitespace = dec.get_bool()?;
    config.qgram.normalize.strip_punctuation = dec.get_bool()?;
    config.similarity = match dec.get_u8()? {
        0 => QGramCoefficient::Jaccard,
        1 => QGramCoefficient::Dice,
        2 => QGramCoefficient::Cosine,
        3 => QGramCoefficient::Overlap,
        other => {
            return Err(LinkageError::protocol(format!(
                "unknown similarity coefficient tag {other}"
            )))
        }
    };
    config.theta_sim = dec.get_f64()?;
    config.theta_out = dec.get_f64()?;
    config.check_every = dec.get_u64()?;
    config.min_trials = dec.get_u64()?;
    config.consecutive_alarms = dec.get_u32()?;
    config.reference_size = dec.get_opt_u64()?;
    config.switch_policy = match dec.get_u8()? {
        0 => SwitchPolicy::Adaptive,
        1 => SwitchPolicy::Never,
        2 => SwitchPolicy::ForceAt(dec.get_u64()?),
        other => {
            return Err(LinkageError::protocol(format!(
                "unknown switch policy tag {other}"
            )))
        }
    };
    config.execution = match dec.get_u8()? {
        0 => ExecutionMode::Serial,
        1 => ExecutionMode::Sharded {
            shards: dec.get_u64()? as usize,
        },
        other => {
            return Err(LinkageError::protocol(format!(
                "unknown execution mode tag {other}"
            )))
        }
    };
    config.batch_size = dec.get_u64()? as usize;
    config.channel_capacity = dec.get_u64()? as usize;
    config.interleave = match dec.get_u8()? {
        0 => InterleavePolicy::Alternate,
        1 => InterleavePolicy::LeftFirst,
        2 => InterleavePolicy::RightFirst,
        3 => InterleavePolicy::Blocks(dec.get_u64()? as usize),
        other => {
            return Err(LinkageError::protocol(format!(
                "unknown interleave policy tag {other}"
            )))
        }
    };
    Ok(config)
}

/// The final report as it crosses the wire.
///
/// [`RunReport`] is `#[non_exhaustive]` and engine-owned, so the wire
/// carries this flat, constructible projection of it instead; the fields
/// are the ones session consumers act on.
#[derive(Debug, Clone, PartialEq)]
pub struct WireReport {
    /// Engine name (`"serial"`, `"sharded"`).
    pub engine: String,
    /// Worker shards the engine ran.
    pub shards: u64,
    /// Whether the run ended in the approximate phase.
    pub ended_approximate: bool,
    /// Input tuples consumed per side.
    pub consumed: PerSide<u64>,
    /// Distinct pairs emitted exactly.
    pub emitted_exact: u64,
    /// Distinct pairs emitted approximately.
    pub emitted_approximate: u64,
    /// The switch, if it happened.
    pub switch: Option<SwitchEvent>,
}

impl WireReport {
    /// Project an engine report onto the wire shape.
    pub fn from_report(report: &RunReport) -> Self {
        Self {
            engine: report.engine.to_string(),
            shards: report.shards as u64,
            ended_approximate: report.phase == JoinPhase::Approximate,
            consumed: report.consumed,
            emitted_exact: report.emitted.exact,
            emitted_approximate: report.emitted.approximate,
            switch: report.switch,
        }
    }

    /// Total distinct pairs emitted.
    pub fn emitted_total(&self) -> u64 {
        self.emitted_exact + self.emitted_approximate
    }
}

/// One event of a served session's output stream — the wire projection
/// of the facade's [`MatchEvent`].
#[derive(Debug, Clone, PartialEq)]
pub enum WireEvent {
    /// One emitted match pair.
    Match(MatchPair),
    /// The exact → approximate switch happened.
    Switched(SwitchEvent),
    /// The session completed; always the last event.
    Finished(WireReport),
}

/// Event tags on the wire.
pub mod event_tag {
    /// [`super::WireEvent::Match`].
    pub const MATCH: u8 = 0;
    /// [`super::WireEvent::Switched`].
    pub const SWITCHED: u8 = 1;
    /// [`super::WireEvent::Finished`].
    pub const FINISHED: u8 = 2;
}

fn put_switch(enc: &mut Encoder, event: &SwitchEvent) {
    enc.put_u64(event.after_tuples);
    enc.put_f64(event.sigma);
    enc.put_u64(event.recovered);
}

fn get_switch(dec: &mut Decoder<'_>) -> Result<SwitchEvent> {
    Ok(SwitchEvent {
        after_tuples: dec.get_u64()?,
        sigma: dec.get_f64()?,
        recovered: dec.get_u64()?,
    })
}

/// Encode one event: a tag byte plus the tag-specific payload.
pub fn put_event(enc: &mut Encoder, event: &WireEvent) {
    match event {
        WireEvent::Match(pair) => {
            enc.put_u8(event_tag::MATCH);
            enc.put_pair(pair);
        }
        WireEvent::Switched(switch) => {
            enc.put_u8(event_tag::SWITCHED);
            put_switch(enc, switch);
        }
        WireEvent::Finished(report) => {
            enc.put_u8(event_tag::FINISHED);
            enc.put_str(&report.engine);
            enc.put_u64(report.shards);
            enc.put_bool(report.ended_approximate);
            enc.put_u64(report.consumed.left);
            enc.put_u64(report.consumed.right);
            enc.put_u64(report.emitted_exact);
            enc.put_u64(report.emitted_approximate);
            enc.put_bool(report.switch.is_some());
            if let Some(switch) = &report.switch {
                put_switch(enc, switch);
            }
        }
    }
}

/// Decode one event written by [`put_event`].
pub fn get_event(dec: &mut Decoder<'_>) -> Result<WireEvent> {
    match dec.get_u8()? {
        event_tag::MATCH => Ok(WireEvent::Match(dec.get_pair()?)),
        event_tag::SWITCHED => Ok(WireEvent::Switched(get_switch(dec)?)),
        event_tag::FINISHED => {
            let engine = dec.get_str()?.to_string();
            let shards = dec.get_u64()?;
            let ended_approximate = dec.get_bool()?;
            let consumed = PerSide::new(dec.get_u64()?, dec.get_u64()?);
            let emitted_exact = dec.get_u64()?;
            let emitted_approximate = dec.get_u64()?;
            let switch = if dec.get_bool()? {
                Some(get_switch(dec)?)
            } else {
                None
            };
            Ok(WireEvent::Finished(WireReport {
                engine,
                shards,
                ended_approximate,
                consumed,
                emitted_exact,
                emitted_approximate,
                switch,
            }))
        }
        other => Err(LinkageError::protocol(format!("unknown event tag {other}"))),
    }
}

/// Project a facade [`MatchEvent`] onto the wire event (servers).
pub fn wire_event(event: &MatchEvent) -> WireEvent {
    match event {
        MatchEvent::Match(pair) => WireEvent::Match(pair.clone()),
        MatchEvent::Switched(switch) => WireEvent::Switched(*switch),
        MatchEvent::Finished(report) => WireEvent::Finished(WireReport::from_report(report)),
        // `MatchEvent` is `#[non_exhaustive]`: an event this codec does
        // not know cannot be expressed on the wire.
        other => unreachable!("unencodable match event {other:?}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use linkage::types::{Record, Value};

    #[test]
    fn config_round_trips_and_keeps_its_fingerprint() {
        let mut config = PipelineConfig::default();
        config.keys = PerSide::new(2, 1);
        config.similarity = QGramCoefficient::Overlap;
        config.theta_sim = 0.75;
        config.reference_size = Some(4096);
        config.switch_policy = SwitchPolicy::ForceAt(77);
        config.execution = ExecutionMode::Sharded { shards: 3 };
        config.interleave = InterleavePolicy::Blocks(9);
        config.qgram.normalize.strip_punctuation = true;

        let mut enc = Encoder::new();
        encode_config(&mut enc, &config);
        let bytes = enc.finish();
        let mut dec = Decoder::new(&bytes, "OPEN");
        let back = decode_config(&mut dec).unwrap();
        dec.finish().unwrap();
        assert_eq!(back.fingerprint(), config.fingerprint());
        assert_eq!(back.keys, config.keys);
        assert_eq!(back.switch_policy, SwitchPolicy::ForceAt(77));
    }

    #[test]
    fn events_round_trip() {
        let pair = MatchPair::approximate(
            Record::new(1, vec![Value::string("a")]),
            Record::new(2, vec![Value::string("b")]),
            0.875,
        );
        let events = [
            WireEvent::Match(pair),
            WireEvent::Switched(SwitchEvent {
                after_tuples: 42,
                sigma: 1e-9,
                recovered: 7,
            }),
            WireEvent::Finished(WireReport {
                engine: "sharded".into(),
                shards: 4,
                ended_approximate: true,
                consumed: PerSide::new(10, 12),
                emitted_exact: 5,
                emitted_approximate: 6,
                switch: Some(SwitchEvent {
                    after_tuples: 42,
                    sigma: 0.0,
                    recovered: 7,
                }),
            }),
        ];
        for event in &events {
            let mut enc = Encoder::new();
            put_event(&mut enc, event);
            let bytes = enc.finish();
            let mut dec = Decoder::new(&bytes, "EVENTS");
            assert_eq!(&get_event(&mut dec).unwrap(), event);
            dec.finish().unwrap();
        }
    }
}
