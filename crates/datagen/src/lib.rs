//! # linkage-datagen
//!
//! Deterministic synthesis of the paper's parent–child linkage workloads.
//!
//! A generated dataset consists of a **parent** (reference) relation with
//! distinct pseudo-random location keys and a **child** (fact) relation
//! whose records each reference one parent by key.  Key dirt — the
//! phenomenon the adaptive join exists to survive — is injected as
//! character-level edits (substitution, deletion, insertion,
//! transposition), confined to a configurable tail of the child stream so
//! that experiments can reproduce the "source turns dirty mid-stream"
//! scenario of §4.
//!
//! Every dataset is a pure function of its [`DatagenConfig::seed`]
//! (SplitMix64 underneath — no external `rand` dependency), and ships with
//! its ground truth so experiments can score recall and precision.
//!
//! ```
//! use linkage_datagen::{generate, DatagenConfig};
//!
//! let data = generate(&DatagenConfig::mid_stream_dirty(100, 42)).unwrap();
//! assert_eq!(data.children.len(), 100);
//! assert!(data.dirty_children > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod generator;
pub mod rng;

pub use generator::{generate, DatagenConfig, GeneratedData};
pub use rng::SplitMix64;
