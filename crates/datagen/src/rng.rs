//! Deterministic pseudo-random number generation for data synthesis.
//!
//! The workspace builds offline with no `rand` dependency; this SplitMix64
//! generator is small, fast, and — crucially for experiments — makes every
//! generated dataset a pure function of its seed.

/// A SplitMix64 generator.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Seed the generator.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`; `n` must be positive.
    pub fn below(&mut self, n: usize) -> usize {
        debug_assert!(n > 0);
        (self.next_u64() % n as u64) as usize
    }

    /// Uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform uppercase ASCII letter.
    pub fn letter(&mut self) -> char {
        char::from(b'A' + self.below(26) as u8)
    }

    /// A pseudo-random uppercase word of `len` characters derived from
    /// `seed` alone (independent of the generator's own state).
    pub fn word_of(seed: u64, len: usize) -> String {
        let mut rng = SplitMix64::new(seed);
        (0..len).map(|_| rng.letter()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SplitMix64::new(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn bounded_draws_stay_in_range() {
        let mut rng = SplitMix64::new(1);
        for _ in 0..1000 {
            assert!(rng.below(7) < 7);
            let f = rng.next_f64();
            assert!((0.0..1.0).contains(&f));
            assert!(rng.letter().is_ascii_uppercase());
        }
    }

    #[test]
    fn words_are_pure_functions_of_their_seed() {
        assert_eq!(SplitMix64::word_of(5, 8), SplitMix64::word_of(5, 8));
        assert_ne!(SplitMix64::word_of(5, 8), SplitMix64::word_of(6, 8));
        assert_eq!(SplitMix64::word_of(5, 8).len(), 8);
    }
}
