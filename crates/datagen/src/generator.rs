//! The parent/child dataset generator.

use linkage_types::{Field, RecordId, Relation, Result, Schema, Value};

use crate::rng::SplitMix64;

/// How a dirty key was perturbed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Edit {
    Substitute,
    Delete,
    Insert,
    Transpose,
}

/// Generator configuration.
///
/// `#[non_exhaustive]`: construct via [`Default`],
/// [`DatagenConfig::clean`] or [`DatagenConfig::mid_stream_dirty`] and
/// refine with the `with_*` builders.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub struct DatagenConfig {
    /// Number of parent (reference) records.
    pub parents: usize,
    /// Child records per parent on average (children pick parents uniformly
    /// at random, matching the monitor's binomial model).
    pub children_per_parent: usize,
    /// Fraction of the *dirty region* children whose keys are perturbed.
    pub dirty_fraction: f64,
    /// Fraction of the child stream (from the start) guaranteed clean; the
    /// dirty region is everything after it.  `0.5` reproduces the paper's
    /// "source turns dirty mid-stream" scenario.
    pub clean_prefix: f64,
    /// Number of character edits applied to each dirty key.
    pub edits: usize,
    /// Seed making the dataset reproducible.
    pub seed: u64,
}

impl Default for DatagenConfig {
    fn default() -> Self {
        Self {
            parents: 500,
            children_per_parent: 1,
            dirty_fraction: 1.0,
            clean_prefix: 0.5,
            edits: 1,
            seed: 42,
        }
    }
}

impl DatagenConfig {
    /// A small clean dataset (no dirty keys at all).
    pub fn clean(parents: usize, seed: u64) -> Self {
        Self {
            parents,
            clean_prefix: 1.0,
            dirty_fraction: 0.0,
            seed,
            ..Self::default()
        }
    }

    /// The paper's mid-stream-dirt scenario: clean first half, all keys
    /// dirty afterwards.
    pub fn mid_stream_dirty(parents: usize, seed: u64) -> Self {
        Self {
            parents,
            seed,
            ..Self::default()
        }
    }

    /// Override the number of child records per parent.
    #[must_use]
    pub fn with_children_per_parent(mut self, children_per_parent: usize) -> Self {
        self.children_per_parent = children_per_parent;
        self
    }

    /// Override the fraction of dirty-region children that are perturbed.
    #[must_use]
    pub fn with_dirty_fraction(mut self, dirty_fraction: f64) -> Self {
        self.dirty_fraction = dirty_fraction;
        self
    }

    /// Override the guaranteed-clean fraction of the child stream.
    #[must_use]
    pub fn with_clean_prefix(mut self, clean_prefix: f64) -> Self {
        self.clean_prefix = clean_prefix;
        self
    }

    /// Override the number of character edits per dirty key.
    #[must_use]
    pub fn with_edits(mut self, edits: usize) -> Self {
        self.edits = edits;
        self
    }

    /// Total number of child records this configuration produces.
    pub fn children(&self) -> usize {
        self.parents * self.children_per_parent
    }
}

/// A generated dataset: two relations plus ground truth.
#[derive(Debug, Clone)]
pub struct GeneratedData {
    /// The parent (left/reference) relation, schema `(id, location)`.
    pub parents: Relation,
    /// The child (right/fact) relation, schema `(id, location)`; records
    /// appear in stream order, dirty keys only after the clean prefix.
    pub children: Relation,
    /// Ground truth: `(parent id, child id)` for every child.
    pub truth: Vec<(RecordId, RecordId)>,
    /// How many child keys were actually perturbed.
    pub dirty_children: usize,
}

impl GeneratedData {
    /// The column index of the join key in both relations.
    pub const KEY_COLUMN: usize = 1;
}

/// Schema shared by both generated relations.
fn schema() -> Schema {
    Schema::of(vec![Field::integer("id"), Field::string("location")])
}

/// A distinct, pseudo-random location key for parent `i`.
///
/// Keys are two hash-derived words (31 characters total): unrelated keys
/// share essentially no q-grams, while a single character edit keeps the
/// Jaccard similarity of the pair above 0.8 — the separation the
/// approximate join's default threshold relies on.
fn parent_key(seed: u64, i: usize) -> String {
    // `h ^ (2i+1)` and `h ^ (2i+2)` are distinct across all parents and
    // fields (odd vs even low bits), so no two words share a seed.
    let h = SplitMix64::new(seed).next_u64();
    let k = (i as u64) * 2;
    format!(
        "LOC {} {}",
        SplitMix64::word_of(h ^ (k + 1), 12),
        SplitMix64::word_of(h ^ (k + 2), 14)
    )
}

/// Apply one random character edit, never touching the `LOC ` prefix so
/// the key stays recognisable.
fn perturb(key: &str, rng: &mut SplitMix64) -> String {
    let mut chars: Vec<char> = key.chars().collect();
    let lo = 4; // skip the "LOC " prefix
    if chars.len() <= lo + 1 {
        return key.to_string();
    }
    let kind = match rng.below(4) {
        0 => Edit::Substitute,
        1 => Edit::Delete,
        2 => Edit::Insert,
        _ => Edit::Transpose,
    };
    let pos = lo + rng.below(chars.len() - lo);
    match kind {
        Edit::Substitute => {
            let old = chars[pos];
            let mut new = rng.letter();
            while new == old {
                new = rng.letter();
            }
            chars[pos] = new;
        }
        Edit::Delete => {
            chars.remove(pos);
        }
        Edit::Insert => {
            chars.insert(pos, rng.letter());
        }
        Edit::Transpose => {
            let pos = pos.min(chars.len() - 2).max(lo);
            if chars[pos] != chars[pos + 1] {
                chars.swap(pos, pos + 1);
            } else {
                // Swapping equal characters would leave the key unchanged
                // (and wrongly counted as dirty): substitute instead, with
                // a letter guaranteed to differ.
                let old = chars[pos];
                let mut new = rng.letter();
                while new == old {
                    new = rng.letter();
                }
                chars[pos] = new;
            }
        }
    }
    chars.into_iter().collect()
}

/// Generate a parent/child dataset according to `config`.
pub fn generate(config: &DatagenConfig) -> Result<GeneratedData> {
    assert!(config.parents > 0, "at least one parent required");
    assert!(
        (0.0..=1.0).contains(&config.dirty_fraction),
        "dirty_fraction must be in [0, 1]"
    );
    assert!(
        (0.0..=1.0).contains(&config.clean_prefix),
        "clean_prefix must be in [0, 1]"
    );

    let mut rng = SplitMix64::new(config.seed);

    let mut parents = Relation::empty("parents", schema());
    let keys: Vec<String> = (0..config.parents)
        .map(|i| parent_key(config.seed, i))
        .collect();
    for key in &keys {
        let id = parents.len() as i64;
        parents.push_values(vec![Value::Int(id), Value::string(key)])?;
    }

    let total_children = config.children();
    let dirty_from = (config.clean_prefix * total_children as f64).round() as usize;

    let mut children = Relation::empty("children", schema());
    let mut truth = Vec::with_capacity(total_children);
    let mut dirty_children = 0usize;
    for c in 0..total_children {
        let parent = rng.below(config.parents);
        let mut key = keys[parent].clone();
        if c >= dirty_from && rng.next_f64() < config.dirty_fraction {
            for _ in 0..config.edits.max(1) {
                key = perturb(&key, &mut rng);
            }
            dirty_children += 1;
        }
        let child_id = children.push_values(vec![Value::Int(c as i64), Value::string(&key)])?;
        truth.push((RecordId(parent as u64), child_id));
    }

    Ok(GeneratedData {
        parents,
        children,
        truth,
        dirty_children,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn generation_is_deterministic_per_seed() {
        let cfg = DatagenConfig::mid_stream_dirty(50, 7);
        let a = generate(&cfg).unwrap();
        let b = generate(&cfg).unwrap();
        assert_eq!(a.parents, b.parents);
        assert_eq!(a.children, b.children);
        assert_eq!(a.truth, b.truth);
        let c = generate(&DatagenConfig::mid_stream_dirty(50, 8)).unwrap();
        assert_ne!(a.parents, c.parents);
    }

    #[test]
    fn parent_keys_are_distinct() {
        let data = generate(&DatagenConfig::clean(300, 1)).unwrap();
        let keys = data.parents.column_strings("location").unwrap();
        let distinct: HashSet<&str> = keys.iter().copied().collect();
        assert_eq!(distinct.len(), keys.len());
    }

    #[test]
    fn clean_config_produces_no_dirty_children() {
        let data = generate(&DatagenConfig::clean(100, 2)).unwrap();
        assert_eq!(data.dirty_children, 0);
        let parent_keys: HashSet<&str> = data
            .parents
            .column_strings("location")
            .unwrap()
            .into_iter()
            .collect();
        for key in data.children.column_strings("location").unwrap() {
            assert!(parent_keys.contains(key));
        }
    }

    #[test]
    fn mid_stream_config_dirties_only_the_tail() {
        let cfg = DatagenConfig::mid_stream_dirty(200, 3);
        let data = generate(&cfg).unwrap();
        assert!(data.dirty_children > 80, "got {}", data.dirty_children);
        let parent_keys: HashSet<&str> = data
            .parents
            .column_strings("location")
            .unwrap()
            .into_iter()
            .collect();
        let child_keys = data.children.column_strings("location").unwrap();
        let dirty_from = (cfg.clean_prefix * cfg.children() as f64).round() as usize;
        for key in &child_keys[..dirty_from] {
            assert!(parent_keys.contains(key), "clean prefix must stay clean");
        }
        let tail_dirty = child_keys[dirty_from..]
            .iter()
            .filter(|k| !parent_keys.contains(*k))
            .count();
        assert_eq!(tail_dirty, data.dirty_children);
    }

    #[test]
    fn truth_covers_every_child_exactly_once() {
        let data = generate(&DatagenConfig::mid_stream_dirty(80, 4)).unwrap();
        assert_eq!(data.truth.len(), data.children.len());
        let child_ids: HashSet<u64> = data.truth.iter().map(|(_, c)| c.as_u64()).collect();
        assert_eq!(child_ids.len(), data.children.len());
        for (p, _) in &data.truth {
            assert!(data.parents.record_by_id(*p).is_some());
        }
    }

    #[test]
    fn multiple_children_per_parent() {
        let cfg = DatagenConfig {
            parents: 20,
            children_per_parent: 3,
            ..DatagenConfig::clean(20, 5)
        };
        let data = generate(&cfg).unwrap();
        assert_eq!(data.children.len(), 60);
        assert_eq!(data.truth.len(), 60);
    }

    #[test]
    fn perturbation_changes_the_key_but_not_the_prefix() {
        let mut rng = SplitMix64::new(9);
        let key = parent_key(1, 0);
        for _ in 0..50 {
            let dirty = perturb(&key, &mut rng);
            assert_ne!(dirty, key);
            assert!(dirty.starts_with("LOC "));
        }
    }
}
