//! The parent/child dataset generator.

use linkage_types::{Field, RecordId, Relation, Result, Schema, Value};

use crate::rng::SplitMix64;

/// How a dirty key was perturbed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Edit {
    Substitute,
    Delete,
    Insert,
    Transpose,
}

/// Generator configuration.
///
/// `#[non_exhaustive]`: construct via [`Default`],
/// [`DatagenConfig::clean`] or [`DatagenConfig::mid_stream_dirty`] and
/// refine with the `with_*` builders.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub struct DatagenConfig {
    /// Number of parent (reference) records.
    pub parents: usize,
    /// Child records per parent on average (children pick parents uniformly
    /// at random, matching the monitor's binomial model).
    pub children_per_parent: usize,
    /// Fraction of the *dirty region* children whose keys are perturbed.
    pub dirty_fraction: f64,
    /// Fraction of the child stream (from the start) guaranteed clean; the
    /// dirty region is everything after it.  `0.5` reproduces the paper's
    /// "source turns dirty mid-stream" scenario.
    pub clean_prefix: f64,
    /// Number of character edits applied to each dirty key.
    pub edits: usize,
    /// Seed making the dataset reproducible.
    pub seed: u64,
    /// Zipf exponent of the key/gram frequency skew; `0.0` (the default)
    /// keeps the classic uniform workload.
    ///
    /// When positive, parent keys draw two of their three words from a
    /// small shared pool under a Zipf(`zipf`) rank distribution (so the
    /// pool's frequent words — hence their q-grams — appear in a large
    /// fraction of all keys, producing the long-posting-list regime that
    /// set-similarity prefix filtering targets), and children pick their
    /// parent Zipf-distributed by parent index instead of uniformly.
    /// Every key keeps one unique word, so parent keys stay distinct and
    /// every key retains a handful of rare grams.
    pub zipf: f64,
}

impl Default for DatagenConfig {
    fn default() -> Self {
        Self {
            parents: 500,
            children_per_parent: 1,
            dirty_fraction: 1.0,
            clean_prefix: 0.5,
            edits: 1,
            seed: 42,
            zipf: 0.0,
        }
    }
}

impl DatagenConfig {
    /// A small clean dataset (no dirty keys at all).
    pub fn clean(parents: usize, seed: u64) -> Self {
        Self {
            parents,
            clean_prefix: 1.0,
            dirty_fraction: 0.0,
            seed,
            ..Self::default()
        }
    }

    /// The paper's mid-stream-dirt scenario: clean first half, all keys
    /// dirty afterwards.
    pub fn mid_stream_dirty(parents: usize, seed: u64) -> Self {
        Self {
            parents,
            seed,
            ..Self::default()
        }
    }

    /// Override the number of child records per parent.
    #[must_use]
    pub fn with_children_per_parent(mut self, children_per_parent: usize) -> Self {
        self.children_per_parent = children_per_parent;
        self
    }

    /// Override the fraction of dirty-region children that are perturbed.
    #[must_use]
    pub fn with_dirty_fraction(mut self, dirty_fraction: f64) -> Self {
        self.dirty_fraction = dirty_fraction;
        self
    }

    /// Override the guaranteed-clean fraction of the child stream.
    #[must_use]
    pub fn with_clean_prefix(mut self, clean_prefix: f64) -> Self {
        self.clean_prefix = clean_prefix;
        self
    }

    /// Override the number of character edits per dirty key.
    #[must_use]
    pub fn with_edits(mut self, edits: usize) -> Self {
        self.edits = edits;
        self
    }

    /// Override the Zipf exponent of the key/gram frequency skew
    /// (`0.0` = uniform, the default; `1.0` = classic Zipf).
    #[must_use]
    pub fn with_zipf(mut self, zipf: f64) -> Self {
        self.zipf = zipf;
        self
    }

    /// Total number of child records this configuration produces.
    pub fn children(&self) -> usize {
        self.parents * self.children_per_parent
    }
}

/// A generated dataset: two relations plus ground truth.
#[derive(Debug, Clone)]
pub struct GeneratedData {
    /// The parent (left/reference) relation, schema `(id, location)`.
    pub parents: Relation,
    /// The child (right/fact) relation, schema `(id, location)`; records
    /// appear in stream order, dirty keys only after the clean prefix.
    pub children: Relation,
    /// Ground truth: `(parent id, child id)` for every child.
    pub truth: Vec<(RecordId, RecordId)>,
    /// How many child keys were actually perturbed.
    pub dirty_children: usize,
}

impl GeneratedData {
    /// The column index of the join key in both relations.
    pub const KEY_COLUMN: usize = 1;
}

/// Schema shared by both generated relations.
fn schema() -> Schema {
    Schema::of(vec![Field::integer("id"), Field::string("location")])
}

/// A distinct, pseudo-random location key for parent `i`.
///
/// Keys are two hash-derived words (31 characters total): unrelated keys
/// share essentially no q-grams, while a single character edit keeps the
/// Jaccard similarity of the pair above 0.8 — the separation the
/// approximate join's default threshold relies on.
fn parent_key(seed: u64, i: usize) -> String {
    // `h ^ (2i+1)` and `h ^ (2i+2)` are distinct across all parents and
    // fields (odd vs even low bits), so no two words share a seed.
    let h = SplitMix64::new(seed).next_u64();
    let k = (i as u64) * 2;
    format!(
        "LOC {} {}",
        SplitMix64::word_of(h ^ (k + 1), 12),
        SplitMix64::word_of(h ^ (k + 2), 14)
    )
}

/// Inverse-CDF sampler for a Zipf(`s`) rank distribution over `0..n`
/// (rank `r` drawn with probability ∝ `1 / (r + 1)^s`).
#[derive(Debug, Clone)]
struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf sampler needs at least one rank");
        let mut cdf = Vec::with_capacity(n);
        let mut total = 0.0;
        for rank in 0..n {
            total += 1.0 / ((rank + 1) as f64).powf(s);
            cdf.push(total);
        }
        for c in &mut cdf {
            *c /= total;
        }
        Self { cdf }
    }

    fn sample(&self, rng: &mut SplitMix64) -> usize {
        let u = rng.next_f64();
        self.cdf
            .partition_point(|&c| c <= u)
            .min(self.cdf.len() - 1)
    }
}

/// Number of shared words the skewed generator draws parent-key words
/// from; small enough that the frequent ranks dominate many keys.
const SKEW_POOL_WORDS: usize = 64;

/// The skewed-key model: a shared Zipf-weighted word pool (gram
/// frequency skew) plus a Zipf distribution over parent indexes (key
/// frequency skew).
#[derive(Debug, Clone)]
struct SkewModel {
    pool: Vec<String>,
    word_zipf: Zipf,
    parent_zipf: Zipf,
    seed_hash: u64,
}

impl SkewModel {
    fn new(config: &DatagenConfig) -> Self {
        let seed_hash = SplitMix64::new(config.seed).next_u64();
        let mut pool: Vec<String> = Vec::with_capacity(SKEW_POOL_WORDS);
        let mut salt = 0u64;
        while pool.len() < SKEW_POOL_WORDS {
            // Distinct pool words, deterministically: re-roll a colliding
            // word with the next salt.
            let word = SplitMix64::word_of(seed_hash ^ 0x9E37_79B9 ^ salt, 9);
            salt += 1;
            if !pool.contains(&word) {
                pool.push(word);
            }
        }
        Self {
            pool,
            word_zipf: Zipf::new(SKEW_POOL_WORDS, config.zipf),
            parent_zipf: Zipf::new(config.parents, config.zipf),
            seed_hash,
        }
    }

    /// The key of parent `i`: two Zipf-pooled words (frequent grams) plus
    /// one unique word (rare grams keeping keys distinct).
    fn parent_key(&self, i: usize) -> String {
        let k = (i as u64) * 2;
        let mut rng = SplitMix64::new(self.seed_hash ^ (k + 1));
        let a = self.word_zipf.sample(&mut rng);
        let b = self.word_zipf.sample(&mut rng);
        format!(
            "LOC {} {} {}",
            self.pool[a],
            self.pool[b],
            SplitMix64::word_of(self.seed_hash ^ (k + 2), 8)
        )
    }
}

/// Apply one random character edit, never touching the `LOC ` prefix so
/// the key stays recognisable.
fn perturb(key: &str, rng: &mut SplitMix64) -> String {
    let mut chars: Vec<char> = key.chars().collect();
    let lo = 4; // skip the "LOC " prefix
    if chars.len() <= lo + 1 {
        return key.to_string();
    }
    let kind = match rng.below(4) {
        0 => Edit::Substitute,
        1 => Edit::Delete,
        2 => Edit::Insert,
        _ => Edit::Transpose,
    };
    let pos = lo + rng.below(chars.len() - lo);
    match kind {
        Edit::Substitute => {
            let old = chars[pos];
            let mut new = rng.letter();
            while new == old {
                new = rng.letter();
            }
            chars[pos] = new;
        }
        Edit::Delete => {
            chars.remove(pos);
        }
        Edit::Insert => {
            chars.insert(pos, rng.letter());
        }
        Edit::Transpose => {
            let pos = pos.min(chars.len() - 2).max(lo);
            if chars[pos] != chars[pos + 1] {
                chars.swap(pos, pos + 1);
            } else {
                // Swapping equal characters would leave the key unchanged
                // (and wrongly counted as dirty): substitute instead, with
                // a letter guaranteed to differ.
                let old = chars[pos];
                let mut new = rng.letter();
                while new == old {
                    new = rng.letter();
                }
                chars[pos] = new;
            }
        }
    }
    chars.into_iter().collect()
}

/// Generate a parent/child dataset according to `config`.
pub fn generate(config: &DatagenConfig) -> Result<GeneratedData> {
    assert!(config.parents > 0, "at least one parent required");
    assert!(
        (0.0..=1.0).contains(&config.dirty_fraction),
        "dirty_fraction must be in [0, 1]"
    );
    assert!(
        (0.0..=1.0).contains(&config.clean_prefix),
        "clean_prefix must be in [0, 1]"
    );

    assert!(
        config.zipf >= 0.0 && config.zipf.is_finite(),
        "zipf exponent must be finite and non-negative"
    );

    let mut rng = SplitMix64::new(config.seed);
    let skew = (config.zipf > 0.0).then(|| SkewModel::new(config));

    let mut parents = Relation::empty("parents", schema());
    let keys: Vec<String> = (0..config.parents)
        .map(|i| match &skew {
            Some(model) => model.parent_key(i),
            None => parent_key(config.seed, i),
        })
        .collect();
    for key in &keys {
        let id = parents.len() as i64;
        parents.push_values(vec![Value::Int(id), Value::string(key)])?;
    }

    let total_children = config.children();
    let dirty_from = (config.clean_prefix * total_children as f64).round() as usize;

    let mut children = Relation::empty("children", schema());
    let mut truth = Vec::with_capacity(total_children);
    let mut dirty_children = 0usize;
    for c in 0..total_children {
        let parent = match &skew {
            Some(model) => model.parent_zipf.sample(&mut rng),
            None => rng.below(config.parents),
        };
        let mut key = keys[parent].clone();
        if c >= dirty_from && rng.next_f64() < config.dirty_fraction {
            for _ in 0..config.edits.max(1) {
                key = perturb(&key, &mut rng);
            }
            dirty_children += 1;
        }
        let child_id = children.push_values(vec![Value::Int(c as i64), Value::string(&key)])?;
        truth.push((RecordId(parent as u64), child_id));
    }

    Ok(GeneratedData {
        parents,
        children,
        truth,
        dirty_children,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn generation_is_deterministic_per_seed() {
        let cfg = DatagenConfig::mid_stream_dirty(50, 7);
        let a = generate(&cfg).unwrap();
        let b = generate(&cfg).unwrap();
        assert_eq!(a.parents, b.parents);
        assert_eq!(a.children, b.children);
        assert_eq!(a.truth, b.truth);
        let c = generate(&DatagenConfig::mid_stream_dirty(50, 8)).unwrap();
        assert_ne!(a.parents, c.parents);
    }

    #[test]
    fn parent_keys_are_distinct() {
        let data = generate(&DatagenConfig::clean(300, 1)).unwrap();
        let keys = data.parents.column_strings("location").unwrap();
        let distinct: HashSet<&str> = keys.iter().copied().collect();
        assert_eq!(distinct.len(), keys.len());
    }

    #[test]
    fn clean_config_produces_no_dirty_children() {
        let data = generate(&DatagenConfig::clean(100, 2)).unwrap();
        assert_eq!(data.dirty_children, 0);
        let parent_keys: HashSet<&str> = data
            .parents
            .column_strings("location")
            .unwrap()
            .into_iter()
            .collect();
        for key in data.children.column_strings("location").unwrap() {
            assert!(parent_keys.contains(key));
        }
    }

    #[test]
    fn mid_stream_config_dirties_only_the_tail() {
        let cfg = DatagenConfig::mid_stream_dirty(200, 3);
        let data = generate(&cfg).unwrap();
        assert!(data.dirty_children > 80, "got {}", data.dirty_children);
        let parent_keys: HashSet<&str> = data
            .parents
            .column_strings("location")
            .unwrap()
            .into_iter()
            .collect();
        let child_keys = data.children.column_strings("location").unwrap();
        let dirty_from = (cfg.clean_prefix * cfg.children() as f64).round() as usize;
        for key in &child_keys[..dirty_from] {
            assert!(parent_keys.contains(key), "clean prefix must stay clean");
        }
        let tail_dirty = child_keys[dirty_from..]
            .iter()
            .filter(|k| !parent_keys.contains(*k))
            .count();
        assert_eq!(tail_dirty, data.dirty_children);
    }

    #[test]
    fn truth_covers_every_child_exactly_once() {
        let data = generate(&DatagenConfig::mid_stream_dirty(80, 4)).unwrap();
        assert_eq!(data.truth.len(), data.children.len());
        let child_ids: HashSet<u64> = data.truth.iter().map(|(_, c)| c.as_u64()).collect();
        assert_eq!(child_ids.len(), data.children.len());
        for (p, _) in &data.truth {
            assert!(data.parents.record_by_id(*p).is_some());
        }
    }

    #[test]
    fn multiple_children_per_parent() {
        let cfg = DatagenConfig {
            parents: 20,
            children_per_parent: 3,
            ..DatagenConfig::clean(20, 5)
        };
        let data = generate(&cfg).unwrap();
        assert_eq!(data.children.len(), 60);
        assert_eq!(data.truth.len(), 60);
    }

    #[test]
    fn skewed_generation_is_deterministic_and_keeps_keys_distinct() {
        let cfg = DatagenConfig::mid_stream_dirty(400, 11).with_zipf(1.0);
        let a = generate(&cfg).unwrap();
        let b = generate(&cfg).unwrap();
        assert_eq!(a.parents, b.parents);
        assert_eq!(a.children, b.children);
        let keys = a.parents.column_strings("location").unwrap();
        let distinct: HashSet<&str> = keys.iter().copied().collect();
        assert_eq!(
            distinct.len(),
            keys.len(),
            "unique suffix keeps keys distinct"
        );
        assert!(keys.iter().all(|k| k.starts_with("LOC ")));
        // Truth still covers every child.
        assert_eq!(a.truth.len(), a.children.len());
    }

    #[test]
    fn zipf_knob_skews_word_and_parent_frequencies() {
        let uniform = generate(&DatagenConfig::clean(500, 13)).unwrap();
        let skewed = generate(&DatagenConfig::clean(500, 13).with_zipf(1.0)).unwrap();

        // Word (hence gram) frequency: under Zipf the most popular
        // non-prefix word appears in a large fraction of parent keys;
        // uniform keys share no words at all.
        let top_word_share = |data: &GeneratedData| {
            let mut counts: std::collections::HashMap<&str, usize> = Default::default();
            let keys = data.parents.column_strings("location").unwrap();
            for key in &keys {
                for word in key.split(' ').skip(1) {
                    *counts.entry(word).or_default() += 1;
                }
            }
            *counts.values().max().unwrap() as f64 / keys.len() as f64
        };
        assert!(top_word_share(&uniform) <= 1.0 / 500.0 + f64::EPSILON);
        assert!(
            top_word_share(&skewed) > 0.10,
            "got {}",
            top_word_share(&skewed)
        );

        // Key frequency: children concentrate on low-index parents.
        let top_parent_children = skewed.truth.iter().filter(|(p, _)| p.as_u64() == 0).count();
        assert!(
            top_parent_children > skewed.truth.len() / 50,
            "rank-0 parent must be heavily referenced, got {top_parent_children}"
        );
    }

    #[test]
    fn zipf_sampler_prefers_low_ranks() {
        let zipf = Zipf::new(64, 1.0);
        let mut rng = SplitMix64::new(5);
        let mut counts = [0usize; 64];
        for _ in 0..10_000 {
            counts[zipf.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[8] && counts[8] > 0);
        assert!(counts[0] > 1000, "rank 0 carries ~21% of Zipf(1) mass");
    }

    #[test]
    fn perturbation_changes_the_key_but_not_the_prefix() {
        let mut rng = SplitMix64::new(9);
        let key = parent_key(1, 0);
        for _ in 0..50 {
            let dirty = perturb(&key, &mut rng);
            assert_ne!(dirty, key);
            assert!(dirty.starts_with("LOC "));
        }
    }
}
