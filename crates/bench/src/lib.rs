//! # linkage-bench
//!
//! Micro-benchmark support for the linkage workspace.
//!
//! The workspace builds offline, so there is no external bench framework;
//! instead every file under `benches/` is a plain `fn main()` harness
//! (`harness = false`) built from the helpers here:
//!
//! * [`bench()`] — warm up, run a closure `iters` times, report ns/iter;
//! * [`black_box`] — re-export of [`std::hint::black_box`] to keep the
//!   optimiser from deleting measured work;
//! * [`workload`] — the standard parent/child dataset the operator
//!   benchmarks share.
//!
//! Run with `cargo bench`.  The benches are excluded from `cargo test`
//! (`test = false`) so the tier-1 suite stays fast.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use std::hint::black_box;

use std::time::Instant;

use linkage_datagen::{generate, DatagenConfig, GeneratedData};

/// Run `f` `iters` times (after `iters / 10 + 1` warm-up runs) and print
/// one aligned report line.  Returns the measured ns/iter.
pub fn bench(name: &str, iters: u64, mut f: impl FnMut()) -> f64 {
    for _ in 0..(iters / 10 + 1) {
        f();
    }
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    let nanos = start.elapsed().as_nanos() as f64 / iters as f64;
    println!("{name:<44} {nanos:>14.0} ns/iter   ({iters} iters)");
    nanos
}

/// The shared benchmark workload: a mid-stream-dirt dataset of the given
/// parent count, deterministic across runs.
pub fn workload(parents: usize) -> GeneratedData {
    generate(&DatagenConfig::mid_stream_dirty(parents, 42)).expect("benchmark datagen failed")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_reports_positive_timing() {
        let mut acc = 0u64;
        let ns = bench("noop-loop", 10, || {
            acc = black_box(acc.wrapping_add(1));
        });
        assert!(ns >= 0.0);
        assert!(acc > 0);
    }

    #[test]
    fn workload_is_deterministic() {
        assert_eq!(workload(20).children, workload(20).children);
    }
}
