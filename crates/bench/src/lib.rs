//! placeholder
