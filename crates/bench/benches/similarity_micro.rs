//! Similarity-function micro-benchmarks over representative location keys.

use linkage_bench::{bench, black_box};
use linkage_text::{
    jaro_winkler_similarity, levenshtein_distance, GramInterner, QGramConfig, QGramJaccard,
    QGramSet, StringGramSet, StringSimilarity,
};

const A: &str = "TAA BZ SANTA CRISTINA VALGARDENA";
const B: &str = "TAA BZ SANTA CRISTINx VALGARDENA";

fn main() {
    let config = QGramConfig::default();
    let mut interner = GramInterner::new();
    bench("qgram/extract interned (32 chars)", 10_000, || {
        black_box(QGramSet::extract(black_box(A), &config, &mut interner).len());
    });
    bench("qgram/extract string-keyed (32 chars)", 10_000, || {
        black_box(StringGramSet::extract(black_box(A), &config).len());
    });

    let (sa, sb) = (
        QGramSet::extract(A, &config, &mut interner),
        QGramSet::extract(B, &config, &mut interner),
    );
    bench("qgram/jaccard of pre-extracted id sets", 100_000, || {
        black_box(sa.jaccard(black_box(&sb)));
    });

    let jaccard = QGramJaccard::default();
    bench("qgram-jaccard/similarity end-to-end", 10_000, || {
        black_box(jaccard.similarity(black_box(A), black_box(B)));
    });

    bench("levenshtein/distance", 10_000, || {
        black_box(levenshtein_distance(black_box(A), black_box(B)));
    });

    bench("jaro-winkler/similarity", 10_000, || {
        black_box(jaro_winkler_similarity(black_box(A), black_box(B), 0.1));
    });
}
