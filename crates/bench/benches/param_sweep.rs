//! Timing sweep over the similarity threshold: lower thresholds admit more
//! candidates per probe and cost more per tuple.

use linkage_bench::{bench, black_box, workload};
use linkage_operators::{InterleavedScan, Operator, SshJoin};
use linkage_text::QGramConfig;
use linkage_types::{PerSide, VecStream};

fn main() {
    let data = workload(400);
    let keys = PerSide::new(1, 1);
    for theta in [0.9, 0.8, 0.7, 0.6] {
        bench(&format!("ssh-join/full run θ_sim={theta}"), 5, || {
            let scan = InterleavedScan::alternating(
                VecStream::from_relation(&data.parents),
                VecStream::from_relation(&data.children),
            );
            let mut join = SshJoin::new(scan, keys, QGramConfig::default(), theta);
            black_box(join.run_to_end().unwrap().len());
        });
    }
}
