//! Fig. 7 analogue: cost of carrying state — building the exact hash
//! tables vs the inverted q-gram indexes for the same tuples.

use std::collections::VecDeque;

use linkage_bench::{bench, black_box, workload};
use linkage_operators::{ExactJoinCore, SshJoinCore};
use linkage_text::{NormalizeConfig, QGramConfig};
use linkage_types::{PerSide, Side, SidedRecord};

fn main() {
    let data = workload(400);
    let keys = PerSide::new(1, 1);
    let tuples: Vec<SidedRecord> = data
        .parents
        .records()
        .iter()
        .map(|r| SidedRecord::new(Side::Left, r.clone()))
        .collect();

    bench("state/build exact hash table (400 tuples)", 20, || {
        let mut core = ExactJoinCore::new(keys, NormalizeConfig::default());
        let mut out = VecDeque::new();
        for t in &tuples {
            core.process(t.clone(), &mut out).unwrap();
        }
        black_box(core.stored().left);
    });

    bench("state/build inverted q-gram index (400 tuples)", 10, || {
        let mut core = SshJoinCore::new(keys, QGramConfig::default(), 0.8);
        let mut out = VecDeque::new();
        for t in &tuples {
            core.process(t.clone(), &mut out).unwrap();
        }
        black_box(core.indexes()[Side::Left].posting_entries());
    });
}
