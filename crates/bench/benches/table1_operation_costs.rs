//! Table 1 analogue: the primitive operation costs of the two kernels.

use std::sync::Arc;

use linkage_bench::{bench, black_box, workload};
use linkage_operators::KeyTable;
use linkage_text::{GramInterner, QGramConfig, QGramSet, StringGramSet};

fn main() {
    let data = workload(500);
    let keys: Vec<&str> = data
        .parents
        .column_strings("location")
        .expect("string column");
    let config = QGramConfig::default();

    let mut interner = GramInterner::new();
    bench(
        "tokenise one key, interned (|jA|+q-1 grams)",
        10_000,
        || {
            black_box(QGramSet::extract(black_box(keys[0]), &config, &mut interner).len());
        },
    );
    bench("tokenise one key, string-keyed reference", 10_000, || {
        black_box(StringGramSet::extract(black_box(keys[0]), &config).len());
    });

    let mut table = KeyTable::new();
    for (i, key) in keys.iter().enumerate() {
        table.insert(data.parents.records()[i].clone(), Arc::from(*key));
    }
    bench("hash-table probe (hit)", 100_000, || {
        black_box(table.positions_of(black_box(keys[7])).len());
    });
    bench("hash-table probe (miss)", 100_000, || {
        black_box(
            table
                .positions_of(black_box("LOC NO SUCH KEY ANYWHERE"))
                .len(),
        );
    });

    bench("hash-table insert", 10_000, || {
        let mut t = KeyTable::new();
        for (i, key) in keys.iter().take(16).enumerate() {
            t.insert(data.parents.records()[i].clone(), Arc::from(*key));
        }
        black_box(t.len());
    });

    // The inverted-index probe is exercised through the SshJoinCore in
    // `operators_micro`; here we only measure the pure set arithmetic of
    // both representations (dense-id merge vs string merge).
    let sets: Vec<QGramSet> = keys
        .iter()
        .take(64)
        .map(|k| QGramSet::extract(k, &config, &mut interner))
        .collect();
    bench("jaccard over 64 candidate sets (gram ids)", 10_000, || {
        let probe = &sets[0];
        let mut best = 0.0f64;
        for s in &sets {
            best = best.max(probe.jaccard(s));
        }
        black_box(best);
    });
    let string_sets: Vec<StringGramSet> = keys
        .iter()
        .take(64)
        .map(|k| StringGramSet::extract(k, &config))
        .collect();
    bench("jaccard over 64 candidate sets (strings)", 10_000, || {
        let probe = &string_sets[0];
        let mut best = 0.0f64;
        for s in &string_sets {
            best = best.max(probe.jaccard(s));
        }
        black_box(best);
    });
}
