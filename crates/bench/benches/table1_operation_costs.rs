//! Table 1 analogue: the primitive operation costs of the two kernels.

use std::sync::Arc;

use linkage_bench::{bench, black_box, workload};
use linkage_operators::KeyTable;
use linkage_text::{QGramConfig, QGramSet};

fn main() {
    let data = workload(500);
    let keys: Vec<&str> = data
        .parents
        .column_strings("location")
        .expect("string column");
    let config = QGramConfig::default();

    bench("tokenise one key (|jA|+q-1 grams)", 10_000, || {
        black_box(QGramSet::extract(black_box(keys[0]), &config).len());
    });

    let mut table = KeyTable::new();
    for (i, key) in keys.iter().enumerate() {
        table.insert(data.parents.records()[i].clone(), Arc::from(*key));
    }
    bench("hash-table probe (hit)", 100_000, || {
        black_box(table.positions_of(black_box(keys[7])).len());
    });
    bench("hash-table probe (miss)", 100_000, || {
        black_box(
            table
                .positions_of(black_box("LOC NO SUCH KEY ANYWHERE"))
                .len(),
        );
    });

    bench("hash-table insert", 10_000, || {
        let mut t = KeyTable::new();
        for (i, key) in keys.iter().take(16).enumerate() {
            t.insert(data.parents.records()[i].clone(), Arc::from(*key));
        }
        black_box(t.len());
    });

    // The inverted-index probe is exercised through the SshJoinCore in
    // `operators_micro`; here we only measure the pure set arithmetic.
    let sets: Vec<QGramSet> = keys
        .iter()
        .take(64)
        .map(|k| QGramSet::extract(k, &config))
        .collect();
    bench("jaccard over 64 candidate sets", 10_000, || {
        let probe = &sets[0];
        let mut best = 0.0f64;
        for s in &sets {
            best = best.max(probe.jaccard(s));
        }
        black_box(best);
    });
}
