//! Fig. 6 timing analogue: the runtime cost of adaptivity — exact-only vs
//! adaptive on the same mid-stream-dirt workload.

use linkage_bench::{bench, black_box, workload};
use linkage_core::{AdaptiveJoin, ControllerConfig};
use linkage_operators::{
    InterleavedScan, Operator, SwitchJoin, SwitchJoinConfig, SymmetricHashJoin,
};
use linkage_types::{PerSide, VecStream};

fn main() {
    let data = workload(400);
    let keys = PerSide::new(1, 1);
    let scan = || {
        InterleavedScan::alternating(
            VecStream::from_relation(&data.parents),
            VecStream::from_relation(&data.children),
        )
    };

    bench("exact-only/full run (baseline)", 10, || {
        let mut join = SymmetricHashJoin::new(scan(), keys);
        black_box(join.run_to_end().unwrap().len());
    });

    bench("adaptive/full run (switches mid-stream)", 5, || {
        let join = SwitchJoin::new(scan(), SwitchJoinConfig::new(keys));
        let mut adaptive =
            AdaptiveJoin::new(join, ControllerConfig::new(data.parents.len() as u64));
        black_box(adaptive.run_to_end().unwrap().len());
    });
}
