//! Fig. 8 analogue: the cost of the switch itself — state migration plus
//! recovery probing — as resident state grows.

use std::collections::VecDeque;

use linkage_bench::{bench, black_box, workload};
use linkage_operators::{ExactJoinCore, SshJoinCore};
use linkage_text::{NormalizeConfig, QGramConfig};
use linkage_types::{PerSide, Side, SidedRecord};

fn main() {
    for parents in [100usize, 200, 400] {
        let data = workload(parents);
        let keys = PerSide::new(1, 1);
        // Fill an exact core with the full input.
        let mut exact = ExactJoinCore::new(keys, NormalizeConfig::default());
        let mut out = VecDeque::new();
        for (side, relation) in [(Side::Left, &data.parents), (Side::Right, &data.children)] {
            for r in relation.records() {
                exact
                    .process(SidedRecord::new(side, r.clone()), &mut out)
                    .unwrap();
            }
        }
        out.clear();

        bench(
            &format!("handover/migrate+recover ({} resident tuples)", 2 * parents),
            5,
            || {
                let mut sink = VecDeque::new();
                let (core, recovered) = SshJoinCore::from_exact(
                    keys,
                    QGramConfig::default(),
                    0.8,
                    exact.tables().clone(),
                    &mut sink,
                );
                black_box((core.stored().left, recovered));
            },
        );
    }
}
