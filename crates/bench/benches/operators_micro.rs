//! Per-operator micro-benchmarks: the probe+insert kernels and the full
//! operator stacks over the shared workload.

use std::collections::VecDeque;

use linkage_bench::{bench, black_box, workload};
use linkage_operators::{
    ExactJoinCore, InterleavedScan, Operator, SshJoinCore, SwitchJoin, SwitchJoinConfig,
    SymmetricHashJoin,
};
use linkage_text::{NormalizeConfig, QGramConfig};
use linkage_types::{PerSide, Side, SidedRecord, VecStream};

fn main() {
    let data = workload(500);
    let keys = PerSide::new(1, 1);
    let tuples: Vec<SidedRecord> = data
        .parents
        .records()
        .iter()
        .map(|r| SidedRecord::new(Side::Left, r.clone()))
        .chain(
            data.children
                .records()
                .iter()
                .map(|r| SidedRecord::new(Side::Right, r.clone())),
        )
        .collect();

    bench("exact-core/probe+insert (1k tuples)", 20, || {
        let mut core = ExactJoinCore::new(keys, NormalizeConfig::default());
        let mut out = VecDeque::new();
        for t in &tuples {
            core.process(t.clone(), &mut out).unwrap();
        }
        black_box(out.len());
    });

    bench("ssh-core/probe+insert (1k tuples)", 5, || {
        let mut core = SshJoinCore::new(keys, QGramConfig::default(), 0.8);
        let mut out = VecDeque::new();
        for t in &tuples {
            core.process(t.clone(), &mut out).unwrap();
        }
        black_box(out.len());
    });

    bench("symmetric-hash-join/full run", 10, || {
        let scan = InterleavedScan::alternating(
            VecStream::from_relation(&data.parents),
            VecStream::from_relation(&data.children),
        );
        let mut join = SymmetricHashJoin::new(scan, keys);
        black_box(join.run_to_end().unwrap().len());
    });

    bench("switch-join/full run with mid-stream switch", 5, || {
        let scan = InterleavedScan::alternating(
            VecStream::from_relation(&data.parents),
            VecStream::from_relation(&data.children),
        );
        let mut join = SwitchJoin::new(scan, SwitchJoinConfig::new(keys));
        join.open().unwrap();
        for _ in 0..1000 {
            join.advance().unwrap();
        }
        join.switch_to_approximate().unwrap();
        while join.next().unwrap().is_some() {}
        join.close().unwrap();
    });
}
