//! Fig. 5 timing analogue: adaptive-join runtime as the dirty region
//! moves through the stream (earlier dirt → earlier switch → more time in
//! the costlier approximate kernel).

use linkage_bench::{bench, black_box};
use linkage_core::{AdaptiveJoin, ControllerConfig};
use linkage_datagen::{generate, DatagenConfig};
use linkage_operators::{InterleavedScan, Operator, SwitchJoin, SwitchJoinConfig};
use linkage_types::{PerSide, VecStream};

fn main() {
    for clean_prefix in [0.25, 0.5, 0.75] {
        let mut cfg = DatagenConfig::mid_stream_dirty(400, 42);
        cfg.clean_prefix = clean_prefix;
        let data = generate(&cfg).expect("datagen failed");
        bench(
            &format!("adaptive-join/full run clean_prefix={clean_prefix}"),
            5,
            || {
                let scan = InterleavedScan::alternating(
                    VecStream::from_relation(&data.parents),
                    VecStream::from_relation(&data.children),
                );
                let join = SwitchJoin::new(scan, SwitchJoinConfig::new(PerSide::new(1, 1)));
                let mut adaptive =
                    AdaptiveJoin::new(join, ControllerConfig::new(data.parents.len() as u64));
                black_box(adaptive.run_to_end().unwrap().len());
            },
        );
    }
}
