fn main() {}
