//! Q-gram extraction.
//!
//! The paper (§2.2) defines `q(s)` as "the set of all substrings obtained by
//! sliding a window of width q (typically, q = 3) over s" and its cost model
//! (Table 1) assumes a string whose join attribute has `|jA|` characters
//! yields `|jA| + q − 1` q-grams.  That count corresponds to the classic
//! padded-q-gram convention (Gravano et al.): the string is logically
//! extended with `q − 1` copies of a begin marker and `q − 1` copies of an
//! end marker, giving `|s| + q − 1` windows, of which duplicates are removed
//! when the *set* is taken.
//!
//! Two set representations share the window enumeration:
//!
//! * [`QGramSet`] — the production representation: each gram is interned to
//!   a dense [`GramId`] through a [`GramInterner`], and the set is a sorted
//!   `Vec<GramId>`.  Set operations are integer merges and the approximate
//!   join's inverted index can use ids as direct array indexes — no string
//!   hashing anywhere on the probe path.
//! * [`StringGramSet`] — the retained string-keyed reference: sorted
//!   `Arc<str>` grams, exactly the representation the kernel used before
//!   interning.  The standalone similarity functions build on it (they
//!   compare one pair at a time, where an interner would be pure overhead)
//!   and the property suites probe the interned kernel against it.

use std::collections::BTreeSet;
use std::fmt;
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use crate::intern::{GramId, GramInterner};
use crate::normalize::{normalize, NormalizeConfig};

/// A single q-gram as shared text.
///
/// Grams are shared behind an `Arc<str>` wherever they are kept as strings
/// (the [`StringGramSet`] reference path and the interner's own table), so
/// the memory cost stays at the `n · (|jA| + q − 1) · p` pointers the
/// paper's §2.3 space analysis assumes rather than duplicating string data
/// per posting.
pub type Gram = Arc<str>;

/// Configuration for q-gram extraction.
///
/// `#[non_exhaustive]`: construct via [`Default`], [`QGramConfig::with_q`]
/// or [`QGramConfig::unpadded`] so new knobs can be added without breaking
/// downstream crates.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
#[non_exhaustive]
pub struct QGramConfig {
    /// Window width. The paper uses `q = 3`.
    pub q: usize,
    /// Whether to pad with `q − 1` begin/end markers. Padding is what makes
    /// the gram count equal `|s| + q − 1` and gives prefix/suffix characters
    /// the same weight as interior ones.
    pub pad: bool,
    /// Character used for the begin marker (must not occur in input).
    pub pad_begin: char,
    /// Character used for the end marker (must not occur in input).
    pub pad_end: char,
    /// Normalisation applied to the string before tokenisation.
    pub normalize: NormalizeConfig,
}

impl Default for QGramConfig {
    fn default() -> Self {
        Self {
            q: linkage_types::defaults::Q,
            pad: true,
            pad_begin: '\u{2310}', // '⌐', outside the generator's alphabet
            pad_end: '\u{00B6}',   // '¶'
            normalize: NormalizeConfig::default(),
        }
    }
}

impl QGramConfig {
    /// Configuration with a custom window width and default padding.
    pub fn with_q(q: usize) -> Self {
        Self {
            q,
            ..Self::default()
        }
    }

    /// Configuration without padding (gram count `max(|s| − q + 1, 0/1)`).
    pub fn unpadded(q: usize) -> Self {
        Self {
            q,
            pad: false,
            ..Self::default()
        }
    }

    /// Number of (non-deduplicated) windows this configuration produces for a
    /// string of `len` characters — the `|jA| + q − 1` of the paper when
    /// padding is on.
    pub fn expected_window_count(&self, len: usize) -> usize {
        if self.q == 0 {
            return 0;
        }
        if self.pad {
            if len == 0 {
                0
            } else {
                len + self.q - 1
            }
        } else if len >= self.q {
            len - self.q + 1
        } else if len == 0 {
            0
        } else {
            1 // the whole (short) string is taken as a single gram
        }
    }
}

/// Enumerate the sliding windows of `input` under `config`, calling `f`
/// with each window's text.  Returns the window count (the paper's
/// `|jA| + q − 1` with padding); both set representations share this
/// enumeration so they tokenise bit-identically.
fn for_each_window(input: &str, config: &QGramConfig, mut f: impl FnMut(&str)) -> usize {
    if config.q == 0 {
        return 0;
    }
    let normalized = normalize(input, &config.normalize);
    if normalized.is_empty() {
        return 0;
    }

    let mut chars: Vec<char> = Vec::with_capacity(normalized.len() + 2 * (config.q - 1));
    if config.pad {
        chars.extend(std::iter::repeat_n(config.pad_begin, config.q - 1));
    }
    chars.extend(normalized.chars());
    if config.pad {
        chars.extend(std::iter::repeat_n(config.pad_end, config.q - 1));
    }

    let mut buf = String::with_capacity(config.q * 4);
    if chars.len() < config.q {
        // Unpadded short string: take the whole string as one gram.
        buf.extend(chars.iter());
        f(&buf);
        return 1;
    }
    let mut window_count = 0usize;
    for window in chars.windows(config.q) {
        buf.clear();
        buf.extend(window.iter());
        f(&buf);
        window_count += 1;
    }
    window_count
}

/// The deduplicated, **interned** q-gram set of one string.
///
/// Grams are dense [`GramId`]s kept sorted, so set operations
/// (intersection/union sizes, hence Jaccard/Dice/overlap) are linear
/// integer merges, and the approximate join's flat posting lists can be
/// indexed directly by id.  Two sets are only comparable when their ids
/// come from the **same** [`GramInterner`] (or [`SharedInterner`]
/// handles over the same table) — which is also why this type is *not*
/// serialisable: bare ids are meaningless outside the issuing interner,
/// so a round-tripped set would intersect as structurally valid garbage.
/// Serialise the self-contained [`StringGramSet`] instead.
///
/// [`SharedInterner`]: crate::intern::SharedInterner
#[derive(Debug, Clone, Default)]
pub struct QGramSet {
    grams: Vec<GramId>,
    /// The same ids permuted **rare-first** (ascending document frequency
    /// at extraction time, ties by id) — the traversal order of the probe
    /// prefix.  A snapshot: later extractions of the same string may rank
    /// differently as frequencies evolve, which is why equality ignores
    /// this field.
    probe_order: Vec<GramId>,
    /// Number of windows before deduplication (used by the cost model).
    window_count: usize,
}

/// Two sets are equal when they contain the same ids (and saw the same
/// window count) — the rare-first [`QGramSet::probe_order`] is a
/// frequency *snapshot*, not part of the set's identity.
impl PartialEq for QGramSet {
    fn eq(&self, other: &Self) -> bool {
        self.grams == other.grams && self.window_count == other.window_count
    }
}

impl Eq for QGramSet {}

impl QGramSet {
    /// Extract the q-gram set of `input` under `config`, interning each
    /// distinct gram through `interner`.
    ///
    /// Extraction also **notes the set** in the interner's document-
    /// frequency sidecar (once per distinct gram) and snapshots the
    /// rare-first [`Self::probe_order`] from the updated frequencies.
    pub fn extract(input: &str, config: &QGramConfig, interner: &mut GramInterner) -> Self {
        let mut grams: Vec<GramId> = Vec::new();
        let window_count = for_each_window(input, config, |window| {
            grams.push(interner.intern(window));
        });
        grams.sort_unstable();
        grams.dedup();
        interner.note_document(&grams);
        let probe_order = interner.rank_order(&grams);
        Self {
            grams,
            probe_order,
            window_count,
        }
    }

    /// Reassemble a set from its snapshot columns: the sorted id column,
    /// the rare-first permutation captured at original extraction time,
    /// and the pre-dedup window count.
    ///
    /// **Snapshot restore only.**  The caller owns the invariants
    /// `extract` normally guarantees — `grams` sorted ascending and
    /// distinct, `probe_order` a permutation of `grams`, and every id
    /// issued by the interner the set will be used with.  The snapshot
    /// decoder validates the first two; the last is what shipping the
    /// interner section alongside every core section is for.  Preserving
    /// the *original* probe order (rather than re-ranking against
    /// restored frequencies) is what makes a resumed run scan posting
    /// lists in exactly the order the interrupted run would have.
    pub fn from_parts(grams: Vec<GramId>, probe_order: Vec<GramId>, window_count: usize) -> Self {
        debug_assert!(grams.windows(2).all(|w| w[0] < w[1]), "sorted + distinct");
        debug_assert_eq!(grams.len(), probe_order.len());
        Self {
            grams,
            probe_order,
            window_count,
        }
    }

    /// Number of **distinct** grams.
    pub fn len(&self) -> usize {
        self.grams.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.grams.is_empty()
    }

    /// Number of sliding windows before deduplication (`|s| + q − 1` with
    /// padding).  This is the quantity the paper's cost model uses.
    pub fn window_count(&self) -> usize {
        self.window_count
    }

    /// The gram ids, sorted ascending.
    pub fn gram_ids(&self) -> &[GramId] {
        &self.grams
    }

    /// The gram ids in rare-first rank order (ascending document
    /// frequency at extraction time) — the order the prefix filter scans
    /// posting lists in.  Same distinct ids as [`Self::gram_ids`],
    /// permuted.
    pub fn probe_order(&self) -> &[GramId] {
        &self.probe_order
    }

    /// Estimated heap bytes of the id storage (both the sorted column
    /// and the rare-first permutation) — what the operators' state
    /// accounting charges per resident tuple.
    pub fn ids_bytes(&self) -> usize {
        (self.grams.len() + self.probe_order.len()) * std::mem::size_of::<GramId>()
    }

    /// Whether `id` is a member.
    pub fn contains(&self, id: GramId) -> bool {
        self.grams.binary_search(&id).is_ok()
    }

    /// Iterator over the gram ids.
    pub fn iter(&self) -> impl Iterator<Item = GramId> + '_ {
        self.grams.iter().copied()
    }

    /// `|self ∩ other|` by sorted merge.  Both sets must come from the
    /// same interner.
    pub fn intersection_size(&self, other: &QGramSet) -> usize {
        overlap_at_least(&self.grams, &other.grams, 0).unwrap_or(0)
    }

    /// `|self ∪ other|`.  Both sets must come from the same interner.
    pub fn union_size(&self, other: &QGramSet) -> usize {
        self.len() + other.len() - self.intersection_size(other)
    }

    /// The Jaccard coefficient `|A ∩ B| / |A ∪ B|` (the paper's `sim`).
    /// Both sets must come from the same interner.
    ///
    /// Two empty sets have similarity 1 (identical); an empty set against a
    /// non-empty set has similarity 0.
    pub fn jaccard(&self, other: &QGramSet) -> f64 {
        if self.is_empty() && other.is_empty() {
            return 1.0;
        }
        let inter = self.intersection_size(other);
        let union = self.len() + other.len() - inter;
        if union == 0 {
            1.0
        } else {
            inter as f64 / union as f64
        }
    }

    /// The Jaccard similarity implied by an externally counted intersection
    /// size — the formula the approximate join uses once its per-candidate
    /// counters are known: `c / (|A| + |B| − c)`.
    ///
    /// Delegates to [`QGramCoefficient::Jaccard`], the single home of the
    /// coefficient arithmetic.
    ///
    /// [`QGramCoefficient::Jaccard`]: crate::similarity::QGramCoefficient
    pub fn jaccard_from_overlap(len_a: usize, len_b: usize, overlap: usize) -> f64 {
        crate::similarity::QGramCoefficient::Jaccard.from_overlap(len_a, len_b, overlap)
    }

    /// Minimum number of common grams two sets must share for their Jaccard
    /// similarity to possibly reach `threshold`, given that this set has
    /// `self.len()` grams: `⌈θ · |A|⌉`.
    ///
    /// This is the bound the approximate join uses to drive the
    /// reverse-frequency prefix optimisation (§2.2, point 4 and following
    /// paragraph): if `J(A, B) ≥ θ` then `|A ∩ B| ≥ θ·|A ∪ B| ≥ θ·|A|`.
    /// Delegates to [`QGramCoefficient::Jaccard`]; the other coefficients
    /// carry their own sound bounds there.
    ///
    /// [`QGramCoefficient::Jaccard`]: crate::similarity::QGramCoefficient
    pub fn min_overlap_for(&self, threshold: f64) -> usize {
        crate::similarity::QGramCoefficient::Jaccard.min_overlap(self.len(), threshold)
    }
}

/// Size ratio beyond which [`overlap_at_least`] switches from the linear
/// merge to galloping (exponential search) over the longer side, and
/// [`overlap_block`] prefers the galloping merge over the chunked
/// kernel.
pub const GALLOP_RATIO: usize = 8;

/// Exact `|a ∩ b|` of two sorted, deduplicated [`GramId`] slices — unless
/// the intersection provably cannot reach `min`, in which case `None` is
/// returned as soon as that is known (`count so far + elements left on
/// the shorter side < min`).
///
/// This is the approximate join's **merge-based verification** primitive:
/// a prefix-filtered candidate's overlap is computed exactly here instead
/// of being accumulated posting list by posting list, and candidates that
/// cannot reach the coefficient's `min_overlap` bound exit early.  When
/// one side is ≥ `GALLOP_RATIO` (8)× longer than the other, the merge
/// gallops (exponential search) through the longer side, so lopsided
/// intersections cost `O(short · log long)` instead of `O(long)`.
///
/// `min == 0` never exits early and always yields the exact size.
pub fn overlap_at_least<'s>(mut a: &'s [GramId], mut b: &'s [GramId], min: usize) -> Option<usize> {
    let mut count = 0usize;
    while !a.is_empty() && !b.is_empty() {
        // Keep `a` the shorter side; the early exit and the gallop both
        // key off it.
        if a.len() > b.len() {
            std::mem::swap(&mut a, &mut b);
        }
        if count + a.len() < min {
            return None;
        }
        if b.len() >= GALLOP_RATIO * a.len() {
            let target = a[0];
            let pos = lower_bound_gallop(b, target);
            if b.get(pos) == Some(&target) {
                count += 1;
                b = &b[pos + 1..];
            } else {
                b = &b[pos..];
            }
            a = &a[1..];
            continue;
        }
        match a[0].cmp(&b[0]) {
            std::cmp::Ordering::Less => a = &a[1..],
            std::cmp::Ordering::Greater => b = &b[1..],
            std::cmp::Ordering::Equal => {
                count += 1;
                a = &a[1..];
                b = &b[1..];
            }
        }
    }
    (count >= min).then_some(count)
}

/// First index of sorted `b` whose element is `>= target`, found by
/// exponential probing followed by a binary search over the bracketed
/// range — `O(log position)` rather than `O(log |b|)` when the target
/// sits near the front, which is the common case while merging.
fn lower_bound_gallop(b: &[GramId], target: GramId) -> usize {
    let mut bound = 1;
    while bound < b.len() && b[bound] < target {
        bound *= 2;
    }
    let lo = bound / 2;
    let hi = bound.min(b.len());
    lo + b[lo..hi].partition_point(|&x| x < target)
}

/// Lane width of the [`overlap_chunked`] block kernel: candidate gram
/// columns are compared eight `u32`s at a time, one SSE/NEON register's
/// worth, so the lane loop compiles to a vector compare on any target
/// without unstable intrinsics.
pub const CHUNK_LANES: usize = 8;

/// Exact `|a ∩ b|` with the same early-exit contract as
/// [`overlap_at_least`], computed by the **chunked block kernel**: for
/// each element of the shorter side, the longer side is advanced in
/// [`CHUNK_LANES`]-wide chunks — one branch to skip a whole chunk that
/// sits entirely below the needle, then a branch-free eight-lane
/// `<`-count to place the needle inside the chunk.  The lane loop is an
/// explicit fixed-trip-count loop over a `[GramId; 8]`, which LLVM
/// lowers to a vector compare + horizontal add on every mainstream
/// target.
///
/// Compared to the element-at-a-time merge this trades branch
/// mispredictions (one unpredictable three-way compare per element) for
/// predictable chunk arithmetic, which wins when the two sides are of
/// similar length — the common case after the length filter.  For
/// lopsided pairs (ratio ≥ [`GALLOP_RATIO`]×) the galloping merge in
/// [`overlap_at_least`] is still faster; [`overlap_block`] dispatches
/// between the two.
pub fn overlap_chunked(a: &[GramId], b: &[GramId], min: usize) -> Option<usize> {
    let (short, long) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    if short.len() < min {
        return None;
    }
    let mut count = 0usize;
    let mut j = 0usize;
    for (k, &needle) in short.iter().enumerate() {
        if count + (short.len() - k) < min {
            return None;
        }
        // Skip whole chunks strictly below the needle: one comparison
        // against the chunk's last lane retires eight candidates.
        while j + CHUNK_LANES <= long.len() && long[j + CHUNK_LANES - 1] < needle {
            j += CHUNK_LANES;
        }
        if j + CHUNK_LANES <= long.len() {
            // The needle lands inside this chunk (its last lane is
            // `>= needle`): count the lanes below it branch-free.
            let chunk: &[GramId; CHUNK_LANES] = long[j..j + CHUNK_LANES].try_into().unwrap();
            let mut below = 0usize;
            for &lane in chunk {
                below += usize::from(lane < needle);
            }
            j += below;
            if long[j] == needle {
                count += 1;
                j += 1;
            }
        } else {
            // Scalar tail: fewer than CHUNK_LANES elements left.
            while j < long.len() && long[j] < needle {
                j += 1;
            }
            match long.get(j) {
                Some(&x) if x == needle => {
                    count += 1;
                    j += 1;
                }
                Some(_) => {}
                None => {
                    // The longer side is exhausted; only the early-exit
                    // bound can still fail.
                    return (count >= min).then_some(count);
                }
            }
        }
    }
    (count >= min).then_some(count)
}

/// Block-verification entry point: exact `|a ∩ b|` under the
/// [`overlap_at_least`] early-exit contract, dispatching between the
/// chunked kernel ([`overlap_chunked`]) for similar-length pairs and the
/// galloping merge ([`overlap_at_least`]) when one side is ≥
/// [`GALLOP_RATIO`]× longer — lopsided intersections are dominated by
/// skipping, which exponential search does in `O(short · log long)`
/// while the chunk loop still walks every chunk boundary.
pub fn overlap_block(a: &[GramId], b: &[GramId], min: usize) -> Option<usize> {
    let (short_len, long_len) = if a.len() <= b.len() {
        (a.len(), b.len())
    } else {
        (b.len(), a.len())
    };
    if long_len >= GALLOP_RATIO * short_len.max(1) {
        overlap_at_least(a, b, min)
    } else {
        overlap_chunked(a, b, min)
    }
}

impl fmt::Display for QGramSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, g) in self.grams.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "#{}", g.as_u32())?;
        }
        write!(f, "}}")
    }
}

/// The deduplicated q-gram set of one string, as sorted shared text — the
/// retained string-keyed reference representation.
///
/// This is exactly the set the probe kernel used before gram interning:
/// the reference probe in `linkage-operators` and the oracle-vs-kernel
/// property suites keep it alive so the interned fast path always has an
/// independently implemented twin to be checked against.  Self-contained
/// (no interner), hence also what the standalone [`StringSimilarity`]
/// implementations tokenise with.
///
/// [`StringSimilarity`]: crate::similarity::StringSimilarity
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct StringGramSet {
    grams: Vec<Gram>,
    /// Number of windows before deduplication (used by the cost model).
    window_count: usize,
}

impl StringGramSet {
    /// Extract the q-gram set of `input` under `config`.
    pub fn extract(input: &str, config: &QGramConfig) -> Self {
        let mut set: BTreeSet<Gram> = BTreeSet::new();
        let window_count = for_each_window(input, config, |window| {
            if !set.contains(window) {
                set.insert(Arc::from(window));
            }
        });
        Self {
            grams: set.into_iter().collect(),
            window_count,
        }
    }

    /// Extract with the default configuration (`q = 3`, padded).
    pub fn extract_default(input: &str) -> Self {
        Self::extract(input, &QGramConfig::default())
    }

    /// Number of **distinct** grams.
    pub fn len(&self) -> usize {
        self.grams.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.grams.is_empty()
    }

    /// Number of sliding windows before deduplication.
    pub fn window_count(&self) -> usize {
        self.window_count
    }

    /// The grams, sorted ascending.
    pub fn grams(&self) -> &[Gram] {
        &self.grams
    }

    /// Whether `gram` is a member.
    pub fn contains(&self, gram: &str) -> bool {
        self.grams
            .binary_search_by(|g| g.as_ref().cmp(gram))
            .is_ok()
    }

    /// Iterator over the grams.
    pub fn iter(&self) -> impl Iterator<Item = &Gram> {
        self.grams.iter()
    }

    /// `|self ∩ other|` by sorted merge.
    pub fn intersection_size(&self, other: &StringGramSet) -> usize {
        let mut i = 0;
        let mut j = 0;
        let mut count = 0;
        while i < self.grams.len() && j < other.grams.len() {
            match self.grams[i].cmp(&other.grams[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    count += 1;
                    i += 1;
                    j += 1;
                }
            }
        }
        count
    }

    /// `|self ∪ other|`.
    pub fn union_size(&self, other: &StringGramSet) -> usize {
        self.len() + other.len() - self.intersection_size(other)
    }

    /// The Jaccard coefficient `|A ∩ B| / |A ∪ B|` (the paper's `sim`).
    pub fn jaccard(&self, other: &StringGramSet) -> f64 {
        if self.is_empty() && other.is_empty() {
            return 1.0;
        }
        let inter = self.intersection_size(other);
        let union = self.len() + other.len() - inter;
        if union == 0 {
            1.0
        } else {
            inter as f64 / union as f64
        }
    }
}

impl fmt::Display for StringGramSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, g) in self.grams.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{g:?}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unpadded_ascii(q: usize) -> QGramConfig {
        QGramConfig {
            normalize: NormalizeConfig::none(),
            ..QGramConfig::unpadded(q)
        }
    }

    fn padded_ascii(q: usize) -> QGramConfig {
        QGramConfig {
            normalize: NormalizeConfig::none(),
            pad_begin: '#',
            pad_end: '$',
            ..QGramConfig::with_q(q)
        }
    }

    fn interned(input: &str, config: &QGramConfig) -> (QGramSet, GramInterner) {
        let mut interner = GramInterner::new();
        let set = QGramSet::extract(input, config, &mut interner);
        (set, interner)
    }

    #[test]
    fn unpadded_trigram_extraction() {
        let set = StringGramSet::extract("abcde", &unpadded_ascii(3));
        let grams: Vec<&str> = set.iter().map(|g| g.as_ref()).collect();
        assert_eq!(grams, vec!["abc", "bcd", "cde"]);
        assert_eq!(set.window_count(), 3);
    }

    #[test]
    fn padded_trigram_extraction_counts_paper_formula() {
        let set = StringGramSet::extract("abcde", &padded_ascii(3));
        // |s| + q - 1 = 5 + 2 = 7 windows.
        assert_eq!(set.window_count(), 7);
        assert!(set.contains("##a"));
        assert!(set.contains("#ab"));
        assert!(set.contains("de$"));
        assert!(set.contains("e$$"));
        assert_eq!(set.len(), 7);
    }

    #[test]
    fn interned_extraction_mirrors_string_extraction() {
        for (input, config) in [
            ("abcde", padded_ascii(3)),
            ("abcde", unpadded_ascii(3)),
            ("aaaa", unpadded_ascii(2)),
            ("ab", unpadded_ascii(5)),
            ("", QGramConfig::default()),
            ("Santa  Cristina", QGramConfig::default()),
        ] {
            let strings = StringGramSet::extract(input, &config);
            let (ids, interner) = interned(input, &config);
            assert_eq!(ids.len(), strings.len(), "{input:?}");
            assert_eq!(ids.window_count(), strings.window_count(), "{input:?}");
            let mut resolved: Vec<&str> = ids
                .iter()
                .map(|id| interner.resolve(id).expect("unknown id"))
                .collect();
            resolved.sort_unstable();
            let expected: Vec<&str> = strings.iter().map(|g| g.as_ref()).collect();
            assert_eq!(resolved, expected, "{input:?}");
        }
    }

    #[test]
    fn interned_sets_share_ids_across_extractions() {
        let mut interner = GramInterner::new();
        let cfg = unpadded_ascii(3);
        let a = QGramSet::extract("abcdef", &cfg, &mut interner);
        let b = QGramSet::extract("abcdef", &cfg, &mut interner);
        let c = QGramSet::extract("uvwxyz", &cfg, &mut interner);
        assert_eq!(a, b, "same string, same interner: identical id sets");
        assert_eq!(a.intersection_size(&c), 0);
        assert_eq!(a.jaccard(&b), 1.0);
        assert_eq!(a.jaccard(&c), 0.0);
        assert!(a.contains(interner.get("abc").unwrap()));
        assert!(!c.contains(interner.get("abc").unwrap()));
    }

    #[test]
    fn expected_window_count_matches_extraction() {
        for len in 0usize..20 {
            let s: String = (0..len)
                .map(|i| char::from(b'a' + (i % 26) as u8))
                .collect();
            for q in 1usize..5 {
                let padded = QGramConfig {
                    normalize: NormalizeConfig::none(),
                    pad_begin: '#',
                    pad_end: '$',
                    ..QGramConfig::with_q(q)
                };
                let set = StringGramSet::extract(&s, &padded);
                assert_eq!(
                    set.window_count(),
                    padded.expected_window_count(s.chars().count()),
                    "padded len={len} q={q}"
                );
                let (set, _) = interned(&s, &padded);
                assert_eq!(
                    set.window_count(),
                    padded.expected_window_count(s.chars().count()),
                    "interned padded len={len} q={q}"
                );
                let unpadded = unpadded_ascii(q);
                let set = StringGramSet::extract(&s, &unpadded);
                assert_eq!(
                    set.window_count(),
                    unpadded.expected_window_count(s.chars().count()),
                    "unpadded len={len} q={q}"
                );
            }
        }
    }

    #[test]
    fn duplicate_windows_are_deduplicated_in_set() {
        let (set, _) = interned("aaaa", &unpadded_ascii(2));
        assert_eq!(set.len(), 1);
        assert_eq!(set.window_count(), 3);
    }

    #[test]
    fn empty_and_zero_q_inputs() {
        let mut interner = GramInterner::new();
        assert!(QGramSet::extract("", &QGramConfig::default(), &mut interner).is_empty());
        assert!(QGramSet::extract("abc", &QGramConfig::with_q(0), &mut interner).is_empty());
        let short = QGramSet::extract("ab", &unpadded_ascii(5), &mut interner);
        assert_eq!(short.len(), 1);
        assert!(short.contains(interner.get("ab").unwrap()));
    }

    #[test]
    fn normalization_is_applied_before_tokenising() {
        let mut interner = GramInterner::new();
        let set_a = QGramSet::extract("Santa  Cristina", &QGramConfig::default(), &mut interner);
        let set_b = QGramSet::extract("SANTA CRISTINA", &QGramConfig::default(), &mut interner);
        assert_eq!(set_a, set_b);
    }

    #[test]
    fn jaccard_of_single_edit_is_high_for_long_strings() {
        let cfg = QGramConfig::default();
        let mut interner = GramInterner::new();
        let a = QGramSet::extract("TAA BZ SANTA CRISTINA VALGARDENA", &cfg, &mut interner);
        let b = QGramSet::extract("TAA BZ SANTA CRISTINx VALGARDENA", &cfg, &mut interner);
        let sim = a.jaccard(&b);
        assert!(
            sim > 0.8,
            "one-character variant should stay similar: {sim}"
        );
        assert!(sim < 1.0);
    }

    #[test]
    fn jaccard_empty_set_conventions() {
        let cfg = QGramConfig::default();
        let mut interner = GramInterner::new();
        let empty = QGramSet::extract("", &cfg, &mut interner);
        let non_empty = QGramSet::extract("abc", &cfg, &mut interner);
        assert_eq!(empty.jaccard(&empty), 1.0);
        assert_eq!(empty.jaccard(&non_empty), 0.0);
        assert_eq!(non_empty.jaccard(&empty), 0.0);
    }

    #[test]
    fn jaccard_from_overlap_matches_direct_computation() {
        let cfg = QGramConfig::default();
        let mut interner = GramInterner::new();
        let a = QGramSet::extract("GENOVA NERVI", &cfg, &mut interner);
        let b = QGramSet::extract("GENOVA QUARTO", &cfg, &mut interner);
        let overlap = a.intersection_size(&b);
        let direct = a.jaccard(&b);
        let derived = QGramSet::jaccard_from_overlap(a.len(), b.len(), overlap);
        assert!((direct - derived).abs() < 1e-12);
    }

    #[test]
    fn jaccard_from_overlap_clamps_inconsistent_overlap() {
        // Overlap larger than either set size cannot produce sim > 1.
        assert_eq!(QGramSet::jaccard_from_overlap(3, 3, 10), 1.0);
        assert_eq!(QGramSet::jaccard_from_overlap(0, 0, 0), 1.0);
        assert_eq!(QGramSet::jaccard_from_overlap(5, 0, 0), 0.0);
    }

    #[test]
    fn min_overlap_bound_is_sound() {
        let cfg = QGramConfig::default();
        let mut interner = GramInterner::new();
        let a = QGramSet::extract("SANTA CRISTINA", &cfg, &mut interner);
        let b = QGramSet::extract("SANTA CRISTINx", &cfg, &mut interner);
        let theta = 0.85;
        if a.jaccard(&b) >= theta {
            assert!(a.intersection_size(&b) >= a.min_overlap_for(theta));
        }
        assert_eq!(QGramSet::default().min_overlap_for(0.9), 0);
        assert!(a.min_overlap_for(0.0) >= 1);
        assert!(a.min_overlap_for(1.0) <= a.len());
    }

    #[test]
    fn probe_order_is_a_rare_first_permutation() {
        let mut interner = GramInterner::new();
        let cfg = unpadded_ascii(3);
        // "abcd" twice then "bcde" once: grams of "abcd" end up more
        // frequent than the ones unique to "bcde".
        QGramSet::extract("abcd", &cfg, &mut interner);
        QGramSet::extract("abcd", &cfg, &mut interner);
        let set = QGramSet::extract("bcde", &cfg, &mut interner);
        // Same ids, permuted.
        let mut sorted = set.probe_order().to_vec();
        sorted.sort_unstable();
        assert_eq!(sorted, set.gram_ids());
        // Rare first: "cde" (seen once) precedes "bcd" (seen 3 times).
        let cde = interner.get("cde").unwrap();
        let bcd = interner.get("bcd").unwrap();
        let pos = |id| set.probe_order().iter().position(|&g| g == id).unwrap();
        assert!(pos(cde) < pos(bcd), "rare gram must come first");
    }

    #[test]
    fn overlap_at_least_matches_plain_intersection() {
        let cfg = QGramConfig::default();
        let mut interner = GramInterner::new();
        let a = QGramSet::extract("GENOVA NERVI", &cfg, &mut interner);
        let b = QGramSet::extract("GENOVA QUARTO", &cfg, &mut interner);
        let exact = a.intersection_size(&b);
        assert!(exact > 0);
        // Reachable bounds return the exact size; unreachable ones None.
        for min in 0..=exact {
            assert_eq!(
                overlap_at_least(a.gram_ids(), b.gram_ids(), min),
                Some(exact)
            );
        }
        assert_eq!(
            overlap_at_least(a.gram_ids(), b.gram_ids(), exact + 1),
            None
        );
        assert_eq!(overlap_at_least(a.gram_ids(), &[], 0), Some(0));
        assert_eq!(overlap_at_least(a.gram_ids(), &[], 1), None);
    }

    #[test]
    fn overlap_at_least_gallops_lopsided_inputs_correctly() {
        // One short side against a long one (ratio far beyond the gallop
        // threshold), with matches at the front, middle and back.
        let long: Vec<GramId> = (0..1000u32).map(GramId::new).collect();
        let short: Vec<GramId> = [0u32, 499, 999, 1500]
            .into_iter()
            .map(GramId::new)
            .collect();
        assert_eq!(overlap_at_least(&short, &long, 0), Some(3));
        assert_eq!(overlap_at_least(&long, &short, 0), Some(3), "symmetric");
        assert_eq!(overlap_at_least(&short, &long, 3), Some(3));
        assert_eq!(overlap_at_least(&short, &long, 4), None);
        // No overlap at all.
        let disjoint: Vec<GramId> = (2000..2004u32).map(GramId::new).collect();
        assert_eq!(overlap_at_least(&disjoint, &long, 0), Some(0));
        assert_eq!(overlap_at_least(&disjoint, &long, 1), None);
    }

    #[test]
    fn chunked_kernel_matches_merge_on_crafted_shapes() {
        let ids = |xs: &[u32]| xs.iter().copied().map(GramId::new).collect::<Vec<_>>();
        let cases: Vec<(Vec<GramId>, Vec<GramId>)> = vec![
            (ids(&[]), ids(&[])),
            (ids(&[1]), ids(&[])),
            (ids(&[1]), ids(&[1])),
            (ids(&[1, 2, 3]), ids(&[4, 5, 6])),
            // Exactly one chunk on the long side.
            (ids(&[3, 9]), ids(&[0, 1, 2, 3, 4, 5, 6, 9])),
            // Needle past the last chunk boundary (scalar tail).
            (ids(&[7, 8, 20]), ids(&[0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 20])),
            // Long side a multiple of the lane width, matches at chunk
            // edges.
            (ids(&[0, 7, 8, 15]), (0..16u32).map(GramId::new).collect()),
            // Similar lengths, interleaved.
            (
                ids(&[1, 3, 5, 7, 9, 11, 13, 15, 17]),
                ids(&[0, 3, 4, 7, 8, 11, 12, 15, 16]),
            ),
        ];
        for (a, b) in cases {
            let exact = overlap_at_least(&a, &b, 0).unwrap();
            for min in 0..=exact + 2 {
                let expect = overlap_at_least(&a, &b, min);
                assert_eq!(
                    overlap_chunked(&a, &b, min),
                    expect,
                    "{a:?} {b:?} min={min}"
                );
                assert_eq!(overlap_chunked(&b, &a, min), expect, "swapped");
                assert_eq!(overlap_block(&a, &b, min), expect, "block dispatch");
                assert_eq!(overlap_block(&b, &a, min), expect, "block swapped");
            }
        }
    }

    #[test]
    fn block_dispatch_covers_the_gallop_regime() {
        // Ratio far beyond GALLOP_RATIO: overlap_block takes the
        // galloping path; results must still match the chunk kernel.
        let long: Vec<GramId> = (0..1024u32).map(GramId::new).collect();
        let short: Vec<GramId> = [5u32, 511, 1023, 4096]
            .into_iter()
            .map(GramId::new)
            .collect();
        for min in 0..=4 {
            assert_eq!(
                overlap_block(&short, &long, min),
                overlap_chunked(&short, &long, min)
            );
        }
        assert_eq!(overlap_block(&short, &long, 0), Some(3));
        assert_eq!(overlap_block(&[], &long, 0), Some(0), "empty short side");
        assert_eq!(overlap_block(&[], &long, 1), None);
    }

    #[test]
    fn display_lists_gram_ids_and_strings() {
        let (set, _) = interned("ab", &unpadded_ascii(2));
        assert_eq!(set.to_string(), "{#0}");
        let set = StringGramSet::extract("ab", &unpadded_ascii(2));
        assert_eq!(set.to_string(), "{\"ab\"}");
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_key() -> impl Strategy<Value = String> {
        // Uppercase words similar to the generator's alphabet.
        proptest::collection::vec("[A-Z]{1,8}", 1..5).prop_map(|words| words.join(" "))
    }

    proptest! {
        #[test]
        fn jaccard_is_symmetric(a in arb_key(), b in arb_key()) {
            let cfg = QGramConfig::default();
            let mut interner = GramInterner::new();
            let sa = QGramSet::extract(&a, &cfg, &mut interner);
            let sb = QGramSet::extract(&b, &cfg, &mut interner);
            prop_assert!((sa.jaccard(&sb) - sb.jaccard(&sa)).abs() < 1e-12);
        }

        #[test]
        fn jaccard_is_bounded_and_reflexive(a in arb_key(), b in arb_key()) {
            let cfg = QGramConfig::default();
            let mut interner = GramInterner::new();
            let sa = QGramSet::extract(&a, &cfg, &mut interner);
            let sb = QGramSet::extract(&b, &cfg, &mut interner);
            let sim = sa.jaccard(&sb);
            prop_assert!((0.0..=1.0).contains(&sim));
            prop_assert_eq!(sa.jaccard(&sa), 1.0);
        }

        #[test]
        fn intersection_never_exceeds_either_set(a in arb_key(), b in arb_key()) {
            let cfg = QGramConfig::default();
            let mut interner = GramInterner::new();
            let sa = QGramSet::extract(&a, &cfg, &mut interner);
            let sb = QGramSet::extract(&b, &cfg, &mut interner);
            let inter = sa.intersection_size(&sb);
            prop_assert!(inter <= sa.len());
            prop_assert!(inter <= sb.len());
            prop_assert_eq!(sa.union_size(&sb), sa.len() + sb.len() - inter);
        }

        #[test]
        fn padded_window_count_follows_paper_formula(a in arb_key()) {
            let cfg = QGramConfig::default();
            let mut interner = GramInterner::new();
            let set = QGramSet::extract(&a, &cfg, &mut interner);
            let normalized = crate::normalize::normalize(&a, &cfg.normalize);
            let chars = normalized.chars().count();
            if chars > 0 {
                prop_assert_eq!(set.window_count(), chars + cfg.q - 1);
            }
        }

        #[test]
        fn distinct_grams_bounded_by_windows(a in arb_key(), q in 1usize..5) {
            let cfg = QGramConfig::with_q(q);
            let mut interner = GramInterner::new();
            let set = QGramSet::extract(&a, &cfg, &mut interner);
            prop_assert!(set.len() <= set.window_count());
        }

        /// The interned set and the retained string-keyed set are the
        /// same set: equal sizes, equal window counts, and ids resolve to
        /// exactly the string grams — for every input and window width.
        #[test]
        fn interned_and_string_sets_agree(a in arb_key(), q in 1usize..5) {
            let cfg = QGramConfig::with_q(q);
            let strings = StringGramSet::extract(&a, &cfg);
            let mut interner = GramInterner::new();
            let ids = QGramSet::extract(&a, &cfg, &mut interner);
            prop_assert_eq!(ids.len(), strings.len());
            prop_assert_eq!(ids.window_count(), strings.window_count());
            let mut resolved: Vec<&str> = ids
                .iter()
                .map(|id| interner.resolve(id).expect("unknown id"))
                .collect();
            resolved.sort_unstable();
            let expected: Vec<&str> = strings.iter().map(|g| g.as_ref()).collect();
            prop_assert_eq!(resolved, expected);
        }

        /// The early-exit/galloping merge agrees with the plain
        /// intersection for every input and every bound: exact size when
        /// reachable, `None` exactly when not.
        #[test]
        fn overlap_at_least_agrees_with_intersection_size(
            a in arb_key(),
            b in arb_key(),
            min in 0usize..40,
        ) {
            let cfg = QGramConfig::default();
            let mut interner = GramInterner::new();
            let sa = QGramSet::extract(&a, &cfg, &mut interner);
            let sb = QGramSet::extract(&b, &cfg, &mut interner);
            let exact = sa.intersection_size(&sb);
            let bounded = overlap_at_least(sa.gram_ids(), sb.gram_ids(), min);
            if exact >= min {
                prop_assert_eq!(bounded, Some(exact));
            } else {
                prop_assert_eq!(bounded, None);
            }
        }

        /// The chunked block kernel and its dispatcher agree with the
        /// merge for arbitrary sorted-dedup id sets and every bound —
        /// including shapes that never arise from q-gram extraction.
        #[test]
        fn chunked_kernel_agrees_with_merge(
            a in proptest::collection::vec(0u64..200, 0..48),
            b in proptest::collection::vec(0u64..200, 0..48),
            min in 0usize..40,
        ) {
            let (mut xs, mut ys) = (a.clone(), b.clone());
            xs.sort_unstable();
            xs.dedup();
            ys.sort_unstable();
            ys.dedup();
            let xs: Vec<GramId> = xs.into_iter().map(|x| GramId::new(x as u32)).collect();
            let ys: Vec<GramId> = ys.into_iter().map(|x| GramId::new(x as u32)).collect();
            let expect = overlap_at_least(&xs, &ys, min);
            prop_assert_eq!(overlap_chunked(&xs, &ys, min), expect);
            prop_assert_eq!(overlap_block(&xs, &ys, min), expect);
        }

        /// The prefix bound is sound for all four coefficients: any pair
        /// reaching θ shares at least one gram within the rare-first
        /// prefix `|A| − min_overlap(|A|, θ) + 1` of either side's probe
        /// order — so a prefix-limited posting scan cannot miss a true
        /// match, whichever side probes.
        #[test]
        fn prefix_bound_is_sound_for_every_coefficient(
            a in arb_key(),
            b in arb_key(),
            repeats in 0usize..4,
        ) {
            use crate::similarity::QGramCoefficient;
            let cfg = QGramConfig::default();
            let mut interner = GramInterner::new();
            // Perturb the document frequencies (hence the rank order)
            // with extra extractions: soundness must not depend on them.
            for _ in 0..repeats {
                QGramSet::extract(&a, &cfg, &mut interner);
            }
            let sa = QGramSet::extract(&a, &cfg, &mut interner);
            let sb = QGramSet::extract(&b, &cfg, &mut interner);
            let inter = sa.intersection_size(&sb);
            for coefficient in QGramCoefficient::ALL {
                let sim = coefficient.combine(inter, sa.len(), sb.len());
                for theta in [0.1, 0.3, 0.5, 0.8, 0.95, 1.0] {
                    if sim < theta {
                        continue;
                    }
                    for (probe, index) in [(&sa, &sb), (&sb, &sa)] {
                        if probe.is_empty() {
                            continue;
                        }
                        let prefix = coefficient.prefix_len(probe.len(), theta);
                        prop_assert!(prefix >= 1 && prefix <= probe.len());
                        let hit = probe.probe_order()[..prefix]
                            .iter()
                            .any(|&id| index.contains(id));
                        prop_assert!(
                            hit,
                            "{} θ={} sim={}: no shared gram in the {}-gram prefix",
                            coefficient.name(), theta, sim, prefix
                        );
                    }
                }
            }
        }

        /// Pairwise set operations agree between the two representations
        /// whenever both sets share one interner.
        #[test]
        fn interned_intersections_match_string_intersections(
            a in arb_key(),
            b in arb_key(),
            q in 1usize..5,
        ) {
            let cfg = QGramConfig::with_q(q);
            let sa = StringGramSet::extract(&a, &cfg);
            let sb = StringGramSet::extract(&b, &cfg);
            let mut interner = GramInterner::new();
            let ia = QGramSet::extract(&a, &cfg, &mut interner);
            let ib = QGramSet::extract(&b, &cfg, &mut interner);
            prop_assert_eq!(ia.intersection_size(&ib), sa.intersection_size(&sb));
            prop_assert_eq!(ia.union_size(&ib), sa.union_size(&sb));
            prop_assert!((ia.jaccard(&ib) - sa.jaccard(&sb)).abs() < 1e-12);
        }
    }
}
