//! The [`StringSimilarity`] trait and its q-gram based implementations.

use std::fmt;
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use crate::qgram::{QGramConfig, StringGramSet};

/// A symmetric string similarity in `[0, 1]`.
///
/// The adaptive join is parameterised by a similarity function plus a match
/// threshold `θ_sim`; the paper uses the q-gram Jaccard coefficient
/// ([`QGramJaccard`]) with `θ_sim = 0.85`, the others support ablations.
pub trait StringSimilarity {
    /// The similarity of `a` and `b`, in `[0, 1]`, 1 meaning identical.
    fn similarity(&self, a: &str, b: &str) -> f64;

    /// A short, stable name for reports and configuration.
    fn name(&self) -> &'static str;

    /// Whether the pair passes the given threshold.
    fn matches(&self, a: &str, b: &str, threshold: f64) -> bool {
        self.similarity(a, b) >= threshold
    }
}

/// Object-safe, shareable handle to a similarity function.
pub type SimilarityFn = Arc<dyn StringSimilarity + Send + Sync>;

impl fmt::Debug for dyn StringSimilarity + Send + Sync {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "StringSimilarity({})", self.name())
    }
}

/// The family of q-gram set coefficients the approximate join can be
/// parameterised with — the pipeline's *pluggable similarity choice*.
///
/// The paper uses the Jaccard coefficient; its §2.2 footnote notes that
/// "other similarity functions based on q-grams can be exploited", which
/// is exactly what this enum encodes.  Every member is computable in
/// O(1) from `(|A|, |B|, |A ∩ B|)`, so the SSH join's inverted-index
/// kernel supports all of them with the same per-candidate counters; and
/// every member admits a *sound* minimum-overlap pruning bound
/// ([`Self::min_overlap`]), so candidate pruning never drops a true
/// match whichever coefficient is selected.
///
/// [`Self::with_config`] yields the corresponding [`StringSimilarity`]
/// implementation, which the nested-loop oracles use to cross-check the
/// kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum QGramCoefficient {
    /// `|A ∩ B| / |A ∪ B|` — the paper's similarity.
    #[default]
    Jaccard,
    /// `2·|A ∩ B| / (|A| + |B|)`.
    Dice,
    /// `|A ∩ B| / √(|A|·|B|)`.
    Cosine,
    /// `|A ∩ B| / min(|A|, |B|)`.
    Overlap,
}

impl QGramCoefficient {
    /// Every member, for sweeps and ablation experiments.
    pub const ALL: [QGramCoefficient; 4] = [
        QGramCoefficient::Jaccard,
        QGramCoefficient::Dice,
        QGramCoefficient::Cosine,
        QGramCoefficient::Overlap,
    ];

    /// A short, stable name for reports and configuration.
    pub fn name(&self) -> &'static str {
        match self {
            QGramCoefficient::Jaccard => "jaccard",
            QGramCoefficient::Dice => "dice",
            QGramCoefficient::Cosine => "cosine",
            QGramCoefficient::Overlap => "overlap",
        }
    }

    /// Combine an intersection size with the two set sizes.
    ///
    /// Conventions: two empty sets are identical (1.0); an empty set
    /// against a non-empty one shares nothing (0.0).
    pub fn combine(self, inter: usize, len_a: usize, len_b: usize) -> f64 {
        if len_a == 0 && len_b == 0 {
            return 1.0;
        }
        if len_a == 0 || len_b == 0 {
            return 0.0;
        }
        let inter = inter as f64;
        let (a, b) = (len_a as f64, len_b as f64);
        match self {
            QGramCoefficient::Jaccard => inter / (a + b - inter),
            QGramCoefficient::Dice => 2.0 * inter / (a + b),
            QGramCoefficient::Cosine => inter / (a * b).sqrt(),
            QGramCoefficient::Overlap => inter / a.min(b),
        }
    }

    /// The similarity implied by an externally counted intersection size
    /// — the formula the approximate join applies once its per-candidate
    /// counters are known.  The overlap is clamped to `min(|A|, |B|)` so
    /// inconsistent counts can never produce a similarity above 1.
    pub fn from_overlap(self, len_a: usize, len_b: usize, overlap: usize) -> f64 {
        self.combine(overlap.min(len_a).min(len_b), len_a, len_b)
    }

    /// Minimum number of shared grams a candidate must have for this
    /// coefficient to possibly reach `threshold` against a probe set of
    /// `probe_len` grams — the sound generalisation of the paper's
    /// `|A ∩ B| ≥ θ·|A|` Jaccard pruning bound (§2.2).
    ///
    /// Derivations use `i ≤ min(|A|, |B|)` with `A` the probe set:
    ///
    /// * Jaccard ≥ θ ⟹ `i ≥ θ·|A ∪ B| ≥ θ·|A|`;
    /// * Dice ≥ θ ⟹ `2i ≥ θ(|A| + |B|) ≥ θ(|A| + i)` ⟹ `i ≥ θ·|A|/(2−θ)`;
    /// * Cosine ≥ θ ⟹ `i ≥ θ·√(|A|·|B|) ≥ θ·√(|A|·i)` ⟹ `i ≥ θ²·|A|`;
    /// * Overlap ≥ θ ⟹ only `i ≥ 1` can be guaranteed (a small candidate
    ///   set keeps the denominator small).
    pub fn min_overlap(self, probe_len: usize, threshold: f64) -> usize {
        if probe_len == 0 {
            return 0;
        }
        let t = threshold.clamp(0.0, 1.0);
        let a = probe_len as f64;
        let bound = match self {
            QGramCoefficient::Jaccard => t * a,
            QGramCoefficient::Dice => t * a / (2.0 - t),
            QGramCoefficient::Cosine => t * t * a,
            QGramCoefficient::Overlap => 1.0,
        };
        (bound.ceil() as usize).clamp(1, probe_len)
    }

    /// Number of probe grams the prefix filter must scan: with
    /// `t = min_overlap(probe_len, threshold)`, any candidate sharing at
    /// least `t` grams with the probe set shares — by pigeonhole — at
    /// least one gram with **any** `probe_len − t + 1` of the probe's
    /// grams (the probe has at most `probe_len − t` grams outside the
    /// intersection).  Scanning only that many posting lists therefore
    /// finds every candidate that can still reach the threshold,
    /// whichever traversal order is used; rare-first ordering is the
    /// performance choice, not a soundness requirement.
    ///
    /// `0` for an empty probe set; between `1` and `probe_len` otherwise
    /// (it equals `probe_len` — no filtering — exactly when
    /// `min_overlap` is 1, e.g. always for [`Self::Overlap`]).
    pub fn prefix_len(self, probe_len: usize, threshold: f64) -> usize {
        if probe_len == 0 {
            return 0;
        }
        probe_len - self.min_overlap(probe_len, threshold) + 1
    }

    /// The [`StringSimilarity`] implementation computing this coefficient
    /// over q-gram sets extracted under `config` — what the inverted-index
    /// kernel's output is equivalent to, pair by pair.
    pub fn with_config(self, config: QGramConfig) -> SimilarityFn {
        match self {
            QGramCoefficient::Jaccard => Arc::new(QGramJaccard::new(config)),
            QGramCoefficient::Dice => Arc::new(QGramDice::new(config)),
            QGramCoefficient::Cosine => Arc::new(QGramCosine::new(config)),
            QGramCoefficient::Overlap => Arc::new(QGramOverlap::new(config)),
        }
    }
}

macro_rules! qgram_similarity {
    ($(#[$doc:meta])* $name:ident, $coef:expr, $label:literal) => {
        $(#[$doc])*
        #[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
        pub struct $name {
            /// Q-gram extraction configuration.
            pub config: QGramConfig,
        }

        impl $name {
            /// Build with an explicit q-gram configuration.
            pub fn new(config: QGramConfig) -> Self {
                Self { config }
            }

            /// Build with window width `q` and default padding/normalisation.
            pub fn with_q(q: usize) -> Self {
                Self { config: QGramConfig::with_q(q) }
            }

            /// Similarity of two pre-extracted q-gram sets.
            ///
            /// These one-pair-at-a-time similarity functions tokenise
            /// into the string-keyed [`StringGramSet`] on purpose: they
            /// are the oracle path the interned probe kernel is tested
            /// against, so they must not share its interning machinery.
            pub fn of_sets(&self, a: &StringGramSet, b: &StringGramSet) -> f64 {
                $coef.combine(a.intersection_size(b), a.len(), b.len())
            }
        }

        impl StringSimilarity for $name {
            fn similarity(&self, a: &str, b: &str) -> f64 {
                let sa = StringGramSet::extract(a, &self.config);
                let sb = StringGramSet::extract(b, &self.config);
                self.of_sets(&sa, &sb)
            }

            fn name(&self) -> &'static str {
                $label
            }
        }
    };
}

qgram_similarity!(
    /// The paper's similarity: Jaccard coefficient over q-gram sets,
    /// `|q(s1) ∩ q(s2)| / |q(s1) ∪ q(s2)|`.
    QGramJaccard,
    QGramCoefficient::Jaccard,
    "qgram-jaccard"
);

qgram_similarity!(
    /// Dice coefficient over q-gram sets, `2·|A ∩ B| / (|A| + |B|)`.
    QGramDice,
    QGramCoefficient::Dice,
    "qgram-dice"
);

qgram_similarity!(
    /// Cosine coefficient over q-gram sets, `|A ∩ B| / √(|A|·|B|)`.
    QGramCosine,
    QGramCoefficient::Cosine,
    "qgram-cosine"
);

qgram_similarity!(
    /// Overlap coefficient over q-gram sets, `|A ∩ B| / min(|A|, |B|)`.
    QGramOverlap,
    QGramCoefficient::Overlap,
    "qgram-overlap"
);

#[cfg(test)]
mod tests {
    use super::*;

    const VARIANT_A: &str = "TAA BZ SANTA CRISTINA VALGARDENA";
    const VARIANT_B: &str = "TAA BZ SANTA CRISTINx VALGARDENA";

    #[test]
    fn jaccard_matches_set_computation() {
        let sim = QGramJaccard::default();
        let sa = StringGramSet::extract(VARIANT_A, &sim.config);
        let sb = StringGramSet::extract(VARIANT_B, &sim.config);
        assert!((sim.similarity(VARIANT_A, VARIANT_B) - sa.jaccard(&sb)).abs() < 1e-12);
    }

    #[test]
    fn single_edit_variant_passes_calibrated_threshold() {
        // The paper calibrates θ_sim so that edit-distance-1 variants of
        // location strings are matched while unrelated locations are not
        // (§4.2).  With padded 3-gram Jaccard a one-character substitution in
        // a ~30-character key scores ≈ 0.84, so the calibrated threshold in
        // this code base is 0.80 (see DESIGN.md §6).
        let sim = QGramJaccard::default();
        let s = sim.similarity(VARIANT_A, VARIANT_B);
        assert!(s > 0.80 && s < 1.0, "variant similarity {s}");
        assert!(sim.matches(VARIANT_A, VARIANT_B, 0.80));
        // But an unrelated location must not match.
        assert!(!sim.matches(VARIANT_A, "LIG GE GENOVA NERVI", 0.80));
    }

    #[test]
    fn coefficient_ordering_on_same_pair() {
        // For any pair: overlap ≥ dice ≥ jaccard and cosine ≥ jaccard.
        let pairs = [
            (VARIANT_A, VARIANT_B),
            ("GENOVA", "GENOVA NERVI"),
            ("ROMA", "MILANO"),
        ];
        for (a, b) in pairs {
            let j = QGramJaccard::default().similarity(a, b);
            let d = QGramDice::default().similarity(a, b);
            let c = QGramCosine::default().similarity(a, b);
            let o = QGramOverlap::default().similarity(a, b);
            assert!(o + 1e-12 >= d, "overlap {o} < dice {d} for {a}/{b}");
            assert!(d + 1e-12 >= j, "dice {d} < jaccard {j} for {a}/{b}");
            assert!(c + 1e-12 >= j, "cosine {c} < jaccard {j} for {a}/{b}");
        }
    }

    #[test]
    fn identical_strings_score_one_for_all_coefficients() {
        for s in ["", "ROMA", "PIE TO TORINO"] {
            assert_eq!(QGramJaccard::default().similarity(s, s), 1.0);
            assert_eq!(QGramDice::default().similarity(s, s), 1.0);
            assert_eq!(QGramCosine::default().similarity(s, s), 1.0);
            assert_eq!(QGramOverlap::default().similarity(s, s), 1.0);
        }
    }

    #[test]
    fn empty_vs_nonempty_scores_zero() {
        assert_eq!(QGramJaccard::default().similarity("", "ROMA"), 0.0);
        assert_eq!(QGramDice::default().similarity("ROMA", ""), 0.0);
        assert_eq!(QGramOverlap::default().similarity("", "X"), 0.0);
        assert_eq!(QGramCosine::default().similarity("X", ""), 0.0);
    }

    #[test]
    fn with_q_builder_sets_window() {
        let sim = QGramJaccard::with_q(2);
        assert_eq!(sim.config.q, 2);
        let sim = QGramDice::with_q(4);
        assert_eq!(sim.config.q, 4);
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(QGramJaccard::default().name(), "qgram-jaccard");
        assert_eq!(QGramDice::default().name(), "qgram-dice");
        assert_eq!(QGramCosine::default().name(), "qgram-cosine");
        assert_eq!(QGramOverlap::default().name(), "qgram-overlap");
        for coefficient in QGramCoefficient::ALL {
            assert!(!coefficient.name().is_empty());
        }
        assert_eq!(QGramCoefficient::default(), QGramCoefficient::Jaccard);
    }

    #[test]
    fn coefficient_handle_agrees_with_the_concrete_struct() {
        let config = QGramConfig::default();
        for coefficient in QGramCoefficient::ALL {
            let handle = coefficient.with_config(config.clone());
            let sa = StringGramSet::extract(VARIANT_A, &config);
            let sb = StringGramSet::extract(VARIANT_B, &config);
            let via_sets = coefficient.combine(sa.intersection_size(&sb), sa.len(), sb.len());
            let via_handle = handle.similarity(VARIANT_A, VARIANT_B);
            assert!(
                (via_sets - via_handle).abs() < 1e-12,
                "{} disagrees with its handle",
                coefficient.name()
            );
        }
    }

    #[test]
    fn from_overlap_clamps_and_respects_empty_set_conventions() {
        for coefficient in QGramCoefficient::ALL {
            assert_eq!(coefficient.from_overlap(0, 0, 0), 1.0);
            assert_eq!(coefficient.from_overlap(5, 0, 0), 0.0);
            assert_eq!(coefficient.from_overlap(0, 5, 3), 0.0);
            // Inconsistent overlap counts can never exceed 1.
            assert!(coefficient.from_overlap(3, 3, 10) <= 1.0);
            assert_eq!(coefficient.from_overlap(4, 4, 4), 1.0);
        }
    }

    #[test]
    fn min_overlap_edges() {
        for coefficient in QGramCoefficient::ALL {
            assert_eq!(coefficient.min_overlap(0, 0.8), 0, "empty probe");
            assert!(coefficient.min_overlap(10, 0.0) >= 1);
            assert_eq!(
                coefficient.min_overlap(10, 1.0),
                if coefficient == QGramCoefficient::Overlap {
                    1
                } else {
                    10
                }
            );
        }
    }

    #[test]
    fn prefix_len_complements_min_overlap() {
        for coefficient in QGramCoefficient::ALL {
            assert_eq!(coefficient.prefix_len(0, 0.8), 0, "empty probe");
            for probe_len in [1usize, 5, 33, 100] {
                for theta in [0.0, 0.5, 0.8, 1.0] {
                    let t = coefficient.min_overlap(probe_len, theta);
                    let prefix = coefficient.prefix_len(probe_len, theta);
                    assert_eq!(prefix, probe_len - t + 1);
                    assert!((1..=probe_len).contains(&prefix));
                }
            }
        }
        // The Overlap coefficient can never prune (t = 1 always)…
        assert_eq!(QGramCoefficient::Overlap.prefix_len(33, 0.8), 33);
        // …while a high Jaccard threshold scans only a short prefix.
        assert_eq!(QGramCoefficient::Jaccard.prefix_len(33, 1.0), 1);
        assert!(QGramCoefficient::Jaccard.prefix_len(33, 0.8) <= 7);
    }

    #[test]
    fn trait_objects_are_usable() {
        let sims: Vec<SimilarityFn> = vec![
            Arc::new(QGramJaccard::default()),
            Arc::new(QGramDice::default()),
            Arc::new(crate::edit::NormalizedLevenshtein),
            Arc::new(crate::jaro::JaroWinkler::default()),
        ];
        for sim in &sims {
            let s = sim.similarity("GENOVA", "GENOVA");
            assert_eq!(s, 1.0, "{} should be reflexive", sim.name());
        }
        let dbg = format!("{:?}", sims[0]);
        assert!(dbg.contains("qgram-jaccard"));
    }

    #[test]
    fn normalisation_makes_case_insensitive_by_default() {
        let sim = QGramJaccard::default();
        assert_eq!(sim.similarity("Santa Cristina", "SANTA CRISTINA"), 1.0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_key() -> impl Strategy<Value = String> {
        proptest::collection::vec("[A-Z]{1,6}", 1..4).prop_map(|w| w.join(" "))
    }

    proptest! {
        #[test]
        fn all_coefficients_symmetric_and_bounded(a in arb_key(), b in arb_key()) {
            let sims: Vec<SimilarityFn> = vec![
                Arc::new(QGramJaccard::default()),
                Arc::new(QGramDice::default()),
                Arc::new(QGramCosine::default()),
                Arc::new(QGramOverlap::default()),
            ];
            for sim in sims {
                let ab = sim.similarity(&a, &b);
                let ba = sim.similarity(&b, &a);
                prop_assert!((ab - ba).abs() < 1e-12, "{} not symmetric", sim.name());
                prop_assert!((0.0..=1.0 + 1e-12).contains(&ab), "{} out of range", sim.name());
            }
        }

        #[test]
        fn matches_is_monotone_in_threshold(a in arb_key(), b in arb_key()) {
            let sim = QGramJaccard::default();
            let s = sim.similarity(&a, &b);
            prop_assert_eq!(sim.matches(&a, &b, 0.0), s >= 0.0);
            if sim.matches(&a, &b, 0.9) {
                prop_assert!(sim.matches(&a, &b, 0.5));
            }
        }

        /// The pruning bound must never reject a pair that actually
        /// reaches the threshold — for every coefficient, from either
        /// probe direction (the kernel probes with whichever side
        /// arrives).
        #[test]
        fn min_overlap_bound_is_sound_for_every_coefficient(a in arb_key(), b in arb_key()) {
            let cfg = QGramConfig::default();
            let sa = StringGramSet::extract(&a, &cfg);
            let sb = StringGramSet::extract(&b, &cfg);
            let inter = sa.intersection_size(&sb);
            for coefficient in QGramCoefficient::ALL {
                let sim = coefficient.combine(inter, sa.len(), sb.len());
                for theta in [0.1, 0.3, 0.5, 0.8, 0.95, 1.0] {
                    if sim >= theta {
                        for probe_len in [sa.len(), sb.len()] {
                            prop_assert!(
                                inter >= coefficient.min_overlap(probe_len, theta),
                                "{} would prune a true match: sim {} ≥ θ {} but \
                                 inter {} < bound {}",
                                coefficient.name(), sim, theta, inter,
                                coefficient.min_overlap(probe_len, theta)
                            );
                        }
                    }
                }
            }
        }
    }
}
