//! # linkage-text
//!
//! String tokenisation and similarity for approximate record linkage.
//!
//! The paper's approximate join (SSHJoin) measures string similarity with the
//! **Jaccard coefficient over q-gram sets** (§2.2):
//!
//! ```text
//! sim(s1, s2) = |q(s1) ∩ q(s2)| / |q(s1) ∪ q(s2)|
//! ```
//!
//! where `q(s)` is the set of substrings obtained by sliding a window of
//! width `q` (typically 3) over `s`, padded so that a string of length `n`
//! yields `n + q − 1` grams.
//!
//! This crate provides:
//!
//! * [`QGramConfig`] / [`QGramSet`] — q-gram extraction with the padding
//!   convention the paper's cost model assumes; grams are interned to
//!   dense [`GramId`]s through a [`GramInterner`], so the join kernel's
//!   probe path never hashes strings ([`StringGramSet`] retains the
//!   string-keyed representation as the tested-against reference);
//! * [`normalize()`] — the canonicalisation applied to join keys before
//!   tokenisation (case folding, whitespace collapsing);
//! * [`StringSimilarity`] and a family of implementations: the paper's
//!   [`QGramJaccard`] plus [`QGramDice`], [`QGramCosine`], [`QGramOverlap`],
//!   [`NormalizedLevenshtein`] and [`JaroWinkler`] used in ablation
//!   experiments ("other similarity functions based on q-grams can be
//!   exploited", §2.2 footnote).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod edit;
pub mod intern;
pub mod jaro;
pub mod normalize;
pub mod qgram;
pub mod similarity;

pub use edit::{levenshtein_distance, NormalizedLevenshtein};
pub use intern::{FxBuildHasher, FxHasher, GramId, GramInterner, SharedInterner};
pub use jaro::{jaro_similarity, jaro_winkler_similarity, JaroWinkler};
pub use normalize::{normalize, NormalizeConfig};
pub use qgram::{
    overlap_at_least, overlap_block, overlap_chunked, Gram, QGramConfig, QGramSet, StringGramSet,
    CHUNK_LANES, GALLOP_RATIO,
};
pub use similarity::{
    QGramCoefficient, QGramCosine, QGramDice, QGramJaccard, QGramOverlap, SimilarityFn,
    StringSimilarity,
};
