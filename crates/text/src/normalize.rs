//! Join-key normalisation.
//!
//! Record-linkage toolkits conventionally canonicalise strings before
//! comparing them (paper §5 mentions the data-preparation utilities of
//! Potter's Wheel, Ajax, Tailor, …).  The paper's own evaluation works on
//! already-uppercased location strings such as
//! `TAA BZ SANTA CRISTINA VALGARDENA`; this module provides the small
//! canonicalisation pipeline the data generator and the similarity functions
//! agree on so that the *only* differences the join sees are genuine
//! variants.

use serde::{Deserialize, Serialize};

/// Options controlling [`normalize`].
///
/// `#[non_exhaustive]`: construct via [`Default`],
/// [`NormalizeConfig::none`] or [`NormalizeConfig::aggressive`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[non_exhaustive]
pub struct NormalizeConfig {
    /// Convert the string to uppercase.
    pub uppercase: bool,
    /// Collapse consecutive whitespace into a single ASCII space and trim.
    pub collapse_whitespace: bool,
    /// Drop characters that are neither alphanumeric nor whitespace
    /// (punctuation, quotes, …).
    pub strip_punctuation: bool,
}

impl Default for NormalizeConfig {
    fn default() -> Self {
        Self {
            uppercase: true,
            collapse_whitespace: true,
            strip_punctuation: false,
        }
    }
}

impl NormalizeConfig {
    /// The identity configuration: [`normalize`] returns its input unchanged
    /// (modulo allocation).
    pub fn none() -> Self {
        Self {
            uppercase: false,
            collapse_whitespace: false,
            strip_punctuation: false,
        }
    }

    /// Aggressive configuration: uppercase, collapse whitespace and strip
    /// punctuation.
    pub fn aggressive() -> Self {
        Self {
            uppercase: true,
            collapse_whitespace: true,
            strip_punctuation: true,
        }
    }
}

/// Canonicalise `input` according to `config`.
pub fn normalize(input: &str, config: &NormalizeConfig) -> String {
    let mut out = String::with_capacity(input.len());
    let mut pending_space = false;
    let mut seen_non_space = false;

    for ch in input.chars() {
        let ch = if config.strip_punctuation && !ch.is_alphanumeric() && !ch.is_whitespace() {
            continue;
        } else {
            ch
        };

        if config.collapse_whitespace && ch.is_whitespace() {
            if seen_non_space {
                pending_space = true;
            }
            continue;
        }

        if pending_space {
            out.push(' ');
            pending_space = false;
        }

        if config.uppercase {
            for up in ch.to_uppercase() {
                out.push(up);
            }
        } else {
            out.push(ch);
        }
        seen_non_space = true;
    }

    if !config.collapse_whitespace {
        // Whitespace was passed through above only when not collapsing; the
        // loop above skipped it, so rebuild faithfully in that mode.
        if !config.uppercase && !config.strip_punctuation {
            return input.to_string();
        }
        let mut verbatim = String::with_capacity(input.len());
        for ch in input.chars() {
            if config.strip_punctuation && !ch.is_alphanumeric() && !ch.is_whitespace() {
                continue;
            }
            if config.uppercase {
                for up in ch.to_uppercase() {
                    verbatim.push(up);
                }
            } else {
                verbatim.push(ch);
            }
        }
        return verbatim;
    }

    out
}

/// Canonicalise with the default configuration.
pub fn normalize_default(input: &str) -> String {
    normalize(input, &NormalizeConfig::default())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_uppercases_and_collapses() {
        let cfg = NormalizeConfig::default();
        assert_eq!(normalize("  taa  bz   ortisei ", &cfg), "TAA BZ ORTISEI");
        assert_eq!(normalize("Roma", &cfg), "ROMA");
        assert_eq!(normalize("", &cfg), "");
        assert_eq!(normalize("   ", &cfg), "");
    }

    #[test]
    fn none_config_is_identity() {
        let cfg = NormalizeConfig::none();
        assert_eq!(normalize("  Santa  Cristina ", &cfg), "  Santa  Cristina ");
        assert_eq!(normalize("a,b", &cfg), "a,b");
    }

    #[test]
    fn aggressive_strips_punctuation() {
        let cfg = NormalizeConfig::aggressive();
        assert_eq!(normalize("Sant'Angelo, (PZ)", &cfg), "SANTANGELO PZ");
        assert_eq!(normalize("L'Aquila", &cfg), "LAQUILA");
    }

    #[test]
    fn uppercase_without_collapse_keeps_inner_whitespace() {
        let cfg = NormalizeConfig {
            uppercase: true,
            collapse_whitespace: false,
            strip_punctuation: false,
        };
        assert_eq!(normalize("a  b", &cfg), "A  B");
    }

    #[test]
    fn strip_without_collapse_keeps_whitespace_drops_punct() {
        let cfg = NormalizeConfig {
            uppercase: false,
            collapse_whitespace: false,
            strip_punctuation: true,
        };
        assert_eq!(normalize("a, b!", &cfg), "a b");
    }

    #[test]
    fn collapse_only_preserves_case() {
        let cfg = NormalizeConfig {
            uppercase: false,
            collapse_whitespace: true,
            strip_punctuation: false,
        };
        assert_eq!(normalize(" a  B ", &cfg), "a B");
    }

    #[test]
    fn unicode_uppercasing_expands() {
        let cfg = NormalizeConfig::default();
        // ß uppercases to SS (two characters).
        assert_eq!(normalize("straße", &cfg), "STRASSE");
        assert_eq!(normalize("forlì", &cfg), "FORLÌ");
    }

    #[test]
    fn normalize_default_helper_matches_default_config() {
        assert_eq!(
            normalize_default("  torino  "),
            normalize("  torino  ", &NormalizeConfig::default())
        );
    }

    #[test]
    fn idempotence_on_default_config() {
        let cfg = NormalizeConfig::default();
        let once = normalize("  Val  di   Fassa ", &cfg);
        let twice = normalize(&once, &cfg);
        assert_eq!(once, twice);
    }
}
