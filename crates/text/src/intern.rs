//! Gram interning: dense token ids for q-grams.
//!
//! The approximate join's probe kernel used to key its inverted index by
//! gram *text* (`Arc<str>`), which meant every probe hashed every gram of
//! the probing tuple through SipHash before it could even look at a
//! posting list.  A [`GramInterner`] assigns each distinct gram a dense
//! [`GramId`] exactly once — at tokenisation time — after which the whole
//! probe path is integer indexing: posting lists live in a flat
//! `Vec<Vec<u32>>` indexed directly by id, and set operations between
//! [`QGramSet`]s are merges over sorted `u32`s.
//!
//! The one remaining string-keyed map (gram text → id, consulted once per
//! *window* at tokenisation) uses [`FxHasher`], a fast non-cryptographic
//! multiply-rotate hash; grams are tiny (q ≈ 3 characters) and the table
//! is private to the join, so HashDoS resistance buys nothing here.
//!
//! [`SharedInterner`] wraps the table in `Arc<Mutex<…>>` so the sharded
//! executor's workers can share one id space: the coordinator interns
//! every post-switch tuple once at the router, and the workers touch the
//! lock only during the §3.3 handover (when each rebuilds its inverted
//! index from resident keys).  Steady-state probing never locks — it sees
//! only pre-assigned ids, an effectively read-only snapshot.
//!
//! [`QGramSet`]: crate::qgram::QGramSet

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};
use std::sync::{Arc, Mutex, MutexGuard};

use linkage_types::{LinkageError, Result};
use serde::{Deserialize, Serialize};

/// Dense identifier of one distinct q-gram within a [`GramInterner`].
///
/// Ids are assigned sequentially from 0 in first-interned order, so they
/// double as direct indexes into flat posting arrays.  An id is only
/// meaningful relative to the interner that issued it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct GramId(u32);

impl GramId {
    /// Wrap a raw index.
    pub const fn new(raw: u32) -> Self {
        Self(raw)
    }

    /// The raw index.
    pub const fn as_u32(self) -> u32 {
        self.0
    }

    /// The raw index, as a `usize` for direct array indexing.
    pub const fn as_usize(self) -> usize {
        self.0 as usize
    }
}

const FX_SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// A fast non-cryptographic hasher (the multiply-rotate scheme used by
/// rustc's internal tables) for the interner's one string-keyed map.
///
/// Not DoS-resistant by design — the keys are q-grams of join attributes
/// inside a private table, not attacker-controlled map keys.
#[derive(Debug, Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(FX_SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, mut bytes: &[u8]) {
        while let Some(chunk) = bytes.first_chunk::<8>() {
            self.add(u64::from_le_bytes(*chunk));
            bytes = &bytes[8..];
        }
        if let Some(chunk) = bytes.first_chunk::<4>() {
            self.add(u64::from(u32::from_le_bytes(*chunk)));
            bytes = &bytes[4..];
        }
        if let Some(chunk) = bytes.first_chunk::<2>() {
            self.add(u64::from(u16::from_le_bytes(*chunk)));
            bytes = &bytes[2..];
        }
        if let Some(&byte) = bytes.first() {
            self.add(u64::from(byte));
        }
    }
}

/// `BuildHasher` producing [`FxHasher`]s.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// The gram ⇄ id table: each distinct gram is stored once and mapped to a
/// dense [`GramId`].
///
/// Besides the id mapping, the table keeps a per-gram **document
/// frequency** sidecar: how many extracted gram *sets* contained the gram
/// (bumped once per set by `QGramSet::extract`, never per window).  The
/// frequencies order the probe prefix of the set-similarity prefix filter
/// rare-first, so the shortest posting lists are scanned first; they are
/// a heuristic for posting-list length, not a correctness input — the
/// prefix bound is sound under *any* traversal order.
#[derive(Debug, Clone, Default)]
pub struct GramInterner {
    map: HashMap<Arc<str>, GramId, FxBuildHasher>,
    texts: Vec<Arc<str>>,
    /// `doc_freq[id]` = number of noted gram sets containing `id`.
    doc_freq: Vec<u32>,
}

impl GramInterner {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct grams interned so far (also the exclusive upper
    /// bound of issued ids).
    pub fn len(&self) -> usize {
        self.texts.len()
    }

    /// Whether no gram has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.texts.is_empty()
    }

    /// The id of `gram`, assigning the next dense id on first sight.
    ///
    /// The gram text is allocated (once, globally) only on first sight;
    /// re-interning an already-known gram is a hash lookup with no
    /// allocation.
    pub fn intern(&mut self, gram: &str) -> GramId {
        if let Some(&id) = self.map.get(gram) {
            return id;
        }
        let id = GramId::new(
            u32::try_from(self.texts.len()).expect("more than u32::MAX distinct grams"),
        );
        let text: Arc<str> = Arc::from(gram);
        self.texts.push(Arc::clone(&text));
        self.doc_freq.push(0);
        self.map.insert(text, id);
        id
    }

    /// Record that one extracted gram set contained each id in `ids`
    /// (called once per set, with the set's *distinct* ids).
    pub fn note_document(&mut self, ids: &[GramId]) {
        for id in ids {
            self.doc_freq[id.as_usize()] = self.doc_freq[id.as_usize()].saturating_add(1);
        }
    }

    /// Number of noted gram sets that contained `id` (0 for unknown ids).
    pub fn doc_freq(&self, id: GramId) -> u32 {
        self.doc_freq.get(id.as_usize()).copied().unwrap_or(0)
    }

    /// `ids` permuted into the **rare-first** rank order: ascending
    /// document frequency, ties broken by id (first-interned first) so
    /// the order is a total one.  This is the traversal order the probe
    /// prefix uses; it is recomputed per extraction, so it reflects the
    /// frequencies at that moment — a later snapshot may order the same
    /// ids differently, which is harmless (the prefix bound does not
    /// depend on the order).
    pub fn rank_order(&self, ids: &[GramId]) -> Vec<GramId> {
        // Pack (frequency, id) into one u64 per element up front so the
        // sort compares plain integers instead of re-deriving the key —
        // this runs once per extracted set, on the insert path.
        let mut keyed: Vec<u64> = ids
            .iter()
            .map(|&id| (u64::from(self.doc_freq(id)) << 32) | u64::from(id.as_u32()))
            .collect();
        keyed.sort_unstable();
        keyed.into_iter().map(|k| GramId::new(k as u32)).collect()
    }

    /// The id of `gram`, if it was interned before.
    pub fn get(&self, gram: &str) -> Option<GramId> {
        self.map.get(gram).copied()
    }

    /// The text behind `id`, if the id was issued by this interner.
    pub fn resolve(&self, id: GramId) -> Option<&str> {
        self.texts.get(id.as_usize()).map(Arc::as_ref)
    }

    /// The interned gram texts, in first-interned (= id) order.  This is
    /// the column the snapshot writer serialises; together with
    /// [`Self::doc_freqs`] it is the table's complete observable state.
    pub fn texts(&self) -> &[Arc<str>] {
        &self.texts
    }

    /// The document-frequency column, indexed by gram id.
    pub fn doc_freqs(&self) -> &[u32] {
        &self.doc_freq
    }

    /// Rebuild a table from its snapshot columns: `texts[i]` becomes the
    /// text of `GramId(i)` with document frequency `doc_freq[i]`, and the
    /// text → id map is re-derived.  Fails with a typed
    /// [`LinkageError::Snapshot`] when the columns disagree in length or
    /// a gram text repeats (dense ids require distinct texts).
    pub fn from_parts(texts: Vec<Arc<str>>, doc_freq: Vec<u32>) -> Result<Self> {
        if texts.len() != doc_freq.len() {
            return Err(LinkageError::snapshot(format!(
                "interner columns disagree: {} texts vs {} doc frequencies",
                texts.len(),
                doc_freq.len()
            )));
        }
        let mut map: HashMap<Arc<str>, GramId, FxBuildHasher> =
            HashMap::with_capacity_and_hasher(texts.len(), FxBuildHasher::default());
        for (i, text) in texts.iter().enumerate() {
            if map
                .insert(Arc::clone(text), GramId::new(i as u32))
                .is_some()
            {
                return Err(LinkageError::snapshot(format!(
                    "interner snapshot repeats gram text {text:?}"
                )));
            }
        }
        Ok(Self {
            map,
            texts,
            doc_freq,
        })
    }

    /// Estimated size of the table in bytes: the gram text (stored once
    /// per distinct gram), the id column, and the map's key/value slots.
    /// Same estimate-not-measurement caveat as the operators' state
    /// accounting.
    pub fn state_bytes(&self) -> usize {
        let text: usize = self.texts.iter().map(|t| t.len()).sum();
        let columns = self.texts.len() * std::mem::size_of::<Arc<str>>()
            + self.doc_freq.len() * std::mem::size_of::<u32>();
        let map = self.map.len() * std::mem::size_of::<(Arc<str>, GramId)>();
        text + columns + map
    }
}

/// A [`GramInterner`] shareable across threads.
///
/// Cloning the handle shares the table (ids stay globally consistent);
/// the lock is uncontended everywhere except the sharded handover, where
/// every worker interns its resident keys into the common id space.
#[derive(Debug, Clone, Default)]
pub struct SharedInterner {
    inner: Arc<Mutex<GramInterner>>,
}

impl SharedInterner {
    /// A handle to a fresh, empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Lock the table for interning.  Poisoning is ignored: the table is
    /// append-only, so a panicking holder cannot leave it inconsistent.
    pub fn lock(&self) -> MutexGuard<'_, GramInterner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Whether two handles share the same table (hence the same id
    /// space).
    pub fn same_table(&self, other: &SharedInterner) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }

    /// A handle owning `table` (snapshot restore: the decoded table
    /// becomes the join-wide id space).
    pub fn from_table(table: GramInterner) -> Self {
        Self {
            inner: Arc::new(Mutex::new(table)),
        }
    }

    /// Replace the shared table **in place** with `table`, propagating to
    /// every clone of this handle (the sharded executor restores the
    /// join-wide id space after its workers already hold handle clones).
    /// Refuses to clobber a non-empty table: live ids would dangle.
    pub fn restore_table(&self, table: GramInterner) -> Result<()> {
        let mut guard = self.lock();
        if !guard.is_empty() {
            return Err(LinkageError::snapshot(
                "cannot restore into an interner that already issued ids",
            ));
        }
        *guard = table;
        Ok(())
    }

    /// Number of distinct grams interned so far.
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// Whether no gram has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.lock().is_empty()
    }

    /// Estimated size of the shared table in bytes (see
    /// [`GramInterner::state_bytes`]).  Count it **once** per join, not
    /// per shard: every worker's handle points at the same table.
    pub fn state_bytes(&self) -> usize {
        self.lock().state_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_dense_and_stable() {
        let mut interner = GramInterner::new();
        let a = interner.intern("abc");
        let b = interner.intern("bcd");
        let a2 = interner.intern("abc");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(a.as_usize(), 0);
        assert_eq!(b.as_usize(), 1);
        assert_eq!(interner.len(), 2);
        assert_eq!(interner.resolve(a), Some("abc"));
        assert_eq!(interner.resolve(b), Some("bcd"));
        assert_eq!(interner.resolve(GramId::new(2)), None);
        assert_eq!(interner.get("abc"), Some(a));
        assert_eq!(interner.get("zzz"), None);
    }

    #[test]
    fn shared_handles_share_the_id_space() {
        let shared = SharedInterner::new();
        let clone = shared.clone();
        assert!(shared.same_table(&clone));
        assert!(!shared.same_table(&SharedInterner::new()));
        let a = shared.lock().intern("abc");
        let a2 = clone.lock().intern("abc");
        assert_eq!(a, a2);
        assert_eq!(shared.len(), 1);
        assert!(!clone.is_empty());
    }

    #[test]
    fn state_bytes_grow_with_distinct_grams_only() {
        let mut interner = GramInterner::new();
        assert_eq!(interner.state_bytes(), 0);
        interner.intern("abc");
        let one = interner.state_bytes();
        assert!(one > 0);
        interner.intern("abc");
        assert_eq!(
            interner.state_bytes(),
            one,
            "re-interning allocates nothing"
        );
        interner.intern("xyz");
        assert!(interner.state_bytes() > one);
    }

    #[test]
    fn doc_frequencies_count_noted_sets_and_order_rare_first() {
        let mut interner = GramInterner::new();
        let common = interner.intern("abc");
        let rare = interner.intern("xyz");
        let unseen = interner.intern("qqq");
        assert_eq!(
            interner.doc_freq(common),
            0,
            "interning alone counts nothing"
        );
        interner.note_document(&[common, rare]);
        interner.note_document(&[common]);
        interner.note_document(&[common]);
        assert_eq!(interner.doc_freq(common), 3);
        assert_eq!(interner.doc_freq(rare), 1);
        assert_eq!(interner.doc_freq(unseen), 0);
        assert_eq!(interner.doc_freq(GramId::new(99)), 0, "unknown id");
        // Rare-first total order, ties broken by id.
        assert_eq!(
            interner.rank_order(&[common, rare, unseen]),
            vec![unseen, rare, common]
        );
        let tied = interner.intern("ttt");
        assert_eq!(
            interner.rank_order(&[tied, unseen]),
            vec![unseen, tied],
            "equal frequencies fall back to id order"
        );
    }

    #[test]
    fn from_parts_round_trips_and_validates() {
        let mut original = GramInterner::new();
        let a = original.intern("abc");
        let b = original.intern("bcd");
        original.note_document(&[a, b]);
        original.note_document(&[a]);

        let texts: Vec<Arc<str>> = original.texts().to_vec();
        let freqs: Vec<u32> = original.doc_freqs().to_vec();
        let restored = GramInterner::from_parts(texts.clone(), freqs.clone()).unwrap();
        assert_eq!(restored.len(), 2);
        assert_eq!(restored.get("abc"), Some(a), "map is re-derived");
        assert_eq!(restored.doc_freq(a), 2);
        assert_eq!(restored.doc_freq(b), 1);
        assert_eq!(restored.rank_order(&[a, b]), original.rank_order(&[a, b]));

        assert!(GramInterner::from_parts(texts.clone(), vec![1]).is_err());
        let dup = vec![texts[0].clone(), texts[0].clone()];
        assert!(GramInterner::from_parts(dup, vec![0, 0]).is_err());
    }

    #[test]
    fn shared_restore_propagates_to_clones_and_guards_live_tables() {
        let shared = SharedInterner::new();
        let clone = shared.clone();
        let mut table = GramInterner::new();
        table.intern("abc");
        shared.restore_table(table).unwrap();
        assert_eq!(clone.len(), 1, "restore reaches every handle");

        let mut again = GramInterner::new();
        again.intern("xyz");
        assert!(
            shared.restore_table(again).is_err(),
            "restoring over issued ids must fail"
        );
    }

    #[test]
    fn fx_hasher_distinguishes_typical_grams() {
        // Not a distribution test — just a sanity check that the chunked
        // write path hashes unequal short strings unequally.
        let hash = |s: &str| {
            let mut h = FxHasher::default();
            h.write(s.as_bytes());
            h.finish()
        };
        assert_ne!(hash("abc"), hash("abd"));
        assert_ne!(hash("abc"), hash("ab"));
        assert_ne!(hash(""), hash("a"));
        assert_ne!(hash("abcdefgh"), hash("abcdefgi"), "8-byte chunk path");
        assert_ne!(hash("abcdefghij"), hash("abcdefghik"), "tail path");
        assert_eq!(hash("abc"), hash("abc"));
    }

    #[test]
    fn concurrent_interning_yields_consistent_ids() {
        let shared = SharedInterner::new();
        let grams: Vec<String> = (0..64).map(|i| format!("g{i:02}")).collect();
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let shared = shared.clone();
                let grams = grams.clone();
                std::thread::spawn(move || {
                    grams
                        .iter()
                        .map(|g| shared.lock().intern(g))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        let results: Vec<Vec<GramId>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        for other in &results[1..] {
            assert_eq!(&results[0], other, "same gram must get the same id");
        }
        assert_eq!(shared.len(), 64);
    }
}
