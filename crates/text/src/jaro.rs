//! Jaro and Jaro–Winkler similarity.
//!
//! Not used by the paper's core algorithm, but a standard record-linkage
//! comparator (Winkler's work at the U.S. Census Bureau is cited in §5); we
//! provide it so ablation experiments can swap the similarity function under
//! the same adaptive controller.

use serde::{Deserialize, Serialize};

use crate::similarity::StringSimilarity;

/// The Jaro similarity of two strings, in `[0, 1]`.
pub fn jaro_similarity(a: &str, b: &str) -> f64 {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }

    // Matching window: characters match if equal and within this distance.
    let match_window = (a.len().max(b.len()) / 2).saturating_sub(1);

    let mut a_matched = vec![false; a.len()];
    let mut b_matched = vec![false; b.len()];
    let mut matches = 0usize;

    for (i, &ca) in a.iter().enumerate() {
        let lo = i.saturating_sub(match_window);
        let hi = (i + match_window + 1).min(b.len());
        for j in lo..hi {
            if !b_matched[j] && b[j] == ca {
                a_matched[i] = true;
                b_matched[j] = true;
                matches += 1;
                break;
            }
        }
    }

    if matches == 0 {
        return 0.0;
    }

    // Count transpositions among matched characters.
    let mut transpositions = 0usize;
    let mut j = 0usize;
    for (i, &matched) in a_matched.iter().enumerate() {
        if matched {
            while !b_matched[j] {
                j += 1;
            }
            if a[i] != b[j] {
                transpositions += 1;
            }
            j += 1;
        }
    }
    let t = transpositions as f64 / 2.0;
    let m = matches as f64;

    (m / a.len() as f64 + m / b.len() as f64 + (m - t) / m) / 3.0
}

/// The Jaro–Winkler similarity with the given prefix scaling factor
/// (conventionally 0.1, capped at 0.25) and a maximum rewarded prefix of 4.
pub fn jaro_winkler_similarity(a: &str, b: &str, prefix_scale: f64) -> f64 {
    let jaro = jaro_similarity(a, b);
    let scale = prefix_scale.clamp(0.0, 0.25);
    let prefix_len = a
        .chars()
        .zip(b.chars())
        .take(4)
        .take_while(|(x, y)| x == y)
        .count();
    jaro + prefix_len as f64 * scale * (1.0 - jaro)
}

/// [`StringSimilarity`] wrapper around [`jaro_winkler_similarity`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct JaroWinkler {
    /// Prefix scaling factor (0.1 by convention, clamped to `[0, 0.25]`).
    pub prefix_scale: f64,
}

impl Default for JaroWinkler {
    fn default() -> Self {
        Self { prefix_scale: 0.1 }
    }
}

impl StringSimilarity for JaroWinkler {
    fn similarity(&self, a: &str, b: &str) -> f64 {
        jaro_winkler_similarity(a, b, self.prefix_scale)
    }

    fn name(&self) -> &'static str {
        "jaro-winkler"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-3
    }

    #[test]
    fn jaro_reference_values() {
        // Classic textbook examples.
        assert!(close(jaro_similarity("MARTHA", "MARHTA"), 0.944));
        assert!(close(jaro_similarity("DIXON", "DICKSONX"), 0.767));
        assert!(close(jaro_similarity("JELLYFISH", "SMELLYFISH"), 0.896));
    }

    #[test]
    fn jaro_degenerate_cases() {
        assert_eq!(jaro_similarity("", ""), 1.0);
        assert_eq!(jaro_similarity("a", ""), 0.0);
        assert_eq!(jaro_similarity("", "a"), 0.0);
        assert_eq!(jaro_similarity("abc", "abc"), 1.0);
        assert_eq!(jaro_similarity("abc", "xyz"), 0.0);
    }

    #[test]
    fn winkler_boosts_common_prefix() {
        let plain = jaro_similarity("MARTHA", "MARHTA");
        let winkler = jaro_winkler_similarity("MARTHA", "MARHTA", 0.1);
        assert!(winkler > plain);
        assert!(close(winkler, 0.961));
        // No common prefix: no boost.
        assert_eq!(
            jaro_winkler_similarity("ABC", "XBC", 0.1),
            jaro_similarity("ABC", "XBC")
        );
    }

    #[test]
    fn winkler_scale_is_clamped() {
        let hi = jaro_winkler_similarity("MARTHA", "MARHTA", 5.0);
        let capped = jaro_winkler_similarity("MARTHA", "MARHTA", 0.25);
        assert_eq!(hi, capped);
        assert!(hi <= 1.0);
    }

    #[test]
    fn trait_impl_reports_name_and_uses_scale() {
        let jw = JaroWinkler::default();
        assert_eq!(jw.name(), "jaro-winkler");
        assert!(jw.similarity("SANTA CRISTINA", "SANTA CRISTINx") > 0.9);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn jaro_is_symmetric_and_bounded(a in "[A-Z]{0,10}", b in "[A-Z]{0,10}") {
            let ab = jaro_similarity(&a, &b);
            let ba = jaro_similarity(&b, &a);
            prop_assert!((ab - ba).abs() < 1e-12);
            prop_assert!((0.0..=1.0).contains(&ab));
        }

        #[test]
        fn winkler_never_below_jaro(a in "[A-Z]{0,10}", b in "[A-Z]{0,10}") {
            let j = jaro_similarity(&a, &b);
            let w = jaro_winkler_similarity(&a, &b, 0.1);
            prop_assert!(w + 1e-12 >= j);
            prop_assert!(w <= 1.0 + 1e-12);
        }

        #[test]
        fn identical_strings_have_similarity_one(a in "[A-Z]{1,10}") {
            prop_assert_eq!(jaro_similarity(&a, &a), 1.0);
            prop_assert_eq!(jaro_winkler_similarity(&a, &a, 0.1), 1.0);
        }
    }
}
