//! The partition-parallel adaptive join.
//!
//! [`ParallelJoin`] drives N worker shards (one thread each, bounded
//! channels) through lock-step **epochs**:
//!
//! 1. pull up to `batch_size` tuples from the input operator;
//! 2. route them — in the **exact phase** each tuple goes to the single
//!    shard owning the stable hash of its normalised key, so every shard
//!    runs an independent symmetric hash join over a disjoint partition;
//!    in the **approximate phase** every tuple is tokenised once at the
//!    router and broadcast: every shard probes it against its slice of the
//!    resident inverted index, and only the tuple's home shard stores it;
//! 3. barrier on one reply per shard, merging emitted pairs in shard
//!    order — deterministic for a given shard count, with each distinct
//!    pair emitted exactly once;
//! 4. feed the aggregated counters to the global
//!    [`GlobalController`]; on a trigger, orchestrate the distributed
//!    §3.3 handover: every shard migrates its hash tables into inverted
//!    indexes and recovers its local matches, then each shard probes the
//!    resident snapshots of the shards before it, recovering the
//!    cross-shard matches hash partitioning had separated.
//!
//! The exact phase parallelises because the partitions are disjoint; the
//! approximate phase parallelises because probe cost is proportional to
//! posting-list length and every shard holds ~1/N of the postings.  The
//! switch decision is made once, globally, from deduplicated counts — the
//! same binomial outlier test the serial [`AdaptiveJoin`] applies.
//!
//! [`AdaptiveJoin`]: linkage_core::AdaptiveJoin

use std::collections::VecDeque;
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use linkage_core::{Assessment, GlobalControlState, GlobalController, SwitchEvent, SwitchPolicy};
use linkage_operators::{
    snapshot as opsnap, JoinPhase, Operator, OperatorState, PerKind, SshJoinCore, SshStored,
};
use linkage_text::{normalize, SharedInterner};
use linkage_types::snapshot::{kind, shard_kind, Decoder, Encoder, SnapshotBuilder, SnapshotFile};
use linkage_types::{
    LinkageError, MatchKind, MatchPair, Partitioner, PerSide, Result, ShardId, Side, SidedRecord,
};

use crate::config::ParallelJoinConfig;
use crate::messages::{PreparedBatch, ShardCmd, ShardReply, ShardSnapshot, ShardStats};
use crate::shard::ShardWorker;

/// One spawned worker: its command channel, reply channel and thread.
struct WorkerHandle {
    id: ShardId,
    cmd: SyncSender<ShardCmd>,
    reply: Receiver<ShardReply>,
    thread: Option<JoinHandle<()>>,
}

impl WorkerHandle {
    fn send(&self, cmd: ShardCmd) -> Result<()> {
        self.cmd
            .send(cmd)
            .map_err(|_| LinkageError::execution(format!("{} disconnected", self.id)))
    }

    fn recv(&self) -> Result<ShardReply> {
        self.reply
            .recv()
            .map_err(|_| LinkageError::execution(format!("{} died without replying", self.id)))
    }
}

/// Summary of a parallel join run.
#[derive(Debug, Clone)]
pub struct ParallelReport {
    /// Phase the join ended in.
    pub phase: JoinPhase,
    /// Input tuples consumed per side (each tuple counted once, at the
    /// router, regardless of approximate-phase broadcast).
    pub consumed: PerSide<u64>,
    /// Distinct pairs emitted, by kind.
    pub emitted: PerKind,
    /// The switch, if it happened.  A forced switch reports `sigma = 0.0`.
    pub switch: Option<SwitchEvent>,
    /// Wall-clock duration of the distributed handover (local migrations
    /// plus cross-shard recovery), if a switch happened.
    pub switch_latency: Option<Duration>,
    /// Per-shard statistics, populated by [`Operator::close`].
    pub shards: Vec<ShardStats>,
}

/// The sharded parallel adaptive join operator.
///
/// A pipelined [`Operator`] like its serial counterpart: callers pull
/// merged match pairs from it.  `open` spawns the worker threads, `close`
/// collects their statistics and joins them.
pub struct ParallelJoin<I> {
    input: I,
    config: ParallelJoinConfig,
    partitioner: Partitioner,
    /// The join-wide gram table: the router's prepare kernel interns into
    /// it, every worker holds a clone, so gram ids are one id space.
    interner: SharedInterner,
    /// Zero-state kernel used only for its `prepare` (normalise, tokenise,
    /// intern) so the router shares the workers' exact configuration and
    /// interner.
    prep: SshJoinCore,
    controller: GlobalController,
    workers: Vec<WorkerHandle>,
    state: OperatorState,
    phase: JoinPhase,
    out: VecDeque<MatchPair>,
    /// The next approximate-phase epoch, tokenised while the workers were
    /// busy probing the previous one.
    prepared_ahead: Option<Arc<PreparedBatch>>,
    /// Approximate-phase epochs dispatched to the workers whose replies
    /// have not been collected yet (bounded send-ahead; see
    /// [`Self::approx_epoch`]).
    approx_in_flight: usize,
    consumed: PerSide<u64>,
    emitted: PerKind,
    switch: Option<SwitchEvent>,
    switch_latency: Option<Duration>,
    /// Pairs buffered *before* the handover and not yet pulled.  While
    /// nonzero, [`Self::switch_event`] stays `None`, so streaming
    /// consumers see every pre-switch pair before the notification.
    undrained_pre_switch: usize,
    /// Whether the previous pull returned a pre-switch pair; the
    /// decrement is deferred to the *next* call (see the serial engine).
    pre_switch_in_flight: bool,
    shard_stats: Vec<ShardStats>,
    exhausted: bool,
}

impl<I: Operator<Item = SidedRecord>> ParallelJoin<I> {
    /// Build over a sided input.
    pub fn new(input: I, config: ParallelJoinConfig) -> Self {
        let partitioner = Partitioner::new(config.shards);
        let interner = SharedInterner::new();
        let prep = config.join.ssh_core_with(interner.clone());
        let controller = GlobalController::new(config.controller.clone());
        Self {
            input,
            config,
            partitioner,
            interner,
            prep,
            controller,
            workers: Vec::new(),
            state: OperatorState::default(),
            phase: JoinPhase::Exact,
            out: VecDeque::new(),
            prepared_ahead: None,
            approx_in_flight: 0,
            consumed: PerSide::default(),
            emitted: PerKind::default(),
            switch: None,
            switch_latency: None,
            undrained_pre_switch: 0,
            pre_switch_in_flight: false,
            shard_stats: Vec::new(),
            exhausted: false,
        }
    }

    /// Number of worker shards.
    pub fn shard_count(&self) -> usize {
        self.config.shards
    }

    /// The phase currently driving output.
    pub fn phase(&self) -> JoinPhase {
        self.phase
    }

    /// Input tuples consumed per side.
    pub fn consumed(&self) -> PerSide<u64> {
        self.consumed
    }

    /// Total input tuples consumed.
    pub fn total_consumed(&self) -> u64 {
        self.consumed.left + self.consumed.right
    }

    /// Distinct pairs emitted so far, by kind.
    pub fn emitted(&self) -> PerKind {
        self.emitted
    }

    /// The switch decision, once it is *visible*: pairs of the epoch that
    /// triggered the switch are pulled first, so a consumer polling this
    /// between pulls sees every pre-switch pair before the event.
    /// [`Self::report`] carries the raw decision regardless.
    pub fn switch_event(&self) -> Option<SwitchEvent> {
        if self.undrained_pre_switch > 0 {
            None
        } else {
            self.switch
        }
    }

    /// Wall-clock duration of the distributed handover, if it ran.
    pub fn switch_latency(&self) -> Option<Duration> {
        self.switch_latency
    }

    /// Summarise the run.  Per-shard statistics are collected by
    /// [`Operator::close`]; before that `shards` is empty.
    pub fn report(&self) -> ParallelReport {
        ParallelReport {
            phase: self.phase,
            consumed: self.consumed,
            emitted: self.emitted,
            switch: self.switch,
            switch_latency: self.switch_latency,
            shards: self.shard_stats.clone(),
        }
    }

    fn spawn_workers(&mut self) -> Result<()> {
        let cmd_depth = self.config.channel_capacity.max(1);
        // One stale lock-step reply plus the final `Finished` must fit
        // without blocking the worker, or an error-path shutdown could
        // deadlock on a full reply channel.
        let reply_depth = cmd_depth + 1;
        for id in self.partitioner.shard_ids() {
            let (cmd_tx, cmd_rx) = sync_channel::<ShardCmd>(cmd_depth);
            let (reply_tx, reply_rx) = sync_channel::<ShardReply>(reply_depth);
            let worker = ShardWorker::new(id, self.config.join.clone(), self.interner.clone());
            let thread = std::thread::Builder::new()
                .name(format!("linkage-{id}"))
                .spawn(move || worker.run(cmd_rx, reply_tx))?;
            self.workers.push(WorkerHandle {
                id,
                cmd: cmd_tx,
                reply: reply_rx,
                thread: Some(thread),
            });
        }
        Ok(())
    }

    /// Pull up to one epoch's worth of input.
    fn pull_batch(&mut self) -> Result<Vec<SidedRecord>> {
        let mut batch = Vec::with_capacity(self.config.batch_size);
        while batch.len() < self.config.batch_size {
            match self.input.next()? {
                Some(sided) => batch.push(sided),
                None => break,
            }
        }
        Ok(batch)
    }

    /// Run one epoch: pull, route, barrier, merge, assess.
    fn epoch(&mut self) -> Result<()> {
        if self.phase == JoinPhase::Approximate {
            return self.approx_epoch();
        }
        let batch = self.pull_batch()?;
        if batch.is_empty() {
            self.exhausted = true;
            return Ok(());
        }
        self.exact_epoch(batch)?;
        self.control_step()
    }

    /// Exact phase: hash-partition the batch, one shard per tuple.
    fn exact_epoch(&mut self, batch: Vec<SidedRecord>) -> Result<()> {
        let mut per_shard: Vec<Vec<(SidedRecord, Arc<str>)>> =
            (0..self.config.shards).map(|_| Vec::new()).collect();
        let normalization = self.config.join.normalization();
        for sided in batch {
            let raw = sided.record.key_str(self.config.join.keys[sided.side])?;
            let key: Arc<str> = Arc::from(normalize(raw, &normalization).as_str());
            let shard = self.partitioner.shard_of(&key);
            self.consumed[sided.side] += 1;
            per_shard[shard.as_usize()].push((sided, key));
        }
        // Every shard gets a (possibly empty) batch: the barrier stays
        // symmetric and the merge order deterministic.
        for (worker, tuples) in self.workers.iter().zip(per_shard) {
            worker.send(ShardCmd::ExactBatch(tuples))?;
        }
        self.collect_batch_replies()
    }

    /// How many approximate-phase epochs may be dispatched before the
    /// oldest one's replies are collected.  Bounded by the command
    /// channel depth so a send can never block on a busy worker.
    fn approx_pipeline_depth(&self) -> usize {
        self.config.channel_capacity.clamp(1, 2)
    }

    /// Approximate phase: broadcast prepared batches, store at the home
    /// shard — with a bounded **send-ahead pipeline**.  Up to
    /// [`Self::approx_pipeline_depth`] epochs are dispatched before the
    /// oldest one's barrier is collected, and the next epoch is tokenised
    /// while the workers probe, so the router's normalise + q-gram +
    /// intern work and its reply merging overlap with shard work instead
    /// of serialising in front of it.  No control decision happens in
    /// this phase (the switch is behind us), so the deeper dispatch
    /// cannot reorder anything: replies are still collected one epoch at
    /// a time, in shard order.
    fn approx_epoch(&mut self) -> Result<()> {
        while self.approx_in_flight < self.approx_pipeline_depth() {
            let shared = match self.prepared_ahead.take() {
                Some(prepared) => Some(prepared),
                None => {
                    let batch = self.pull_batch()?;
                    if batch.is_empty() {
                        None
                    } else {
                        Some(self.prepare_batch(batch)?)
                    }
                }
            };
            let Some(shared) = shared else { break };
            for worker in &self.workers {
                worker.send(ShardCmd::ApproxBatch(Arc::clone(&shared)))?;
            }
            self.approx_in_flight += 1;
            let next = self.pull_batch()?;
            if !next.is_empty() {
                self.prepared_ahead = Some(self.prepare_batch(next)?);
            }
        }
        if self.approx_in_flight == 0 {
            self.exhausted = true;
            return Ok(());
        }
        self.collect_batch_replies()?;
        self.approx_in_flight -= 1;
        Ok(())
    }

    /// Normalise, tokenise, intern and home-assign one epoch's tuples
    /// into one shared structure-of-arrays batch.  Counts the tuples as
    /// consumed: the router has irrevocably taken them from the input,
    /// even if the matching barrier happens epochs later.
    fn prepare_batch(&mut self, batch: Vec<SidedRecord>) -> Result<Arc<PreparedBatch>> {
        let mut prepared = PreparedBatch::with_capacity(batch.len());
        for sided in batch {
            let (key, grams) = self.prep.prepare(&sided)?;
            let home = self.partitioner.shard_of(&key);
            self.consumed[sided.side] += 1;
            prepared.push(sided, key, grams, home);
        }
        Ok(Arc::new(prepared))
    }

    /// Barrier: one `Pairs` reply per shard, merged in shard order.
    fn collect_batch_replies(&mut self) -> Result<()> {
        for i in 0..self.workers.len() {
            match self.workers[i].recv()? {
                ShardReply::Pairs(Ok(pairs)) => self.absorb(pairs),
                ShardReply::Pairs(Err(e)) => return Err(e),
                _ => {
                    return Err(LinkageError::execution(format!(
                        "{}: unexpected reply to a batch command",
                        self.workers[i].id
                    )))
                }
            }
        }
        Ok(())
    }

    /// Buffer merged pairs, folding their kinds into the global counters.
    /// Every pair arrives here exactly once (disjoint exact partitions;
    /// unique home shards in the approximate phase; disjoint local/cross
    /// recovery), so these counters are the deduplicated global result
    /// size the monitor observes.
    fn absorb(&mut self, pairs: Vec<MatchPair>) {
        for pair in &pairs {
            match pair.kind {
                MatchKind::Exact => self.emitted.exact += 1,
                MatchKind::Approximate { .. } => self.emitted.approximate += 1,
            }
        }
        self.out.extend(pairs);
    }

    /// The global monitor → assessor → actuator step, run per epoch while
    /// the join is exact.
    fn control_step(&mut self) -> Result<()> {
        if self.phase != JoinPhase::Exact {
            return Ok(());
        }
        match self.config.controller.policy {
            SwitchPolicy::Never => Ok(()),
            SwitchPolicy::ForceAt(after) => {
                if self.total_consumed() >= after {
                    return self.orchestrate_switch(0.0);
                }
                Ok(())
            }
            SwitchPolicy::Adaptive => {
                if let Some(Assessment::Trigger { sigma }) = self
                    .controller
                    .observe_epoch(self.consumed, self.emitted.total())
                {
                    return self.orchestrate_switch(sigma);
                }
                Ok(())
            }
        }
    }

    /// The distributed exact → approximate handover.
    fn orchestrate_switch(&mut self, sigma: f64) -> Result<()> {
        // Everything buffered at this point was emitted by the exact
        // phase (including this epoch's pairs) and must be pulled before
        // the switch notification becomes visible.
        self.undrained_pre_switch = self.out.len();
        let start = Instant::now();
        for worker in &self.workers {
            worker.send(ShardCmd::Switch)?;
        }
        let mut snapshots: Vec<Arc<Vec<(Side, SshStored)>>> =
            Vec::with_capacity(self.workers.len());
        let mut recovered_total = 0u64;
        for i in 0..self.workers.len() {
            match self.workers[i].recv()? {
                ShardReply::Switched {
                    recovered,
                    residents,
                } => {
                    recovered_total += recovered.len() as u64;
                    self.absorb(recovered);
                    snapshots.push(Arc::new(residents));
                }
                ShardReply::Pairs(Err(e)) => return Err(e),
                _ => {
                    return Err(LinkageError::execution(format!(
                        "{}: unexpected reply to Switch",
                        self.workers[i].id
                    )))
                }
            }
        }
        // Cross-shard recovery: shard j probes the residents of shards
        // i < j, so every cross-shard resident pair is probed exactly once.
        for (j, worker) in self.workers.iter().enumerate().skip(1) {
            worker.send(ShardCmd::Recover(snapshots[..j].to_vec()))?;
        }
        for j in 1..self.workers.len() {
            match self.workers[j].recv()? {
                ShardReply::Recovered(pairs) => {
                    recovered_total += pairs.len() as u64;
                    self.absorb(pairs);
                }
                ShardReply::Pairs(Err(e)) => return Err(e),
                _ => {
                    return Err(LinkageError::execution(format!(
                        "{}: unexpected reply to Recover",
                        self.workers[j].id
                    )))
                }
            }
        }
        self.phase = JoinPhase::Approximate;
        self.switch = Some(SwitchEvent {
            after_tuples: self.total_consumed(),
            sigma,
            recovered: recovered_total,
        });
        self.switch_latency = Some(start.elapsed());
        Ok(())
    }

    /// The executor configuration (snapshot fingerprinting).
    pub fn config(&self) -> &ParallelJoinConfig {
        &self.config
    }

    /// Match pairs produced and buffered but not yet popped.
    pub fn buffered(&self) -> usize {
        self.out.len()
    }

    /// Run full epochs — never popping a buffered pair — while doing so
    /// cannot read past `available` total input tuples.
    ///
    /// This is the incremental-session entry point.  Only *whole* epochs
    /// run, and only while a conservative per-call ceiling still fits
    /// under `available`: [`batch_size`] tuples in the exact phase, and
    /// `2 × pipeline depth × batch_size` in the approximate phase (one
    /// `approx_epoch` call may dispatch up to the send-ahead
    /// depth *and* tokenise one batch ahead per dispatch).  The input is
    /// therefore never observed at a premature end, and epoch boundaries
    /// land exactly where an uninterrupted run over the full input would
    /// put them — which, together with produce-time emission counters,
    /// is why a session-driven run's output is bit-identical to a solo
    /// run's.
    ///
    /// [`batch_size`]: crate::ParallelJoinConfig::batch_size
    pub fn advance_to(&mut self, available: u64) -> Result<()> {
        self.state.check_next(self.name())?;
        while !self.exhausted {
            let margin = match self.phase {
                JoinPhase::Approximate => 2 * self.approx_pipeline_depth() * self.config.batch_size,
                _ => self.config.batch_size,
            } as u64;
            if self.total_consumed() + margin > available {
                break;
            }
            self.epoch()?;
        }
        Ok(())
    }

    /// Drain the approximate-phase send-ahead pipeline so every worker is
    /// exactly caught up with the router's `consumed` counters: collect
    /// each dispatched epoch's barrier, then dispatch and collect the
    /// tokenised-ahead batch (its tuples were counted as consumed when it
    /// was prepared).  The pairs those barriers produce surface in `out`
    /// in exactly the order an uninterrupted run would have emitted them.
    /// A no-op in the exact phase, whose epochs are synchronous.
    ///
    /// Public because graceful session eviction wants the same property
    /// on its own: a server draining a session before snapshotting it to
    /// disk calls this to park the engine at an epoch boundary.
    /// ([`Self::snapshot_sections`] also quiesces, so calling it first is
    /// belt-and-braces, not required.)
    pub fn quiesce(&mut self) -> Result<()> {
        while self.approx_in_flight > 0 {
            self.collect_batch_replies()?;
            self.approx_in_flight -= 1;
        }
        if let Some(shared) = self.prepared_ahead.take() {
            for worker in &self.workers {
                worker.send(ShardCmd::ApproxBatch(Arc::clone(&shared)))?;
            }
            self.collect_batch_replies()?;
        }
        Ok(())
    }

    /// Append this engine's durable state to a snapshot under
    /// construction: the shared interner, the coordinator's `CONTROLLER`
    /// payload, the pending output queue, and one `SHARD` section per
    /// worker (encoded by the workers themselves, in parallel).
    ///
    /// Quiesces the send-ahead pipeline first, so the snapshot is an
    /// epoch-boundary state: valid in either phase, on either side of the
    /// §3.3 switch.  Section payload layouts are specified in
    /// `docs/format.md`.
    pub fn snapshot_sections(&mut self, builder: &mut SnapshotBuilder) -> Result<()> {
        if self.state != OperatorState::Open {
            return Err(LinkageError::snapshot("snapshot requires an open join"));
        }
        self.quiesce()?;

        builder.push_section(
            kind::INTERNER as u32,
            opsnap::encode_interner(&self.interner),
        );

        let mut e = Encoder::new();
        e.put_u8(match self.phase {
            JoinPhase::Exact => 0,
            JoinPhase::Approximate => 1,
        });
        e.put_u64(self.consumed.left);
        e.put_u64(self.consumed.right);
        e.put_u64(self.emitted.exact);
        e.put_u64(self.emitted.approximate);
        e.put_bool(self.switch.is_some());
        if let Some(switch) = self.switch {
            e.put_u64(switch.after_tuples);
            e.put_f64(switch.sigma);
            e.put_u64(switch.recovered);
        }
        e.put_opt_u64(self.switch_latency.map(|d| d.as_nanos() as u64));
        e.put_u64(self.undrained_pre_switch as u64);
        e.put_bool(self.pre_switch_in_flight);
        e.put_bool(self.exhausted);
        let control = self.controller.control_state();
        e.put_u64(control.assessments);
        e.put_u64(control.last_checked);
        e.put_u32(control.streak);
        e.put_u64(control.last_checkpoint);
        builder.push_section(kind::CONTROLLER as u32, e.finish());

        builder.push_section(kind::PENDING as u32, opsnap::encode_pairs(self.out.iter()));

        for worker in &self.workers {
            worker.send(ShardCmd::Snapshot)?;
        }
        for i in 0..self.workers.len() {
            match self.workers[i].recv()? {
                ShardReply::Snapshot(shard) => {
                    let mut e = Encoder::new();
                    e.put_bool(shard.approx);
                    e.put_u64(shard.stored_tuples);
                    e.put_u64(shard.probes);
                    e.put_u64(shard.emitted.exact);
                    e.put_u64(shard.emitted.approximate);
                    e.put_bytes(&shard.core_bytes);
                    builder.push_section(shard_kind(kind::SHARD, i as u16), e.finish());
                }
                ShardReply::Pairs(Err(e)) => return Err(e),
                _ => {
                    return Err(LinkageError::execution(format!(
                        "{}: unexpected reply to Snapshot",
                        self.workers[i].id
                    )))
                }
            }
        }
        Ok(())
    }

    /// Install snapshotted state into a freshly opened, pristine join:
    /// restore the shared interner in place (every worker holds a handle
    /// to the same table), ship each worker its encoded partition to
    /// decode and replay in parallel, adopt the coordinator counters, and
    /// fast-forward the input past the consumed prefix (verifying the
    /// per-side counts — a source that ends early or interleaves
    /// differently is a typed error, never silent corruption).
    pub fn restore_sections(&mut self, file: &SnapshotFile) -> Result<()> {
        if self.state != OperatorState::Open {
            return Err(LinkageError::snapshot("restore requires an open join"));
        }
        if self.total_consumed() != 0 {
            return Err(LinkageError::snapshot(
                "restore requires a pristine join (nothing consumed)",
            ));
        }

        let table = opsnap::decode_interner(file.section(kind::INTERNER as u32)?)?;
        self.interner.restore_table(table)?;

        let mut d = Decoder::new(file.section(kind::CONTROLLER as u32)?, "CONTROLLER");
        let phase = match d.get_u8()? {
            0 => JoinPhase::Exact,
            1 => JoinPhase::Approximate,
            other => {
                return Err(LinkageError::snapshot(format!(
                    "CONTROLLER section: unknown phase tag {other}"
                )))
            }
        };
        let consumed = PerSide::new(d.get_u64()?, d.get_u64()?);
        let emitted = PerKind {
            exact: d.get_u64()?,
            approximate: d.get_u64()?,
        };
        let switch = if d.get_bool()? {
            Some(SwitchEvent {
                after_tuples: d.get_u64()?,
                sigma: d.get_f64()?,
                recovered: d.get_u64()?,
            })
        } else {
            None
        };
        let switch_latency = d.get_opt_u64()?.map(Duration::from_nanos);
        let undrained_pre_switch = d.get_u64()? as usize;
        let pre_switch_in_flight = d.get_bool()?;
        let exhausted = d.get_bool()?;
        let control = GlobalControlState {
            assessments: d.get_u64()?,
            last_checked: d.get_u64()?,
            streak: d.get_u32()?,
            last_checkpoint: d.get_u64()?,
        };
        d.finish()?;

        let pending = opsnap::decode_pairs(file.section(kind::PENDING as u32)?)?;

        let shard_sections = file.sections_with_base(kind::SHARD);
        if shard_sections.len() != self.workers.len() {
            return Err(LinkageError::snapshot(format!(
                "snapshot has {} shard section(s), this join runs {} shard(s) — \
                 resume with the shard count the snapshot was taken with",
                shard_sections.len(),
                self.workers.len()
            )));
        }
        for (i, (shard, payload)) in shard_sections.iter().enumerate() {
            if *shard as usize != i {
                return Err(LinkageError::snapshot(format!(
                    "shard sections are not dense: expected shard {i}, found {shard}"
                )));
            }
            let mut d = Decoder::new(payload, "SHARD");
            let approx = d.get_bool()?;
            if approx != (phase == JoinPhase::Approximate) {
                return Err(LinkageError::snapshot(format!(
                    "shard {i} phase contradicts the CONTROLLER section"
                )));
            }
            let shard = ShardSnapshot {
                approx,
                stored_tuples: d.get_u64()?,
                probes: d.get_u64()?,
                emitted: PerKind {
                    exact: d.get_u64()?,
                    approximate: d.get_u64()?,
                },
                core_bytes: d.get_bytes()?.to_vec(),
            };
            d.finish()?;
            self.workers[i].send(ShardCmd::Restore(Box::new(shard)))?;
        }
        for i in 0..self.workers.len() {
            match self.workers[i].recv()? {
                ShardReply::Restored(Ok(())) => {}
                ShardReply::Restored(Err(e)) | ShardReply::Pairs(Err(e)) => return Err(e),
                _ => {
                    return Err(LinkageError::execution(format!(
                        "{}: unexpected reply to Restore",
                        self.workers[i].id
                    )))
                }
            }
        }

        self.phase = phase;
        self.out.extend(pending);
        self.emitted = emitted;
        self.switch = switch;
        self.switch_latency = switch_latency;
        self.undrained_pre_switch = undrained_pre_switch;
        self.pre_switch_in_flight = pre_switch_in_flight;
        self.exhausted = exhausted;
        self.controller.restore_control_state(control);

        while self.consumed.left < consumed.left || self.consumed.right < consumed.right {
            let Some(sided) = self.input.next()? else {
                return Err(LinkageError::snapshot(format!(
                    "input ended while skipping the consumed prefix: snapshot consumed \
                     {}/{} tuples (left/right), input supplied only {}/{}",
                    consumed.left, consumed.right, self.consumed.left, self.consumed.right
                )));
            };
            self.consumed[sided.side] += 1;
            if self.consumed[sided.side] > consumed[sided.side] {
                return Err(LinkageError::snapshot(format!(
                    "input does not match the snapshot: saw more {:?}-side tuples in the \
                     prefix than the snapshotted run consumed ({} > {})",
                    sided.side, self.consumed[sided.side], consumed[sided.side]
                )));
            }
        }
        Ok(())
    }

    /// Send `Finish` everywhere, harvest statistics, join the threads.
    fn shutdown_workers(&mut self) -> Result<()> {
        let mut workers = std::mem::take(&mut self.workers);
        let mut first_err: Option<LinkageError> = None;
        for worker in &workers {
            if let Err(e) = worker.send(ShardCmd::Finish) {
                first_err.get_or_insert(e);
            }
        }
        for worker in &workers {
            // Drain stale lock-step replies (an aborted epoch can leave
            // one) until the final statistics arrive.
            loop {
                match worker.reply.recv() {
                    Ok(ShardReply::Finished(stats)) => {
                        self.shard_stats.push(*stats);
                        break;
                    }
                    Ok(_) => continue,
                    Err(_) => {
                        first_err.get_or_insert_with(|| {
                            LinkageError::execution(format!(
                                "{} died before reporting statistics",
                                worker.id
                            ))
                        });
                        break;
                    }
                }
            }
        }
        for worker in &mut workers {
            if let Some(handle) = worker.thread.take() {
                let _ = handle.join();
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }
}

impl<I: Operator<Item = SidedRecord>> Operator for ParallelJoin<I> {
    type Item = MatchPair;

    fn name(&self) -> &'static str {
        "parallel-join"
    }

    fn state(&self) -> OperatorState {
        self.state
    }

    fn open(&mut self) -> Result<()> {
        self.state.check_open(self.name())?;
        self.input.open()?;
        self.spawn_workers()?;
        self.state = OperatorState::Open;
        // `ForceAt(0)` means "approximate from the first tuple": run the
        // (empty) distributed handover before any epoch, mirroring the
        // serial engine.
        if self.config.controller.policy == SwitchPolicy::ForceAt(0)
            && self.phase == JoinPhase::Exact
        {
            self.orchestrate_switch(0.0)?;
        }
        Ok(())
    }

    fn next(&mut self) -> Result<Option<MatchPair>> {
        self.state.check_next(self.name())?;
        // The pair returned by the previous call has been consumed by now;
        // settle its deferred pre-switch accounting.
        if self.pre_switch_in_flight {
            self.pre_switch_in_flight = false;
            self.undrained_pre_switch = self.undrained_pre_switch.saturating_sub(1);
        }
        loop {
            if let Some(pair) = self.out.pop_front() {
                // FIFO: the first pops after a switch are exactly the
                // pairs that were buffered before it.
                if self.undrained_pre_switch > 0 {
                    self.pre_switch_in_flight = true;
                }
                return Ok(Some(pair));
            }
            if self.exhausted {
                return Ok(None);
            }
            if let Err(e) = self.epoch() {
                // A severed shard cannot be resumed; stop pulling input.
                self.exhausted = true;
                return Err(e);
            }
        }
    }

    fn close(&mut self) -> Result<()> {
        if self.state != OperatorState::Closed {
            let shutdown = self.shutdown_workers();
            self.input.close()?;
            self.state = OperatorState::Closed;
            shutdown?;
        }
        Ok(())
    }
}

impl<I> Drop for ParallelJoin<I> {
    fn drop(&mut self) {
        // Severing the command channels makes every worker exit its loop;
        // dropping the reply receivers unblocks any in-flight send.
        for worker in std::mem::take(&mut self.workers) {
            let WorkerHandle {
                cmd, reply, thread, ..
            } = worker;
            drop(cmd);
            drop(reply);
            if let Some(handle) = thread {
                let _ = handle.join();
            }
        }
    }
}
