//! Configuration of the sharded parallel join.

use linkage_core::ControllerConfig;
use linkage_operators::SwitchJoinConfig;
use linkage_types::PerSide;

/// Everything the parallel executor needs to know.
#[derive(Debug, Clone)]
pub struct ParallelJoinConfig {
    /// Number of worker shards (threads).  One shard is legal and useful:
    /// it runs the identical sharded protocol, which is what the
    /// shard-count-invariance tests compare against.
    pub shards: usize,
    /// Input tuples pulled per epoch.  An epoch is the unit of the
    /// coordinator's lock-step protocol: route a batch, barrier on every
    /// shard, merge, assess.  Larger epochs amortise the barrier; smaller
    /// epochs tighten the switch decision's granularity.
    pub batch_size: usize,
    /// Bounded depth of each worker's command and reply channel.
    pub channel_capacity: usize,
    /// Join configuration shared by every shard (keys, q-grams, θ_sim).
    pub join: SwitchJoinConfig,
    /// Global monitor/assessor settings.
    pub controller: ControllerConfig,
    /// Testing and experiment hook: unconditionally switch at the first
    /// epoch boundary at or after this many consumed tuples, bypassing the
    /// assessor.  `None` (the default) leaves the decision to the
    /// controller.
    pub force_switch_after: Option<u64>,
}

impl ParallelJoinConfig {
    /// Build with defaults: the paper's join parameters, a 64-tuple epoch,
    /// and the serial controller's cadence.
    pub fn new(shards: usize, keys: PerSide<usize>, reference_size: u64) -> Self {
        assert!(shards > 0, "parallel join requires at least one shard");
        Self {
            shards,
            batch_size: 64,
            channel_capacity: 2,
            join: SwitchJoinConfig::new(keys),
            controller: ControllerConfig::new(reference_size),
            force_switch_after: None,
        }
    }

    /// Override the epoch size.
    #[must_use]
    pub fn with_batch_size(mut self, batch_size: usize) -> Self {
        assert!(batch_size > 0, "epoch batch size must be positive");
        self.batch_size = batch_size;
        self
    }

    /// Override the join configuration.
    #[must_use]
    pub fn with_join(mut self, join: SwitchJoinConfig) -> Self {
        self.join = join;
        self
    }

    /// Override the controller configuration.
    #[must_use]
    pub fn with_controller(mut self, controller: ControllerConfig) -> Self {
        self.controller = controller;
        self
    }

    /// Force the switch at a fixed point in the stream (tests, experiments).
    #[must_use]
    pub fn with_forced_switch_after(mut self, consumed_tuples: u64) -> Self {
        self.force_switch_after = Some(consumed_tuples);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = ParallelJoinConfig::new(4, PerSide::new(0, 0), 100);
        assert_eq!(c.shards, 4);
        assert!(c.batch_size > 0);
        assert!(c.channel_capacity > 0);
        assert!(c.force_switch_after.is_none());
    }

    #[test]
    fn builders_override() {
        let c = ParallelJoinConfig::new(2, PerSide::new(1, 1), 10)
            .with_batch_size(7)
            .with_forced_switch_after(100);
        assert_eq!(c.batch_size, 7);
        assert_eq!(c.force_switch_after, Some(100));
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_rejected() {
        ParallelJoinConfig::new(0, PerSide::new(0, 0), 1);
    }

    #[test]
    #[should_panic(expected = "batch size")]
    fn zero_batch_rejected() {
        let _ = ParallelJoinConfig::new(1, PerSide::new(0, 0), 1).with_batch_size(0);
    }
}
