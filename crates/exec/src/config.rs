//! Configuration of the sharded parallel join.

use linkage_core::{ControllerConfig, SwitchPolicy};
use linkage_operators::SwitchJoinConfig;
use linkage_types::{defaults, PerSide};

/// Everything the parallel executor needs to know.
///
/// `#[non_exhaustive]`: construct via [`ParallelJoinConfig::new`] (or
/// [`Default`]) and refine with the `with_*` builders.  The unified
/// `linkage::api::PipelineConfig` constructs this type internally.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct ParallelJoinConfig {
    /// Number of worker shards (threads).  One shard is legal and useful:
    /// it runs the identical sharded protocol, which is what the
    /// shard-count-invariance tests compare against.
    pub shards: usize,
    /// Input tuples pulled per epoch.  An epoch is the unit of the
    /// coordinator's lock-step protocol: route a batch, barrier on every
    /// shard, merge, assess.  Larger epochs amortise the barrier; smaller
    /// epochs tighten the switch decision's granularity.
    pub batch_size: usize,
    /// Bounded depth of each worker's command and reply channel.
    pub channel_capacity: usize,
    /// Join configuration shared by every shard (keys, q-grams, the
    /// similarity coefficient, θ_sim).
    pub join: SwitchJoinConfig,
    /// Global monitor/assessor settings and the switch policy.  A
    /// [`SwitchPolicy::ForceAt`] policy switches at the first epoch
    /// boundary at or after the given consumed-tuple count.
    pub controller: ControllerConfig,
}

impl Default for ParallelJoinConfig {
    /// One shard, the paper's join parameters, and a placeholder
    /// reference size of 1 (override via the controller).
    fn default() -> Self {
        Self::new(1, PerSide::new(0, 0), 1)
    }
}

impl ParallelJoinConfig {
    /// Build with defaults: the paper's join parameters, a
    /// [`defaults::EPOCH_BATCH_SIZE`]-tuple epoch, and the serial
    /// controller's cadence.
    pub fn new(shards: usize, keys: PerSide<usize>, reference_size: u64) -> Self {
        assert!(shards > 0, "parallel join requires at least one shard");
        Self {
            shards,
            batch_size: defaults::EPOCH_BATCH_SIZE,
            channel_capacity: defaults::CHANNEL_CAPACITY,
            join: SwitchJoinConfig::new(keys),
            controller: ControllerConfig::new(reference_size),
        }
    }

    /// Override the epoch size.
    #[must_use]
    pub fn with_batch_size(mut self, batch_size: usize) -> Self {
        assert!(batch_size > 0, "epoch batch size must be positive");
        self.batch_size = batch_size;
        self
    }

    /// Override the worker channel depth.
    #[must_use]
    pub fn with_channel_capacity(mut self, channel_capacity: usize) -> Self {
        assert!(channel_capacity > 0, "channel capacity must be positive");
        self.channel_capacity = channel_capacity;
        self
    }

    /// Override the join configuration.
    #[must_use]
    pub fn with_join(mut self, join: SwitchJoinConfig) -> Self {
        self.join = join;
        self
    }

    /// Override the controller configuration.
    #[must_use]
    pub fn with_controller(mut self, controller: ControllerConfig) -> Self {
        self.controller = controller;
        self
    }

    /// Force the switch at a fixed point in the stream (tests,
    /// experiments) — shorthand for setting [`SwitchPolicy::ForceAt`] on
    /// the controller.
    #[must_use]
    pub fn with_forced_switch_after(mut self, consumed_tuples: u64) -> Self {
        self.controller = self
            .controller
            .with_policy(SwitchPolicy::ForceAt(consumed_tuples));
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = ParallelJoinConfig::new(4, PerSide::new(0, 0), 100);
        assert_eq!(c.shards, 4);
        assert!(c.batch_size > 0);
        assert!(c.channel_capacity > 0);
        assert_eq!(c.controller.policy, SwitchPolicy::Adaptive);
        assert_eq!(ParallelJoinConfig::default().shards, 1);
    }

    #[test]
    fn builders_override() {
        let c = ParallelJoinConfig::new(2, PerSide::new(1, 1), 10)
            .with_batch_size(7)
            .with_channel_capacity(5)
            .with_forced_switch_after(100);
        assert_eq!(c.batch_size, 7);
        assert_eq!(c.channel_capacity, 5);
        assert_eq!(c.controller.policy, SwitchPolicy::ForceAt(100));
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_rejected() {
        ParallelJoinConfig::new(0, PerSide::new(0, 0), 1);
    }

    #[test]
    #[should_panic(expected = "batch size")]
    fn zero_batch_rejected() {
        let _ = ParallelJoinConfig::new(1, PerSide::new(0, 0), 1).with_batch_size(0);
    }
}
