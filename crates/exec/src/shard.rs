//! The per-shard worker: one thread, one switchable join kernel.
//!
//! A worker owns the same kernels the serial [`SwitchJoin`] drives — an
//! [`ExactJoinCore`] that becomes an [`SshJoinCore`] at the handover — but
//! is fed through the [`ShardCmd`] channel protocol instead of an input
//! operator, and obeys the coordinator's *global* switch decision instead
//! of deciding locally.
//!
//! Every worker holds a clone of the join's [`SharedInterner`], so the
//! approximate kernel it builds at the handover lives in the same gram-id
//! space as the coordinator's router and every sibling shard: broadcast
//! tuples arrive pre-interned and resident snapshots shipped for
//! cross-shard recovery carry ids this worker's flat postings understand
//! directly.  Steady-state probing never touches the interner lock.
//!
//! [`SwitchJoin`]: linkage_operators::SwitchJoin

use std::collections::VecDeque;
use std::sync::mpsc::{Receiver, SyncSender};

use linkage_operators::{
    snapshot as opsnap, ExactJoinCore, PerKind, SshJoinCore, SwitchJoinConfig,
};
use linkage_text::SharedInterner;
use linkage_types::{LinkageError, MatchKind, MatchPair, PerSide, ShardId};

use crate::messages::{ShardCmd, ShardReply, ShardSnapshot, ShardStats};

// One long-lived instance per worker thread: the inline size gap
// between the kernels (the approximate core carries its probe scratch)
// never multiplies across a collection, so boxing would only add
// indirection.
#[allow(clippy::large_enum_variant)]
enum Core {
    Exact(ExactJoinCore),
    Approx(SshJoinCore),
    /// Transient placeholder while the handover runs.
    Switching,
}

/// One worker shard; consumed by [`ShardWorker::run`] on its own thread.
pub(crate) struct ShardWorker {
    id: ShardId,
    config: SwitchJoinConfig,
    /// Handle to the join-wide gram table (see module docs).
    interner: SharedInterner,
    core: Core,
    out: VecDeque<MatchPair>,
    stored_tuples: u64,
    probes: u64,
    emitted: PerKind,
}

impl ShardWorker {
    pub(crate) fn new(id: ShardId, config: SwitchJoinConfig, interner: SharedInterner) -> Self {
        let exact = config.exact_core();
        Self {
            id,
            config,
            interner,
            core: Core::Exact(exact),
            out: VecDeque::new(),
            stored_tuples: 0,
            probes: 0,
            emitted: PerKind::default(),
        }
    }

    /// Serve commands until `Finish` arrives or either channel is severed.
    pub(crate) fn run(mut self, rx: Receiver<ShardCmd>, tx: SyncSender<ShardReply>) {
        while let Ok(cmd) = rx.recv() {
            let done = matches!(cmd, ShardCmd::Finish);
            let reply = self.handle(cmd);
            if tx.send(reply).is_err() || done {
                return;
            }
        }
    }

    fn handle(&mut self, cmd: ShardCmd) -> ShardReply {
        match cmd {
            ShardCmd::ExactBatch(tuples) => {
                let Core::Exact(exact) = &mut self.core else {
                    return Self::protocol_error("ExactBatch outside the exact phase");
                };
                for (sided, key) in tuples {
                    self.stored_tuples += 1;
                    self.probes += 1;
                    if let Err(e) = exact.process_with_key(sided, key, &mut self.out) {
                        return ShardReply::Pairs(Err(e));
                    }
                }
                ShardReply::Pairs(Ok(self.drain()))
            }
            ShardCmd::ApproxBatch(batch) => {
                let Core::Approx(ssh) = &mut self.core else {
                    return Self::protocol_error("ApproxBatch outside the approximate phase");
                };
                self.probes += batch.len() as u64;
                self.stored_tuples +=
                    batch.homes.iter().filter(|&&home| home == self.id).count() as u64;
                if let Err(e) = ssh.probe_batch_into(&batch, Some(self.id), &mut self.out) {
                    return ShardReply::Pairs(Err(e));
                }
                ShardReply::Pairs(Ok(self.drain()))
            }
            ShardCmd::Switch => match std::mem::replace(&mut self.core, Core::Switching) {
                Core::Exact(exact) => {
                    let (ssh, _) = self
                        .config
                        .ssh_core_with(self.interner.clone())
                        .with_exact_state(exact.into_tables(), &mut self.out);
                    let residents = ssh.residents();
                    self.core = Core::Approx(ssh);
                    ShardReply::Switched {
                        recovered: self.drain(),
                        residents,
                    }
                }
                other => {
                    self.core = other;
                    Self::protocol_error("Switch outside the exact phase")
                }
            },
            ShardCmd::Recover(snapshots) => {
                let Core::Approx(ssh) = &mut self.core else {
                    return Self::protocol_error("Recover outside the approximate phase");
                };
                for snapshot in &snapshots {
                    self.probes += snapshot.len() as u64;
                    ssh.recover_foreign(snapshot, &mut self.out);
                }
                ShardReply::Recovered(self.drain())
            }
            ShardCmd::Snapshot => {
                // Every barrier leaves `out` drained, so the reply is a
                // complete picture of this shard's durable state.
                let (approx, core_bytes) = match &self.core {
                    Core::Exact(c) => (false, opsnap::encode_exact_core(c)),
                    Core::Approx(c) => (true, opsnap::encode_ssh_core(c)),
                    Core::Switching => {
                        return Self::protocol_error("Snapshot during an in-flight switch")
                    }
                };
                ShardReply::Snapshot(Box::new(ShardSnapshot {
                    approx,
                    core_bytes,
                    stored_tuples: self.stored_tuples,
                    probes: self.probes,
                    emitted: self.emitted,
                }))
            }
            ShardCmd::Restore(snapshot) => ShardReply::Restored(self.restore(&snapshot)),
            ShardCmd::Finish => ShardReply::Finished(Box::new(self.stats())),
        }
    }

    /// Install snapshotted state: decode (replay) the kernel for this
    /// shard's partition and adopt the counters.  Only a shard that has
    /// processed nothing may be restored — the coordinator sends this
    /// right after spawning the fleet.
    fn restore(&mut self, snapshot: &ShardSnapshot) -> linkage_types::Result<()> {
        if self.stored_tuples != 0 || self.probes != 0 || self.emitted.total() != 0 {
            return Err(LinkageError::snapshot(format!(
                "{}: restore requires a pristine shard",
                self.id
            )));
        }
        self.core = if snapshot.approx {
            Core::Approx(opsnap::decode_ssh_core(
                &snapshot.core_bytes,
                &self.config,
                self.interner.clone(),
            )?)
        } else {
            Core::Exact(opsnap::decode_exact_core(
                &snapshot.core_bytes,
                &self.config,
            )?)
        };
        self.stored_tuples = snapshot.stored_tuples;
        self.probes = snapshot.probes;
        self.emitted = snapshot.emitted;
        Ok(())
    }

    /// Drain buffered pairs, folding their kinds into the emission counters.
    fn drain(&mut self) -> Vec<MatchPair> {
        let pairs: Vec<MatchPair> = self.out.drain(..).collect();
        for pair in &pairs {
            match pair.kind {
                MatchKind::Exact => self.emitted.exact += 1,
                MatchKind::Approximate { .. } => self.emitted.approximate += 1,
            }
        }
        pairs
    }

    fn stats(&self) -> ShardStats {
        let (resident, state_bytes, slack, funnel) = match &self.core {
            Core::Exact(c) => (c.stored(), c.state_bytes(), 0, Default::default()),
            Core::Approx(c) => {
                let slack = c.postings_slack_bytes();
                (
                    c.stored(),
                    c.state_bytes(),
                    // Probe scratch (epoch stamps, candidate arena, batch
                    // ranges, bounds memo) is overhead the same way posting
                    // slack is: allocated but not payload.
                    slack.left + slack.right + c.scratch_bytes(),
                    c.funnel(),
                )
            }
            Core::Switching => (
                PerSide::default(),
                PerSide::default(),
                0,
                Default::default(),
            ),
        };
        ShardStats {
            shard: self.id,
            stored_tuples: self.stored_tuples,
            probes: self.probes,
            emitted: self.emitted,
            resident,
            state_bytes,
            interner_bytes: self.interner.state_bytes(),
            postings_slack_bytes: slack,
            funnel,
        }
    }

    fn protocol_error(message: &str) -> ShardReply {
        ShardReply::Pairs(Err(LinkageError::execution(message)))
    }
}
