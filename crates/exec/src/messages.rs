//! The coordinator ⇄ shard wire protocol.
//!
//! Commands flow down a bounded channel per shard, replies flow back up
//! one.  The protocol is strictly request/reply in epoch lock-step: the
//! coordinator sends one command to every shard, then collects exactly one
//! reply from every shard in shard order — which is what makes the merged
//! output deterministic for a given shard count.

use std::sync::Arc;

use linkage_operators::{PerKind, SshStored};
use linkage_text::QGramSet;
use linkage_types::{MatchPair, PerSide, Result, ShardId, Side, SidedRecord};

/// One input tuple with its routing work pre-done by the coordinator.
///
/// In the approximate phase every shard receives every tuple (to probe its
/// slice of the resident state), so the key is normalised and tokenised
/// **once** here and shared; `home` names the single shard that also
/// stores the tuple.
#[derive(Debug, Clone)]
pub struct PreparedTuple {
    /// The tuple, tagged with its input side.
    pub sided: SidedRecord,
    /// The normalised join key.
    pub key: Arc<str>,
    /// The q-gram set of the key.
    pub grams: QGramSet,
    /// The shard that stores this tuple.
    pub home: ShardId,
}

/// A command from the coordinator to one shard.
#[derive(Debug)]
pub enum ShardCmd {
    /// Exact phase: process these hash-routed tuples (key pre-normalised).
    ExactBatch(Vec<(SidedRecord, Arc<str>)>),
    /// Approximate phase: probe every tuple, store the ones homed here.
    ApproxBatch(Arc<Vec<PreparedTuple>>),
    /// Perform the local exact → approximate handover (paper §3.3) and
    /// reply with the recovered pairs plus a snapshot of the residents.
    Switch,
    /// Probe these foreign residents (snapshots of lower-numbered shards)
    /// against the local post-handover indexes.
    Recover(Vec<Arc<Vec<(Side, SshStored)>>>),
    /// Report final statistics and exit.
    Finish,
}

/// A reply from one shard to the coordinator.
#[derive(Debug)]
pub enum ShardReply {
    /// Pairs emitted by a batch command (either phase), in processing
    /// order; an `Err` poisons the join.
    Pairs(Result<Vec<MatchPair>>),
    /// The local handover completed.
    Switched {
        /// Matches recovered from this shard's own resident state.
        recovered: Vec<MatchPair>,
        /// Snapshot of the shard's residents, for cross-shard recovery.
        residents: Vec<(Side, SshStored)>,
    },
    /// Cross-shard recovery completed with these additional pairs.
    Recovered(Vec<MatchPair>),
    /// Final per-shard statistics, sent in response to [`ShardCmd::Finish`].
    Finished(Box<ShardStats>),
}

/// What one shard did over its lifetime.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardStats {
    /// Which shard.
    pub shard: ShardId,
    /// Tuples this shard stored (exact-phase routed plus approximate-phase
    /// homed).  Summed over shards this equals the join's consumed count.
    pub stored_tuples: u64,
    /// Probe operations performed, including approximate-phase broadcast
    /// probes of tuples homed elsewhere.
    pub probes: u64,
    /// Pairs this shard emitted, by kind (recovery included).
    pub emitted: PerKind,
    /// Tuples resident per side at the end of the run.
    pub resident: PerSide<usize>,
    /// Estimated resident-state bytes per side at the end of the run.
    pub state_bytes: PerSide<usize>,
}
