//! The coordinator ⇄ shard wire protocol.
//!
//! Commands flow down a bounded channel per shard, replies flow back up
//! one.  The protocol is request/reply in epoch order: the coordinator
//! sends one command to every shard, then collects exactly one reply from
//! every shard in shard order — which is what makes the merged output
//! deterministic for a given shard count.  Tuples always travel in
//! **batches** (one message per epoch per shard, never per tuple), and in
//! the approximate phase the whole prepared batch is a single
//! `Arc`-shared structure-of-arrays, so broadcasting to N shards costs N
//! channel sends and zero per-tuple clones.

use std::sync::Arc;

use linkage_operators::{PerKind, ProbeFunnel, SshStored};
use linkage_types::{MatchPair, PerSide, Result, ShardId, Side, SidedRecord};

// The structure-of-arrays batch now lives beside the batched probe
// kernel that consumes it; it is still part of this wire protocol.
pub use linkage_operators::PreparedBatch;

/// A command from the coordinator to one shard.
#[derive(Debug)]
pub enum ShardCmd {
    /// Exact phase: process these hash-routed tuples (key pre-normalised).
    ExactBatch(Vec<(SidedRecord, Arc<str>)>),
    /// Approximate phase: probe every tuple, store the ones homed here.
    /// The batch is shared — one allocation broadcast to every shard.
    ApproxBatch(Arc<PreparedBatch>),
    /// Perform the local exact → approximate handover (paper §3.3) and
    /// reply with the recovered pairs plus a snapshot of the residents.
    Switch,
    /// Probe these foreign residents (snapshots of lower-numbered shards)
    /// against the local post-handover indexes.
    Recover(Vec<Arc<Vec<(Side, SshStored)>>>),
    /// Encode the shard's durable state (valid at any epoch barrier, in
    /// either phase) and reply with [`ShardReply::Snapshot`].
    Snapshot,
    /// Install previously snapshotted state into a pristine shard: the
    /// worker decodes `core_bytes` through the operator-layer codecs
    /// (replaying inserts re-derives its index structures) and adopts
    /// the counters, then replies [`ShardReply::Restored`].
    Restore(Box<ShardSnapshot>),
    /// Report final statistics and exit.
    Finish,
}

/// A reply from one shard to the coordinator.
#[derive(Debug)]
pub enum ShardReply {
    /// Pairs emitted by a batch command (either phase), in processing
    /// order; an `Err` poisons the join.
    Pairs(Result<Vec<MatchPair>>),
    /// The local handover completed.
    Switched {
        /// Matches recovered from this shard's own resident state.
        recovered: Vec<MatchPair>,
        /// Snapshot of the shard's residents, for cross-shard recovery.
        residents: Vec<(Side, SshStored)>,
    },
    /// Cross-shard recovery completed with these additional pairs.
    Recovered(Vec<MatchPair>),
    /// The shard's durable state, in response to [`ShardCmd::Snapshot`].
    Snapshot(Box<ShardSnapshot>),
    /// Restore completed (or failed), in response to
    /// [`ShardCmd::Restore`].
    Restored(Result<()>),
    /// Final per-shard statistics, sent in response to [`ShardCmd::Finish`].
    Finished(Box<ShardStats>),
}

/// One shard's durable state, as shipped over the wire in both
/// directions: the coordinator persists it as a `SHARD` section and
/// ships it back verbatim on resume.
///
/// The kernel itself travels **encoded** (`core_bytes`, the operator
/// layer's `EXACT_CORE`/`SSH_CORE` payload of `docs/format.md`) rather
/// than as a live structure: on resume every worker decodes — and
/// therefore replays — its own partition in parallel, and the bytes are
/// exactly what the snapshot file stores, so there is one codec path to
/// trust, not two.
#[derive(Debug, Clone)]
pub struct ShardSnapshot {
    /// Whether the shard had performed the §3.3 handover (`core_bytes`
    /// is an `SSH_CORE` payload) or was still exact (`EXACT_CORE`).
    pub approx: bool,
    /// The encoded phase kernel.
    pub core_bytes: Vec<u8>,
    /// Tuples this shard stored over its lifetime.
    pub stored_tuples: u64,
    /// Probe operations this shard performed.
    pub probes: u64,
    /// Pairs this shard emitted, by kind.
    pub emitted: PerKind,
}

/// What one shard did over its lifetime.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardStats {
    /// Which shard.
    pub shard: ShardId,
    /// Tuples this shard stored (exact-phase routed plus approximate-phase
    /// homed).  Summed over shards this equals the join's consumed count.
    pub stored_tuples: u64,
    /// Probe operations performed, including approximate-phase broadcast
    /// probes of tuples homed elsewhere.
    pub probes: u64,
    /// Pairs this shard emitted, by kind (recovery included).
    pub emitted: PerKind,
    /// Tuples resident per side at the end of the run.
    pub resident: PerSide<usize>,
    /// Estimated resident-state bytes per side at the end of the run
    /// (flat postings + tuples + keys; gram text excluded — see
    /// `interner_bytes`).
    pub state_bytes: PerSide<usize>,
    /// Estimated bytes of the **shared** gram-interner table.  Every
    /// shard reports the same value because every worker holds a handle
    /// to the same table: account for it once per join, never summed
    /// over shards.
    pub interner_bytes: usize,
    /// Estimated non-payload overhead bytes: flat-posting slack on both
    /// sides (headers of never-populated gram-id slots plus unused
    /// posting capacity) plus the probe-scratch allocations (epoch
    /// stamps, candidate arena, batch ranges, bounds memo) — reported
    /// separately so `state_bytes` stays the payload estimate.
    pub postings_slack_bytes: usize,
    /// Cumulative candidate-funnel counters of this shard's probe kernel
    /// (zero while the shard is still exact).  Sum over shards for the
    /// join-wide funnel.
    pub funnel: ProbeFunnel,
}
