//! # linkage-exec
//!
//! The partition-parallel execution layer of the adaptive record-linkage
//! pipeline: scale the paper's single-threaded exact → approximate join
//! across cores without changing what it emits.
//!
//! * [`ParallelJoin`] — a pipelined operator that hash-partitions the
//!   input across N worker shards (one [`SymmetricHashJoin`]-equivalent
//!   kernel per thread, bounded channels), switches **globally** to the
//!   approximate kernel when the aggregated monitor → assessor loop
//!   triggers, and merges emitted match pairs deterministically;
//! * [`ParallelJoinConfig`] — shard count, epoch size, the shared join
//!   parameters and the global controller settings;
//! * [`ParallelReport`] / [`ShardStats`] — run summary with per-shard
//!   residency, probe and state-size statistics.
//!
//! The match-pair **set** produced is identical to the serial operators'
//! for every shard count — equal keys co-locate by stable hash in the
//! exact phase, broadcast probing reaches every resident in the
//! approximate phase, and the distributed handover recovers cross-shard
//! pairs — which the shard-count-invariance suite under `tests/` checks
//! against the nested-loop oracles.
//!
//! [`SymmetricHashJoin`]: linkage_operators::SymmetricHashJoin

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod messages;
pub mod parallel;
mod shard;

pub use config::ParallelJoinConfig;
pub use messages::{PreparedBatch, ShardSnapshot, ShardStats};
pub use parallel::{ParallelJoin, ParallelReport};

#[cfg(test)]
mod tests {
    use std::collections::HashSet;
    use std::sync::Arc;

    use linkage_core::{AdaptiveJoin, ControllerConfig};
    use linkage_datagen::{generate, DatagenConfig, GeneratedData};
    use linkage_operators::{
        InterleavedScan, JoinPhase, Operator, SshJoin, SwitchJoin, SwitchJoinConfig,
    };
    use linkage_types::{Field, Value};
    use linkage_types::{
        LinkageError, MatchPair, PerSide, Record, RecordId, Schema, SidedRecord, VecStream,
    };

    use super::*;

    const KEYS: PerSide<usize> = PerSide {
        left: GeneratedData::KEY_COLUMN,
        right: GeneratedData::KEY_COLUMN,
    };

    fn scan(data: &GeneratedData) -> InterleavedScan<VecStream, VecStream> {
        InterleavedScan::alternating(
            VecStream::from_relation(&data.parents),
            VecStream::from_relation(&data.children),
        )
    }

    fn parallel(
        data: &GeneratedData,
        shards: usize,
    ) -> ParallelJoin<InterleavedScan<VecStream, VecStream>> {
        let config =
            ParallelJoinConfig::new(shards, KEYS, data.parents.len() as u64).with_batch_size(32);
        ParallelJoin::new(scan(data), config)
    }

    fn id_set(pairs: &[MatchPair]) -> HashSet<(RecordId, RecordId)> {
        pairs.iter().map(MatchPair::id_pair).collect()
    }

    fn assert_no_duplicates(pairs: &[MatchPair]) {
        let mut seen = HashSet::new();
        for p in pairs {
            assert!(seen.insert(p.id_pair()), "duplicate pair {:?}", p.id_pair());
        }
    }

    #[test]
    fn clean_data_matches_serial_exact_join_for_every_shard_count() {
        let data = generate(&DatagenConfig::clean(120, 21)).unwrap();
        let mut serial = SwitchJoin::new(scan(&data), SwitchJoinConfig::new(KEYS));
        let expected = id_set(&serial.run_to_end().unwrap());
        for shards in [1, 2, 3, 4] {
            let mut join = parallel(&data, shards);
            let pairs = join.run_to_end().unwrap();
            assert_eq!(join.phase(), JoinPhase::Exact, "{shards} shards switched");
            assert!(join.switch_event().is_none());
            assert_no_duplicates(&pairs);
            assert_eq!(id_set(&pairs), expected, "{shards} shards");
        }
    }

    #[test]
    fn dirty_tail_triggers_a_global_switch_with_full_recovery() {
        let data = generate(&DatagenConfig::mid_stream_dirty(150, 22)).unwrap();
        // The serial adaptive join is the reference behaviour.
        let mut serial = AdaptiveJoin::new(
            SwitchJoin::new(scan(&data), SwitchJoinConfig::new(KEYS)),
            ControllerConfig::new(data.parents.len() as u64),
        );
        let serial_pairs = serial.run_to_end().unwrap();
        assert!(serial.switch_event().is_some(), "workload must switch");

        for shards in [1, 2, 4] {
            let mut join = parallel(&data, shards);
            let pairs = join.run_to_end().unwrap();
            let event = join.switch_event().expect("parallel join must switch too");
            assert!(event.sigma <= 0.01);
            assert!(event.after_tuples > 0);
            assert!(join.switch_latency().is_some());
            assert_eq!(join.phase(), JoinPhase::Approximate);
            assert_no_duplicates(&pairs);
            // Identical match-pair set as the serial adaptive join: the
            // post-switch set is invariant to where the switch landed.
            assert_eq!(id_set(&pairs), id_set(&serial_pairs), "{shards} shards");
        }
    }

    #[test]
    fn forced_switch_matches_pure_ssh_join_set() {
        let data = generate(&DatagenConfig::mid_stream_dirty(100, 23)).unwrap();
        let mut ssh = SshJoin::new(scan(&data), KEYS, linkage_text::QGramConfig::default(), 0.8);
        let expected = id_set(&ssh.run_to_end().unwrap());
        for shards in [1, 3] {
            let config = ParallelJoinConfig::new(shards, KEYS, data.parents.len() as u64)
                .with_batch_size(17) // deliberately not a divisor of anything
                .with_forced_switch_after(60);
            let mut join = ParallelJoin::new(scan(&data), config);
            let pairs = join.run_to_end().unwrap();
            let event = join.switch_event().expect("forced switch");
            assert_eq!(event.sigma, 0.0, "forced switches report sigma 0");
            assert_no_duplicates(&pairs);
            assert_eq!(id_set(&pairs), expected, "{shards} shards");
        }
    }

    #[test]
    fn output_is_deterministic_per_shard_count() {
        let data = generate(&DatagenConfig::mid_stream_dirty(80, 24)).unwrap();
        let run = |shards: usize| -> Vec<(RecordId, RecordId)> {
            parallel(&data, shards)
                .run_to_end()
                .unwrap()
                .iter()
                .map(MatchPair::id_pair)
                .collect()
        };
        assert_eq!(run(3), run(3), "same shard count, same order");
    }

    #[test]
    fn consumed_counts_each_tuple_once_despite_broadcast() {
        let data = generate(&DatagenConfig::mid_stream_dirty(60, 25)).unwrap();
        let config = ParallelJoinConfig::new(4, KEYS, data.parents.len() as u64)
            .with_batch_size(32)
            .with_forced_switch_after(64); // guarantee a post-switch phase
        let mut join = ParallelJoin::new(scan(&data), config);
        join.run_to_end().unwrap();
        assert_eq!(join.consumed().left as usize, data.parents.len());
        assert_eq!(join.consumed().right as usize, data.children.len());

        let report = join.report();
        assert_eq!(report.shards.len(), 4);
        let stored: u64 = report.shards.iter().map(|s| s.stored_tuples).sum();
        assert_eq!(stored, join.total_consumed(), "every tuple has one home");
        let resident: usize = report
            .shards
            .iter()
            .map(|s| s.resident.left + s.resident.right)
            .sum();
        assert_eq!(resident as u64, join.total_consumed());
        assert!(report.shards.iter().all(|s| s.state_bytes.left > 0));
        // Post-switch, every shard probes every tuple: probes exceed stores.
        assert!(report.shards.iter().any(|s| s.probes > s.stored_tuples));
    }

    #[test]
    fn emitted_counters_match_output_stream() {
        let data = generate(&DatagenConfig::mid_stream_dirty(70, 26)).unwrap();
        let mut join = parallel(&data, 2);
        let pairs = join.run_to_end().unwrap();
        assert_eq!(join.emitted().total() as usize, pairs.len());
        let exact = pairs.iter().filter(|p| p.kind.is_exact()).count();
        assert_eq!(join.emitted().exact as usize, exact);
        let per_shard: u64 = join.report().shards.iter().map(|s| s.emitted.total()).sum();
        assert_eq!(per_shard as usize, pairs.len());
    }

    #[test]
    fn operator_protocol_is_enforced() {
        let data = generate(&DatagenConfig::clean(10, 27)).unwrap();
        let mut join = parallel(&data, 2);
        assert!(matches!(
            join.next(),
            Err(LinkageError::OperatorState(ref m)) if m.contains("before open")
        ));
        join.open().unwrap();
        assert!(join.open().is_err(), "double open must fail");
        join.close().unwrap();
        assert!(join.close().is_ok(), "close is idempotent");
        assert!(join.next().is_err(), "next after close must fail");
    }

    #[test]
    fn non_string_key_column_errors_and_close_still_works() {
        let schema = Schema::of(vec![Field::integer("id")]);
        let records = vec![Record::new(0u64, vec![Value::Int(5)])];
        let left = VecStream::new(schema.clone(), records.clone());
        let right = VecStream::new(schema, records);
        let scan = InterleavedScan::alternating(left, right);
        let mut join = ParallelJoin::new(scan, ParallelJoinConfig::new(2, PerSide::new(0, 0), 1));
        join.open().unwrap();
        assert!(join.next().is_err());
        assert_eq!(join.next().unwrap(), None, "poisoned join is exhausted");
        join.close().unwrap();
    }

    #[test]
    fn dropping_an_open_join_shuts_workers_down() {
        let data = generate(&DatagenConfig::clean(40, 28)).unwrap();
        let mut join = parallel(&data, 3);
        join.open().unwrap();
        let _ = join.next().unwrap();
        drop(join); // must not hang or leak threads
    }

    #[test]
    fn report_before_close_has_no_shard_stats() {
        let data = generate(&DatagenConfig::clean(20, 29)).unwrap();
        let mut join = parallel(&data, 2);
        join.open().unwrap();
        let _ = join.next().unwrap();
        assert!(join.report().shards.is_empty());
        join.close().unwrap();
        assert_eq!(join.report().shards.len(), 2);
    }

    #[test]
    fn prepared_batches_are_shared_not_copied() {
        // One prepared batch is broadcast behind an Arc: cloning the
        // handle (what each channel send does) shares the allocation.
        let rec = SidedRecord::new(
            linkage_types::Side::Left,
            Record::new(1u64, vec![Value::string("LOC ABC DEF")]),
        );
        let mut interner = linkage_text::GramInterner::new();
        let grams = linkage_text::QGramSet::extract(
            "LOC ABC DEF",
            &linkage_text::QGramConfig::default(),
            &mut interner,
        );
        let key: Arc<str> = Arc::from("loc abc def");
        let mut batch = PreparedBatch::with_capacity(1);
        assert!(batch.is_empty());
        batch.push(rec, Arc::clone(&key), grams, linkage_types::ShardId(0));
        assert_eq!(batch.len(), 1);

        // Broadcast to 4 "shards" exactly as the coordinator does: one
        // ShardCmd per shard, each holding an Arc clone of the same
        // batch.  The batch allocation is shared (strong count tracks
        // the handles) and the tuple payload inside was never deep-
        // copied: the key text still has exactly the two holders it had
        // before the broadcast (ours and the batch's).
        let shared = Arc::new(batch);
        let cmds: Vec<crate::messages::ShardCmd> = (0..4)
            .map(|_| crate::messages::ShardCmd::ApproxBatch(Arc::clone(&shared)))
            .collect();
        assert_eq!(Arc::strong_count(&shared), 1 + cmds.len());
        assert_eq!(
            Arc::strong_count(&key),
            2,
            "broadcast must not deep-copy batch contents"
        );
        for cmd in &cmds {
            let crate::messages::ShardCmd::ApproxBatch(b) = cmd else {
                panic!("expected an ApproxBatch");
            };
            assert!(Arc::ptr_eq(b, &shared));
            assert_eq!(b.homes[0], linkage_types::ShardId(0));
        }
    }
}
