//! The binomial outlier predicate `σ` of the assessor (paper §3.2).
//!
//! After `n` monitored steps the expected result size is modelled as
//! `O_n ~ bin(trials, p(n))`.  The assessor computes
//! `σ(n) = P(O ≤ Ō_n)` — the probability of observing a result at most as
//! small as the one actually seen — and flags a **completeness problem**
//! when `σ(n) ≤ θ_out`: the observed result is too small to be explained by
//! chance under the clean-data model, so join keys are probably dirty.

use crate::binomial::{Binomial, CdfMethod};

/// Outcome of one assessment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum OutlierVerdict {
    /// The observation is compatible with the clean-data model.
    Nominal {
        /// The computed tail probability `σ`.
        sigma: f64,
    },
    /// The observation is a low outlier: completeness problem detected.
    Outlier {
        /// The computed tail probability `σ`.
        sigma: f64,
    },
}

impl OutlierVerdict {
    /// The tail probability behind the verdict.
    pub fn sigma(&self) -> f64 {
        match self {
            OutlierVerdict::Nominal { sigma } | OutlierVerdict::Outlier { sigma } => *sigma,
        }
    }

    /// Whether a completeness problem was flagged.
    pub fn is_outlier(&self) -> bool {
        matches!(self, OutlierVerdict::Outlier { .. })
    }
}

/// The `σ(n) ≤ θ_out` predicate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BinomialOutlierDetector {
    theta_out: f64,
    method: CdfMethod,
}

impl BinomialOutlierDetector {
    /// Build a detector with significance threshold `θ_out` (the paper uses
    /// values around 0.01–0.05).
    pub fn new(theta_out: f64) -> Self {
        assert!(
            (0.0..1.0).contains(&theta_out),
            "θ_out must be in [0, 1), got {theta_out}"
        );
        Self {
            theta_out,
            method: CdfMethod::default(),
        }
    }

    /// Use a specific CDF evaluation method (e.g. the normal approximation
    /// for very long streams).
    pub fn with_method(mut self, method: CdfMethod) -> Self {
        self.method = method;
        self
    }

    /// The configured threshold.
    pub fn theta_out(&self) -> f64 {
        self.theta_out
    }

    /// `σ = P(O ≤ observed)` under `bin(trials, p)`.
    ///
    /// With zero trials there is no evidence either way, so `σ = 1`.
    pub fn sigma(&self, trials: u64, p: f64, observed: u64) -> f64 {
        if trials == 0 {
            return 1.0;
        }
        Binomial::new(trials, p).cdf_with(observed.min(trials), self.method)
    }

    /// Assess one observation.
    pub fn assess(&self, trials: u64, p: f64, observed: u64) -> OutlierVerdict {
        let sigma = self.sigma(trials, p, observed);
        if sigma <= self.theta_out {
            OutlierVerdict::Outlier { sigma }
        } else {
            OutlierVerdict::Nominal { sigma }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nominal_when_observation_matches_expectation() {
        let det = BinomialOutlierDetector::new(0.01);
        // 100 trials at p = 0.5, observing 50: dead centre.
        let v = det.assess(100, 0.5, 50);
        assert!(!v.is_outlier());
        assert!(v.sigma() > 0.4, "sigma {}", v.sigma());
    }

    #[test]
    fn outlier_when_observation_is_far_too_small() {
        let det = BinomialOutlierDetector::new(0.01);
        // Expected 50, observed 20: essentially impossible under the model.
        let v = det.assess(100, 0.5, 20);
        assert!(v.is_outlier());
        assert!(v.sigma() < 1e-6, "sigma {}", v.sigma());
    }

    #[test]
    fn threshold_controls_sensitivity() {
        let loose = BinomialOutlierDetector::new(0.2);
        let strict = BinomialOutlierDetector::new(0.001);
        // Observing 42/100 at p = 0.5 is mildly unlikely (σ ≈ 0.067).
        assert!(loose.assess(100, 0.5, 42).is_outlier());
        assert!(!strict.assess(100, 0.5, 42).is_outlier());
    }

    #[test]
    fn zero_trials_is_always_nominal() {
        let det = BinomialOutlierDetector::new(0.05);
        let v = det.assess(0, 0.5, 0);
        assert!(!v.is_outlier());
        assert_eq!(v.sigma(), 1.0);
    }

    #[test]
    fn observed_above_trials_is_clamped() {
        let det = BinomialOutlierDetector::new(0.05);
        let v = det.assess(10, 0.5, 99);
        assert!(!v.is_outlier());
        assert_eq!(v.sigma(), 1.0);
    }

    #[test]
    fn sigma_is_monotone_in_observed() {
        let det = BinomialOutlierDetector::new(0.05);
        let mut prev = 0.0;
        for o in 0..=60u64 {
            let s = det.sigma(60, 0.4, o);
            assert!(s + 1e-12 >= prev, "o={o}");
            prev = s;
        }
    }

    #[test]
    fn with_method_switches_evaluation() {
        let exact = BinomialOutlierDetector::new(0.05);
        let approx = BinomialOutlierDetector::new(0.05).with_method(CdfMethod::NormalApprox);
        let (se, sa) = (exact.sigma(2000, 0.3, 560), approx.sigma(2000, 0.3, 560));
        assert!((se - sa).abs() < 5e-3, "{se} vs {sa}");
        assert_eq!(exact.theta_out(), 0.05);
    }

    #[test]
    #[should_panic(expected = "θ_out")]
    fn rejects_threshold_of_one() {
        BinomialOutlierDetector::new(1.0);
    }
}
