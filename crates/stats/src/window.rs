//! Fixed-width windows of recent observations.
//!
//! The `μ_i` predicates of the assessor look at the *recent* behaviour of
//! the stream rather than its whole history; these windows provide the
//! bookkeeping: [`SlidingWindow`] for real-valued observations and
//! [`CountingWindow`] for boolean ones (e.g. "did this probe find a
//! match?").

use std::collections::VecDeque;

/// A fixed-width window over `f64` observations.
#[derive(Debug, Clone)]
pub struct SlidingWindow {
    capacity: usize,
    buf: VecDeque<f64>,
    sum: f64,
}

impl SlidingWindow {
    /// Build a window holding at most `capacity` observations.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "window capacity must be positive");
        Self {
            capacity,
            buf: VecDeque::with_capacity(capacity),
            sum: 0.0,
        }
    }

    /// Push an observation, evicting the oldest when full.  Returns the
    /// evicted observation, if any.
    pub fn push(&mut self, value: f64) -> Option<f64> {
        let evicted = if self.buf.len() == self.capacity {
            let old = self.buf.pop_front();
            if let Some(o) = old {
                self.sum -= o;
            }
            old
        } else {
            None
        };
        self.buf.push_back(value);
        self.sum += value;
        evicted
    }

    /// Number of observations currently held.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the window holds no observations.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Whether the window has reached its capacity.
    pub fn is_full(&self) -> bool {
        self.buf.len() == self.capacity
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Sum of the held observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean of the held observations, or `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        if self.buf.is_empty() {
            None
        } else {
            Some(self.sum / self.buf.len() as f64)
        }
    }

    /// Oldest-to-newest iterator.
    pub fn iter(&self) -> impl Iterator<Item = f64> + '_ {
        self.buf.iter().copied()
    }

    /// Drop all observations.
    pub fn clear(&mut self) {
        self.buf.clear();
        self.sum = 0.0;
    }
}

/// A fixed-width window over boolean observations, tracking the success
/// count incrementally.
#[derive(Debug, Clone)]
pub struct CountingWindow {
    capacity: usize,
    buf: VecDeque<bool>,
    successes: usize,
}

impl CountingWindow {
    /// Build a window holding at most `capacity` observations.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "window capacity must be positive");
        Self {
            capacity,
            buf: VecDeque::with_capacity(capacity),
            successes: 0,
        }
    }

    /// Push an observation, evicting the oldest when full.
    pub fn push(&mut self, success: bool) {
        if self.buf.len() == self.capacity && self.buf.pop_front() == Some(true) {
            self.successes -= 1;
        }
        self.buf.push_back(success);
        if success {
            self.successes += 1;
        }
    }

    /// Number of observations currently held.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the window holds no observations.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Whether the window has reached its capacity.
    pub fn is_full(&self) -> bool {
        self.buf.len() == self.capacity
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of `true` observations in the window.
    pub fn successes(&self) -> usize {
        self.successes
    }

    /// Fraction of `true` observations, or `None` when empty.
    pub fn success_rate(&self) -> Option<f64> {
        if self.buf.is_empty() {
            None
        } else {
            Some(self.successes as f64 / self.buf.len() as f64)
        }
    }

    /// Drop all observations.
    pub fn clear(&mut self) {
        self.buf.clear();
        self.successes = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sliding_window_evicts_oldest_and_tracks_sum() {
        let mut w = SlidingWindow::new(3);
        assert!(w.is_empty());
        assert_eq!(w.mean(), None);
        assert_eq!(w.push(1.0), None);
        assert_eq!(w.push(2.0), None);
        assert_eq!(w.push(3.0), None);
        assert!(w.is_full());
        assert_eq!(w.sum(), 6.0);
        assert_eq!(w.push(4.0), Some(1.0));
        assert_eq!(w.len(), 3);
        assert_eq!(w.sum(), 9.0);
        assert_eq!(w.mean(), Some(3.0));
        let held: Vec<f64> = w.iter().collect();
        assert_eq!(held, vec![2.0, 3.0, 4.0]);
        w.clear();
        assert!(w.is_empty());
        assert_eq!(w.sum(), 0.0);
        assert_eq!(w.capacity(), 3);
    }

    #[test]
    fn counting_window_tracks_successes_incrementally() {
        let mut w = CountingWindow::new(4);
        assert_eq!(w.success_rate(), None);
        for s in [true, false, true, true] {
            w.push(s);
        }
        assert!(w.is_full());
        assert_eq!(w.successes(), 3);
        assert_eq!(w.success_rate(), Some(0.75));
        // Evicts the initial `true`.
        w.push(false);
        assert_eq!(w.successes(), 2);
        assert_eq!(w.len(), 4);
        assert_eq!(w.success_rate(), Some(0.5));
        w.clear();
        assert!(w.is_empty());
        assert_eq!(w.successes(), 0);
        assert_eq!(w.capacity(), 4);
    }

    #[test]
    fn counting_window_eviction_of_false_keeps_count() {
        let mut w = CountingWindow::new(2);
        w.push(false);
        w.push(true);
        w.push(true); // evicts false
        assert_eq!(w.successes(), 2);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_rejected() {
        SlidingWindow::new(0);
    }
}
