//! The binomial distribution `bin(n, p)`.
//!
//! The adaptive monitor models the observed join result size after `n` steps
//! as `O_n ~ bin(n, p(n))` (paper §3.2); the assessor needs its CDF at the
//! observed count.  Three evaluation strategies are provided and
//! cross-checked against each other by the tests:
//!
//! * [`CdfMethod::DirectSum`] — exact summation of log-space pmf terms,
//!   `O(k)` per call; the reference implementation;
//! * [`CdfMethod::IncompleteBeta`] — the identity
//!   `P(X ≤ k) = I_{1−p}(n − k, k + 1)`, `O(1)` per call and the default for
//!   large `n`;
//! * [`CdfMethod::NormalApprox`] — normal approximation with continuity
//!   correction, for cheap monitoring at very large `n`.

use crate::gamma::{ln_binomial_coefficient, regularized_incomplete_beta};

/// Strategy used to evaluate the binomial CDF.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CdfMethod {
    /// Exact log-space summation of pmf terms (reference, `O(k)`).
    DirectSum,
    /// Regularised incomplete beta identity (exact up to the beta-function
    /// evaluation, `O(1)`).
    #[default]
    IncompleteBeta,
    /// Normal approximation with continuity correction (fast, approximate).
    NormalApprox,
}

/// A binomial distribution with `n` trials and success probability `p`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Binomial {
    n: u64,
    p: f64,
}

impl Binomial {
    /// Build `bin(n, p)`; `p` must lie in `[0, 1]`.
    pub fn new(n: u64, p: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&p),
            "binomial success probability must be in [0, 1], got {p}"
        );
        Self { n, p }
    }

    /// Number of trials.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Success probability.
    pub fn p(&self) -> f64 {
        self.p
    }

    /// Expected value `n·p`.
    pub fn mean(&self) -> f64 {
        self.n as f64 * self.p
    }

    /// Variance `n·p·(1−p)`.
    pub fn variance(&self) -> f64 {
        self.n as f64 * self.p * (1.0 - self.p)
    }

    /// Standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Natural log of the probability mass at `k`.
    pub fn ln_pmf(&self, k: u64) -> f64 {
        if k > self.n {
            return f64::NEG_INFINITY;
        }
        // Degenerate edges avoid 0·ln 0.
        if self.p == 0.0 {
            return if k == 0 { 0.0 } else { f64::NEG_INFINITY };
        }
        if self.p == 1.0 {
            return if k == self.n { 0.0 } else { f64::NEG_INFINITY };
        }
        ln_binomial_coefficient(self.n, k)
            + k as f64 * self.p.ln()
            + (self.n - k) as f64 * (1.0 - self.p).ln()
    }

    /// Probability mass at `k`.
    pub fn pmf(&self, k: u64) -> f64 {
        self.ln_pmf(k).exp()
    }

    /// `P(X ≤ k)` with the default method ([`CdfMethod::IncompleteBeta`]).
    pub fn cdf(&self, k: u64) -> f64 {
        self.cdf_with(k, CdfMethod::default())
    }

    /// `P(X ≤ k)` with an explicit evaluation method.
    pub fn cdf_with(&self, k: u64, method: CdfMethod) -> f64 {
        if k >= self.n {
            return 1.0;
        }
        if self.p == 0.0 {
            return 1.0;
        }
        if self.p == 1.0 {
            // k < n here.
            return 0.0;
        }
        match method {
            CdfMethod::DirectSum => {
                let mut acc = 0.0f64;
                for i in 0..=k {
                    acc += self.pmf(i);
                }
                acc.min(1.0)
            }
            CdfMethod::IncompleteBeta => {
                // P(X ≤ k) = I_{1−p}(n − k, k + 1).
                regularized_incomplete_beta((self.n - k) as f64, k as f64 + 1.0, 1.0 - self.p)
            }
            CdfMethod::NormalApprox => {
                let sd = self.std_dev();
                if sd == 0.0 {
                    return if (k as f64) < self.mean() { 0.0 } else { 1.0 };
                }
                standard_normal_cdf((k as f64 + 0.5 - self.mean()) / sd)
            }
        }
    }

    /// `P(X ≥ k)` (survival at `k`, inclusive).
    pub fn sf(&self, k: u64) -> f64 {
        if k == 0 {
            1.0
        } else {
            (1.0 - self.cdf(k - 1)).clamp(0.0, 1.0)
        }
    }
}

/// CDF of the standard normal distribution, via the Abramowitz–Stegun
/// rational approximation of `erf` (7.1.26, absolute error < 1.5e−7).
pub fn standard_normal_cdf(x: f64) -> f64 {
    0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2))
}

/// The error function, Abramowitz–Stegun 7.1.26.
fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let poly = t
        * (0.254_829_592
            + t * (-0.284_496_736
                + t * (1.421_413_741 + t * (-1.453_152_027 + t * 1.061_405_429))));
    sign * (1.0 - poly * (-x * x).exp())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol
    }

    #[test]
    fn moments() {
        let b = Binomial::new(100, 0.25);
        assert_eq!(b.n(), 100);
        assert_eq!(b.p(), 0.25);
        assert!(close(b.mean(), 25.0, 1e-12));
        assert!(close(b.variance(), 18.75, 1e-12));
        assert!(close(b.std_dev(), 18.75f64.sqrt(), 1e-12));
    }

    #[test]
    fn pmf_matches_hand_computed_values() {
        // bin(4, 0.5): pmf = [1, 4, 6, 4, 1] / 16.
        let b = Binomial::new(4, 0.5);
        let expected = [1.0, 4.0, 6.0, 4.0, 1.0];
        for (k, e) in expected.iter().enumerate() {
            assert!(close(b.pmf(k as u64), e / 16.0, 1e-12), "k={k}");
        }
        assert_eq!(b.pmf(5), 0.0);
        let total: f64 = (0..=4).map(|k| b.pmf(k)).sum();
        assert!(close(total, 1.0, 1e-12));
    }

    #[test]
    fn degenerate_probabilities() {
        let zero = Binomial::new(10, 0.0);
        assert_eq!(zero.pmf(0), 1.0);
        assert_eq!(zero.pmf(1), 0.0);
        assert_eq!(zero.cdf(0), 1.0);
        let one = Binomial::new(10, 1.0);
        assert_eq!(one.pmf(10), 1.0);
        assert_eq!(one.pmf(9), 0.0);
        assert_eq!(one.cdf(9), 0.0);
        assert_eq!(one.cdf(10), 1.0);
    }

    #[test]
    fn cdf_methods_agree_on_small_n() {
        for n in [1u64, 5, 20, 80] {
            for p in [0.05, 0.3, 0.5, 0.9] {
                let b = Binomial::new(n, p);
                for k in 0..=n {
                    let direct = b.cdf_with(k, CdfMethod::DirectSum);
                    let beta = b.cdf_with(k, CdfMethod::IncompleteBeta);
                    assert!(
                        close(direct, beta, 1e-10),
                        "n={n} p={p} k={k}: {direct} vs {beta}"
                    );
                }
            }
        }
    }

    #[test]
    fn normal_approximation_is_close_for_large_n() {
        let b = Binomial::new(2000, 0.4);
        for k in [700u64, 780, 800, 820, 900] {
            let exact = b.cdf_with(k, CdfMethod::IncompleteBeta);
            let approx = b.cdf_with(k, CdfMethod::NormalApprox);
            assert!(
                close(exact, approx, 5e-3),
                "k={k}: exact {exact} vs approx {approx}"
            );
        }
    }

    #[test]
    fn sf_complements_cdf() {
        let b = Binomial::new(30, 0.35);
        assert_eq!(b.sf(0), 1.0);
        for k in 1..=30 {
            assert!(close(b.sf(k), 1.0 - b.cdf(k - 1), 1e-12));
        }
    }

    #[test]
    fn standard_normal_cdf_known_values() {
        assert!(close(standard_normal_cdf(0.0), 0.5, 1e-7));
        assert!(close(standard_normal_cdf(1.96), 0.975, 1e-3));
        assert!(close(standard_normal_cdf(-1.96), 0.025, 1e-3));
        assert!(standard_normal_cdf(-8.0) < 1e-10);
        assert!(standard_normal_cdf(8.0) > 1.0 - 1e-10);
    }

    #[test]
    #[should_panic(expected = "in [0, 1]")]
    fn rejects_bad_probability() {
        Binomial::new(10, 1.5);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn cdf_is_monotone_and_bounded(n in 1u64..200, p in 0.0f64..1.0) {
            let b = Binomial::new(n, p);
            let mut prev = 0.0;
            for k in 0..=n {
                let c = b.cdf(k);
                prop_assert!((0.0..=1.0).contains(&c), "cdf out of range at k={}", k);
                prop_assert!(c + 1e-9 >= prev, "cdf decreased at k={}", k);
                prev = c;
            }
            prop_assert!((b.cdf(n) - 1.0).abs() < 1e-9);
        }

        #[test]
        fn direct_sum_and_beta_agree(n in 1u64..120, p in 0.01f64..0.99) {
            let b = Binomial::new(n, p);
            let k = n / 2;
            let direct = b.cdf_with(k, CdfMethod::DirectSum);
            let beta = b.cdf_with(k, CdfMethod::IncompleteBeta);
            prop_assert!((direct - beta).abs() < 1e-9, "{} vs {}", direct, beta);
        }

        #[test]
        fn pmf_sums_to_one(n in 1u64..150, p in 0.0f64..1.0) {
            let b = Binomial::new(n, p);
            let total: f64 = (0..=n).map(|k| b.pmf(k)).sum();
            prop_assert!((total - 1.0).abs() < 1e-9, "total {}", total);
        }
    }
}
